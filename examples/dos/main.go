// Worst-case denial-of-service demo (Section VI-C): an adversary triggers
// a quarantine in every bank every T_RH/2 activations, keeping the channel
// as busy with migrations as AQUA allows. The paper bounds the resulting
// slowdown at 1 + B*2*t_mov/t_AGG ~= 2.95x; this example measures it.
//
//	go run ./examples/dos
package main

import (
	"fmt"

	"repro"
	"repro/internal/analytic"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
)

const (
	trh      = 1000
	requests = 400_000
)

func run(geom dram.Geometry, visible int, mit func(*dram.Rank) mitigation.Mitigator) (dram.PS, mitigation.Stats) {
	rank := repro.NewRank(geom, repro.DDR4Timing())
	m := mit(rank)
	ctrl := memctrl.New(rank, m, memctrl.Config{})
	s := attack.NewRotatingDoS(geom, visible, trh/2, requests)
	c := cpu.New(0, s, cpu.Config{MLP: 4})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}
	return c.FinishTime(), m.Stats()
}

func main() {
	geom := repro.BaselineGeometry()
	region := sim.VisibleRegion(sim.Config{})

	fmt.Printf("DoS pattern: in each of %d banks, hammer a fresh row %d times, repeat\n",
		geom.Banks, trh/2)

	baseTime, _ := run(geom, region.VisibleRowsPerBank,
		func(*dram.Rank) mitigation.Mitigator { return mitigation.None{} })
	aquaTime, st := run(geom, region.VisibleRowsPerBank,
		func(r *dram.Rank) mitigation.Mitigator {
			return core.New(r, core.Config{TRH: trh, Mode: core.ModeSRAM})
		})

	bound := analytic.WorstCaseSlowdown(analytic.BaselineRQAParams(trh / 2))
	fmt.Printf("\nbaseline:  %8.2f ms for %d requests\n", float64(baseTime)/1e9, requests)
	fmt.Printf("AQUA:      %8.2f ms (%d quarantines, %.2f ms of migration busy time)\n",
		float64(aquaTime)/1e9, st.Mitigations, float64(st.ChannelBusy)/1e9)
	fmt.Printf("\nmeasured slowdown:   %.2fx\n", float64(aquaTime)/float64(baseTime))
	fmt.Printf("analytical bound:    %.2fx (Section VI-C)\n", bound)
	fmt.Println("\nCompare Blockhammer's 1280x worst case (Table VI) — AQUA's DoS exposure")
	fmt.Println("is comparable to ordinary row-buffer-conflict slowdowns.")
}
