// Half-Double demo (Figure 1 of the paper): the same attack pattern is
// launched against victim refresh and against AQUA.
//
// Victim refresh protects the rows adjacent to the aggressor — but each
// mitigating refresh is itself a row opening that disturbs rows one
// further out, so a heavy hammer of row A drives the distance-2 rows past
// the flip threshold. AQUA instead relocates the aggressor after T_RH/2
// activations, so no neighbourhood ever accumulates enough disturbance.
//
//	go run ./examples/halfdouble
package main

import (
	"fmt"

	"repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/flipmodel"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/vrefresh"
)

const trh = 400 // Rowhammer threshold for the demo

func main() {
	geom := repro.BaselineGeometry()
	victim := geom.RowOf(2, 1000)
	fmt.Printf("victim: bank %d row %d; attacker hammers the distance-2 ring\n\n",
		geom.BankOf(victim), geom.IndexOf(victim))

	run("victim-refresh", geom, victim, func(rank *dram.Rank, fm *flipmodel.Model) mitigation.Mitigator {
		return vrefresh.New(rank, vrefresh.Config{
			TRH: trh,
			// The charge model observes the mitigating refreshes — the
			// mechanism Half-Double exploits.
			OnRefresh: func(r dram.Row, at dram.PS) { fm.RowOpened(r, at) },
		})
	})

	run("aqua", geom, victim, func(rank *dram.Rank, _ *flipmodel.Model) mitigation.Mitigator {
		return core.New(rank, core.Config{TRH: trh, Mode: core.ModeMemMapped})
	})
}

func run(name string, geom dram.Geometry, victim dram.Row,
	mitigator func(*dram.Rank, *flipmodel.Model) mitigation.Mitigator) {

	rank := repro.NewRank(geom, repro.DDR4Timing())
	// Flip threshold: 2*T_RH combined disturbance (T_RH is defined per
	// aggressor row; a victim has two distance-1 neighbours).
	fm := flipmodel.New(geom, 2*trh, rank.Timing().TREFW)
	fm.Attach(rank)

	mit := mitigator(rank, fm)
	ctrl := memctrl.New(rank, mit, memctrl.Config{})

	// Half-Double pattern: hammer the distance-2 ring hard.
	stream := attack.HalfDouble(geom, victim, trh*trh)
	c := cpu.New(0, stream, cpu.Config{MLP: 1})
	for {
		at, ok := c.NextIssueTime()
		if !ok {
			break
		}
		c.Issue(at, ctrl.Submit)
	}

	st := mit.Stats()
	fmt.Printf("%-14s mitigations=%-5d refreshes=%-5d migrations=%-4d victim disturbance=%d\n",
		name, st.Mitigations, st.VictimRefreshes, st.RowMigrations, fm.Disturbance(victim))
	flipped := false
	for _, f := range fm.Flips() {
		if f.Victim == victim {
			flipped = true
		}
	}
	if flipped {
		fmt.Printf("%-14s >>> BIT FLIP in the distance-2 victim (Half-Double succeeded)\n\n", name)
	} else {
		fmt.Printf("%-14s victim intact\n\n", name)
	}
}
