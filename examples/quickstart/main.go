// Quickstart: protect a 16GB DDR4 rank with AQUA, hammer one row, and
// watch the quarantine machinery work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// The paper's baseline system: 16 banks x 128K rows x 8KB (Table I),
	// protected by AQUA with memory-mapped tables at T_RH = 1000.
	rank := repro.NewBaselineRank()
	aqua := repro.NewAqua(rank, repro.AquaConfig{TRH: 1000, Mode: repro.ModeMemMapped})
	ctrl := repro.NewController(rank, aqua)
	monitor := repro.NewSecurityMonitor(rank, 1000)

	geom := rank.Geometry()
	fmt.Printf("memory: %d rows (%.0f GB), RQA: %d rows (%.1f%% of memory)\n",
		geom.Rows(), float64(geom.CapacityBytes())/(1<<30),
		aqua.RQASize(), 100*float64(aqua.RQASize())/float64(geom.Rows()))

	// Hammer row 42 the way an attacker would: alternate it with a
	// conflicting row in the same bank so every access opens the row.
	aggressor := geom.RowOf(0, 42)
	conflict := geom.RowOf(0, 70000)
	var now repro.PS
	for i := 0; i < 600; i++ {
		now = ctrl.Submit(aggressor, false, now)
		now = ctrl.Submit(conflict, false, now)
		if i == 0 || i == 499 || i == 599 {
			fmt.Printf("after %3d activations: quarantined=%v\n",
				i+1, aqua.IsQuarantined(aggressor))
		}
	}

	st := aqua.Stats()
	fmt.Printf("\nmitigations: %d, row migrations: %d, channel busy: %.2f us\n",
		st.Mitigations, st.RowMigrations, float64(st.ChannelBusy)/1e6)
	fmt.Printf("FPT lookups: %d bloom-filtered, %d cache hits, %d DRAM walks\n",
		st.Lookups[repro.LookupBloomFiltered],
		st.Lookups[repro.LookupCacheHit],
		st.Lookups[repro.LookupDRAM])

	if monitor.Violated() {
		fmt.Println("SECURITY VIOLATION — this should never print")
	} else {
		_, peak := monitor.MaxWindowCount()
		fmt.Printf("security: no physical row exceeded T_RH (peak observed: %d ACTs)\n", peak)
	}
}
