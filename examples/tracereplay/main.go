// Trace record & replay: capture a workload's memory request stream into
// the compact binary trace format, then replay the identical stream
// through two mitigation configurations — the reproducible-artifact
// workflow (the role gem5 checkpoints play for the paper's artifact).
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/cpu"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Record: synthesize 200K requests of gcc and capture them.
	spec, _ := workload.ByName("gcc")
	region := sim.VisibleRegion(sim.Config{})
	gen := workload.NewGenerator(spec, region, 0, 42, workload.Params{})

	var buf bytes.Buffer
	n, err := trace.Capture(&buf, gen.Stream(200_000, 42), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d requests (%d bytes, %.1f bytes/request)\n\n",
		n, buf.Len(), float64(buf.Len())/float64(n))

	// 2. Replay the identical stream through two configurations.
	replay := func(name string, mitigate bool) {
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		rank := repro.NewBaselineRank()
		var mit mitigation.Mitigator = mitigation.None{}
		if mitigate {
			mit = repro.NewAqua(rank, repro.AquaConfig{TRH: 1000})
		}
		ctrl := memctrl.New(rank, mit, memctrl.Config{})
		c := cpu.New(0, r, cpu.Config{})
		for {
			at, ok := c.NextIssueTime()
			if !ok {
				break
			}
			c.Issue(at, ctrl.Submit)
		}
		if r.Err() != nil {
			log.Fatal(r.Err())
		}
		st := mit.Stats()
		fmt.Printf("%-10s IPC=%.3f time=%.2fms mitigations=%d migrations=%d\n",
			name, c.IPC(c.FinishTime()), float64(c.FinishTime())/1e9,
			st.Mitigations, st.RowMigrations)
	}
	replay("baseline", false)
	replay("aqua", true)

	fmt.Println("\nThe same bits drive both runs — any difference is the mitigation.")
	fmt.Println("Use `go run ./cmd/tracedump` to record/inspect/replay traces on disk.")
}
