// Threshold sweep: how AQUA scales as the Rowhammer threshold drops
// (the trend that breaks RRS, Figures 3 and 11, and the Table III sizing).
//
// For each T_RH the example prints the closed-form quarantine size
// (Equation 3) and the measured slowdown of AQUA and RRS on a
// memory-intensive workload.
//
//	go run ./examples/sweep            # fast 8ms windows
//	go run ./examples/sweep -window 64 # full refresh windows
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/analytic"
	"repro/internal/dram"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	windowMS := flag.Int("window", 8, "simulated window in ms")
	workload := flag.String("workload", "gcc", "workload to sweep")
	flag.Parse()

	fmt.Println("Quarantine-area sizing (Equation 3 / Table III):")
	fmt.Println(repro.Table3())

	runner := sim.NewRunner(sim.ExpConfig{
		Window:    dram.PS(*windowMS) * dram.Millisecond,
		Calibrate: true,
	})

	fmt.Printf("Measured on %q (%d ms windows):\n", *workload, *windowMS)
	fmt.Printf("%6s  %12s  %12s  %14s  %12s\n",
		"T_RH", "AQUA slowdn", "RRS slowdn", "AQUA migr/64ms", "RQA rows")
	for _, trh := range []int64{4000, 2000, 1000, 500} {
		aqua, err := runner.Run(*workload, repro.SchemeAquaMemMapped, trh)
		if err != nil {
			log.Fatal(err)
		}
		rrs, err := runner.Run(*workload, repro.SchemeRRS, trh)
		if err != nil {
			log.Fatal(err)
		}
		rqa := analytic.BaselineRQAParams(trh / 2).RMax()
		fmt.Printf("%6d  %11.1f%%  %11.1f%%  %14.0f  %12d\n",
			trh,
			(1/aqua.NormIPC-1)*100,
			(1/rrs.NormIPC-1)*100,
			aqua.Result.MigrationsPer64ms,
			rqa)
	}
	fmt.Println("\nAQUA's slowdown stays an order of magnitude below RRS as T_RH drops,")
	fmt.Println("while the quarantine area stays near 1% of memory — the paper's headline.")
}
