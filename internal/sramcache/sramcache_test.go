package sramcache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func small() *Cache { return New(64, 4, 16) }

func TestLookupMissThenHit(t *testing.T) {
	c := small()
	if _, hit := c.Lookup(100); hit {
		t.Fatal("empty cache hit")
	}
	c.Insert(100, 7, false)
	v, hit := c.Lookup(100)
	if !hit || v != 7 {
		t.Fatalf("lookup = %d,%v", v, hit)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := small()
	c.Insert(5, 1, false)
	c.Insert(5, 2, true)
	if v, _ := c.Lookup(5); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(9, 3, false)
	if !c.Invalidate(9) {
		t.Fatal("invalidate failed")
	}
	if c.Contains(9) {
		t.Fatal("still resident")
	}
	if c.Invalidate(9) {
		t.Fatal("double invalidate succeeded")
	}
}

func TestGroupRowsShareSet(t *testing.T) {
	c := small()
	// Rows 0..15 are one group and must map to one set: filling with >4
	// (ways) of them must evict, never split across sets.
	for i := uint32(0); i < 16; i++ {
		c.Insert(i, uint16(i), false)
	}
	if c.Len() != 4 {
		t.Fatalf("group overfilled its set: len = %d, want 4 (ways)", c.Len())
	}
}

func TestRRIPEvictsDistantFirst(t *testing.T) {
	c := New(8, 4, 1) // group size 1: rows map by own hash
	// Find 5 rows in the same set.
	var sameSet []uint32
	base := c.setIndex(0)
	for row := uint32(0); len(sameSet) < 5 && row < 100000; row++ {
		if c.setIndex(row) == base {
			sameSet = append(sameSet, row)
		}
	}
	if len(sameSet) < 5 {
		t.Skip("could not find 5 same-set rows")
	}
	for _, r := range sameSet[:4] {
		c.Insert(r, 1, false)
	}
	// Touch the first three so they are near re-reference; the fourth
	// stays at fill RRPV and must be the victim.
	for _, r := range sameSet[:3] {
		c.Lookup(r)
	}
	c.Insert(sameSet[4], 1, false)
	if c.Contains(sameSet[3]) {
		t.Fatal("RRIP evicted a recently-touched line instead of the distant one")
	}
	for _, r := range sameSet[:3] {
		if !c.Contains(r) {
			t.Fatalf("recently-touched row %d evicted", r)
		}
	}
}

func TestSingletonProbe(t *testing.T) {
	c := small()
	// Row 3 (group 0) resident with singleton bit: probing any other row
	// of group 0 proves "not quarantined".
	c.Insert(3, 9, true)
	if !c.ProbeGroupSingleton(5) {
		t.Fatal("singleton probe missed same-group entry")
	}
	// The row itself must not satisfy its own probe.
	if c.ProbeGroupSingleton(3) {
		t.Fatal("row satisfied its own singleton probe")
	}
	// Without the singleton bit, no proof.
	c.Insert(3, 9, false)
	if c.ProbeGroupSingleton(5) {
		t.Fatal("probe true despite singleton bit clear")
	}
}

func TestSetGroupSingleton(t *testing.T) {
	c := small()
	c.Insert(1, 1, true)
	c.Insert(2, 2, true)
	c.SetGroupSingleton(1, false)
	if c.ProbeGroupSingleton(7) {
		t.Fatal("singleton bits not cleared group-wide")
	}
	c.SetGroupSingleton(2, true)
	if !c.ProbeGroupSingleton(7) {
		t.Fatal("singleton bits not set group-wide")
	}
}

func TestResidencyProperty(t *testing.T) {
	// Property: after any operation sequence, Lookup hits exactly the
	// rows a reference model (bounded per set) still holds, and Len never
	// exceeds capacity.
	check := func(seed uint64) bool {
		c := New(32, 4, 4)
		r := rng.New(seed)
		for op := 0; op < 200; op++ {
			row := uint32(r.Intn(64))
			switch r.Intn(3) {
			case 0:
				c.Insert(row, uint16(row), false)
			case 1:
				c.Invalidate(row)
			case 2:
				if v, hit := c.Lookup(row); hit && v != uint16(row) {
					return false // value corruption
				}
			}
			if c.Len() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClearAndStats(t *testing.T) {
	c := small()
	c.Insert(1, 1, false)
	c.Lookup(1)
	c.Lookup(2)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", c.HitRate())
	}
	c.StatsReset()
	if c.HitRate() != 0 {
		t.Fatal("stats reset failed")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestSRAMBytesPaperConfig(t *testing.T) {
	// 4K entries x 16 ways, ~16KB (Section V-A says 16KB for the
	// FPT-Cache); with a 21-bit tag our accounting gives 4K x 41 bits =
	// 20.5KB — same order, difference documented in EXPERIMENTS.md.
	c := New(4096, 16, 16)
	got := c.SRAMBytes(21)
	if got < 16*1024 || got > 24*1024 {
		t.Fatalf("SRAMBytes = %d", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 4, 16) },
		func() { New(7, 4, 16) },  // not divisible
		func() { New(48, 4, 16) }, // 12 sets: not a power of two
		func() { New(64, 4, 3) },  // group size not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
