// Package sramcache implements the FPT-Cache of AQUA's memory-mapped-table
// design (Sections V-C and V-D): a small set-associative SRAM cache of
// recently used Forward-Pointer-Table entries with RRIP replacement, group
// indexing (all rows of an FPT group map to the same set so a single extra
// probe can find any group member), and the singleton bit that filters
// DRAM lookups for groups with exactly one quarantined row.
package sramcache

import (
	"fmt"
)

// rrip constants: 2-bit re-reference prediction values.
const (
	rrpvBits = 2
	rrpvMax  = (1 << rrpvBits) - 1 // distant re-reference (eviction candidate)
	rrpvHit  = 0                   // near re-reference after a hit
	rrpvFill = rrpvMax - 1         // long re-reference on insertion (SRRIP)
)

type line struct {
	valid     bool
	row       uint32 // full row id acts as the tag
	value     uint16 // FPT entry: forward pointer into the RQA
	singleton bool   // group has exactly one valid FPT entry
	rrpv      uint8
}

// Cache is the FPT-Cache. Not safe for concurrent use.
type Cache struct {
	sets       int
	ways       int
	groupShift uint
	lines      []line

	// stats
	hits, misses int64
	inserts      int64
	evictions    int64
}

// New builds a cache with the given total entries and associativity.
// entries/ways must be a power of two. groupSize is the FPT group size used
// for set indexing (all rows of a group map to the same set). The paper's
// default is 4K entries, 16 ways, groups of 16.
func New(entries, ways, groupSize int) *Cache {
	if entries < 1 || ways < 1 || entries%ways != 0 {
		panic(fmt.Sprintf("sramcache: bad geometry entries=%d ways=%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("sramcache: sets must be a power of two, got %d", sets))
	}
	if groupSize < 1 || groupSize&(groupSize-1) != 0 {
		panic(fmt.Sprintf("sramcache: group size must be a power of two, got %d", groupSize))
	}
	shift := uint(0)
	for 1<<shift != groupSize {
		shift++
	}
	return &Cache{
		sets:       sets,
		ways:       ways,
		groupShift: shift,
		lines:      make([]line, entries),
	}
}

// GroupOf returns the group index of a row.
func (c *Cache) GroupOf(row uint32) uint32 { return row >> c.groupShift }

// setIndex maps a row to its set via its group, so that every member of a
// group shares a set (required by the singleton probe).
func (c *Cache) setIndex(row uint32) int {
	g := uint64(c.GroupOf(row))
	// splitmix finalizer for dispersion across sets.
	g = (g ^ (g >> 30)) * 0xbf58476d1ce4e5b9
	g = (g ^ (g >> 27)) * 0x94d049bb133111eb
	g ^= g >> 31
	return int(g & uint64(c.sets-1))
}

func (c *Cache) set(idx int) []line {
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Lookup searches for the row's own FPT entry. On a hit the entry's RRPV is
// promoted.
func (c *Cache) Lookup(row uint32) (value uint16, hit bool) {
	set := c.set(c.setIndex(row))
	for i := range set {
		if set[i].valid && set[i].row == row {
			set[i].rrpv = rrpvHit
			c.hits++
			return set[i].value, true
		}
	}
	c.misses++
	return 0, false
}

// ProbeGroupSingleton performs the second, same-set probe of Section V-D:
// after a miss for `row`, check whether any *other* member of the row's
// group is resident with its singleton bit set. If so, the group has
// exactly one valid FPT entry — and it is not `row` — so the DRAM FPT
// lookup can be skipped.
func (c *Cache) ProbeGroupSingleton(row uint32) bool {
	g := c.GroupOf(row)
	set := c.set(c.setIndex(row))
	for i := range set {
		if set[i].valid && set[i].row != row && c.GroupOf(set[i].row) == g && set[i].singleton {
			return true
		}
	}
	return false
}

// Insert installs an FPT entry for a quarantined row, evicting by RRIP if
// the set is full. Only currently quarantined rows are inserted (Section
// V-C), which keeps the cache's working set to at most the RQA size.
func (c *Cache) Insert(row uint32, value uint16, singleton bool) {
	setIdx := c.setIndex(row)
	set := c.set(setIdx)
	// Update in place if already resident.
	for i := range set {
		if set[i].valid && set[i].row == row {
			set[i].value = value
			set[i].singleton = singleton
			set[i].rrpv = rrpvHit
			return
		}
	}
	victim := c.findVictim(set)
	if set[victim].valid {
		c.evictions++
	}
	set[victim] = line{valid: true, row: row, value: value, singleton: singleton, rrpv: rrpvFill}
	c.inserts++
}

// findVictim implements SRRIP: evict the first invalid line, otherwise the
// first line with RRPV == max, aging the set until one exists.
func (c *Cache) findVictim(set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	for {
		for i := range set {
			if set[i].rrpv >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].rrpv++
		}
	}
}

// Invalidate drops the row's entry if resident; it reports residency.
func (c *Cache) Invalidate(row uint32) bool {
	set := c.set(c.setIndex(row))
	for i := range set {
		if set[i].valid && set[i].row == row {
			set[i] = line{}
			return true
		}
	}
	return false
}

// SetGroupSingleton updates the singleton bit on every resident entry of
// the row's group. The engine calls this when the group's occupancy
// transitions to or from exactly one.
func (c *Cache) SetGroupSingleton(row uint32, singleton bool) {
	g := c.GroupOf(row)
	set := c.set(c.setIndex(row))
	for i := range set {
		if set[i].valid && c.GroupOf(set[i].row) == g {
			set[i].singleton = singleton
		}
	}
}

// Contains reports residency without touching replacement state.
func (c *Cache) Contains(row uint32) bool {
	set := c.set(c.setIndex(row))
	for i := range set {
		if set[i].valid && set[i].row == row {
			return true
		}
	}
	return false
}

// Len returns the number of valid lines.
func (c *Cache) Len() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Clear invalidates the whole cache.
func (c *Cache) Clear() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Hits returns the number of Lookup calls that found their row.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of Lookup calls that did not.
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), 0 when no lookups occurred.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// StatsReset zeroes the statistics counters.
func (c *Cache) StatsReset() { c.hits, c.misses, c.inserts, c.evictions = 0, 0, 0, 0 }

// SRAMBytes returns the cache's SRAM footprint given the tag width in bits:
// per line one valid bit, tag, RRPV, singleton bit, and a 2-byte FPT entry.
func (c *Cache) SRAMBytes(tagBits int) int {
	bits := len(c.lines) * (1 + tagBits + rrpvBits + 1 + 16)
	return (bits + 7) / 8
}
