package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); !almostEqual(g, 4) {
		t.Fatalf("Geomean(2,8) = %g, want 4", g)
	}
	if g := Geomean([]float64{5}); !almostEqual(g, 5) {
		t.Fatalf("Geomean(5) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %g, want 0", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero value")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	check := func(raw []uint16) bool {
		var xs []float64
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if m := Mean(xs); !almostEqual(m, 2.8) {
		t.Errorf("Mean = %g", m)
	}
	if m := Min(xs); m != 1 {
		t.Errorf("Min = %g", m)
	}
	if m := Max(xs); m != 5 {
		t.Errorf("Max = %g", m)
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestMeanInt(t *testing.T) {
	if m := MeanInt([]int64{1, 2, 3, 4}); !almostEqual(m, 2.5) {
		t.Errorf("MeanInt = %g", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %g", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("P50 = %g", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("P25 = %g", p)
	}
	// Input must not be reordered.
	if xs[0] != 1 || xs[4] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{166, 500, 1000})
	for _, v := range []int64{10, 200, 600, 1500, 499, 1000} {
		h.Add(v)
	}
	if u := h.Underflow(); u != 1 {
		t.Errorf("underflow = %d", u)
	}
	if c := h.Count(0); c != 2 { // [166,500): 200, 499
		t.Errorf("bucket[166,500) = %d", c)
	}
	if c := h.Count(1); c != 1 { // [500,1000): 600
		t.Errorf("bucket[500,1000) = %d", c)
	}
	if c := h.Count(2); c != 2 { // [1000,inf): 1500, 1000
		t.Errorf("bucket[1000,) = %d", c)
	}
	if c := h.CumulativeAtLeast(500); c != 3 {
		t.Errorf("cumulative >=500 = %d", c)
	}
	if c := h.CumulativeAtLeast(166); c != 5 {
		t.Errorf("cumulative >=166 = %d", c)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	h.Reset()
	if h.Total() != 0 || h.Count(0) != 0 {
		t.Error("reset did not clear")
	}
}

func TestHistogramCumulativeInvariant(t *testing.T) {
	check := func(raw []uint16) bool {
		h := NewHistogram([]int64{100, 1000, 10000})
		for _, v := range raw {
			h.Add(int64(v))
		}
		// Cumulative counts must be monotonically non-increasing.
		c1 := h.CumulativeAtLeast(100)
		c2 := h.CumulativeAtLeast(1000)
		c3 := h.CumulativeAtLeast(10000)
		return c1 >= c2 && c2 >= c3 && c1+h.Underflow() == h.Total()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-ascending bounds")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "Name", "Value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("missing rows")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: all data lines equal width or less than header rule.
	if len(lines[1]) > len(lines[2]) {
		t.Error("rule shorter than header")
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("only")
	tab.AddRow("x", "y", "dropped")
	out := tab.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestFormatHelpers(t *testing.T) {
	if s := FormatFloat(3.0); s != "3" {
		t.Errorf("FormatFloat(3.0) = %q", s)
	}
	if s := FormatPercent(0.021); s != "2.1%" {
		t.Errorf("FormatPercent = %q", s)
	}
	if v := NormalizedSlowdown(0.8); !almostEqual(v, 0.25) {
		t.Errorf("NormalizedSlowdown(0.8) = %g", v)
	}
}
