// Package stats provides the small numerical and reporting utilities shared
// by the simulator and the benchmark harness: geometric means, histograms,
// and fixed-width table rendering for regenerating the paper's tables and
// figures as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty slice
// and panics if any value is non-positive (normalized IPC is always > 0).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInt returns the arithmetic mean of integer samples as a float.
func MeanInt(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bucket histogram over int64 samples, used to report
// per-row activation distributions.
type Histogram struct {
	// Bounds are the inclusive lower edges of each bucket; counts[i] tallies
	// samples in [Bounds[i], Bounds[i+1]) with the final bucket unbounded.
	Bounds []int64
	counts []int64
	total  int64
}

// NewHistogram returns a histogram over the given ascending bucket lower
// bounds. Samples below Bounds[0] are dropped into an implicit underflow
// bucket reported by Underflow.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1), // counts[0] is underflow
	}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.total++
	// Binary search for the bucket: greatest i with Bounds[i] <= v.
	i := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] > v })
	h.counts[i]++ // i==0 means underflow
}

// Count returns the number of samples at or above Bounds[i] and below
// Bounds[i+1] (unbounded for the last bucket).
func (h *Histogram) Count(i int) int64 {
	if i < 0 || i >= len(h.Bounds) {
		panic("stats: histogram bucket out of range")
	}
	return h.counts[i+1]
}

// CumulativeAtLeast returns the number of samples >= bound, where bound must
// be one of the configured bucket bounds.
func (h *Histogram) CumulativeAtLeast(bound int64) int64 {
	idx := -1
	for i, b := range h.Bounds {
		if b == bound {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("stats: %d is not a histogram bound", bound))
	}
	var sum int64
	for i := idx + 1; i < len(h.counts); i++ {
		sum += h.counts[i]
	}
	return sum
}

// Underflow returns the number of samples below the first bound.
func (h *Histogram) Underflow() int64 { return h.counts[0] }

// Total returns the total number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Table renders fixed-width text tables in the style of the paper's tables,
// suitable for terminal output and for recording in EXPERIMENTS.md.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned []bool // true = right-align column
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, header: headers, aligned: make([]bool, len(headers))}
	for i := range t.aligned {
		t.aligned[i] = true
	}
	t.aligned[0] = false // first column (usually a name) left-aligns
	return t
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row where each cell is formatted with fmt.Sprint for
// arbitrary values.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = FormatFloat(v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if t.aligned[i] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// FormatPercent renders a ratio as a percentage string, e.g. 0.021 -> "2.1%".
func FormatPercent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}

// NormalizedSlowdown converts normalized IPC (mitigated/baseline) into a
// slowdown fraction, e.g. normIPC 0.98 -> 0.0204 (2.04% slower).
func NormalizedSlowdown(normIPC float64) float64 {
	if normIPC <= 0 {
		panic("stats: non-positive normalized IPC")
	}
	return 1/normIPC - 1
}
