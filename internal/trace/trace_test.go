package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/rng"
	"repro/internal/workload"
)

func sample() []Record {
	return []Record{
		{Row: 100, Write: false, GapInstr: 158},
		{Row: 101, Write: true, GapInstr: 42},
		{Row: 100, Write: false, GapInstr: 0},
		{Row: 1 << 20, Write: false, GapInstr: 1 << 40},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sample()
	w, err := NewWriter(&buf, int64(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Records != int64(len(recs)) {
		t.Fatalf("header records = %d", r.Header().Records)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		rnd := rng.New(seed)
		recs := make([]Record, int(n))
		for i := range recs {
			recs[i] = Record{
				Row:      dram.Row(rnd.Uint32()),
				Write:    rnd.Float64() < 0.5,
				GapInstr: int64(rnd.Uint64n(1 << 30)),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, int64(len(recs)))
		if err != nil {
			return false
		}
		for _, r := range recs {
			if w.Append(r) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := r.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Append(Record{Row: 1})
	if err := w.Close(); err == nil {
		t.Fatal("close accepted short trace")
	}
	w2, _ := NewWriter(&buf, 1)
	w2.Append(Record{Row: 1})
	if err := w2.Append(Record{Row: 2}); err == nil {
		t.Fatal("append past declared count accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace at all")); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	if _, err := NewReader(strings.NewReader("xy")); err == nil {
		t.Fatal("short header accepted")
	}
	// Valid header, truncated body.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Append(Record{Row: 5})
	w.w.Flush() // deliberately skip Close: body is short
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestStreamAdapter(t *testing.T) {
	var buf bytes.Buffer
	recs := sample()
	w, _ := NewWriter(&buf, int64(len(recs)))
	for _, r := range recs {
		w.Append(r)
	}
	w.Close()
	r, _ := NewReader(&buf)
	n := 0
	for {
		req, ok := r.Next()
		if !ok {
			break
		}
		if req.Row != recs[n].Row || req.Write != recs[n].Write {
			t.Fatalf("stream record %d mismatch", n)
		}
		n++
	}
	if n != len(recs) || r.Err() != nil {
		t.Fatalf("n=%d err=%v", n, r.Err())
	}
}

func TestCaptureWorkloadAndReplay(t *testing.T) {
	// Record a workload generator stream, replay it, and check the replay
	// is bit-identical to a second generation.
	spec, _ := workload.ByName("gcc")
	region := workload.Region{
		Geom: dram.Geometry{Banks: 4, RowsPerBank: 1024, RowBytes: 1024, LineBytes: 64},
	}
	gen := workload.NewGenerator(spec, region, 0, 7, workload.Params{})

	var buf bytes.Buffer
	n, err := Capture(&buf, gen.Stream(500, 3), 0)
	if err != nil || n != 500 {
		t.Fatalf("capture: n=%d err=%v", n, err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := gen.Stream(500, 3)
	for i := 0; i < 500; i++ {
		got, ok1 := r.Next()
		want, ok2 := fresh.Next()
		if !ok1 || !ok2 || got != want {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestCaptureLimit(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	n, err := Capture(&buf, NewSliceStream(recs), 2)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestTextCommentsAndErrors(t *testing.T) {
	got, err := ReadText(strings.NewReader("# header\n\nR 5 10\nW 6 0\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
	bad := []string{
		"X 5 10",
		"R five 10",
		"R 5",
		"R 5 -1",
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	// Locality-heavy streams must encode well below the naive 13-byte
	// fixed record.
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{Row: dram.Row(1000 + i%4), GapInstr: 158}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, int64(len(recs)))
	for _, r := range recs {
		w.Append(r)
	}
	w.Close()
	perRecord := float64(buf.Len()-16) / float64(len(recs))
	if perRecord > 6 {
		t.Fatalf("%.1f bytes/record, want <= 6", perRecord)
	}
}

func TestSliceStreamExhausts(t *testing.T) {
	s := NewSliceStream(sample())
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != len(sample()) {
		t.Fatalf("n = %d", n)
	}
}
