package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzBinaryReader: arbitrary input must never panic or loop; every
// decoded record must re-encode losslessly.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Append(Record{Row: 100, GapInstr: 5})
	w.Append(Record{Row: 7, Write: true, GapInstr: 0})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		for i := 0; i < 1<<16; i++ { // decode is bounded by the header count
			rec, err := r.Read()
			if err != nil {
				break
			}
			recs = append(recs, rec)
		}
		// Round-trip whatever was decodable.
		var out bytes.Buffer
		w, err := NewWriter(&out, int64(len(recs)))
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rr, err := NewReader(&out)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, err := rr.Read()
			if err != nil || got != want {
				t.Fatalf("record %d: %+v vs %+v (%v)", i, got, want, err)
			}
		}
	})
}

// FuzzTextReader: arbitrary text must never panic; valid parses must
// round-trip through WriteText.
func FuzzTextReader(f *testing.F) {
	f.Add("R 5 10\nW 6 0\n")
	f.Add("# comment\n\nR 1 2")
	f.Add("X 1 2")
	f.Add(strings.Repeat("R 4294967295 9223372036854775807\n", 3))

	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round-trip length %d vs %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("round-trip record %d: %+v vs %+v", i, again[i], recs[i])
			}
		}
	})
}
