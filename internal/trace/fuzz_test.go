package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dram"
)

// FuzzBinaryReader: arbitrary input must never panic or loop; every
// decoded record must re-encode losslessly.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Append(Record{Row: 100, GapInstr: 5})
	w.Append(Record{Row: 7, Write: true, GapInstr: 0})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// A v2 trace: the v1 reader must reject it at the magic, not decode
	// blocked bytes as records.
	f.Add(v2Seed(2))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		for i := 0; i < 1<<16; i++ { // decode is bounded by the header count
			rec, err := r.Read()
			if err != nil {
				break
			}
			recs = append(recs, rec)
		}
		// Round-trip whatever was decodable.
		var out bytes.Buffer
		w, err := NewWriter(&out, int64(len(recs)))
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rr, err := NewReader(&out)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, err := rr.Read()
			if err != nil || got != want {
				t.Fatalf("record %d: %+v vs %+v (%v)", i, got, want, err)
			}
		}
	})
}

// v2Seed builds a small valid v2 trace with the given number of cores.
func v2Seed(cores int) []byte {
	set := &Set{Cores: make([]*Packed, cores)}
	for i := range set.Cores {
		p := &Packed{}
		p.Append(Record{Row: 100, GapInstr: 5})
		p.Append(Record{Row: 7, Write: true, GapInstr: 0})
		set.Cores[i] = p
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 0); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzBlockedReader extends FuzzBinaryReader to the v2 blocked format:
// arbitrary bytes must never panic or loop in either v2 reader
// (sequential blocks or mapped random access), the two readers must
// agree on what a valid image contains, and whatever decodes must
// round-trip losslessly through WriteSet.
func FuzzBlockedReader(f *testing.F) {
	valid := v2Seed(2)
	f.Add(valid)
	// Truncated frame index: cut inside the index block + footer.
	f.Add(valid[: len(valid)-footerLen2-frameLen2 : len(valid)-footerLen2-frameLen2])
	// Corrupt block checksum: flip a payload byte of the first data block.
	corrupt := bytes.Clone(valid)
	corrupt[headerLen2+blockHdr2] ^= 0x01
	f.Add(corrupt)
	// Zero-record blocks: an empty two-core trace (no data blocks at all).
	f.Add(func() []byte {
		var buf bytes.Buffer
		if err := WriteSet(&buf, &Set{Cores: []*Packed{{}, {}}}, 0); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}())
	// A hand-forged zero-record data block ahead of a legitimate one.
	f.Add(func() []byte {
		var buf bytes.Buffer
		bw, err := NewBlockWriter(&buf, 1, 1, 3)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 3; i++ {
			if err := bw.Append(0, Record{Row: dram.Row(i)}); err != nil {
				panic(err)
			}
		}
		if err := bw.Close(); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}())
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Sequential path. Decode bounded by the self-delimiting blocks;
		// NextBlock caps payloads, so memory stays bounded too.
		set, seqErr := ReadSet(bytes.NewReader(data))

		// Mapped path over the same bytes (the fallback file read makes
		// this exact on every platform).
		m, mapErr := newMappedSet(data, nil)
		if mapErr == nil {
			for core := 0; core < m.Header().Cores; core++ {
				s := m.Stream(core)
				n := 0
				for {
					if _, ok := s.Next(); !ok {
						break
					}
					n++
				}
				if seqErr == nil && s.Err() == nil && set.Cores[core].Len() != int64(n) {
					t.Fatalf("core %d: sequential decoded %d records, mapped %d",
						core, set.Cores[core].Len(), n)
				}
			}
		}
		if seqErr != nil {
			return
		}
		// Round-trip whatever the sequential reader accepted.
		var out bytes.Buffer
		if err := WriteSet(&out, set, 0); err != nil {
			t.Fatalf("re-encode of decoded set failed: %v", err)
		}
		again, err := ReadSet(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if again.Records() != set.Records() || len(again.Cores) != len(set.Cores) {
			t.Fatalf("round-trip %d records/%d cores vs %d/%d",
				again.Records(), len(again.Cores), set.Records(), len(set.Cores))
		}
		for core := range set.Cores {
			for i := int64(0); i < set.Cores[core].Len(); i++ {
				if got, want := again.Cores[core].At(i), set.Cores[core].At(i); got != want {
					t.Fatalf("core %d record %d: %+v vs %+v", core, i, got, want)
				}
			}
		}
	})
}

// FuzzTextReader: arbitrary text must never panic; valid parses must
// round-trip through WriteText.
func FuzzTextReader(f *testing.F) {
	f.Add("R 5 10\nW 6 0\n")
	f.Add("# comment\n\nR 1 2")
	f.Add("X 1 2")
	f.Add(strings.Repeat("R 4294967295 9223372036854775807\n", 3))

	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round-trip length %d vs %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("round-trip record %d: %+v vs %+v", i, again[i], recs[i])
			}
		}
	})
}
