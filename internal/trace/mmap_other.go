//go:build !unix

package trace

import "os"

// mapFile on platforms without the unix mmap surface reads the whole
// file into memory; the replay API is identical, only the residency
// behaviour differs.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
