//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned release function unmaps; the
// file descriptor is closed before returning (the mapping outlives it).
// Empty files cannot be mapped and fall back to a plain read.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, ErrTruncated
	}
	if int64(int(size)) != size {
		return readFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (or exhausted map count): fall
		// back to reading the file into memory.
		return readFallback(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

func readFallback(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
