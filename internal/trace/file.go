package trace

// mmap-backed replay of v2 trace files: the frame index (reached through
// the fixed-size footer) gives every block's offset, so per-core replay
// cursors decode varints straight out of the mapped bytes — no upfront
// decode, no per-record allocation, and the OS pages blocks in and out
// on demand, so a multi-gigabyte trace replays with bounded resident
// memory. Block checksums are verified lazily, when a cursor first
// enters the block.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/cpu"
)

// MappedSet is a v2 trace file opened for random-access replay.
type MappedSet struct {
	data    []byte
	hdr     HeaderV2
	perCore [][]frame
	unmap   func() error
}

// OpenFile opens a v2 trace file for replay, memory-mapping it where the
// platform supports that and falling back to an in-memory read where it
// does not. The header, footer, and frame index are validated here; block
// payloads are checksummed lazily as replay first touches them.
func OpenFile(path string) (*MappedSet, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := newMappedSet(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return m, nil
}

// newMappedSet validates the framing over a complete v2 byte image.
func newMappedSet(data []byte, unmap func() error) (*MappedSet, error) {
	size := int64(len(data))
	if size < headerLen2+blockHdr2+footerLen2 {
		return nil, ErrTruncated
	}
	if binary.LittleEndian.Uint32(data[0:]) != magic2 {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version2 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	cores := binary.LittleEndian.Uint32(data[8:])
	if cores < 1 || cores > maxCores2 {
		return nil, fmt.Errorf("trace: core count %d out of range", cores)
	}
	hdr := HeaderV2{
		Cores:       int(cores),
		BlockTarget: int(binary.LittleEndian.Uint32(data[12:])),
		Records:     int64(binary.LittleEndian.Uint64(data[16:])),
	}
	foot := data[size-footerLen2:]
	if binary.LittleEndian.Uint32(foot[8:]) != magic2 ||
		binary.LittleEndian.Uint32(foot[12:]) != version2 {
		return nil, fmt.Errorf("trace: bad footer (%w?)", ErrTruncated)
	}
	indexOffset := int64(binary.LittleEndian.Uint64(foot[0:]))
	if indexOffset < headerLen2 || indexOffset+blockHdr2 > size-footerLen2 {
		return nil, fmt.Errorf("trace: index offset %d out of bounds", indexOffset)
	}
	ih := data[indexOffset:]
	if binary.LittleEndian.Uint32(ih[0:]) != indexCore {
		return nil, fmt.Errorf("trace: no index block at offset %d", indexOffset)
	}
	frameCount := binary.LittleEndian.Uint32(ih[4:])
	payloadLen := int64(binary.LittleEndian.Uint32(ih[8:]))
	if indexOffset+blockHdr2+payloadLen > size-footerLen2 {
		return nil, fmt.Errorf("trace: index payload overruns file (%w)", ErrTruncated)
	}
	payload := data[indexOffset+blockHdr2 : indexOffset+blockHdr2+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(ih[12:]) {
		return nil, fmt.Errorf("frame index: %w", ErrChecksum)
	}
	frames, err := parseFrames(payload, frameCount, size)
	if err != nil {
		return nil, err
	}
	perCore := make([][]frame, hdr.Cores)
	var total int64
	next := int64(headerLen2)
	for i, f := range frames {
		if int(f.core) >= hdr.Cores {
			return nil, fmt.Errorf("trace: frame core %d out of range [0,%d)", f.core, hdr.Cores)
		}
		// Cross-check the frame against the block header it points at, and
		// require the frames to tile the data region exactly (each block
		// indexed once, in file order, no gaps). Anything looser would let
		// a forged index make the mapped and sequential readers decode
		// different streams from the same bytes. Header-only — payload
		// checksums stay lazy.
		if f.offset != next {
			return nil, fmt.Errorf("trace: frame %d at offset %d, want %d (index does not tile the data)",
				i, f.offset, next)
		}
		bh := data[f.offset:]
		if binary.LittleEndian.Uint32(bh[0:]) != f.core ||
			binary.LittleEndian.Uint32(bh[4:]) != f.records {
			return nil, fmt.Errorf("trace: frame %d disagrees with block header at offset %d", i, f.offset)
		}
		next = f.offset + blockHdr2 + int64(binary.LittleEndian.Uint32(bh[8:]))
		if next > size-footerLen2 {
			return nil, fmt.Errorf("trace: block at %d overruns file (%w)", f.offset, ErrTruncated)
		}
		seq := perCore[f.core]
		var want int64
		if len(seq) > 0 {
			last := seq[len(seq)-1]
			want = last.startRecord + int64(last.records)
		}
		if f.startRecord != want {
			return nil, fmt.Errorf("trace: core %d frames discontinuous at record %d (want %d)",
				f.core, f.startRecord, want)
		}
		perCore[f.core] = append(perCore[f.core], f)
		total += int64(f.records)
	}
	if total != hdr.Records {
		return nil, fmt.Errorf("trace: index covers %d of %d declared records", total, hdr.Records)
	}
	return &MappedSet{data: data, hdr: hdr, perCore: perCore, unmap: unmap}, nil
}

// Header returns the trace header.
func (m *MappedSet) Header() HeaderV2 { return m.hdr }

// CoreRecords returns the number of records core holds.
func (m *MappedSet) CoreRecords(core int) int64 {
	var n int64
	for _, f := range m.perCore[core] {
		n += int64(f.records)
	}
	return n
}

// CoreBlocks returns the number of data blocks core's records span.
func (m *MappedSet) CoreBlocks(core int) int { return len(m.perCore[core]) }

// Verify checksums every data block eagerly — the check Stream performs
// lazily on block entry — so a caller about to trust a file for a whole
// simulation can reject corruption up front instead of discovering it as
// a silently truncated stream mid-run. Block bounds were validated at
// open; only the payload hashes remain.
func (m *MappedSet) Verify() error {
	for _, frames := range m.perCore {
		for _, f := range frames {
			hdr := m.data[f.offset:]
			payloadLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
			payload := m.data[f.offset+blockHdr2 : f.offset+blockHdr2+payloadLen]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[12:]) {
				return fmt.Errorf("block at %d: %w", f.offset, ErrChecksum)
			}
		}
	}
	return nil
}

// Close releases the mapping. Streams must not be used afterwards.
func (m *MappedSet) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	m.data = nil
	return u()
}

// Stream returns a fresh replay cursor over one core's records. Cursors
// are independent; any number may replay concurrently.
func (m *MappedSet) Stream(core int) *MappedStream {
	return &MappedStream{m: m, frames: m.perCore[core]}
}

// Streams returns one fresh replay cursor per core.
func (m *MappedSet) Streams() []cpu.Stream {
	out := make([]cpu.Stream, m.hdr.Cores)
	for i := range out {
		out[i] = m.Stream(i)
	}
	return out
}

// Pack decodes the whole file into the in-memory representation (the
// grid's fast tier promotes disk hits with it).
func (m *MappedSet) Pack() (*Set, error) {
	set := &Set{Cores: make([]*Packed, m.hdr.Cores)}
	for core := range set.Cores {
		p := &Packed{}
		s := m.Stream(core)
		for {
			req, ok := s.Next()
			if !ok {
				break
			}
			p.Append(Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		set.Cores[core] = p
	}
	return set, nil
}

// MappedStream replays one core of a MappedSet as a cpu.Stream, decoding
// records straight from the mapped bytes.
type MappedStream struct {
	m      *MappedSet
	frames []frame

	payload   []byte
	pos       int
	prevRow   uint32
	remaining uint32
	nextFrame int
	err       error
}

// Err returns the first decoding error encountered by Next.
func (s *MappedStream) Err() error { return s.err }

var _ cpu.Stream = (*MappedStream)(nil)

// Next implements cpu.Stream; decode errors (including a checksum
// mismatch on block entry) end the stream and are reported by Err.
func (s *MappedStream) Next() (cpu.Request, bool) {
	if s.err != nil {
		return cpu.Request{}, false
	}
	for s.remaining == 0 {
		if s.nextFrame >= len(s.frames) {
			return cpu.Request{}, false
		}
		f := s.frames[s.nextFrame]
		s.nextFrame++
		if err := s.enter(f); err != nil {
			s.err = err
			return cpu.Request{}, false
		}
	}
	rec, pos, prevRow, err := decodeRecord(s.payload, s.pos, s.prevRow)
	if err != nil {
		s.err = err
		return cpu.Request{}, false
	}
	s.pos, s.prevRow = pos, prevRow
	s.remaining--
	return cpu.Request{Row: rec.Row, Write: rec.Write, GapInstr: rec.GapInstr}, true
}

// enter positions the cursor at the start of a block, verifying the
// block's checksum (the lazy half of OpenFile's validation).
func (s *MappedStream) enter(f frame) error {
	data := s.m.data
	if data == nil {
		return fmt.Errorf("trace: stream used after Close")
	}
	hdr := data[f.offset:]
	payloadLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
	if f.offset+blockHdr2+payloadLen > int64(len(data)) {
		return fmt.Errorf("trace: block at %d overruns file (%w)", f.offset, ErrTruncated)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != f.core ||
		binary.LittleEndian.Uint32(hdr[4:]) != f.records {
		return fmt.Errorf("trace: block at %d disagrees with frame index", f.offset)
	}
	payload := data[f.offset+blockHdr2 : f.offset+blockHdr2+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[12:]) {
		return fmt.Errorf("block at %d: %w", f.offset, ErrChecksum)
	}
	s.payload = payload
	s.pos = 0
	s.prevRow = 0
	s.remaining = f.records
	return nil
}

// WriteSetFile writes a Set to path in the v2 format via a temp file and
// atomic rename, so a crashed writer never leaves a half-written trace
// where a later run would try to replay it.
func WriteSetFile(path string, set *Set, blockTarget int) error {
	tmp, err := os.CreateTemp(dirOf(path), ".trace-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSet(tmp, set, blockTarget); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i]
		}
	}
	return "."
}

// CopyV1ToV2 converts a v1 binary trace (single stream) to the v2 blocked
// format with bounded memory: records stream block-by-block from the v1
// reader into the block writer.
func CopyV1ToV2(dst io.Writer, src *Reader, blockTarget int) error {
	bw, err := NewBlockWriter(dst, 1, blockTarget, src.Header().Records)
	if err != nil {
		return err
	}
	for {
		rec, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := bw.Append(0, rec); err != nil {
			return err
		}
	}
	return bw.Close()
}
