package trace

import (
	"repro/internal/cpu"
	"repro/internal/dram"
)

// Packed is the in-memory replay representation of one core's request
// stream: struct-of-arrays columns sized for the cache, not the decoder.
// Rows and gaps are uint32 columns (8 bytes/record plus one bit for the
// write flag); the rare gap that overflows 32 bits is parked in a side
// table keyed by record index. Replaying via Stream costs a few
// nanoseconds per record and allocates nothing — the point of capturing
// a stream once and replaying it through every grid cell that shares it.
type Packed struct {
	rows   []uint32
	gaps   []uint32
	writes []uint64 // bitset, one bit per record
	// overflow holds the full gap for records whose gap does not fit a
	// uint32 (their gaps entry is gapOverflow). Generator gaps are bounded
	// far below 2^32, so this stays empty on every synthetic stream; it
	// exists so Packed is lossless for arbitrary traces.
	overflow map[int64]int64
}

// gapOverflow marks a gaps[] entry whose true value lives in overflow.
const gapOverflow = ^uint32(0)

// Len returns the number of records.
func (p *Packed) Len() int64 { return int64(len(p.rows)) }

// Bytes returns the approximate memory footprint of the packed columns.
func (p *Packed) Bytes() int64 {
	return int64(len(p.rows))*4 + int64(len(p.gaps))*4 + int64(len(p.writes))*8
}

// Append adds one record.
func (p *Packed) Append(r Record) {
	i := len(p.rows)
	p.rows = append(p.rows, uint32(r.Row))
	gap := uint32(r.GapInstr)
	if uint64(r.GapInstr) >= uint64(gapOverflow) {
		gap = gapOverflow
		if p.overflow == nil {
			p.overflow = make(map[int64]int64)
		}
		p.overflow[int64(i)] = r.GapInstr
	}
	p.gaps = append(p.gaps, gap)
	if i>>6 >= len(p.writes) {
		p.writes = append(p.writes, 0)
	}
	if r.Write {
		p.writes[i>>6] |= 1 << (uint(i) & 63)
	}
}

// At returns record i.
func (p *Packed) At(i int64) Record {
	gap := int64(p.gaps[i])
	if p.gaps[i] == gapOverflow {
		if full, ok := p.overflow[i]; ok {
			gap = full
		}
	}
	return Record{
		Row:      dram.Row(p.rows[i]),
		Write:    p.writes[i>>6]&(1<<(uint(i)&63)) != 0,
		GapInstr: gap,
	}
}

// PackStream drains a finite cpu.Stream into a Packed (at most limit
// records; limit 0 means unbounded).
func PackStream(s cpu.Stream, limit int64) *Packed {
	p := &Packed{}
	for limit == 0 || p.Len() < limit {
		req, ok := s.Next()
		if !ok {
			break
		}
		p.Append(Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
	}
	return p
}

// Stream returns a fresh replay cursor over the packed records. Cursors
// are independent: any number may replay the same Packed concurrently.
func (p *Packed) Stream() *PackedStream { return &PackedStream{p: p} }

// PackedStream replays a Packed as a cpu.Stream.
type PackedStream struct {
	p   *Packed
	pos int
}

var _ cpu.Stream = (*PackedStream)(nil)

// Next implements cpu.Stream. The hot path is three column loads and a
// bit test; the overflow map is consulted only for the sentinel value.
func (s *PackedStream) Next() (cpu.Request, bool) {
	i := s.pos
	p := s.p
	if i >= len(p.rows) {
		return cpu.Request{}, false
	}
	s.pos = i + 1
	gap := int64(p.gaps[i])
	if p.gaps[i] == gapOverflow {
		if full, ok := p.overflow[int64(i)]; ok {
			gap = full
		}
	}
	return cpu.Request{
		Row:      dram.Row(p.rows[i]),
		Write:    p.writes[i>>6]&(1<<(uint(i)&63)) != 0,
		GapInstr: gap,
	}, true
}

// Set is a multi-core capture: one Packed per core, the unit the grid's
// record-once/replay-many tier stores and the v2 file format serializes.
type Set struct {
	Cores []*Packed
}

// CaptureSet drains one finite stream per core into a Set.
func CaptureSet(streams []cpu.Stream, limit int64) *Set {
	set := &Set{Cores: make([]*Packed, len(streams))}
	for i, s := range streams {
		set.Cores[i] = PackStream(s, limit)
	}
	return set
}

// Records returns the total record count across cores.
func (s *Set) Records() int64 {
	var n int64
	for _, p := range s.Cores {
		n += p.Len()
	}
	return n
}

// Bytes returns the approximate packed memory footprint across cores.
func (s *Set) Bytes() int64 {
	var n int64
	for _, p := range s.Cores {
		n += p.Bytes()
	}
	return n
}

// Streams returns one fresh replay cursor per core.
func (s *Set) Streams() []cpu.Stream {
	out := make([]cpu.Stream, len(s.Cores))
	for i, p := range s.Cores {
		out[i] = p.Stream()
	}
	return out
}
