package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/workload"
)

// genRecords synthesizes n records of a real workload stream (gcc on
// core 0) so the encoding is exercised by the distribution it will
// actually carry.
func genRecords(t testing.TB, n int64, seed uint64) []Record {
	t.Helper()
	spec, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("gcc spec missing")
	}
	gen := workload.NewGenerator(spec, workload.Region{Geom: dram.Baseline()}, 0, seed, workload.Params{})
	s := gen.Stream(n, seed)
	recs := make([]Record, 0, n)
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		recs = append(recs, Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
	}
	return recs
}

// buildSet packs per-core record slices into a Set.
func buildSet(recs ...[]Record) *Set {
	set := &Set{}
	for _, rs := range recs {
		p := &Packed{}
		for _, r := range rs {
			p.Append(r)
		}
		set.Cores = append(set.Cores, p)
	}
	return set
}

func drain(t *testing.T, s cpu.Stream) []Record {
	t.Helper()
	var recs []Record
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		recs = append(recs, Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
	}
	return recs
}

func sameRecords(t *testing.T, got, want []Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestPackedReplayMatchesGenerator(t *testing.T) {
	want := genRecords(t, 50_000, 42)
	p := PackStream(NewSliceStream(want), 0)
	if p.Len() != int64(len(want)) {
		t.Fatalf("packed %d records, want %d", p.Len(), len(want))
	}
	sameRecords(t, drain(t, p.Stream()), want, "packed replay")
	// Cursors are independent: a second replay sees the same records.
	sameRecords(t, drain(t, p.Stream()), want, "second packed replay")
}

func TestPackedGapOverflow(t *testing.T) {
	recs := []Record{
		{Row: 5, GapInstr: 100},
		{Row: 9, Write: true, GapInstr: math.MaxInt64 >> 2},
		{Row: 2, GapInstr: 0},
	}
	p := &Packed{}
	for _, r := range recs {
		p.Append(r)
	}
	sameRecords(t, drain(t, p.Stream()), recs, "overflow replay")
}

func TestV2RoundTripMultiCore(t *testing.T) {
	core0 := genRecords(t, 30_000, 1)
	core1 := genRecords(t, 7, 2) // short core: exercises a final partial block
	core2 := []Record{}          // empty core: zero blocks
	set := buildSet(core0, core1, core2)

	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 4096); err != nil {
		t.Fatal(err)
	}
	t.Logf("v2: %d records in %d bytes (%.2f bytes/record)",
		set.Records(), buf.Len(), float64(buf.Len())/float64(set.Records()))

	got, err := ReadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cores) != 3 {
		t.Fatalf("decoded %d cores, want 3", len(got.Cores))
	}
	sameRecords(t, drain(t, got.Cores[0].Stream()), core0, "core0")
	sameRecords(t, drain(t, got.Cores[1].Stream()), core1, "core1")
	if got.Cores[2].Len() != 0 {
		t.Fatalf("core2 decoded %d records, want 0", got.Cores[2].Len())
	}
}

func TestV2CompressionRatio(t *testing.T) {
	set := buildSet(genRecords(t, 100_000, 7))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 0); err != nil {
		t.Fatal(err)
	}
	perRec := float64(buf.Len()) / float64(set.Records())
	if perRec > 6 {
		t.Fatalf("v2 encoding costs %.2f bytes/record, want <= 6", perRec)
	}
}

func TestV2MappedReplay(t *testing.T) {
	core0 := genRecords(t, 40_000, 3)
	core1 := genRecords(t, 12_345, 4)
	set := buildSet(core0, core1)

	path := filepath.Join(t.TempDir(), "multi.trace")
	if err := WriteSetFile(path, set, 1000); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if h := m.Header(); h.Cores != 2 || h.Records != int64(len(core0)+len(core1)) {
		t.Fatalf("header %+v", h)
	}
	s0, s1 := m.Stream(0), m.Stream(1)
	sameRecords(t, drain(t, s0), core0, "mapped core0")
	sameRecords(t, drain(t, s1), core1, "mapped core1")
	if s0.Err() != nil || s1.Err() != nil {
		t.Fatalf("stream errors: %v / %v", s0.Err(), s1.Err())
	}

	// Pack promotes the file to the in-memory tier losslessly.
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, drain(t, packed.Cores[0].Stream()), core0, "promoted core0")
}

func TestV2BlockWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(0, Record{Row: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("Close accepted 1 of 2 declared records")
	}
	if err := bw.Append(0, Record{Row: 2}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(0, Record{Row: 3}); err == nil {
		t.Fatal("Append accepted more than the declared records")
	}
}

func TestV2CorruptBlockChecksum(t *testing.T) {
	set := buildSet(genRecords(t, 10_000, 5))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 1000); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte inside the first data block.
	data[headerLen2+blockHdr2+10] ^= 0x40

	if _, err := ReadSet(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("sequential read of corrupt block: %v, want ErrChecksum", err)
	}

	// The mapped reader validates lazily: open succeeds (the frame index
	// is intact), replay surfaces the checksum error at block entry.
	path := filepath.Join(t.TempDir(), "corrupt.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.Stream(0)
	if _, ok := s.Next(); ok {
		t.Fatal("replay of corrupt block yielded a record")
	}
	if !errors.Is(s.Err(), ErrChecksum) {
		t.Fatalf("replay error %v, want ErrChecksum", s.Err())
	}
}

func TestV2TruncatedIndex(t *testing.T) {
	set := buildSet(genRecords(t, 10_000, 6))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 1000); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, cut := range []int{footerLen2, footerLen2 + frameLen2, len(data) - headerLen2 - 1} {
		trunc := data[:len(data)-cut]
		path := filepath.Join(t.TempDir(), "trunc.trace")
		if err := os.WriteFile(path, trunc, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(path); err == nil {
			t.Fatalf("OpenFile accepted a trace truncated by %d bytes", cut)
		}
	}
}

func TestV2ZeroRecordTrace(t *testing.T) {
	set := buildSet([]Record{}, []Record{})
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Records() != 0 || len(got.Cores) != 2 {
		t.Fatalf("decoded %d records / %d cores, want 0 / 2", got.Records(), len(got.Cores))
	}

	path := filepath.Join(t.TempDir(), "empty.trace")
	if err := WriteSetFile(path, set, 0); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, ok := m.Stream(0).Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
}

func TestV2RejectsV1AndGarbage(t *testing.T) {
	// A v1 trace must be rejected by the v2 readers (and vice versa).
	var v1 bytes.Buffer
	if _, err := Capture(&v1, NewSliceStream(genRecords(t, 100, 8)), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockReader(bytes.NewReader(v1.Bytes())); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("v2 reader on v1 bytes: %v, want ErrBadMagic", err)
	}

	var v2 bytes.Buffer
	if err := WriteSet(&v2, buildSet(genRecords(t, 100, 9)), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(v2.Bytes())); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("v1 reader on v2 bytes: %v, want ErrBadMagic", err)
	}

	if _, err := NewBlockReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("v2 reader accepted garbage")
	}
}

func TestV2BlockReaderSequential(t *testing.T) {
	core0 := genRecords(t, 5_000, 10)
	core1 := genRecords(t, 2_500, 11)
	set := buildSet(core0, core1)
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 512); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]Record{}
	blocks := 0
	for {
		core, recs, err := br.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got[core] = append(got[core], recs...)
		blocks++
	}
	if want := 10 + 5; blocks != want {
		t.Fatalf("decoded %d blocks, want %d", blocks, want)
	}
	sameRecords(t, got[0], core0, "sequential core0")
	sameRecords(t, got[1], core1, "sequential core1")
}

func TestCopyV1ToV2(t *testing.T) {
	recs := genRecords(t, 20_000, 12)
	var v1 bytes.Buffer
	if _, err := Capture(&v1, NewSliceStream(recs), 0); err != nil {
		t.Fatal(err)
	}
	src, err := NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := CopyV1ToV2(&v2, src, 1000); err != nil {
		t.Fatal(err)
	}
	set, err := ReadSet(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Cores) != 1 {
		t.Fatalf("converted %d cores, want 1", len(set.Cores))
	}
	sameRecords(t, drain(t, set.Cores[0].Stream()), recs, "converted")
}

// TestMappedFooterDeclaredCountMismatch pins the index-vs-header cross
// check: a header declaring more records than the index covers is a
// truncation symptom and must be rejected at open.
func TestMappedFooterDeclaredCountMismatch(t *testing.T) {
	set := buildSet(genRecords(t, 1_000, 13))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[16:], 2_000) // inflate declared count
	path := filepath.Join(t.TempDir(), "mismatch.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted an index/header record-count mismatch")
	}
}
