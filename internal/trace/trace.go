// Package trace defines a compact on-disk format for memory request
// streams, so experiments are reproducible artifacts: a workload or attack
// stream can be recorded once, shipped, inspected, and replayed bit-for-bit
// through any mitigation configuration (the role gem5 checkpoints play for
// the paper's artifact).
//
// Two encodings share one logical schema (Row, Write, GapInstr):
//
//   - binary: a fixed 16-byte header followed by varint-delta records —
//     rows are XOR-delta encoded against the previous row and gaps are
//     raw varints, which compresses typical streams to ~3-5 bytes/record;
//   - text: one "R|W <row> <gap>" line per record, for inspection and
//     hand-written fixtures.
//
// Readers implement cpu.Stream, so a trace plugs directly into the
// simulator in place of a generator.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// magic identifies the binary format ("AQTR") and its version.
const (
	magic   = 0x41515452
	version = 1
)

// Record is one memory request.
type Record struct {
	Row      dram.Row
	Write    bool
	GapInstr int64
}

// Header describes a binary trace.
type Header struct {
	// Records is the number of records that follow.
	Records int64
	// Flags is reserved (0).
	Flags uint32
}

var (
	// ErrBadMagic marks a stream that is not a binary trace.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion marks an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported version")
	// ErrTruncated marks a stream that ends mid-record.
	ErrTruncated = errors.New("trace: truncated")
)

// Writer encodes records in the binary format. Close must be called to
// flush buffered data; the record count is written up front, so the
// number of Append calls must match the declared count.
type Writer struct {
	w        *bufio.Writer
	declared int64
	written  int64
	prevRow  uint32
	buf      [binary.MaxVarintLen64 + 1]byte
}

// NewWriter starts a binary trace of exactly `records` records on w.
func NewWriter(w io.Writer, records int64) (*Writer, error) {
	if records < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", records)
	}
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(records))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, declared: records}, nil
}

// Append encodes one record.
func (w *Writer) Append(r Record) error {
	if w.written >= w.declared {
		return fmt.Errorf("trace: more than the declared %d records", w.declared)
	}
	// Byte 0: write flag; then XOR-delta row varint; then gap varint.
	flag := byte(0)
	if r.Write {
		flag = 1
	}
	if err := w.w.WriteByte(flag); err != nil {
		return err
	}
	delta := uint32(r.Row) ^ w.prevRow
	n := binary.PutUvarint(w.buf[:], uint64(delta))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	if r.GapInstr < 0 {
		return fmt.Errorf("trace: negative gap %d", r.GapInstr)
	}
	n = binary.PutUvarint(w.buf[:], uint64(r.GapInstr))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	w.prevRow = uint32(r.Row)
	w.written++
	return nil
}

// Close flushes the trace; it fails if fewer records were appended than
// declared.
func (w *Writer) Close() error {
	if w.written != w.declared {
		return fmt.Errorf("trace: wrote %d of %d declared records", w.written, w.declared)
	}
	return w.w.Flush()
}

// Reader decodes a binary trace and implements cpu.Stream.
type Reader struct {
	r       *bufio.Reader
	hdr     Header
	read    int64
	prevRow uint32
	err     error
}

var _ cpu.Stream = (*Reader)(nil)

// NewReader opens a binary trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &Reader{
		r:   br,
		hdr: Header{Records: int64(binary.LittleEndian.Uint64(hdr[8:]))},
	}, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.hdr }

// Err returns the first decoding error encountered by Next.
func (r *Reader) Err() error { return r.err }

// Read decodes the next record.
func (r *Reader) Read() (Record, error) {
	if r.read >= r.hdr.Records {
		return Record{}, io.EOF
	}
	flag, err := r.r.ReadByte()
	if err != nil {
		return Record{}, truncated(err)
	}
	if flag > 1 {
		return Record{}, fmt.Errorf("trace: bad flag byte %#x", flag)
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, truncated(err)
	}
	if delta > uint64(^uint32(0)) {
		return Record{}, fmt.Errorf("trace: row delta %d overflows", delta)
	}
	gap, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, truncated(err)
	}
	if gap > 1<<62 {
		return Record{}, fmt.Errorf("trace: gap %d overflows", gap)
	}
	r.prevRow ^= uint32(delta)
	r.read++
	return Record{
		Row:      dram.Row(r.prevRow),
		Write:    flag == 1,
		GapInstr: int64(gap),
	}, nil
}

// Next implements cpu.Stream; decode errors end the stream and are
// reported by Err.
func (r *Reader) Next() (cpu.Request, bool) {
	rec, err := r.Read()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return cpu.Request{}, false
	}
	return cpu.Request{Row: rec.Row, Write: rec.Write, GapInstr: rec.GapInstr}, true
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// Capture drains a cpu.Stream into a binary trace, returning the number
// of records written. The stream must be finite.
func Capture(w io.Writer, s cpu.Stream, limit int64) (int64, error) {
	// First pass into memory: streams are not rewindable and the header
	// needs the count.
	var recs []Record
	for int64(len(recs)) < limit || limit == 0 {
		req, ok := s.Next()
		if !ok {
			break
		}
		recs = append(recs, Record{Row: req.Row, Write: req.Write, GapInstr: req.GapInstr})
	}
	tw, err := NewWriter(w, int64(len(recs)))
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if err := tw.Append(rec); err != nil {
			return 0, err
		}
	}
	return int64(len(recs)), tw.Close()
}

// WriteText encodes records in the line-oriented text format.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", op, r.Row, r.GapInstr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text format: one "R|W <row> <gap>" record per
// line; blank lines and lines starting with '#' are skipped.
func ReadText(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W row gap', got %q", lineNo, line)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[0])
		}
		row, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: row: %v", lineNo, err)
		}
		gap, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[2])
		}
		recs = append(recs, Record{Row: dram.Row(row), Write: write, GapInstr: gap})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// SliceStream adapts a record slice to cpu.Stream (for text traces and
// tests).
type SliceStream struct {
	recs []Record
	pos  int
}

var _ cpu.Stream = (*SliceStream)(nil)

// NewSliceStream wraps recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements cpu.Stream.
func (s *SliceStream) Next() (cpu.Request, bool) {
	if s.pos >= len(s.recs) {
		return cpu.Request{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return cpu.Request{Row: r.Row, Write: r.Write, GapInstr: r.GapInstr}, true
}
