package trace

// aqua-trace-v2: a blocked, per-core, mmap-friendly framing of the v1
// record encoding, so multi-gigabyte captures stream with bounded memory
// and replay without a full upfront decode.
//
// Layout:
//
//	header (24 bytes)
//	  magic "AQT2" | version 2 | cores | blockTarget | totalRecords
//	block*  (self-delimiting: 16-byte header + payload)
//	  core | records | payloadLen | crc32(payload)
//	  payload = v1 record encoding (flag byte, XOR-delta row varint, gap
//	  varint) with the row delta reset at every block boundary, so each
//	  block decodes independently of its predecessors
//	index block (same 16-byte header, core = 0xFFFFFFFF sentinel)
//	  payload = one fixed 32-byte frame per data block:
//	    offset | core | records | startRecord | reserved
//	footer (16 bytes)
//	  indexOffset | magic | version
//
// A sequential reader needs no index: blocks are self-delimiting and the
// sentinel core marks the end of data. A random-access reader seeks to
// the fixed-size footer, maps the frame index, and can start replay at
// any block of any core without touching the bytes in between — the
// shape mmap-backed replay (file.go) leans on.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/dram"
)

const (
	magic2   = 0x41515432 // "AQT2"
	version2 = 2

	headerLen2 = 24
	blockHdr2  = 16
	frameLen2  = 32
	footerLen2 = 16

	// indexCore is the sentinel core id of the index block.
	indexCore = ^uint32(0)

	// DefaultBlockTarget is the records-per-block target: ~64KB payload at
	// the typical 3-5 bytes/record, small enough that a corrupt block
	// loses little, large enough that per-block overhead (48 bytes of
	// header+frame) is noise.
	DefaultBlockTarget = 16384

	// maxCores2 bounds the declared core count (a parsing guard, far above
	// any simulated configuration).
	maxCores2 = 4096
	// maxBlockPayload bounds one block's declared payload length.
	maxBlockPayload = 1 << 26
)

// ErrChecksum marks a block whose payload does not match its CRC.
var ErrChecksum = errors.New("trace: block checksum mismatch")

// Container format names returned by DetectFormat.
const (
	FormatV1   = "aqua-trace-v1"
	FormatV2   = "aqua-trace-v2"
	FormatText = "text"
)

// DetectFormat reports which trace container the leading bytes of a file
// belong to. Anything without a known magic — including fewer than four
// bytes — reads as text, the only format with no magic to check.
func DetectFormat(prefix []byte) string {
	if len(prefix) >= 4 {
		switch binary.LittleEndian.Uint32(prefix) {
		case magic:
			return FormatV1
		case magic2:
			return FormatV2
		}
	}
	return FormatText
}

// frame is one decoded entry of the v2 frame index.
type frame struct {
	offset      int64
	core        uint32
	records     uint32
	startRecord int64
}

// appendRecord encodes one record against prevRow, returning the extended
// buffer and the new prevRow.
func appendRecord(buf []byte, r Record, prevRow uint32) ([]byte, uint32, error) {
	flag := byte(0)
	if r.Write {
		flag = 1
	}
	if r.GapInstr < 0 {
		return buf, prevRow, fmt.Errorf("trace: negative gap %d", r.GapInstr)
	}
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, flag)
	n := binary.PutUvarint(tmp[:], uint64(uint32(r.Row)^prevRow))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(r.GapInstr))
	buf = append(buf, tmp[:n]...)
	return buf, uint32(r.Row), nil
}

// decodeRecord decodes one record from buf at pos against prevRow. It
// returns the record, the new position, and the new prevRow.
func decodeRecord(buf []byte, pos int, prevRow uint32) (Record, int, uint32, error) {
	if pos >= len(buf) {
		return Record{}, pos, prevRow, ErrTruncated
	}
	flag := buf[pos]
	if flag > 1 {
		return Record{}, pos, prevRow, fmt.Errorf("trace: bad flag byte %#x", flag)
	}
	pos++
	delta, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, pos, prevRow, ErrTruncated
	}
	if delta > uint64(^uint32(0)) {
		return Record{}, pos, prevRow, fmt.Errorf("trace: row delta %d overflows", delta)
	}
	pos += n
	gap, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, pos, prevRow, ErrTruncated
	}
	if gap > 1<<62 {
		return Record{}, pos, prevRow, fmt.Errorf("trace: gap %d overflows", gap)
	}
	pos += n
	row := prevRow ^ uint32(delta)
	return Record{Row: dram.Row(row), Write: flag == 1, GapInstr: int64(gap)}, pos, row, nil
}

// BlockWriter encodes a v2 trace incrementally with bounded memory: one
// pending block per core, flushed whenever it reaches the block target.
// The total record count is declared up front (v1's count-enforcement
// contract), so truncated writes cannot masquerade as short traces.
type BlockWriter struct {
	w           *bufio.Writer
	cores       int
	blockTarget int
	declared    int64
	written     int64
	offset      int64 // bytes emitted so far

	pending  []pendingBlock
	frames   []frame
	frameBuf []byte
	closed   bool
}

type pendingBlock struct {
	buf         []byte
	records     uint32
	prevRow     uint32
	startRecord int64
	nextStart   int64 // records of this core already flushed or pending
}

// NewBlockWriter starts a v2 trace of exactly totalRecords records across
// the given number of per-core streams. blockTarget <= 0 selects
// DefaultBlockTarget.
func NewBlockWriter(w io.Writer, cores int, blockTarget int, totalRecords int64) (*BlockWriter, error) {
	if cores < 1 || cores > maxCores2 {
		return nil, fmt.Errorf("trace: core count %d out of range", cores)
	}
	if totalRecords < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", totalRecords)
	}
	if blockTarget <= 0 {
		blockTarget = DefaultBlockTarget
	}
	bw := &BlockWriter{
		w:           bufio.NewWriter(w),
		cores:       cores,
		blockTarget: blockTarget,
		declared:    totalRecords,
		pending:     make([]pendingBlock, cores),
	}
	var hdr [headerLen2]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic2)
	binary.LittleEndian.PutUint32(hdr[4:], version2)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(cores))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(blockTarget))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(totalRecords))
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	bw.offset = headerLen2
	return bw, nil
}

// Append encodes one record on the given core's stream.
func (bw *BlockWriter) Append(core int, r Record) error {
	if core < 0 || core >= bw.cores {
		return fmt.Errorf("trace: core %d out of range [0,%d)", core, bw.cores)
	}
	if bw.written >= bw.declared {
		return fmt.Errorf("trace: more than the declared %d records", bw.declared)
	}
	p := &bw.pending[core]
	if p.records == 0 {
		p.prevRow = 0 // per-block delta reset
		p.startRecord = p.nextStart
	}
	var err error
	p.buf, p.prevRow, err = appendRecord(p.buf, r, p.prevRow)
	if err != nil {
		return err
	}
	p.records++
	p.nextStart++
	bw.written++
	if int(p.records) >= bw.blockTarget {
		return bw.flush(core)
	}
	return nil
}

// flush emits core's pending block.
func (bw *BlockWriter) flush(core int) error {
	p := &bw.pending[core]
	if p.records == 0 {
		return nil
	}
	if err := bw.writeBlock(uint32(core), p.records, p.buf); err != nil {
		return err
	}
	bw.frames = append(bw.frames, frame{
		offset:      bw.offset - int64(blockHdr2+len(p.buf)),
		core:        uint32(core),
		records:     p.records,
		startRecord: p.startRecord,
	})
	p.buf = p.buf[:0]
	p.records = 0
	return nil
}

func (bw *BlockWriter) writeBlock(core, records uint32, payload []byte) error {
	var hdr [blockHdr2]byte
	binary.LittleEndian.PutUint32(hdr[0:], core)
	binary.LittleEndian.PutUint32(hdr[4:], records)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.w.Write(payload); err != nil {
		return err
	}
	bw.offset += int64(blockHdr2 + len(payload))
	return nil
}

// Close flushes every pending block, writes the frame index and footer,
// and fails if fewer records were appended than declared.
func (bw *BlockWriter) Close() error {
	if bw.closed {
		return nil
	}
	if bw.written != bw.declared {
		return fmt.Errorf("trace: wrote %d of %d declared records", bw.written, bw.declared)
	}
	for core := range bw.pending {
		if err := bw.flush(core); err != nil {
			return err
		}
	}
	bw.closed = true
	indexOffset := bw.offset
	bw.frameBuf = bw.frameBuf[:0]
	for _, f := range bw.frames {
		var fr [frameLen2]byte
		binary.LittleEndian.PutUint64(fr[0:], uint64(f.offset))
		binary.LittleEndian.PutUint32(fr[8:], f.core)
		binary.LittleEndian.PutUint32(fr[12:], f.records)
		binary.LittleEndian.PutUint64(fr[16:], uint64(f.startRecord))
		bw.frameBuf = append(bw.frameBuf, fr[:]...)
	}
	if err := bw.writeBlock(indexCore, uint32(len(bw.frames)), bw.frameBuf); err != nil {
		return err
	}
	var foot [footerLen2]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(indexOffset))
	binary.LittleEndian.PutUint32(foot[8:], magic2)
	binary.LittleEndian.PutUint32(foot[12:], version2)
	if _, err := bw.w.Write(foot[:]); err != nil {
		return err
	}
	return bw.w.Flush()
}

// WriteSet serializes a Set in the v2 format. blockTarget <= 0 selects
// DefaultBlockTarget.
func WriteSet(w io.Writer, set *Set, blockTarget int) error {
	bw, err := NewBlockWriter(w, len(set.Cores), blockTarget, set.Records())
	if err != nil {
		return err
	}
	for core, p := range set.Cores {
		for i := int64(0); i < p.Len(); i++ {
			if err := bw.Append(core, p.At(i)); err != nil {
				return err
			}
		}
	}
	return bw.Close()
}

// HeaderV2 describes a v2 trace.
type HeaderV2 struct {
	Cores       int
	BlockTarget int
	Records     int64
}

// BlockReader decodes a v2 trace sequentially — block at a time, bounded
// memory — without needing the frame index (blocks are self-delimiting).
type BlockReader struct {
	r       *bufio.Reader
	hdr     HeaderV2
	payload []byte
	recs    []Record
	done    bool
}

// NewBlockReader opens a v2 trace for sequential block iteration.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := bufio.NewReader(r)
	var hdr [headerLen2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading v2 header: %w", truncated(err))
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic2 {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version2 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	cores := binary.LittleEndian.Uint32(hdr[8:])
	if cores < 1 || cores > maxCores2 {
		return nil, fmt.Errorf("trace: core count %d out of range", cores)
	}
	return &BlockReader{
		r: br,
		hdr: HeaderV2{
			Cores:       int(cores),
			BlockTarget: int(binary.LittleEndian.Uint32(hdr[12:])),
			Records:     int64(binary.LittleEndian.Uint64(hdr[16:])),
		},
	}, nil
}

// Header returns the trace header.
func (br *BlockReader) Header() HeaderV2 { return br.hdr }

// NextBlock decodes the next data block, verifying its checksum. The
// returned records share a buffer reused across calls. io.EOF marks the
// clean end of data (the index block was reached).
func (br *BlockReader) NextBlock() (core int, recs []Record, err error) {
	if br.done {
		return 0, nil, io.EOF
	}
	var hdr [blockHdr2]byte
	if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
		return 0, nil, truncated(err)
	}
	c := binary.LittleEndian.Uint32(hdr[0:])
	records := binary.LittleEndian.Uint32(hdr[4:])
	payloadLen := binary.LittleEndian.Uint32(hdr[8:])
	sum := binary.LittleEndian.Uint32(hdr[12:])
	if payloadLen > maxBlockPayload {
		return 0, nil, fmt.Errorf("trace: block payload %d exceeds limit", payloadLen)
	}
	if cap(br.payload) < int(payloadLen) {
		br.payload = make([]byte, payloadLen)
	}
	br.payload = br.payload[:payloadLen]
	if _, err := io.ReadFull(br.r, br.payload); err != nil {
		return 0, nil, truncated(err)
	}
	if crc32.ChecksumIEEE(br.payload) != sum {
		return 0, nil, ErrChecksum
	}
	if c == indexCore {
		// The index block: end of data for sequential consumers.
		br.done = true
		return 0, nil, io.EOF
	}
	if int(c) >= br.hdr.Cores {
		return 0, nil, fmt.Errorf("trace: block core %d out of range [0,%d)", c, br.hdr.Cores)
	}
	br.recs = br.recs[:0]
	pos, prevRow := 0, uint32(0)
	for i := uint32(0); i < records; i++ {
		var rec Record
		rec, pos, prevRow, err = decodeRecord(br.payload, pos, prevRow)
		if err != nil {
			return 0, nil, err
		}
		br.recs = append(br.recs, rec)
	}
	if pos != len(br.payload) {
		return 0, nil, fmt.Errorf("trace: block has %d trailing bytes", len(br.payload)-pos)
	}
	return int(c), br.recs, nil
}

// ReadSet decodes a whole v2 trace into a Set, verifying every block
// checksum and the declared record count.
func ReadSet(r io.Reader) (*Set, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	set := &Set{Cores: make([]*Packed, br.hdr.Cores)}
	for i := range set.Cores {
		set.Cores[i] = &Packed{}
	}
	for {
		core, recs, err := br.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			set.Cores[core].Append(rec)
		}
	}
	if got := set.Records(); got != br.hdr.Records {
		return nil, fmt.Errorf("trace: decoded %d of %d declared records", got, br.hdr.Records)
	}
	return set, nil
}

// parseFrames decodes and validates a frame-index payload against the
// file size. Frames must point at in-bounds block headers.
func parseFrames(payload []byte, count uint32, fileSize int64) ([]frame, error) {
	if int64(len(payload)) != int64(count)*frameLen2 {
		return nil, fmt.Errorf("trace: frame index holds %d bytes for %d frames", len(payload), count)
	}
	frames := make([]frame, count)
	for i := range frames {
		off := i * frameLen2
		frames[i] = frame{
			offset:      int64(binary.LittleEndian.Uint64(payload[off:])),
			core:        binary.LittleEndian.Uint32(payload[off+8:]),
			records:     binary.LittleEndian.Uint32(payload[off+12:]),
			startRecord: int64(binary.LittleEndian.Uint64(payload[off+16:])),
		}
		if frames[i].offset < headerLen2 || frames[i].offset+blockHdr2 > fileSize {
			return nil, fmt.Errorf("trace: frame %d offset %d out of bounds", i, frames[i].offset)
		}
	}
	return frames, nil
}
