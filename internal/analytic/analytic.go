// Package analytic implements the paper's closed-form models: the Row
// Quarantine Area sizing of Section IV-E (Equations 1-3, Table III), the
// worst-case denial-of-service bound of Section VI-C, the Appendix-A
// relative-migration model r(f) behind Figure 12, the CROW provisioning
// analysis of Table V, and the SRAM/DRAM storage and power accounting of
// Sections V-G/V-H and Appendix B.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/dram"
)

// RQAParams are the inputs to the quarantine-area sizing model.
type RQAParams struct {
	// EffectiveThreshold A: activations that trigger a row migration
	// (T_RH/2 for AQUA's Misra-Gries tracker).
	EffectiveThreshold int64
	// Banks B per rank that can be attacked concurrently.
	Banks int
	// Timing supplies tRC, tREFW and the migration time.
	Timing dram.Timing
	// LinesPerRow sizes one row transfer.
	LinesPerRow int
}

// BaselineRQAParams returns the paper's defaults for a given effective
// threshold: 16 banks, DDR4 timing, 8KB rows.
func BaselineRQAParams(effectiveThreshold int64) RQAParams {
	return RQAParams{
		EffectiveThreshold: effectiveThreshold,
		Banks:              16,
		Timing:             dram.DDR4(),
		LinesPerRow:        128,
	}
}

// TAgg returns t_AGG (Equation 1): the minimum time for an attacker to
// accumulate A activations to one row.
func (p RQAParams) TAgg() dram.PS {
	return p.EffectiveThreshold * p.Timing.TRC
}

// TMov returns t_mov: the channel-busy time of one quarantine migration
// (one row read plus one row write, ~1.37us for the baseline).
func (p RQAParams) TMov() dram.PS {
	return p.Timing.MigrationTime(p.LinesPerRow)
}

// RMax returns the maximum number of row migrations into the RQA within
// one refresh window (Equation 3):
//
//	R_max = t_REFW * B / (t_AGG + B * t_mov)
//
// The RQA must hold at least this many rows so no slot is reused within
// t_REFW. For A=500, B=16 and the baseline timing this is 23,053 rows
// (Table III).
func (p RQAParams) RMax() int {
	if p.EffectiveThreshold < 1 {
		panic("analytic: effective threshold must be >= 1")
	}
	if p.Banks < 1 {
		panic("analytic: need at least one bank")
	}
	num := float64(p.Timing.TREFW) * float64(p.Banks)
	den := float64(p.TAgg()) + float64(p.Banks)*float64(p.TMov())
	return int(math.Round(num / den))
}

// QuarantineBytes returns the DRAM consumed by an RQA of RMax rows.
func (p RQAParams) QuarantineBytes(rowBytes int) int64 {
	return int64(p.RMax()) * int64(rowBytes)
}

// DRAMOverhead returns the RQA size as a fraction of total memory.
func (p RQAParams) DRAMOverhead(geom dram.Geometry) float64 {
	return float64(p.QuarantineBytes(geom.RowBytes)) / float64(geom.CapacityBytes())
}

// Table3Row is one row of the paper's Table III.
type Table3Row struct {
	EffectiveThreshold int64
	RMax               int
	QuarantineMB       float64
	DRAMOverhead       float64
}

// Table3 regenerates Table III for the baseline geometry.
func Table3() []Table3Row {
	geom := dram.Baseline()
	thresholds := []int64{1000, 500, 250, 125, 50, 1}
	rows := make([]Table3Row, 0, len(thresholds))
	for _, a := range thresholds {
		p := BaselineRQAParams(a)
		rmax := p.RMax()
		rows = append(rows, Table3Row{
			EffectiveThreshold: a,
			RMax:               rmax,
			QuarantineMB:       float64(rmax) * float64(geom.RowBytes) / (1 << 20),
			DRAMOverhead:       float64(rmax) / float64(geom.Rows()),
		})
	}
	return rows
}

// WorstCaseSlowdown returns the Section VI-C denial-of-service bound: an
// attacker triggering a quarantine-with-eviction on every bank every t_AGG
// keeps the channel busy an extra B*2*t_mov per t_AGG, so the worst-case
// slowdown is 1 + B*2*t_mov/t_AGG (~2.95x for the baseline at T_RH=1K).
func WorstCaseSlowdown(p RQAParams) float64 {
	busy := float64(p.Banks) * 2 * float64(p.TMov())
	return 1 + busy/float64(p.TAgg())
}

// RelativeMigrations returns r(f), the Appendix-A analytical model: the
// ratio of row migrations performed by RRS to those performed by AQUA when
// a fraction f of the rows that reach T_RH/6 activations also reach T_RH/2
// activations.
//
// AQUA migrates each of the f rows once (one row move per mitigation). RRS
// swaps every row reaching T_RH/6: the f hot rows swap 3 times each, the
// remaining (1-f) rows once, and every swap moves two rows:
//
//	r(f) = 2*(3f + (1-f)) / f = (2 + 4f) / f
//
// r(1) = 6: RRS performs at least 6x more row migrations than AQUA.
func RelativeMigrations(f float64) float64 {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("analytic: f must be in (0,1], got %g", f))
	}
	return (2 + 4*f) / f
}

// CROWRow is one row of Table V: the Rowhammer threshold CROW can tolerate
// as copy-rows per 512-row subarray increase.
type CROWRow struct {
	CopyRows     int
	DRAMOverhead float64
	Aggressors   int
	TRHTolerated int64
}

// CROWTolerance computes Table V: with C copy rows per subarray, CROW can
// absorb C/2 aggressor rows (each mitigation consumes two copy rows for
// the victim pair), so the tolerated threshold is ACTmax/(C/2).
func CROWTolerance(copyRows, subarrayRows int, timing dram.Timing) CROWRow {
	if copyRows < 2 || subarrayRows < 1 {
		panic("analytic: invalid CROW configuration")
	}
	aggressors := copyRows / 2
	return CROWRow{
		CopyRows:     copyRows,
		DRAMOverhead: float64(copyRows) / float64(subarrayRows),
		Aggressors:   aggressors,
		TRHTolerated: timing.ACTMax() / int64(aggressors),
	}
}

// Table5 regenerates Table V.
func Table5() []CROWRow {
	timing := dram.DDR4()
	var rows []CROWRow
	for _, c := range []int{8, 32, 128, 512} {
		rows = append(rows, CROWTolerance(c, 512, timing))
	}
	return rows
}

// Storage computes the SRAM and DRAM footprints of AQUA's structures from
// first principles (Sections IV-C and V-G).
type Storage struct {
	// SRAM variant (Section IV-C).
	FPTSRAMBytes int // collision-avoidance table in SRAM
	RPTSRAMBytes int // direct-mapped reverse pointers in SRAM

	// Memory-mapped variant (Section V).
	BloomBytes      int // resettable bloom filter
	FPTCacheBytes   int // FPT-Cache
	CopyBufferBytes int // one row
	PinnedFPTBytes  int // FPT entries for the rows holding FPT+RPT
	FPTDRAMBytes    int64
	RPTDRAMBytes    int64

	QuarantineRows  int
	QuarantineBytes int64
}

// ComputeStorage derives all footprints for a geometry and RQA size.
func ComputeStorage(geom dram.Geometry, rqaRows int) Storage {
	rowBits := bitsFor(geom.Rows())
	rqaBits := bitsFor(rqaRows)

	// FPT as a CAT: ~1.4x overprovisioned entries, each valid + row tag +
	// forward pointer. The paper provisions 32K entries for 23K valid and
	// charges 27 bits per entry (tag folded with the set index).
	fptEntries := nextPow2(int(float64(rqaRows) * 1.4))
	fptEntryBits := 1 + (rowBits - bitsFor(fptEntries/16)) + rqaBits
	if fptEntryBits < 1 {
		fptEntryBits = 1 + rowBits + rqaBits
	}

	// RPT: one entry per RQA row: valid + reverse pointer.
	rptEntryBits := 1 + rowBits

	// Memory-mapped tables: one 2-byte FPT entry per memory row; RPT as-is.
	fptDRAM := int64(geom.Rows()) * 2
	rptDRAM := int64(rqaRows) * 4
	// Rows holding the tables need their FPT entries pinned in SRAM.
	tableRows := int((fptDRAM + rptDRAM + int64(geom.RowBytes) - 1) / int64(geom.RowBytes))
	pinned := tableRows * 2

	return Storage{
		FPTSRAMBytes:    (fptEntries*fptEntryBits + 7) / 8,
		RPTSRAMBytes:    (rqaRows*rptEntryBits + 7) / 8,
		BloomBytes:      geom.Rows() / 16 / 8, // one bit per 16-row group
		FPTCacheBytes:   4096 * 4,             // 4K entries x ~32 bits
		CopyBufferBytes: geom.RowBytes,
		PinnedFPTBytes:  pinned,
		FPTDRAMBytes:    fptDRAM,
		RPTDRAMBytes:    rptDRAM,
		QuarantineRows:  rqaRows,
		QuarantineBytes: int64(rqaRows) * int64(geom.RowBytes),
	}
}

// SRAMTotalSRAMVariant returns the mapping-table SRAM of the all-SRAM
// design (paper: 172KB at T_RH=1K).
func (s Storage) SRAMTotalSRAMVariant() int { return s.FPTSRAMBytes + s.RPTSRAMBytes }

// SRAMTotalMemMapped returns the mapping+migration SRAM of the
// memory-mapped design (paper: ~41KB at T_RH=1K).
func (s Storage) SRAMTotalMemMapped() int {
	return s.BloomBytes + s.FPTCacheBytes + s.CopyBufferBytes + s.PinnedFPTBytes
}

// DRAMTotal returns the total DRAM overhead of the memory-mapped design in
// bytes (quarantine area + in-DRAM tables; paper: 185MB = 1.13%).
func (s Storage) DRAMTotal() int64 {
	return s.QuarantineBytes + s.FPTDRAMBytes + s.RPTDRAMBytes
}

// Power holds the paper's reported power overheads (Section V-H). These are
// CACTI-derived constants reported, not simulated, in the paper.
type Power struct {
	DRAMMilliwatts       float64 // extra DRAM power from migrations + tables
	BloomMilliwatts      float64
	FPTCacheMilliwatts   float64
	CopyBufferMilliwatts float64
}

// PaperPower returns the Section V-H numbers.
func PaperPower() Power {
	return Power{
		DRAMMilliwatts:       8.5,
		BloomMilliwatts:      5.4,
		FPTCacheMilliwatts:   5.4,
		CopyBufferMilliwatts: 2.8,
	}
}

// SRAMTotalMilliwatts sums the SRAM components (13.6mW in the paper).
func (p Power) SRAMTotalMilliwatts() float64 {
	return p.BloomMilliwatts + p.FPTCacheMilliwatts + p.CopyBufferMilliwatts
}

// TrackerOverheads returns Appendix B's Table VII: total SRAM per rank for
// RRS and AQUA with Misra-Gries and Hydra trackers. Values for the
// trackers and RRS's RIT are the paper's reported constants; AQUA's own
// structures are computed by ComputeStorage.
type Table7Row struct {
	Structure string
	RRSMG     int // bytes
	AquaMG    int
	RRSHydra  int
	AquaHydra int
}

// Table7 regenerates Appendix B's Table VII using the paper's reported
// tracker constants (KB = 1024 bytes).
func Table7() []Table7Row {
	kb := func(v float64) int { return int(v * 1024) }
	rows := []Table7Row{
		{"Tracker", kb(396), kb(396), kb(28.3), kb(30.3)},
		{"Mapping Table(s)", kb(2400), kb(32.6), kb(2400), kb(32.6)},
		{"Buffer(s)", kb(16), kb(8), kb(16), kb(8)},
	}
	total := Table7Row{Structure: "Total"}
	for _, r := range rows {
		total.RRSMG += r.RRSMG
		total.AquaMG += r.AquaMG
		total.RRSHydra += r.RRSHydra
		total.AquaHydra += r.AquaHydra
	}
	return append(rows, total)
}

// RRSRITBytes estimates the RIT SRAM for RRS at a given swap threshold:
// entries for every row that can be swapped in an epoch (two per swap),
// 1.4x overprovisioned as a CAT, ~43 bits per entry. At T_RRS=166 this is
// in the MB range the paper reports (2.4MB per rank).
func RRSRITBytes(timing dram.Timing, banks int, swapThreshold int64) int64 {
	if swapThreshold < 1 {
		panic("analytic: swap threshold must be >= 1")
	}
	maxSwaps := timing.ACTMax() * int64(banks) / swapThreshold
	entries := float64(2*maxSwaps) * 1.4
	entryBits := 43.0
	return int64(math.Ceil(entries * entryBits / 8))
}

// BirthdayParams model the birthday-paradox attack on RRS (Sections I and
// II-F): the attacker hammers one install row continuously; every T_RRS
// activations RRS relocates it to a uniformly random physical row, and the
// attack succeeds in an epoch in which some physical row is chosen often
// enough that its accumulated activations reach T_RH.
type BirthdayParams struct {
	// TRH is the Rowhammer threshold.
	TRH int64
	// Rows is the number of candidate destination rows (the rank).
	Rows int
	// Banks attacked in parallel (each contributes an independent stream
	// of destination draws).
	Banks int
	// Timing supplies ACTmax and the epoch length.
	Timing dram.Timing
	// Machines is the number of machines attacked in parallel (the paper:
	// "if the attacker targets N machines, the time for a successful
	// attack decreases by N").
	Machines int
}

// SwapsPerEpoch returns the destination draws available per epoch per
// bank: ACTmax / T_RRS.
func (p BirthdayParams) SwapsPerEpoch() float64 {
	tswap := float64(p.TRH) / 6
	if tswap < 1 {
		tswap = 1
	}
	return float64(p.Timing.ACTMax()) / tswap
}

// CollocationsNeeded returns how many times one physical row must be drawn
// so its accumulated T_RRS-activation visits reach T_RH.
func (p BirthdayParams) CollocationsNeeded() int {
	tswap := p.TRH / 6
	if tswap < 1 {
		tswap = 1
	}
	m := int((p.TRH + tswap - 1) / tswap)
	if m < 2 {
		m = 2
	}
	return m
}

// SuccessProbabilityPerEpoch returns a Poisson-tail estimate of the
// probability that some row is drawn at least CollocationsNeeded times in
// one epoch: N * P(Poisson(lambda) >= m), lambda = draws/N.
func (p BirthdayParams) SuccessProbabilityPerEpoch() float64 {
	if p.Rows < 1 || p.Banks < 1 {
		panic("analytic: birthday model needs rows and banks")
	}
	draws := p.SwapsPerEpoch() * float64(p.Banks)
	lambda := draws / float64(p.Rows)
	m := p.CollocationsNeeded()
	// Tail P(X >= m) for Poisson(lambda), dominated by its first term for
	// the small lambdas of interest.
	logTerm := float64(m)*math.Log(lambda) - lambda
	for k := 2; k <= m; k++ {
		logTerm -= math.Log(float64(k))
	}
	tail := math.Exp(logTerm)
	prob := float64(p.Rows) * tail
	if prob > 1 {
		prob = 1
	}
	return prob
}

// MeanYearsToSuccess estimates the expected attack time across the
// configured machines. This is an order-of-magnitude bound — the RRS
// paper's finer-grained analysis (which also credits partial overlaps)
// arrives at ~4 years for T_RH=1K on one machine; the qualitative point
// the AQUA paper makes is that the guarantee is probabilistic and shrinks
// linearly with the number of targets, unlike AQUA's deterministic
// isolation.
func (p BirthdayParams) MeanYearsToSuccess() float64 {
	if p.Machines < 1 {
		p.Machines = 1
	}
	prob := p.SuccessProbabilityPerEpoch() * float64(p.Machines)
	if prob <= 0 {
		return math.Inf(1)
	}
	epochsPerYear := 365.25 * 24 * 3600 / (float64(p.Timing.TREFW) / 1e12)
	return 1 / (prob * epochsPerYear)
}

// bitsFor returns the number of bits needed to index n distinct values.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// nextPow2 rounds up to a power of two.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
