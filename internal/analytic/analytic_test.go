package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func TestTable3MatchesPaperExactly(t *testing.T) {
	// Table III of the paper, row for row.
	want := []struct {
		a    int64
		rmax int
		mb   float64
		ovh  float64
	}{
		{1000, 15302, 120, 0.007},
		{500, 23053, 180, 0.011},
		{250, 30872, 241, 0.015},
		{125, 37176, 290, 0.018},
		{50, 42367, 331, 0.020},
		{1, 46620, 364, 0.022},
	}
	got := Table3()
	if len(got) != len(want) {
		t.Fatalf("%d rows", len(got))
	}
	for i, w := range want {
		g := got[i]
		// The paper's own rounding is inconsistent across rows (e.g.
		// 30871.27 printed as 30872 but 15302.45 as 15302), so allow a
		// one-row slack around the printed values.
		if g.EffectiveThreshold != w.a || g.RMax < w.rmax-1 || g.RMax > w.rmax+1 {
			t.Errorf("row %d: Rmax = %d, want %d +/- 1", i, g.RMax, w.rmax)
		}
		if math.Abs(g.QuarantineMB-w.mb) > 1 {
			t.Errorf("row %d: %g MB, want ~%g", i, g.QuarantineMB, w.mb)
		}
		if math.Abs(g.DRAMOverhead-w.ovh) > 0.0015 {
			t.Errorf("row %d: overhead %g, want ~%g", i, g.DRAMOverhead, w.ovh)
		}
	}
}

func TestRMaxEquationComponents(t *testing.T) {
	p := BaselineRQAParams(500)
	if p.TAgg() != 22500*dram.Nanosecond {
		t.Fatalf("tAGG = %d", p.TAgg())
	}
	if p.TMov() != 1370*dram.Nanosecond {
		t.Fatalf("tMov = %d", p.TMov())
	}
	if p.RMax() != 23053 {
		t.Fatalf("Rmax = %d", p.RMax())
	}
	if got := p.QuarantineBytes(8192); got != 23053*8192 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestRMaxMonotoneInThreshold(t *testing.T) {
	// Lower thresholds mean faster triggering, hence a larger RQA.
	check := func(raw uint16) bool {
		a := int64(raw)%2000 + 1
		lo := BaselineRQAParams(a).RMax()
		hi := BaselineRQAParams(a + 100).RMax()
		return lo >= hi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseSlowdownMatchesPaper(t *testing.T) {
	// Section VI-C: ~2.95x at T_RH=1K.
	got := WorstCaseSlowdown(BaselineRQAParams(500))
	if math.Abs(got-2.95) > 0.02 {
		t.Fatalf("worst case = %g, want ~2.95", got)
	}
}

func TestRelativeMigrationsModel(t *testing.T) {
	// Appendix A: r(1) = 6 (the guaranteed minimum advantage); r(0.4) = 9
	// (the measured average across the 34 workloads).
	if r := RelativeMigrations(1); r != 6 {
		t.Fatalf("r(1) = %g", r)
	}
	if r := RelativeMigrations(0.4); math.Abs(r-9) > 1e-9 {
		t.Fatalf("r(0.4) = %g, want 9", r)
	}
	// Monotone decreasing in f.
	prev := math.Inf(1)
	for f := 0.05; f <= 1.0; f += 0.05 {
		r := RelativeMigrations(f)
		if r >= prev {
			t.Fatalf("r not decreasing at f=%g", f)
		}
		if r < 6 {
			t.Fatalf("r(%g) = %g < 6 (violates Appendix A bound)", f, r)
		}
		prev = r
	}
}

func TestRelativeMigrationsPanics(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("f=%g accepted", f)
				}
			}()
			RelativeMigrations(f)
		}()
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	want := []struct {
		copyRows int
		agg      int
		trhLo    int64
		trhHi    int64
	}{
		{8, 4, 330_000, 345_000},
		{32, 16, 82_000, 86_000},
		{128, 64, 20_000, 22_000},
		{512, 256, 5_200, 5_400},
	}
	got := Table5()
	for i, w := range want {
		g := got[i]
		if g.CopyRows != w.copyRows || g.Aggressors != w.agg {
			t.Errorf("row %d: %+v", i, g)
		}
		if g.TRHTolerated < w.trhLo || g.TRHTolerated > w.trhHi {
			t.Errorf("row %d: TRH %d outside [%d,%d]", i, g.TRHTolerated, w.trhLo, w.trhHi)
		}
	}
	if got[0].DRAMOverhead < 0.015 || got[0].DRAMOverhead > 0.017 {
		t.Errorf("8 copy rows overhead = %g, want ~1.6%%", got[0].DRAMOverhead)
	}
}

func TestStorageAccounting(t *testing.T) {
	geom := dram.Baseline()
	s := ComputeStorage(geom, 23053)

	// SRAM-variant tables (paper: 172KB; ours from first principles lands
	// in the same range).
	total := s.SRAMTotalSRAMVariant()
	if total < 120*1024 || total > 260*1024 {
		t.Errorf("SRAM-variant total = %d KB", total/1024)
	}
	// Memory-mapped SRAM (paper: ~41KB).
	mm := s.SRAMTotalMemMapped()
	if mm < 36*1024 || mm > 48*1024 {
		t.Errorf("memory-mapped SRAM = %d KB, want ~41KB", mm/1024)
	}
	if s.BloomBytes != 16*1024 {
		t.Errorf("bloom = %d", s.BloomBytes)
	}
	if s.CopyBufferBytes != 8192 {
		t.Errorf("copy buffer = %d", s.CopyBufferBytes)
	}
	// DRAM total (paper: 185MB = 1.13% of 16GB).
	dramMB := float64(s.DRAMTotal()) / (1 << 20)
	if dramMB < 180 || dramMB > 190 {
		t.Errorf("DRAM total = %.1f MB, want ~185", dramMB)
	}
	frac := float64(s.DRAMTotal()) / float64(geom.CapacityBytes())
	if frac < 0.010 || frac > 0.013 {
		t.Errorf("DRAM fraction = %.4f, want ~0.0113", frac)
	}
}

func TestPowerNumbers(t *testing.T) {
	p := PaperPower()
	if got := p.SRAMTotalMilliwatts(); math.Abs(got-13.6) > 1e-9 {
		t.Fatalf("SRAM power = %g, want 13.6", got)
	}
	if p.DRAMMilliwatts != 8.5 {
		t.Fatalf("DRAM power = %g", p.DRAMMilliwatts)
	}
}

func TestTable7Totals(t *testing.T) {
	rows := Table7()
	if len(rows) != 4 || rows[3].Structure != "Total" {
		t.Fatalf("table shape: %+v", rows)
	}
	tot := rows[3]
	// Paper: 2870KB / 437KB / 2502KB / 71KB.
	within := func(got, wantKB int) bool {
		return math.Abs(float64(got)/1024-float64(wantKB)) < float64(wantKB)/10+5
	}
	if !within(tot.RRSMG, 2870) || !within(tot.AquaMG, 437) ||
		!within(tot.RRSHydra, 2502) || !within(tot.AquaHydra, 71) {
		t.Fatalf("totals = %d/%d/%d/%d KB",
			tot.RRSMG/1024, tot.AquaMG/1024, tot.RRSHydra/1024, tot.AquaHydra/1024)
	}
}

func TestRRSRITScalesInversely(t *testing.T) {
	t166 := RRSRITBytes(dram.DDR4(), 16, 166)
	t800 := RRSRITBytes(dram.DDR4(), 16, 800)
	if t166 <= t800 {
		t.Fatal("RIT must grow as the swap threshold drops")
	}
	// Paper: ~2.4MB at threshold 166.
	mb := float64(t166) / (1 << 20)
	if mb < 1.5 || mb > 3.5 {
		t.Fatalf("RIT at 166 = %.2f MB, want ~2.4", mb)
	}
}

func TestCROWToleranceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CROWTolerance(1, 512, dram.DDR4())
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 2 * 1024 * 1024: 21}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBirthdayModelQualitative(t *testing.T) {
	base := BirthdayParams{
		TRH:      1000,
		Rows:     2 * 1024 * 1024,
		Banks:    16,
		Timing:   dram.DDR4(),
		Machines: 1,
	}
	years := base.MeanYearsToSuccess()
	if math.IsInf(years, 1) || years <= 0 {
		t.Fatalf("MTTF = %g", years)
	}
	// More machines: linearly faster attacks.
	fleet := base
	fleet.Machines = 1000
	if r := years / fleet.MeanYearsToSuccess(); math.Abs(r-1000) > 1 {
		t.Fatalf("machines scaling = %g, want 1000", r)
	}
	// Lower threshold: more swaps, more collocation chances, faster attack.
	low := base
	low.TRH = 250
	if low.MeanYearsToSuccess() >= years {
		t.Fatalf("lower threshold did not speed up the attack: %g vs %g",
			low.MeanYearsToSuccess(), years)
	}
	// Sanity on the components.
	if base.CollocationsNeeded() < 6 {
		t.Fatalf("collocations = %d", base.CollocationsNeeded())
	}
	if base.SwapsPerEpoch() < 1000 {
		t.Fatalf("swaps/epoch = %g", base.SwapsPerEpoch())
	}
	if p := base.SuccessProbabilityPerEpoch(); p <= 0 || p > 1 {
		t.Fatalf("probability = %g", p)
	}
}
