package event

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestLessTotalOrder(t *testing.T) {
	cases := []struct {
		name string
		a, b Event
	}{
		{"time dominates", Event{Time: 1, Class: ClassCoreIssue, Index: 9}, Event{Time: 2, Class: ClassRefresh}},
		{"class breaks time tie", Event{Time: 5, Class: ClassRefresh}, Event{Time: 5, Class: ClassEpoch}},
		{"epoch before drain", Event{Time: 5, Class: ClassEpoch}, Event{Time: 5, Class: ClassDrain}},
		{"drain before bank expiry", Event{Time: 5, Class: ClassDrain}, Event{Time: 5, Class: ClassBankExpiry}},
		{"bank expiry before core issue", Event{Time: 5, Class: ClassBankExpiry}, Event{Time: 5, Class: ClassCoreIssue}},
		{"index breaks class tie", Event{Time: 5, Class: ClassCoreIssue, Index: 0}, Event{Time: 5, Class: ClassCoreIssue, Index: 1}},
	}
	for _, tc := range cases {
		if !Less(tc.a, tc.b) {
			t.Errorf("%s: Less(%v, %v) = false, want true", tc.name, tc.a, tc.b)
		}
		if Less(tc.b, tc.a) {
			t.Errorf("%s: Less(%v, %v) = true, want false", tc.name, tc.b, tc.a)
		}
	}
	e := Event{Time: 5, Class: ClassEpoch, Index: 3}
	if Less(e, e) {
		t.Errorf("Less(%v, %v) = true; the order must be strict", e, e)
	}
}

// TestClassPriorityPinned pins the numeric class order documented in the
// package comment: changing it changes golden figure bytes, so the values
// are asserted literally rather than relative to each other.
func TestClassPriorityPinned(t *testing.T) {
	want := map[Class]uint8{
		ClassRefresh:    0,
		ClassEpoch:      1,
		ClassDrain:      2,
		ClassBankExpiry: 3,
		ClassCoreIssue:  4,
	}
	for cl, v := range want {
		if uint8(cl) != v {
			t.Errorf("class %s = %d, want %d", cl, uint8(cl), v)
		}
	}
	if NumClasses != 5 {
		t.Errorf("NumClasses = %d, want 5", NumClasses)
	}
}

func TestEqualTimestampCollision(t *testing.T) {
	// All five classes armed at the same instant must pop in class order,
	// with equal-time indexed events ordered by index.
	var c Calendar
	c.SetLane(ClassDrain, 100)
	c.Push(Event{Time: 100, Class: ClassCoreIssue, Index: 2})
	c.Push(Event{Time: 100, Class: ClassCoreIssue, Index: 0})
	c.SetLane(ClassRefresh, 100)
	c.Push(Event{Time: 100, Class: ClassBankExpiry, Index: 7})
	c.SetLane(ClassEpoch, 100)
	c.Push(Event{Time: 100, Class: ClassCoreIssue, Index: 1})

	want := []Event{
		{Time: 100, Class: ClassRefresh},
		{Time: 100, Class: ClassEpoch},
		{Time: 100, Class: ClassDrain},
		{Time: 100, Class: ClassBankExpiry, Index: 7},
		{Time: 100, Class: ClassCoreIssue, Index: 0},
		{Time: 100, Class: ClassCoreIssue, Index: 1},
		{Time: 100, Class: ClassCoreIssue, Index: 2},
	}
	for i, w := range want {
		got, ok := c.Pop()
		if !ok {
			t.Fatalf("pop %d: calendar empty, want %v", i, w)
		}
		if got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
	if _, ok := c.Pop(); ok {
		t.Fatal("calendar not empty after draining")
	}
}

func TestLaneRearmAndClear(t *testing.T) {
	var c Calendar
	c.SetLane(ClassRefresh, 50)
	c.SetLane(ClassEpoch, 40)
	if e, _ := c.Peek(); e != (Event{Time: 40, Class: ClassEpoch}) {
		t.Fatalf("peek = %v, want epoch@40", e)
	}
	// Re-arming forward moves the lane; the cached min must follow.
	c.SetLane(ClassEpoch, 60)
	if e, _ := c.Peek(); e != (Event{Time: 50, Class: ClassRefresh}) {
		t.Fatalf("peek after re-arm = %v, want refresh@50", e)
	}
	c.ClearLane(ClassRefresh)
	if e, _ := c.Peek(); e != (Event{Time: 60, Class: ClassEpoch}) {
		t.Fatalf("peek after clear = %v, want epoch@60", e)
	}
	if tm, ok := c.Lane(ClassEpoch); !ok || tm != 60 {
		t.Fatalf("Lane(epoch) = %d,%v, want 60,true", tm, ok)
	}
	if _, ok := c.Lane(ClassRefresh); ok {
		t.Fatal("Lane(refresh) still armed after ClearLane")
	}
	c.ClearLane(ClassRefresh) // idempotent
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestPopPrefersHeapOnExactTie(t *testing.T) {
	// A heap entry and a lane entry with the identical (time, class, index)
	// tuple are the same point in the total order; Peek/Pop must still be
	// deterministic. The implementation hands out the heap entry first.
	var c Calendar
	c.SetLane(ClassRefresh, 10)
	c.Push(Event{Time: 10, Class: ClassRefresh, Index: 0})
	first, _ := c.Pop()
	second, _ := c.Pop()
	if first != second || first != (Event{Time: 10, Class: ClassRefresh}) {
		t.Fatalf("tie pops = %v, %v; want two refresh@10", first, second)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", c.Len())
	}
}

func TestAdvanceToFoldsRearms(t *testing.T) {
	var c Calendar
	c.SetLane(ClassRefresh, 10)
	c.Push(Event{Time: 15, Class: ClassCoreIssue, Index: 0})
	var got []Event
	// AdvanceTo pops each event before handing it over; a core-issue event
	// with no successor needs no action, a lane re-arms itself forward.
	n := c.AdvanceTo(30, func(e Event) {
		got = append(got, e)
		if e.Class == ClassRefresh && e.Time+10 <= 30 {
			c.SetLane(ClassRefresh, e.Time+10)
		}
	})
	if n != 4 {
		t.Fatalf("AdvanceTo handled %d events, want 4", n)
	}
	want := []Event{
		{Time: 10, Class: ClassRefresh},
		{Time: 15, Class: ClassCoreIssue, Index: 0},
		{Time: 20, Class: ClassRefresh},
		{Time: 30, Class: ClassRefresh},
	}
	if len(got) != len(want) {
		t.Fatalf("handled %d events %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReplaceAndDropIndexedMin(t *testing.T) {
	var c Calendar
	for i := int32(0); i < 4; i++ {
		c.Push(Event{Time: PS(10 + i), Class: ClassCoreIssue, Index: i})
	}
	// Root is core 0 @10; pushing it to 25 must surface core 1 @11.
	c.ReplaceIndexedMin(25)
	if e, _ := c.MinIndexed(); e != (Event{Time: 11, Class: ClassCoreIssue, Index: 1}) {
		t.Fatalf("root after replace = %v, want core1@11", e)
	}
	c.DropIndexedMin()
	if e, _ := c.MinIndexed(); e != (Event{Time: 12, Class: ClassCoreIssue, Index: 2}) {
		t.Fatalf("root after drop = %v, want core2@12", e)
	}
	if c.HeapLen() != 3 {
		t.Fatalf("HeapLen = %d, want 3", c.HeapLen())
	}
}

func TestHorizonExcludesRoot(t *testing.T) {
	var c Calendar
	if _, ok := c.Horizon(); ok {
		t.Fatal("empty calendar has a horizon")
	}
	c.Push(Event{Time: 10, Class: ClassCoreIssue, Index: 0})
	if _, ok := c.Horizon(); ok {
		t.Fatal("single-entry heap has a horizon; the root is excluded")
	}
	c.Push(Event{Time: 30, Class: ClassCoreIssue, Index: 1})
	c.Push(Event{Time: 20, Class: ClassCoreIssue, Index: 2})
	if hz, _ := c.Horizon(); hz != (Event{Time: 20, Class: ClassCoreIssue, Index: 2}) {
		t.Fatalf("horizon = %v, want core2@20", hz)
	}
	// An earlier lane lowers the horizon without touching the heap.
	c.SetLane(ClassRefresh, 15)
	if hz, _ := c.Horizon(); hz != (Event{Time: 15, Class: ClassRefresh}) {
		t.Fatalf("horizon with lane = %v, want refresh@15", hz)
	}
	// But the root itself stays out of it even when a lane is later.
	c.SetLane(ClassRefresh, 40)
	if hz, _ := c.Horizon(); hz != (Event{Time: 20, Class: ClassCoreIssue, Index: 2}) {
		t.Fatalf("horizon with late lane = %v, want core2@20", hz)
	}
}

// TestCalendarMatchesReferenceModel drives random interleavings of pushes,
// lane arms and pops against a sorted-slice reference model, checking that
// every pop returns exactly the reference minimum.
func TestCalendarMatchesReferenceModel(t *testing.T) {
	indexed := []Class{ClassBankExpiry, ClassCoreIssue}
	lanes := []Class{ClassRefresh, ClassEpoch, ClassDrain}
	for seed := uint64(1); seed <= 8; seed++ {
		var c Calendar
		r := rng.New(seed * 0x9e3779b97f4a7c15)
		var ref []Event // pending events, maintained sorted
		insert := func(e Event) {
			i := sort.Search(len(ref), func(i int) bool { return !Less(ref[i], e) })
			ref = append(ref, Event{})
			copy(ref[i+1:], ref[i:])
			ref[i] = e
		}
		remove := func(i int) {
			ref = append(ref[:i], ref[i+1:]...)
		}
		for step := 0; step < 4000; step++ {
			switch op := r.Intn(10); {
			case op < 4: // push indexed
				e := Event{
					Time:  PS(r.Intn(1 << 20)),
					Class: indexed[r.Intn(len(indexed))],
					Index: int32(r.Intn(64)),
				}
				c.Push(e)
				insert(e)
			case op < 6: // arm or re-arm a lane
				cl := lanes[r.Intn(len(lanes))]
				tm := PS(r.Intn(1 << 20))
				c.SetLane(cl, tm)
				// Drop the lane's previous occurrence from the reference.
				for i, x := range ref {
					if x.Class == cl {
						remove(i)
						break
					}
				}
				insert(Event{Time: tm, Class: cl})
			case op < 7: // clear a lane
				cl := lanes[r.Intn(len(lanes))]
				c.ClearLane(cl)
				for i, x := range ref {
					if x.Class == cl {
						remove(i)
						break
					}
				}
			default: // pop
				got, ok := c.Pop()
				if len(ref) == 0 {
					if ok {
						t.Fatalf("seed %d step %d: pop = %v on empty reference", seed, step, got)
					}
					continue
				}
				if !ok {
					t.Fatalf("seed %d step %d: calendar empty, reference has %v", seed, step, ref[0])
				}
				if got != ref[0] {
					t.Fatalf("seed %d step %d: pop = %v, want %v", seed, step, got, ref[0])
				}
				remove(0)
			}
			if c.Len() != len(ref) {
				t.Fatalf("seed %d step %d: Len = %d, reference %d", seed, step, c.Len(), len(ref))
			}
		}
		// Drain: the remaining pops must come out in exact sorted order.
		for len(ref) > 0 {
			got, ok := c.Pop()
			if !ok || got != ref[0] {
				t.Fatalf("seed %d drain: pop = %v,%v, want %v", seed, got, ok, ref[0])
			}
			remove(0)
		}
		if _, ok := c.Pop(); ok {
			t.Fatalf("seed %d: calendar non-empty after drain", seed)
		}
	}
}

func TestResetKeepsCapacityEmptiesState(t *testing.T) {
	var c Calendar
	for i := int32(0); i < 32; i++ {
		c.Push(Event{Time: PS(i), Class: ClassCoreIssue, Index: i})
	}
	c.SetLane(ClassRefresh, 5)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", c.Len())
	}
	if _, ok := c.Peek(); ok {
		t.Fatal("Peek returned an event after Reset")
	}
	// Steady-state reuse after Reset must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		for i := int32(0); i < 32; i++ {
			c.Push(Event{Time: PS(i), Class: ClassCoreIssue, Index: i})
		}
		for {
			if _, ok := c.Pop(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop cycle after Reset allocates %.1f/run, want 0", allocs)
	}
}
