// Package event is the simulator's unified event calendar: one
// deterministic priority structure over everything that can happen next —
// background work in the memory controller (refresh, epoch, drain),
// per-bank timing-window expiries in the DRAM model, and per-core
// next-issue times in the run loop.
//
// Events are totally ordered by the tuple (Time, Class, Index). The class
// order encodes the hardware tie-break the layers already implement
// locally: at an equal timestamp, refresh outranks epoch bookkeeping,
// which outranks background draining, which outranks bank-window expiries,
// which outrank core issues; equal-time issues go to the lowest core
// index. Any change to this order changes golden figure bytes.
//
// The calendar is a time-wheel/binary-heap hybrid shaped by how the two
// kinds of producers behave:
//
//   - Singleton classes (refresh, epoch, drain) have at most one pending
//     occurrence each and re-arm themselves strictly forward in time. They
//     live in fixed per-class lanes — the degenerate time wheel — so
//     re-arming is an O(1) store, not a heap fix-up.
//   - Indexed classes (core issues, bank expiries) have one pending entry
//     per entity and live in a binary min-heap. The run loop works on the
//     heap root directly: ReplaceIndexedMin is a single sift-down, and
//     Horizon exposes the earliest event that is *not* the root, which is
//     the bound the same-core issue-batching fast path needs.
//
// The zero value is an empty calendar. Push grows the heap's backing
// slice once; Reset keeps it, so steady-state push/pop never allocates.
// A Calendar is not safe for concurrent use — each simulated system owns
// its own, like every other layer of the simulator.
package event

// PS is simulated time in picoseconds. It aliases int64 exactly like
// dram.PS, so the two interchange freely without this package importing
// the DRAM model (which imports this package for expiry publishing).
type PS = int64

// Class identifies an event source. The declaration order IS the
// equal-time priority order; see the package comment.
type Class uint8

const (
	// ClassRefresh is the controller's periodic auto-refresh command.
	ClassRefresh Class = iota
	// ClassEpoch is the tracker epoch boundary.
	ClassEpoch
	// ClassDrain is the idle background-drain opportunity.
	ClassDrain
	// ClassBankExpiry is a per-bank timing-window expiry (tRC/tRFC end),
	// indexed by bank.
	ClassBankExpiry
	// ClassCoreIssue is a core's next request becoming ready, indexed by
	// core.
	ClassCoreIssue
	// NumClasses bounds the lane array.
	NumClasses
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassRefresh:
		return "refresh"
	case ClassEpoch:
		return "epoch"
	case ClassDrain:
		return "drain"
	case ClassBankExpiry:
		return "bank-expiry"
	case ClassCoreIssue:
		return "core-issue"
	default:
		return "unknown"
	}
}

// Event is one scheduled occurrence. Index disambiguates entities within
// an indexed class (core number, bank number); singleton classes use 0.
type Event struct {
	Time  PS
	Class Class
	Index int32
}

// Less is the calendar's total order: (Time, Class, Index), ascending.
func Less(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Index < b.Index
}

// Calendar is the hybrid structure. See the package comment for the
// lane/heap split.
type Calendar struct {
	heap []Event

	lane  [NumClasses]PS
	armed [NumClasses]bool
	// laneMin caches the earliest armed lane so the hot-loop reads
	// (Peek, Horizon) are O(1); it is recomputed on the rare lane writes.
	laneMin    Event
	laneMinSet bool
}

// Reset empties the calendar, keeping the heap's backing slice.
func (c *Calendar) Reset() {
	c.heap = c.heap[:0]
	for i := range c.armed {
		c.armed[i] = false
	}
	c.laneMinSet = false
}

// Len reports the number of pending events (armed lanes plus heap
// entries).
func (c *Calendar) Len() int {
	n := len(c.heap)
	for _, a := range c.armed {
		if a {
			n++
		}
	}
	return n
}

// HeapLen reports the number of pending indexed events.
func (c *Calendar) HeapLen() int { return len(c.heap) }

// SetLane arms (or re-arms) a singleton class at time t.
func (c *Calendar) SetLane(cl Class, t PS) {
	c.lane[cl] = t
	c.armed[cl] = true
	c.fixLaneMin()
}

// ClearLane disarms a singleton class.
func (c *Calendar) ClearLane(cl Class) {
	if !c.armed[cl] {
		return
	}
	c.armed[cl] = false
	c.fixLaneMin()
}

// Lane returns a singleton class's pending time, if armed.
func (c *Calendar) Lane(cl Class) (PS, bool) {
	return c.lane[cl], c.armed[cl]
}

func (c *Calendar) fixLaneMin() {
	c.laneMinSet = false
	for cl := Class(0); cl < NumClasses; cl++ {
		if !c.armed[cl] {
			continue
		}
		e := Event{Time: c.lane[cl], Class: cl}
		if !c.laneMinSet || Less(e, c.laneMin) {
			c.laneMin, c.laneMinSet = e, true
		}
	}
}

// Push schedules an indexed event.
func (c *Calendar) Push(e Event) {
	c.heap = append(c.heap, e)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !Less(c.heap[i], c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

// Peek returns the globally earliest pending event without removing it.
func (c *Calendar) Peek() (Event, bool) {
	if len(c.heap) == 0 {
		return c.laneMin, c.laneMinSet
	}
	if c.laneMinSet && Less(c.laneMin, c.heap[0]) {
		return c.laneMin, true
	}
	return c.heap[0], true
}

// Pop removes and returns the globally earliest pending event. Popping a
// lane event disarms the lane; the producer re-arms it for the next
// occurrence.
func (c *Calendar) Pop() (Event, bool) {
	e, ok := c.Peek()
	if !ok {
		return Event{}, false
	}
	if c.laneMinSet && e == c.laneMin && (len(c.heap) == 0 || Less(e, c.heap[0])) {
		c.armed[e.Class] = false
		c.fixLaneMin()
		return e, true
	}
	c.DropIndexedMin()
	return e, true
}

// AdvanceTo pops every event due at or before t, in calendar order,
// calling handle on each, and returns how many were handled. Handlers may
// re-arm lanes or push successor events; those are folded into the same
// sweep when they fall inside t.
func (c *Calendar) AdvanceTo(t PS, handle func(Event)) int {
	n := 0
	for {
		e, ok := c.Peek()
		if !ok || e.Time > t {
			return n
		}
		c.Pop()
		handle(e)
		n++
	}
}

// MinIndexed returns the earliest indexed event (the heap root) without
// removing it.
func (c *Calendar) MinIndexed() (Event, bool) {
	if len(c.heap) == 0 {
		return Event{}, false
	}
	return c.heap[0], true
}

// ReplaceIndexedMin reschedules the heap root to time t (class and index
// unchanged) and restores heap order. The root is the minimum, so any
// replacement needs only a sift-down.
func (c *Calendar) ReplaceIndexedMin(t PS) {
	c.heap[0].Time = t
	c.siftDown(0)
}

// DropIndexedMin removes the heap root (a finished entity).
func (c *Calendar) DropIndexedMin() {
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	if last > 0 {
		c.siftDown(0)
	}
}

// Horizon returns the earliest pending event other than the heap root:
// the minimum over the root's children (the heap's second-smallest entry)
// and the armed lanes. It is the foreign-event bound for the run loop's
// same-core batching fast path — the root's owner may keep issuing while
// its successor events stay strictly below the horizon, because nothing
// else can become due first.
func (c *Calendar) Horizon() (Event, bool) {
	var best Event
	ok := false
	if n := len(c.heap); n > 1 {
		best, ok = c.heap[1], true
		if n > 2 && Less(c.heap[2], best) {
			best = c.heap[2]
		}
	}
	if c.laneMinSet && (!ok || Less(c.laneMin, best)) {
		best, ok = c.laneMin, true
	}
	return best, ok
}

func (c *Calendar) siftDown(i int) {
	n := len(c.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && Less(c.heap[right], c.heap[left]) {
			smallest = right
		}
		if !Less(c.heap[smallest], c.heap[i]) {
			return
		}
		c.heap[i], c.heap[smallest] = c.heap[smallest], c.heap[i]
		i = smallest
	}
}
