package tracker

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/rng"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 512, RowBytes: 1024, LineBytes: 64}
}

func TestMisraGriesFlagsAtThresholdMultiples(t *testing.T) {
	g := testGeom()
	tr := NewMisraGries(g, 100, 16)
	row := g.RowOf(0, 7)
	triggers := 0
	for i := 0; i < 350; i++ {
		if tr.RecordACT(row) {
			triggers++
		}
	}
	if triggers != 3 { // at 100, 200, 300
		t.Fatalf("got %d triggers, want 3", triggers)
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	// The detection guarantee: with a table of N/threshold entries per
	// bank, any row that receives `threshold` activations among N total
	// must trigger at least once. Property-test against random streams.
	g := testGeom()
	check := func(seed uint64) bool {
		const threshold, total = 50, 2000
		tr := NewMisraGries(g, threshold, total/threshold)
		r := rng.New(seed)
		exact := make(map[dram.Row]int)
		flagged := make(map[dram.Row]bool)
		// Concentrate traffic in bank 0 so the guarantee applies per bank.
		hot := g.RowOf(0, 1)
		for i := 0; i < total; i++ {
			var row dram.Row
			if r.Float64() < 0.06 {
				row = hot
			} else {
				row = g.RowOf(0, 2+r.Intn(g.RowsPerBank-2))
			}
			exact[row]++
			if tr.RecordACT(row) {
				flagged[row] = true
			}
		}
		for row, n := range exact {
			if n >= threshold && !flagged[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMisraGriesEstimateNeverUnderestimates(t *testing.T) {
	// The MG invariant: estimated count >= true count for tracked rows.
	g := testGeom()
	tr := NewMisraGries(g, 1000, 8)
	r := rng.New(99)
	exact := make(map[dram.Row]int64)
	for i := 0; i < 5000; i++ {
		row := g.RowOf(0, r.Intn(64))
		exact[row]++
		tr.RecordACT(row)
		if est := tr.EstimatedCount(row); est != 0 && est < exact[row] {
			t.Fatalf("estimate %d < true %d for row %d", est, exact[row], row)
		}
	}
}

func TestMisraGriesSpuriousTriggerOnInstall(t *testing.T) {
	// A newly installed row inherits the spill counter; when that lands on
	// a multiple of the threshold, a spurious mitigation fires (the
	// imagick effect from Section IV-F).
	g := testGeom()
	threshold := int64(10)
	tr := NewMisraGries(g, threshold, 2)
	// Fill the 2-entry table.
	a, b := g.RowOf(0, 1), g.RowOf(0, 2)
	tr.RecordACT(a)
	tr.RecordACT(b)
	// Stream unique rows to pump the spill counter; eventually an install
	// lands exactly on a multiple of the threshold and triggers.
	spurious := false
	for i := 3; i < 200; i++ {
		if tr.RecordACT(g.RowOf(0, i%500+3)) {
			spurious = true
			break
		}
	}
	if !spurious {
		t.Fatal("no spurious trigger from spill inheritance")
	}
}

func TestMisraGriesReset(t *testing.T) {
	g := testGeom()
	tr := NewMisraGries(g, 100, 4)
	row := g.RowOf(1, 1)
	for i := 0; i < 99; i++ {
		tr.RecordACT(row)
	}
	tr.Reset()
	if tr.EstimatedCount(row) != 0 {
		t.Fatal("reset kept counts")
	}
	if tr.Spill(1) != 0 {
		t.Fatal("reset kept spill")
	}
	// 100 more ACTs after reset trigger exactly once.
	triggers := 0
	for i := 0; i < 100; i++ {
		if tr.RecordACT(row) {
			triggers++
		}
	}
	if triggers != 1 {
		t.Fatalf("triggers after reset = %d", triggers)
	}
}

func TestMisraGriesPerBankIsolation(t *testing.T) {
	g := testGeom()
	tr := NewMisraGries(g, 100, 1) // one entry per bank
	a := g.RowOf(0, 1)
	b := g.RowOf(1, 1)
	for i := 0; i < 50; i++ {
		tr.RecordACT(a)
		tr.RecordACT(b)
	}
	if tr.EstimatedCount(a) != 50 || tr.EstimatedCount(b) != 50 {
		t.Fatal("banks interfered")
	}
}

func TestProvisionEntries(t *testing.T) {
	tm := dram.DDR4()
	n := ProvisionEntries(tm, 500)
	// ACTmax ~1.36M / 500 ~= 2717.
	if n < 2600 || n > 2800 {
		t.Fatalf("ProvisionEntries(500) = %d", n)
	}
	if ProvisionEntries(tm, tm.ACTMax()*2) != 1 {
		t.Fatal("floor of one entry violated")
	}
}

func TestExactTracker(t *testing.T) {
	g := testGeom()
	tr := NewExact(g, 10)
	row := g.RowOf(0, 0)
	triggers := 0
	for i := 0; i < 35; i++ {
		if tr.RecordACT(row) {
			triggers++
		}
	}
	if triggers != 3 {
		t.Fatalf("exact triggers = %d", triggers)
	}
	if tr.Count(row) != 35 {
		t.Fatalf("count = %d", tr.Count(row))
	}
	tr.Reset()
	if tr.Count(row) != 0 {
		t.Fatal("reset failed")
	}
}

func TestHydraGuarantee(t *testing.T) {
	// No row may reach `threshold` ACTs without having been flagged:
	// groups split at threshold/2 and seed the row's exact counter with
	// the (over-approximate) group count.
	g := testGeom()
	check := func(seed uint64) bool {
		const threshold = 64
		tr := NewHydra(g, threshold, 8)
		r := rng.New(seed)
		exact := make(map[dram.Row]int)
		flagged := make(map[dram.Row]bool)
		for i := 0; i < 4000; i++ {
			row := g.RowOf(r.Intn(g.Banks), r.Intn(32))
			exact[row]++
			if tr.RecordACT(row) {
				flagged[row] = true
			}
			if exact[row] >= threshold && !flagged[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHydraSplitsGroups(t *testing.T) {
	g := testGeom()
	tr := NewHydra(g, 100, 4)
	row := g.RowOf(0, 0)
	for i := 0; i < 50; i++ {
		tr.RecordACT(row)
	}
	if tr.DRAMLookups == 0 {
		t.Fatal("group never split despite crossing threshold/2")
	}
}

func TestHydraReset(t *testing.T) {
	g := testGeom()
	tr := NewHydra(g, 100, 4)
	for i := 0; i < 200; i++ {
		tr.RecordACT(g.RowOf(0, 0))
	}
	tr.Reset()
	if tr.DRAMLookups != 0 {
		t.Fatal("reset kept DRAM lookups")
	}
	// After reset the same guarantee applies afresh.
	triggers := 0
	for i := 0; i < 100; i++ {
		if tr.RecordACT(g.RowOf(0, 0)) {
			triggers++
		}
	}
	if triggers == 0 {
		t.Fatal("no trigger after reset")
	}
}

func TestSRAMBytesPositive(t *testing.T) {
	g := testGeom()
	for _, tr := range []Tracker{
		NewMisraGries(g, 100, 16),
		NewExact(g, 100),
		NewHydra(g, 100, 8),
	} {
		if tr.SRAMBytes() <= 0 {
			t.Errorf("%s reports non-positive SRAM", tr.Name())
		}
		if Describe(tr) == "" || !strings.Contains(Describe(tr), tr.Name()) {
			t.Errorf("Describe(%s) malformed", tr.Name())
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	g := testGeom()
	cases := []func(){
		func() { NewMisraGries(g, 0, 4) },
		func() { NewMisraGries(g, 10, 0) },
		func() { NewExact(g, 0) },
		func() { NewHydra(g, 1, 8) },
		func() { NewHydra(g, 100, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestMisraGriesEvictionTieBreakCanonical installs the same set of
// equal-count rows in different orders and verifies the eviction victim
// is the same either way: the heap orders ties by row id, so which entry
// gets swapped out is a function of the table contents, not of insertion
// history.
func TestMisraGriesEvictionTieBreakCanonical(t *testing.T) {
	geom := testGeom()
	rows := []dram.Row{geom.RowOf(0, 40), geom.RowOf(0, 10), geom.RowOf(0, 30), geom.RowOf(0, 20)}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}

	victim := func(order []int) dram.Row {
		tr := NewMisraGries(geom, 1000, len(rows))
		for _, i := range order {
			tr.RecordACT(rows[i])
		}
		// Table full, all counts equal: the next install swaps out the
		// canonical minimum.
		tr.RecordACT(geom.RowOf(0, 99))
		for _, r := range rows {
			if tr.EstimatedCount(r) == 0 {
				return r
			}
		}
		t.Fatal("no eviction happened")
		return 0
	}

	want := victim(orders[0])
	if want != geom.RowOf(0, 10) {
		t.Errorf("victim = row %d, want the lowest row id %d", want, geom.RowOf(0, 10))
	}
	for _, o := range orders[1:] {
		if got := victim(o); got != want {
			t.Errorf("order %v evicted row %d, order %v evicted row %d", orders[0], want, o, got)
		}
	}
}
