// Package tracker implements aggressor-row trackers: the structures that
// watch DRAM activations and flag rows whose activation count crosses the
// mitigation threshold within an epoch.
//
// AQUA is tracker-agnostic (Section IV-B); this package provides the three
// designs the paper discusses:
//
//   - MisraGries: the per-bank Misra-Gries frequent-elements tracker used by
//     Graphene and RRS, including the spill-counter behaviour that causes
//     the spurious mitigations the paper observes (Section IV-F).
//   - Hydra: a storage-optimized hybrid tracker in the spirit of Hydra —
//     small SRAM group counters backed by exact per-row counters that are
//     materialized (conceptually in DRAM) only when a group gets hot.
//   - Exact: a reference tracker with one exact counter per row, used to
//     validate the others and for security proofs in tests.
//
// All trackers share the same contract: RecordACT is invoked once per row
// activation with the *physical* row (after any FPT indirection, per
// security property P3) and returns true each time the row's estimated
// count reaches a fresh multiple of the threshold, at which point the
// mitigation engine must act.
package tracker

import (
	"fmt"

	"repro/internal/dram"
)

// Tracker observes activations and flags aggressor rows.
type Tracker interface {
	// RecordACT records one activation of a physical row and reports
	// whether the row has just crossed a (multiple of the) threshold and
	// therefore requires mitigation.
	RecordACT(row dram.Row) bool
	// Reset clears per-epoch state. Called every tracker epoch (the paper
	// resets at every 64ms refresh interval).
	Reset()
	// SRAMBytes returns the tracker's SRAM footprint for storage accounting.
	SRAMBytes() int
	// Name identifies the tracker in reports.
	Name() string
}

// entry is one Misra-Gries table slot.
type entry struct {
	row   dram.Row
	count int64
}

// MisraGries is a per-bank Misra-Gries (Graphene-style) tracker. Each bank
// owns a small table of (row, counter) pairs organised as a min-heap on the
// counter, plus a spill counter. The Misra-Gries invariant — every row's
// estimated count is at least its true count — guarantees that any row
// activated `threshold` times in an epoch is flagged, provided the table
// has at least ACTmax/threshold entries per bank.
//
// Faithful quirk: a newly installed row inherits the spill counter value,
// so its estimated count starts above its true count; sufficiently active
// banks therefore trigger occasional *spurious* mitigations exactly as the
// paper reports for workloads like imagick (Section IV-F).
type MisraGries struct {
	geom      dram.Geometry
	threshold int64
	capacity  int
	banks     []mgBank
	// pos is the dense row -> heap-position index shared by all banks
	// (each row belongs to exactly one bank), -1 when untracked. A flat
	// array keyed by Row replaces the per-bank hash map: RecordACT runs
	// once per activation, and the array probe is branch-predictable and
	// allocation-free where the map was neither.
	pos []int32
}

type mgBank struct {
	heap  []entry // min-heap on count
	spill int64
}

// NewMisraGries builds a tracker that flags rows every `threshold`
// activations. entriesPerBank is sized so the Misra-Gries guarantee holds:
// the canonical provisioning is ACTmax/threshold entries (use
// ProvisionEntries).
func NewMisraGries(geom dram.Geometry, threshold int64, entriesPerBank int) *MisraGries {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	if entriesPerBank < 1 {
		panic("tracker: need at least one entry per bank")
	}
	t := &MisraGries{
		geom:      geom,
		threshold: threshold,
		capacity:  entriesPerBank,
		banks:     make([]mgBank, geom.Banks),
		pos:       make([]int32, geom.Rows()),
	}
	for i := range t.pos {
		t.pos[i] = -1
	}
	for i := range t.banks {
		t.banks[i] = mgBank{heap: make([]entry, 0, entriesPerBank)}
	}
	return t
}

// heap helpers: min-heap ordered by (count, row) with the dense index kept
// in sync. The row id breaks count ties so the eviction victim is a
// canonical function of the table contents — without it, which of several
// minimum-count entries sat at the root depended on insertion history,
// and a future refactor of the install path could silently change every
// downstream figure.

func (b *mgBank) less(i, j int) bool {
	if b.heap[i].count != b.heap[j].count {
		return b.heap[i].count < b.heap[j].count
	}
	return b.heap[i].row < b.heap[j].row
}

func (t *MisraGries) swap(b *mgBank, i, j int) {
	b.heap[i], b.heap[j] = b.heap[j], b.heap[i]
	t.pos[b.heap[i].row] = int32(i)
	t.pos[b.heap[j].row] = int32(j)
}

func (t *MisraGries) siftUp(b *mgBank, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(i, parent) {
			return
		}
		t.swap(b, i, parent)
		i = parent
	}
}

func (t *MisraGries) siftDown(b *mgBank, i int) {
	n := len(b.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && b.less(left, smallest) {
			smallest = left
		}
		if right < n && b.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		t.swap(b, i, smallest)
		i = smallest
	}
}

// ProvisionEntries returns the per-bank Misra-Gries table size required to
// guarantee detection of every row reaching `threshold` activations within
// an epoch, given the bank's activation budget.
func ProvisionEntries(timing dram.Timing, threshold int64) int {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	n := timing.ACTMax() / threshold
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Name implements Tracker.
func (t *MisraGries) Name() string { return "misra-gries" }

// Threshold returns the per-epoch flagging threshold.
func (t *MisraGries) Threshold() int64 { return t.threshold }

// RecordACT implements Tracker.
func (t *MisraGries) RecordACT(row dram.Row) bool {
	b := &t.banks[t.geom.BankOf(row)]
	if pos := t.pos[row]; pos >= 0 {
		e := &b.heap[pos]
		e.count++
		newCount := e.count
		t.siftDown(b, int(pos))
		return newCount%t.threshold == 0
	}
	if len(b.heap) < t.capacity {
		// Free slot: install with the spill counter inherited, which may
		// immediately cross the threshold (the spurious-mitigation path).
		c := b.spill + 1
		b.heap = append(b.heap, entry{row: row, count: c})
		t.pos[row] = int32(len(b.heap) - 1)
		t.siftUp(b, len(b.heap)-1)
		return c%t.threshold == 0
	}
	// Table full: bump the spill counter; once it catches up with the
	// minimum tracked count, the minimum entry and the spill counter
	// exchange roles (Graphene's swap rule): the new row is installed
	// with the spill value as its count, and the evicted entry's count
	// becomes the new spill value. The exchange keeps the Misra-Gries
	// sum invariant (sum of counters + spill <= total ACTs + capacity),
	// which bounds the spill by ~ACTs/capacity and yields the detection
	// guarantee.
	b.spill++
	if b.spill >= b.heap[0].count {
		evicted := b.heap[0].count
		t.pos[b.heap[0].row] = -1
		c := b.spill
		b.heap[0] = entry{row: row, count: c}
		t.pos[row] = 0
		t.siftDown(b, 0)
		b.spill = evicted
		return c%t.threshold == 0
	}
	return false
}

// Reset implements Tracker. The dense index is un-marked entry by entry
// (bounded by table occupancy) rather than wholesale, so a reset costs
// O(tracked rows), not O(all rows).
func (t *MisraGries) Reset() {
	for i := range t.banks {
		b := &t.banks[i]
		for _, e := range b.heap {
			t.pos[e.row] = -1
		}
		b.heap = b.heap[:0]
		b.spill = 0
	}
}

// EstimatedCount returns the tracker's current estimate for a row (0 if
// untracked); exposed for tests.
func (t *MisraGries) EstimatedCount(row dram.Row) int64 {
	b := &t.banks[t.geom.BankOf(row)]
	if pos := t.pos[row]; pos >= 0 {
		return b.heap[pos].count
	}
	return 0
}

// Spill returns the current spill counter of the row's bank; exposed for
// tests of the Misra-Gries invariant.
func (t *MisraGries) Spill(bank int) int64 { return t.banks[bank].spill }

// CorruptEntry deliberately corrupts one tracked counter (fault
// injection): in the chosen bank, the heap entry at index idx (both taken
// modulo the live sizes so any payload draw maps to a valid target) has
// its count replaced by newCount, after which the heap is re-heapified
// around the corrupted value. The *value* is wrong — that is the fault —
// but the structure recovers to a well-formed heap, which
// CheckConsistency re-verifies. Returns the affected row, or ok=false
// when the bank tracks nothing yet.
func (t *MisraGries) CorruptEntry(bank, idx int, newCount int64) (row dram.Row, ok bool) {
	b := &t.banks[bank%len(t.banks)]
	if len(b.heap) == 0 {
		return 0, false
	}
	if newCount < 1 {
		newCount = 1 // a tracked entry always has at least its install count
	}
	i := idx % len(b.heap)
	row = b.heap[i].row
	b.heap[i].count = newCount
	// Recovery: restore heap order around the bad value. siftDown handles
	// an increased count; if the count shrank, siftDown is a no-op and
	// siftUp (from the entry's possibly-unchanged position) lifts it.
	t.siftDown(b, i)
	t.siftUp(b, int(t.pos[row]))
	return row, true
}

// CheckConsistency verifies the tracker's structural invariants: min-heap
// order in every bank, the dense row->position index agreeing with the
// heaps, and counts at least 1. Fault injection calls it after
// CorruptEntry to prove re-heapification restored a well-formed structure.
func (t *MisraGries) CheckConsistency() error {
	for bi := range t.banks {
		b := &t.banks[bi]
		for i := range b.heap {
			if p := t.pos[b.heap[i].row]; int(p) != i {
				return fmt.Errorf("tracker: bank %d row %d at heap[%d] but index says %d", bi, b.heap[i].row, i, p)
			}
			if i > 0 {
				if parent := (i - 1) / 2; b.less(i, parent) {
					return fmt.Errorf("tracker: bank %d heap order violated at %d (count %d under parent %d)",
						bi, i, b.heap[i].count, b.heap[parent].count)
				}
			}
			if b.heap[i].count < 1 {
				return fmt.Errorf("tracker: bank %d heap[%d] has count %d < 1", bi, i, b.heap[i].count)
			}
		}
	}
	return nil
}

// SRAMBytes implements Tracker: per entry one row tag (log2 rowsPerBank
// bits, rounded up) plus a counter, per bank, matching the ~396KB/rank the
// paper charges the MG tracker at threshold 500 (Appendix B).
func (t *MisraGries) SRAMBytes() int {
	perEntry := 5 // 21-bit row tag + ~19-bit counter, rounded up to 5 bytes
	return t.capacity * perEntry * len(t.banks)
}

// Exact tracks every row with an exact counter. It is the reference
// implementation used to validate guarantee properties; its SRAM cost would
// be impractical in hardware.
type Exact struct {
	threshold int64
	counts    []int64
}

// NewExact builds an exact tracker over the geometry.
func NewExact(geom dram.Geometry, threshold int64) *Exact {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	return &Exact{threshold: threshold, counts: make([]int64, geom.Rows())}
}

// Name implements Tracker.
func (t *Exact) Name() string { return "exact" }

// RecordACT implements Tracker.
func (t *Exact) RecordACT(row dram.Row) bool {
	t.counts[row]++
	return t.counts[row]%t.threshold == 0
}

// Reset implements Tracker.
func (t *Exact) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
}

// Count returns the exact per-epoch count for a row.
func (t *Exact) Count(row dram.Row) int64 { return t.counts[row] }

// SRAMBytes implements Tracker.
func (t *Exact) SRAMBytes() int { return len(t.counts) * 3 }

// Hydra is a storage-optimized hybrid tracker in the spirit of Qureshi et
// al.'s Hydra: a small SRAM table of *group* counters covers all rows; when
// a group's shared counter crosses a fraction of the threshold, the group
// is "split" and exact per-row counters are materialized (in DRAM in the
// real design; here the DRAM residency only affects the storage accounting
// and a per-access latency charge recorded in stats).
type Hydra struct {
	threshold  int64
	groupShift uint // rows per group = 1<<groupShift
	groups     []int64
	// split holds the materialized per-row counters as a dense array keyed
	// by flat Row; 0 means "not yet materialized" (sound as a sentinel:
	// a materialized counter starts at the split-time group count >= 1 and
	// only ever increments).
	split []int64
	// splitSeed records the group counter value at split time; every
	// member row's counter is lazily seeded with it (a sound
	// over-approximation of the row's pre-split count). A zero seed means
	// the group has not split (a split seed is always >= 1).
	splitSeed []int64
	// DRAMLookups counts accesses that had to consult the in-DRAM row
	// counters (a proxy for Hydra's extra memory traffic).
	DRAMLookups int64
}

// NewHydra builds a Hydra-like tracker. groupSize must be a power of two.
func NewHydra(geom dram.Geometry, threshold int64, groupSize int) *Hydra {
	if threshold < 2 {
		panic("tracker: hydra threshold must be >= 2")
	}
	if groupSize < 1 || groupSize&(groupSize-1) != 0 {
		panic("tracker: hydra group size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != groupSize {
		shift++
	}
	nGroups := (geom.Rows() + groupSize - 1) / groupSize
	return &Hydra{
		threshold:  threshold,
		groupShift: shift,
		groups:     make([]int64, nGroups),
		split:      make([]int64, geom.Rows()),
		splitSeed:  make([]int64, nGroups),
	}
}

// Name implements Tracker.
func (t *Hydra) Name() string { return "hydra" }

func (t *Hydra) groupOf(row dram.Row) uint32 { return uint32(row) >> t.groupShift }

// RecordACT implements Tracker. The group counter over-approximates each
// member row's count, so splitting at threshold/2 preserves the guarantee:
// a row can never reach `threshold` without its group having split first,
// after which it is tracked with a per-row counter seeded from the group
// count (est >= true, so a flag always fires at or before the true count
// reaches the threshold).
func (t *Hydra) RecordACT(row dram.Row) bool {
	g := t.groupOf(row)
	if seed := t.splitSeed[g]; seed > 0 {
		t.DRAMLookups++
		c := t.split[row]
		if c == 0 {
			c = seed // lazy seeding with the split-time group count
		}
		c++
		t.split[row] = c
		return c%t.threshold == 0
	}
	t.groups[g]++
	if t.groups[g] >= t.threshold/2 {
		// Split: per-row counters take over from here.
		t.splitSeed[g] = t.groups[g]
		t.DRAMLookups++
		t.split[row] = t.groups[g]
		return t.split[row]%t.threshold == 0
	}
	return false
}

// Reset implements Tracker.
func (t *Hydra) Reset() {
	for i := range t.groups {
		t.groups[i] = 0
	}
	clear(t.split)
	clear(t.splitSeed)
	t.DRAMLookups = 0
}

// SRAMBytes implements Tracker: 2 bytes per group counter (the in-DRAM row
// counters are excluded, as in the paper's Table VII which charges Hydra
// 28.3KB SRAM).
func (t *Hydra) SRAMBytes() int { return len(t.groups) * 2 }

// String summarises a tracker for logs.
func Describe(t Tracker) string {
	return fmt.Sprintf("%s (%d KB SRAM)", t.Name(), t.SRAMBytes()/1024)
}
