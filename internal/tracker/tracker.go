// Package tracker implements aggressor-row trackers: the structures that
// watch DRAM activations and flag rows whose activation count crosses the
// mitigation threshold within an epoch.
//
// AQUA is tracker-agnostic (Section IV-B); this package provides the three
// designs the paper discusses:
//
//   - MisraGries: the per-bank Misra-Gries frequent-elements tracker used by
//     Graphene and RRS, including the spill-counter behaviour that causes
//     the spurious mitigations the paper observes (Section IV-F).
//   - Hydra: a storage-optimized hybrid tracker in the spirit of Hydra —
//     small SRAM group counters backed by exact per-row counters that are
//     materialized (conceptually in DRAM) only when a group gets hot.
//   - Exact: a reference tracker with one exact counter per row, used to
//     validate the others and for security proofs in tests.
//
// All trackers share the same contract: RecordACT is invoked once per row
// activation with the *physical* row (after any FPT indirection, per
// security property P3) and returns true each time the row's estimated
// count reaches a fresh multiple of the threshold, at which point the
// mitigation engine must act.
package tracker

import (
	"fmt"
	"math/bits"

	"repro/internal/dram"
)

// Tracker observes activations and flags aggressor rows.
type Tracker interface {
	// RecordACT records one activation of a physical row and reports
	// whether the row has just crossed a (multiple of the) threshold and
	// therefore requires mitigation.
	RecordACT(row dram.Row) bool
	// Reset clears per-epoch state. Called every tracker epoch (the paper
	// resets at every 64ms refresh interval).
	Reset()
	// SRAMBytes returns the tracker's SRAM footprint for storage accounting.
	SRAMBytes() int
	// Name identifies the tracker in reports.
	Name() string
}

// entry is one Misra-Gries table slot as the eviction heap sees it. The
// count here is a *lazily maintained lower bound* on the row's true count
// in MisraGries.cnt: the hot path increments cnt without touching the
// heap, and ensureMin refreshes keys only when an eviction decision needs
// the true minimum.
type entry struct {
	row   dram.Row
	count int64
}

// MisraGries is a per-bank Misra-Gries (Graphene-style) tracker. Each bank
// owns a small table of (row, counter) pairs plus a spill counter. The
// Misra-Gries invariant — every row's estimated count is at least its true
// count — guarantees that any row activated `threshold` times in an epoch
// is flagged, provided the table has at least ACTmax/threshold entries per
// bank.
//
// Faithful quirk: a newly installed row inherits the spill counter value,
// so its estimated count starts above its true count; sufficiently active
// banks therefore trigger occasional *spurious* mitigations exactly as the
// paper reports for workloads like imagick (Section IV-F).
//
// Layout: the authoritative counts live in the dense cnt array (one probe
// per RecordACT on the already-tracked fast path — the common case, since
// hot rows stay tracked). Each bank's heap orders entries by a stale
// (count, row) key that is a lower bound on the true count; keys are
// refreshed top-down only when the full-table install path needs the true
// minimum. Deferring the per-hit sift-down this way keeps the eviction
// victim *identical* to an eagerly-maintained heap: counts only grow, so
// a stale key never overtakes a true one, and the refreshed root is the
// unique true minimum (rows break count ties, and no two entries share a
// row).
type MisraGries struct {
	geom      dram.Geometry
	threshold int64
	capacity  int
	banks     []mgBank
	// cnt is the dense row -> estimated-count array shared by all banks
	// (each row belongs to exactly one bank); 0 means untracked (a tracked
	// entry's count is always >= 1, so 0 is a sound sentinel). This is the
	// single probe of the RecordACT fast path. int32 halves the probe's
	// cache footprint and cannot overflow: counts reset every epoch, and
	// an epoch holds at most ~tREFW/tRC ~ 1.4M activations per bank, far
	// below 2^31.
	cnt []int32
	// thr is the precomputed divide-free divisibility test for threshold.
	thr multiple
}

type mgBank struct {
	heap  []entry // min-heap on the stale (count, row) lower bounds
	spill int64
}

// NewMisraGries builds a tracker that flags rows every `threshold`
// activations. entriesPerBank is sized so the Misra-Gries guarantee holds:
// the canonical provisioning is ACTmax/threshold entries (use
// ProvisionEntries).
func NewMisraGries(geom dram.Geometry, threshold int64, entriesPerBank int) *MisraGries {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	if entriesPerBank < 1 {
		panic("tracker: need at least one entry per bank")
	}
	t := &MisraGries{
		geom:      geom,
		threshold: threshold,
		capacity:  entriesPerBank,
		banks:     make([]mgBank, geom.Banks),
		cnt:       make([]int32, geom.Rows()),
		thr:       newMultiple(threshold),
	}
	for i := range t.banks {
		t.banks[i] = mgBank{heap: make([]entry, 0, entriesPerBank)}
	}
	return t
}

// multiple tests divisibility by a fixed positive divisor without a
// hardware divide, which RecordACT would otherwise pay on every
// activation. Write d = 2^shift * odd: x is a multiple of d exactly when
// its low `shift` bits are zero and (x>>shift) * inverse(odd) (mod 2^64)
// lands in [0, floor((2^64-1)/odd)] — the Granlund-Montgomery/Lemire
// divisibility test (multiplication by the odd inverse permutes residues
// and maps exactly the multiples into that range).
type multiple struct {
	shift uint
	inv   uint64 // multiplicative inverse of d>>shift modulo 2^64
	lim   uint64 // floor((2^64-1) / (d>>shift))
}

func newMultiple(d int64) multiple {
	u := uint64(d)
	shift := uint(bits.TrailingZeros64(u))
	odd := u >> shift
	// Newton iteration for the odd inverse mod 2^64: x0 = odd is correct
	// to 3 bits (odd^2 = 1 mod 8), and each step doubles the correct
	// low-bit count, so 5 steps reach >= 64 bits.
	inv := odd
	for i := 0; i < 5; i++ {
		inv *= 2 - odd*inv
	}
	return multiple{shift: shift, inv: inv, lim: ^uint64(0) / odd}
}

// of reports whether x (>= 0) is a multiple of the divisor.
func (m multiple) of(x int64) bool {
	u := uint64(x)
	return u&(1<<m.shift-1) == 0 && (u>>m.shift)*m.inv <= m.lim
}

// heap helpers: min-heap ordered by (count, row). The row id breaks count
// ties so the eviction victim is a canonical function of the table
// contents — without it, which of several minimum-count entries sat at
// the root depended on insertion history, and a future refactor of the
// install path could silently change every downstream figure.

func (b *mgBank) less(i, j int) bool {
	if b.heap[i].count != b.heap[j].count {
		return b.heap[i].count < b.heap[j].count
	}
	return b.heap[i].row < b.heap[j].row
}

func (b *mgBank) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(i, parent) {
			return
		}
		b.heap[i], b.heap[parent] = b.heap[parent], b.heap[i]
		i = parent
	}
}

// siftDown restores heap order below i and returns the entry's final
// position (CorruptEntry's recovery needs it).
func (b *mgBank) siftDown(i int) int {
	n := len(b.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && b.less(left, smallest) {
			smallest = left
		}
		if right < n && b.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return i
		}
		b.heap[i], b.heap[smallest] = b.heap[smallest], b.heap[i]
		i = smallest
	}
}

// ensureMin refreshes the heap root until it carries its true count, at
// which point it is the bank's true (count, row) minimum: every key is a
// lower bound, so for any other entry trueKey >= staleKey >= root's key,
// and distinct rows make the order strict. Each iteration freshens one
// stale entry, so the loop terminates in at most len(heap) steps; across
// RecordACT calls the work is bounded by the hit-path sifts it replaced.
func (t *MisraGries) ensureMin(b *mgBank) {
	for {
		true_ := int64(t.cnt[b.heap[0].row])
		if true_ == b.heap[0].count {
			return
		}
		b.heap[0].count = true_
		b.siftDown(0)
	}
}

// ProvisionEntries returns the per-bank Misra-Gries table size required to
// guarantee detection of every row reaching `threshold` activations within
// an epoch, given the bank's activation budget.
func ProvisionEntries(timing dram.Timing, threshold int64) int {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	n := timing.ACTMax() / threshold
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Name implements Tracker.
func (t *MisraGries) Name() string { return "misra-gries" }

// Threshold returns the per-epoch flagging threshold.
func (t *MisraGries) Threshold() int64 { return t.threshold }

// RecordACT implements Tracker. The already-tracked fast path is a single
// dense-array probe and increment; the heap is not touched (its key for
// this row goes stale as a lower bound, repaired lazily by ensureMin).
func (t *MisraGries) RecordACT(row dram.Row) bool {
	if c := t.cnt[row]; c != 0 {
		c++
		t.cnt[row] = c
		return t.thr.of(int64(c))
	}
	return t.install(row)
}

// install is the untracked-row slow path: claim a free slot, or pump the
// spill counter and apply Graphene's swap rule against the true minimum.
func (t *MisraGries) install(row dram.Row) bool {
	b := &t.banks[t.geom.BankOf(row)]
	if len(b.heap) < t.capacity {
		// Free slot: install with the spill counter inherited, which may
		// immediately cross the threshold (the spurious-mitigation path).
		c := b.spill + 1
		t.cnt[row] = int32(c)
		b.heap = append(b.heap, entry{row: row, count: c})
		b.siftUp(len(b.heap) - 1)
		return t.thr.of(c)
	}
	// Table full: bump the spill counter; once it catches up with the
	// minimum tracked count, the minimum entry and the spill counter
	// exchange roles (Graphene's swap rule): the new row is installed
	// with the spill value as its count, and the evicted entry's count
	// becomes the new spill value. The exchange keeps the Misra-Gries
	// sum invariant (sum of counters + spill <= total ACTs + capacity),
	// which bounds the spill by ~ACTs/capacity and yields the detection
	// guarantee. The root's stale key is a lower bound, so a spill below
	// it is below the true minimum too and skips the refresh entirely.
	b.spill++
	if b.spill >= b.heap[0].count {
		t.ensureMin(b)
		if b.spill >= b.heap[0].count {
			evicted := b.heap[0].count
			t.cnt[b.heap[0].row] = 0
			c := b.spill
			t.cnt[row] = int32(c)
			b.heap[0] = entry{row: row, count: c}
			b.siftDown(0)
			b.spill = evicted
			return t.thr.of(c)
		}
	}
	return false
}

// Reset implements Tracker. The dense count array is un-marked entry by
// entry (bounded by table occupancy) rather than wholesale, so a reset
// costs O(tracked rows), not O(all rows).
func (t *MisraGries) Reset() {
	for i := range t.banks {
		b := &t.banks[i]
		for _, e := range b.heap {
			t.cnt[e.row] = 0
		}
		b.heap = b.heap[:0]
		b.spill = 0
	}
}

// EstimatedCount returns the tracker's current estimate for a row (0 if
// untracked); exposed for tests.
func (t *MisraGries) EstimatedCount(row dram.Row) int64 { return int64(t.cnt[row]) }

// Spill returns the current spill counter of the row's bank; exposed for
// tests of the Misra-Gries invariant.
func (t *MisraGries) Spill(bank int) int64 { return t.banks[bank].spill }

// CorruptEntry deliberately corrupts one tracked counter (fault
// injection): in the chosen bank, the heap entry at index idx (both taken
// modulo the live sizes so any payload draw maps to a valid target) has
// its count replaced by newCount, after which the heap is re-sifted
// around the corrupted key. The *value* is wrong — that is the fault —
// but the structure recovers to a well-formed heap, which
// CheckConsistency re-verifies. Returns the affected row, or ok=false
// when the bank tracks nothing yet.
func (t *MisraGries) CorruptEntry(bank, idx int, newCount int64) (row dram.Row, ok bool) {
	b := &t.banks[bank%len(t.banks)]
	if len(b.heap) == 0 {
		return 0, false
	}
	if newCount < 1 {
		newCount = 1 // a tracked entry always has at least its install count
	}
	i := idx % len(b.heap)
	row = b.heap[i].row
	// The corruption lands on the authoritative count and the heap key
	// together (the key must stay a lower bound on the count).
	t.cnt[row] = int32(newCount)
	b.heap[i].count = newCount
	// Recovery: restore heap order around the bad value. siftDown handles
	// an increased key; if the key shrank, siftDown is a no-op and siftUp
	// lifts it.
	if b.siftDown(i) == i {
		b.siftUp(i)
	}
	return row, true
}

// CheckConsistency verifies the tracker's structural invariants: min-heap
// order on the stale keys in every bank, every key a lower bound on the
// row's authoritative count, and counts at least 1. Fault injection calls
// it after CorruptEntry to prove re-sifting restored a well-formed
// structure.
func (t *MisraGries) CheckConsistency() error {
	for bi := range t.banks {
		b := &t.banks[bi]
		for i := range b.heap {
			c := int64(t.cnt[b.heap[i].row])
			if c < 1 {
				return fmt.Errorf("tracker: bank %d heap[%d] row %d has count %d < 1", bi, i, b.heap[i].row, c)
			}
			if b.heap[i].count > c {
				return fmt.Errorf("tracker: bank %d heap[%d] key %d exceeds row %d's count %d",
					bi, i, b.heap[i].count, b.heap[i].row, c)
			}
			if i > 0 {
				if parent := (i - 1) / 2; b.less(i, parent) {
					return fmt.Errorf("tracker: bank %d heap order violated at %d (key %d under parent %d)",
						bi, i, b.heap[i].count, b.heap[parent].count)
				}
			}
		}
	}
	return nil
}

// SRAMBytes implements Tracker: per entry one row tag (log2 rowsPerBank
// bits, rounded up) plus a counter, per bank, matching the ~396KB/rank the
// paper charges the MG tracker at threshold 500 (Appendix B). The dense
// count array is a simulator acceleration structure, not hardware state,
// so it is not charged here.
func (t *MisraGries) SRAMBytes() int {
	perEntry := 5 // 21-bit row tag + ~19-bit counter, rounded up to 5 bytes
	return t.capacity * perEntry * len(t.banks)
}

// Exact tracks every row with an exact counter. It is the reference
// implementation used to validate guarantee properties; its SRAM cost would
// be impractical in hardware.
type Exact struct {
	threshold int64
	counts    []int64
}

// NewExact builds an exact tracker over the geometry.
func NewExact(geom dram.Geometry, threshold int64) *Exact {
	if threshold < 1 {
		panic("tracker: threshold must be >= 1")
	}
	return &Exact{threshold: threshold, counts: make([]int64, geom.Rows())}
}

// Name implements Tracker.
func (t *Exact) Name() string { return "exact" }

// RecordACT implements Tracker.
func (t *Exact) RecordACT(row dram.Row) bool {
	t.counts[row]++
	return t.counts[row]%t.threshold == 0
}

// Reset implements Tracker.
func (t *Exact) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
}

// Count returns the exact per-epoch count for a row.
func (t *Exact) Count(row dram.Row) int64 { return t.counts[row] }

// SRAMBytes implements Tracker.
func (t *Exact) SRAMBytes() int { return len(t.counts) * 3 }

// Hydra is a storage-optimized hybrid tracker in the spirit of Qureshi et
// al.'s Hydra: a small SRAM table of *group* counters covers all rows; when
// a group's shared counter crosses a fraction of the threshold, the group
// is "split" and exact per-row counters are materialized (in DRAM in the
// real design; here the DRAM residency only affects the storage accounting
// and a per-access latency charge recorded in stats).
type Hydra struct {
	threshold  int64
	groupShift uint // rows per group = 1<<groupShift
	// groups folds the shared counter and the split seed into one probe:
	// a non-negative value is the group's shared count (not yet split); a
	// negative value marks a split group whose seed — the shared count at
	// split time — is the negation. Every member row's per-row counter is
	// lazily seeded with it (a sound over-approximation of the row's
	// pre-split count). The encoding is sound because a shared count and
	// a seed are both always >= 1 when they matter.
	groups []int32
	// split holds the materialized per-row counters as a dense array keyed
	// by flat Row; 0 means "not yet materialized" (sound as a sentinel:
	// a materialized counter starts at the split-time group count >= 1 and
	// only ever increments). Like MisraGries.cnt, int32 is safe because
	// per-epoch counts are physically bounded far below 2^31.
	split []int32
	// DRAMLookups counts accesses that had to consult the in-DRAM row
	// counters (a proxy for Hydra's extra memory traffic).
	DRAMLookups int64
	// thr is the precomputed divide-free divisibility test for threshold.
	thr multiple
}

// NewHydra builds a Hydra-like tracker. groupSize must be a power of two.
func NewHydra(geom dram.Geometry, threshold int64, groupSize int) *Hydra {
	if threshold < 2 {
		panic("tracker: hydra threshold must be >= 2")
	}
	if groupSize < 1 || groupSize&(groupSize-1) != 0 {
		panic("tracker: hydra group size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != groupSize {
		shift++
	}
	nGroups := (geom.Rows() + groupSize - 1) / groupSize
	return &Hydra{
		threshold:  threshold,
		groupShift: shift,
		groups:     make([]int32, nGroups),
		split:      make([]int32, geom.Rows()),
		thr:        newMultiple(threshold),
	}
}

// Name implements Tracker.
func (t *Hydra) Name() string { return "hydra" }

func (t *Hydra) groupOf(row dram.Row) uint32 { return uint32(row) >> t.groupShift }

// RecordACT implements Tracker. The group counter over-approximates each
// member row's count, so splitting at threshold/2 preserves the guarantee:
// a row can never reach `threshold` without its group having split first,
// after which it is tracked with a per-row counter seeded from the group
// count (est >= true, so a flag always fires at or before the true count
// reaches the threshold). One group-array probe decides both the split
// state and the seed (see the groups field comment).
func (t *Hydra) RecordACT(row dram.Row) bool {
	g := t.groupOf(row)
	gc := t.groups[g]
	if gc >= 0 {
		gc++
		t.groups[g] = gc
		if int64(gc) >= t.threshold/2 {
			// Split: per-row counters take over from here.
			t.groups[g] = -gc
			t.DRAMLookups++
			t.split[row] = gc
			return t.thr.of(int64(gc))
		}
		return false
	}
	t.DRAMLookups++
	c := t.split[row]
	if c == 0 {
		c = -gc // lazy seeding with the split-time group count
	}
	c++
	t.split[row] = c
	return t.thr.of(int64(c))
}

// Reset implements Tracker.
func (t *Hydra) Reset() {
	clear(t.groups)
	clear(t.split)
	t.DRAMLookups = 0
}

// SRAMBytes implements Tracker: 2 bytes per group counter (the in-DRAM row
// counters are excluded, as in the paper's Table VII which charges Hydra
// 28.3KB SRAM).
func (t *Hydra) SRAMBytes() int { return len(t.groups) * 2 }

// String summarises a tracker for logs.
func Describe(t Tracker) string {
	return fmt.Sprintf("%s (%d KB SRAM)", t.Name(), t.SRAMBytes()/1024)
}
