package vrefresh

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/tracker"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

func newEngine(t *testing.T, trh int64, distance int, onRefresh func(dram.Row, dram.PS)) *Engine {
	t.Helper()
	rank := dram.NewRank(testGeom(), dram.DDR4())
	return New(rank, Config{
		TRH:             trh,
		RefreshDistance: distance,
		Tracker:         tracker.NewExact(testGeom(), trh/2),
		OnRefresh:       onRefresh,
	})
}

func TestNeighborsRefreshedAtThreshold(t *testing.T) {
	var refreshed []dram.Row
	e := newEngine(t, 40, 1, func(r dram.Row, _ dram.PS) { refreshed = append(refreshed, r) })
	aggr := testGeom().RowOf(0, 10)
	var busy dram.PS
	for i := 0; i < 20; i++ {
		busy += e.OnActivate(aggr, dram.PS(i)*1000)
	}
	if len(refreshed) != 2 {
		t.Fatalf("refreshed %v", refreshed)
	}
	want := map[dram.Row]bool{
		testGeom().RowOf(0, 9):  true,
		testGeom().RowOf(0, 11): true,
	}
	for _, r := range refreshed {
		if !want[r] {
			t.Fatalf("unexpected victim %d", r)
		}
	}
	if busy <= 0 {
		t.Fatal("victim refresh consumed no channel time")
	}
	st := e.Stats()
	if st.Mitigations != 1 || st.VictimRefreshes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistanceTwoRefreshesFourRows(t *testing.T) {
	var refreshed []dram.Row
	e := newEngine(t, 40, 2, func(r dram.Row, _ dram.PS) { refreshed = append(refreshed, r) })
	for i := 0; i < 20; i++ {
		e.OnActivate(testGeom().RowOf(0, 10), dram.PS(i)*1000)
	}
	if len(refreshed) != 4 {
		t.Fatalf("refreshed %d rows, want 4", len(refreshed))
	}
}

func TestEdgeRowRefreshesOneNeighbor(t *testing.T) {
	var refreshed []dram.Row
	e := newEngine(t, 40, 1, func(r dram.Row, _ dram.PS) { refreshed = append(refreshed, r) })
	for i := 0; i < 20; i++ {
		e.OnActivate(testGeom().RowOf(0, 0), dram.PS(i)*1000)
	}
	if len(refreshed) != 1 {
		t.Fatalf("refreshed %v", refreshed)
	}
}

func TestNoActionBelowThreshold(t *testing.T) {
	e := newEngine(t, 40, 1, nil)
	for i := 0; i < 19; i++ {
		if busy := e.OnActivate(testGeom().RowOf(0, 10), dram.PS(i)); busy != 0 {
			t.Fatal("action below threshold")
		}
	}
	if e.Stats().Mitigations != 0 {
		t.Fatal("mitigated below threshold")
	}
}

func TestTranslateIsIdentity(t *testing.T) {
	e := newEngine(t, 40, 1, nil)
	row := testGeom().RowOf(1, 5)
	if tr := e.Translate(row, 0); tr.PhysRow != row {
		t.Fatal("victim refresh must not remap rows")
	}
	if e.Delay(row, 7) != 7 {
		t.Fatal("victim refresh must not throttle")
	}
}

func TestEpochResetsTracker(t *testing.T) {
	e := newEngine(t, 40, 1, nil)
	row := testGeom().RowOf(0, 10)
	for i := 0; i < 19; i++ {
		e.OnActivate(row, dram.PS(i))
	}
	e.OnEpoch(64 * dram.Millisecond)
	// One more ACT is now 1/20, not 20/20.
	if busy := e.OnActivate(row, 65*dram.Millisecond); busy != 0 {
		t.Fatal("tracker survived epoch")
	}
}

func TestName(t *testing.T) {
	if newEngine(t, 40, 1, nil).Name() != "victim-refresh" {
		t.Fatal("name")
	}
}

func TestDefaultTrackerProvisioned(t *testing.T) {
	// nil Tracker: the engine provisions a Misra-Gries tracker at TRH/2.
	rank := dram.NewRank(testGeom(), dram.DDR4())
	e := New(rank, Config{TRH: 40})
	aggr := testGeom().RowOf(0, 10)
	var mitigated bool
	for i := 0; i < 25; i++ {
		if e.OnActivate(aggr, dram.PS(i)*1000) > 0 {
			mitigated = true
			break
		}
	}
	if !mitigated {
		t.Fatal("default tracker never triggered")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fillDefaults()
	if cfg.TRH != 1000 || cfg.RefreshDistance != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if (Config{TRH: 1}).EffectiveThreshold() != 1 {
		t.Fatal("threshold floor")
	}
}
