// Package vrefresh implements the classic victim-refresh mitigation: when
// the tracker flags an aggressor row, the rows adjacent to it are
// refreshed to restore their charge (Section II-D).
//
// The package exists primarily as the foil in the paper's security story:
// victim refresh stops classic single- and double-sided Rowhammer but (a)
// requires knowledge of the DRAM-internal row mapping and (b) is defeated
// by Half-Double, where the mitigating refreshes of distance-1 rows
// themselves disturb rows at distance 2 (Figure 1a). The engine exposes a
// refresh callback so the charge model in internal/flipmodel can observe
// mitigating refreshes and reproduce the Half-Double effect; configuring
// RefreshDistance > 1 demonstrates the paper's observation that refreshing
// further neighbours merely pushes the attack to distance N+1.
package vrefresh

import (
	"repro/internal/dram"
	"repro/internal/mitigation"
	"repro/internal/tracker"
)

// Config parameterizes victim refresh.
type Config struct {
	// TRH is the Rowhammer threshold; victims are refreshed every TRH/2
	// activations of an aggressor.
	TRH int64
	// RefreshDistance refreshes neighbours at distances 1..RefreshDistance
	// (default 1, the classic scheme).
	RefreshDistance int
	// Tracker overrides the aggressor tracker.
	Tracker tracker.Tracker
	// OnRefresh, if set, observes every mitigating refresh (row, time).
	// The flip model hooks in here.
	OnRefresh func(row dram.Row, at dram.PS)
}

func (c *Config) fillDefaults() {
	if c.TRH == 0 {
		c.TRH = 1000
	}
	if c.RefreshDistance == 0 {
		c.RefreshDistance = 1
	}
}

// EffectiveThreshold returns TRH/2 (at least 1).
func (c Config) EffectiveThreshold() int64 {
	t := c.TRH / 2
	if t < 1 {
		t = 1
	}
	return t
}

// Engine implements mitigation.Mitigator for victim refresh. Not safe for
// concurrent use.
type Engine struct {
	cfg   Config
	rank  *dram.Rank
	geom  dram.Geometry
	art   tracker.Tracker
	stats mitigation.Stats
}

var _ mitigation.Mitigator = (*Engine)(nil)

// New builds a victim-refresh engine bound to a rank.
func New(rank *dram.Rank, cfg Config) *Engine {
	cfg.fillDefaults()
	e := &Engine{cfg: cfg, rank: rank, geom: rank.Geometry()}
	e.art = cfg.Tracker
	if e.art == nil {
		e.art = tracker.NewMisraGries(e.geom, cfg.EffectiveThreshold(),
			tracker.ProvisionEntries(rank.Timing(), cfg.EffectiveThreshold()))
	}
	return e
}

// Name implements mitigation.Mitigator.
func (e *Engine) Name() string { return "victim-refresh" }

// Translate implements mitigation.Mitigator: no indirection.
func (e *Engine) Translate(row dram.Row, _ dram.PS) mitigation.Translation {
	e.stats.Lookups[mitigation.LookupNone]++
	return mitigation.Translation{PhysRow: row, Class: mitigation.LookupNone}
}

// Delay implements mitigation.Mitigator; no throttling.
func (e *Engine) Delay(_ dram.Row, now dram.PS) dram.PS { return now }

// OnActivate implements mitigation.Mitigator: refresh the neighbours when
// the tracker flags the row.
func (e *Engine) OnActivate(physRow dram.Row, at dram.PS) dram.PS {
	if !e.art.RecordACT(physRow) {
		return 0
	}
	e.stats.Mitigations++
	t := at
	trc := e.rank.Timing().TRC
	for d := 1; d <= e.cfg.RefreshDistance; d++ {
		pair, n := e.geom.NeighborPair(physRow, d)
		for _, victim := range pair[:n] {
			// A targeted row refresh is an activate+precharge of the
			// victim: one tRC of bank time.
			t += trc
			e.stats.VictimRefreshes++
			if e.cfg.OnRefresh != nil {
				e.cfg.OnRefresh(victim, t)
			}
		}
	}
	e.rank.Reserve(t)
	busy := t - at
	e.stats.ChannelBusy += busy
	return busy
}

// OnEpoch implements mitigation.Mitigator.
func (e *Engine) OnEpoch(_ dram.PS) { e.art.Reset() }

// Stats implements mitigation.Mitigator.
func (e *Engine) Stats() mitigation.Stats { return e.stats }

// StatsReset zeroes the counters.
func (e *Engine) StatsReset() { e.stats = mitigation.Stats{} }
