// Package cpu implements the interval-model core front-end: the stand-in
// for gem5's out-of-order cores that drives the memory system with
// realistic miss streams.
//
// Each core executes a stream of (compute gap, memory request) intervals.
// Compute advances core-local time at the configured non-memory IPC; a
// memory request occupies one of a bounded number of outstanding-miss
// slots (the MLP limit, standing in for MSHRs/ROB capacity). When all
// slots are busy the core stalls until the oldest miss returns. This
// reproduces the first-order behaviour that converts channel-busy time
// (migrations, refresh, table walks) into IPC loss, which is where all of
// the paper's slowdown comes from (Section IV-G).
package cpu

import (
	"fmt"

	"repro/internal/dram"
)

// Request is one memory operation produced by a stream.
type Request struct {
	// Row is the install (software-visible) row the line lives in.
	Row dram.Row
	// Write marks a writeback rather than a demand read.
	Write bool
	// GapInstr is the number of instructions executed since the previous
	// request.
	GapInstr int64
}

// Stream produces the core's memory requests in program order. Next
// returns ok=false when the stream is exhausted.
type Stream interface {
	Next() (Request, bool)
}

// Config parameterizes one core.
type Config struct {
	// FreqHz is the core clock (default 3GHz, Table I).
	FreqHz int64
	// NonMemIPC is the IPC the core sustains on non-miss instructions
	// (default 2.0: an 8-wide fetch core bound by dependencies).
	NonMemIPC float64
	// MLP is the number of outstanding misses the core overlaps (default
	// 4).
	MLP int
}

func (c *Config) fillDefaults() {
	if c.FreqHz == 0 {
		c.FreqHz = 3_000_000_000
	}
	if c.NonMemIPC == 0 {
		c.NonMemIPC = 2.0
	}
	if c.MLP == 0 {
		c.MLP = 4
	}
}

// Core is one interval-model core. Not safe for concurrent use.
type Core struct {
	cfg    Config
	id     int
	stream Stream

	// outstanding completion times, oldest first, held in a fixed ring of
	// MLP capacity: outHead is the physical index of the oldest entry and
	// outLen the occupancy. A ring rather than a shifted slice because the
	// oldest-miss pop runs once per request — the memmove was a fixed tax
	// on the issue hot path. The steady-state request path never allocates.
	outstanding []dram.PS
	outHead     int
	outLen      int
	// nextIssue is when the next request's compute gap has elapsed.
	nextIssue dram.PS
	// queued is the next request, already drawn from the stream.
	queued   Request
	hasQueue bool
	done     bool

	instrRetired int64
	lastComplete dram.PS
	stallTime    dram.PS
}

// New builds a core over a stream.
func New(id int, stream Stream, cfg Config) *Core {
	cfg.fillDefaults()
	if stream == nil {
		panic("cpu: nil stream")
	}
	return &Core{cfg: cfg, id: id, stream: stream,
		outstanding: make([]dram.PS, cfg.MLP)}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Done reports whether the stream is exhausted and all misses returned.
func (c *Core) Done() bool { return c.done && c.outLen == 0 }

// InstrRetired returns the instructions completed so far.
func (c *Core) InstrRetired() int64 { return c.instrRetired }

// FinishTime returns the completion time of the last memory request.
func (c *Core) FinishTime() dram.PS { return c.lastComplete }

// StallTime returns the accumulated time the core spent with all miss
// slots occupied.
func (c *Core) StallTime() dram.PS { return c.stallTime }

// IPC returns instructions per cycle given a measurement interval.
func (c *Core) IPC(elapsed dram.PS) float64 {
	if elapsed <= 0 {
		return 0
	}
	cycles := float64(elapsed) / 1e12 * float64(c.cfg.FreqHz)
	return float64(c.instrRetired) / cycles
}

// QueuedRow returns the row targeted by the core's buffered next request,
// ok=false when none is buffered yet (call NextIssueTime first) or the
// stream is exhausted. The run loop's blocked-bank scheduler reads it to
// decide whether the core can park on its target bank's expiry event.
func (c *Core) QueuedRow() (dram.Row, bool) {
	return c.queued.Row, c.hasQueue
}

// gapTime converts an instruction gap into core time.
func (c *Core) gapTime(instr int64) dram.PS {
	if instr <= 0 {
		return 0
	}
	sec := float64(instr) / c.cfg.NonMemIPC / float64(c.cfg.FreqHz)
	return dram.PS(sec * 1e12)
}

// NextIssueTime returns the time at which the core's next request is ready
// to be submitted, or ok=false if the core has finished. The simulator
// uses this to pick the globally earliest event.
func (c *Core) NextIssueTime() (dram.PS, bool) {
	if c.done {
		return 0, false
	}
	if !c.hasQueue {
		req, ok := c.stream.Next()
		if !ok {
			c.done = true
			return 0, false
		}
		c.queued = req
		c.hasQueue = true
		c.nextIssue += c.gapTime(req.GapInstr)
	}
	issue := c.nextIssue
	if c.outLen >= c.cfg.MLP {
		// All miss slots busy: stall until the oldest miss returns.
		if t := c.outstanding[c.outHead]; t > issue {
			issue = t
		}
	}
	return issue, true
}

// IssueRun issues a batch of consecutive requests on this core: the first
// at time `at` (which must be the core's current next-issue time),
// then repeatedly while the core's following issue time stays strictly
// below `limit` — the foreign-event horizon the run loop computes from
// its calendar. At most `max` requests are issued.
//
// It returns the number issued, the core's next issue time, and whether
// the core still has requests (more=false means the stream is exhausted).
// Batching is sound because NextIssueTime reads only core-local state, so
// a run of same-core issues below the horizon cannot change — or be
// changed by — any other pending event; an issue time exactly AT the
// horizon ends the batch and is re-ordered against the foreign event by
// the calendar's (time, class, index) contract. See DESIGN.md
// "Event-driven core & time-skip invariants".
func (c *Core) IssueRun(at, limit dram.PS, max int, submit func(row dram.Row, write bool, at dram.PS) dram.PS) (n int, next dram.PS, more bool) {
	for {
		c.Issue(at, submit)
		n++
		nt, ok := c.NextIssueTime()
		if !ok {
			return n, 0, false
		}
		if n >= max || nt >= limit {
			return n, nt, true
		}
		at = nt
	}
}

// outSlot maps a logical position in the outstanding window (0 = oldest)
// to its ring slot.
func (c *Core) outSlot(i int) *dram.PS {
	j := c.outHead + i
	if j >= len(c.outstanding) {
		j -= len(c.outstanding)
	}
	return &c.outstanding[j]
}

// Issue submits the queued request through submit (typically
// memctrl.Controller.Submit) at time `at` and updates core state with the
// completion time.
func (c *Core) Issue(at dram.PS, submit func(row dram.Row, write bool, at dram.PS) dram.PS) {
	if !c.hasQueue {
		panic(fmt.Sprintf("cpu: core %d Issue without a queued request", c.id))
	}
	if c.outLen >= c.cfg.MLP {
		oldest := c.outstanding[c.outHead]
		c.outHead++
		if c.outHead == len(c.outstanding) {
			c.outHead = 0
		}
		c.outLen--
		if oldest > c.nextIssue {
			c.stallTime += oldest - c.nextIssue
		}
	}
	done := submit(c.queued.Row, c.queued.Write, at)
	// Insert keeping completions ordered; out-of-order completions are
	// rare (bank timing is mostly FIFO per this model) but possible
	// across banks, so the bubble loop almost never iterates.
	i := c.outLen
	c.outLen++
	for i > 0 && *c.outSlot(i-1) > done {
		*c.outSlot(i) = *c.outSlot(i-1)
		i--
	}
	*c.outSlot(i) = done
	c.instrRetired += c.queued.GapInstr + 1
	if done > c.lastComplete {
		c.lastComplete = done
	}
	c.nextIssue = at
	c.hasQueue = false
}
