package cpu

import (
	"testing"

	"repro/internal/dram"
)

// fixedStream yields n identical requests.
type fixedStream struct {
	n   int
	req Request
}

func (s *fixedStream) Next() (Request, bool) {
	if s.n == 0 {
		return Request{}, false
	}
	s.n--
	return s.req, true
}

// listStream yields a fixed request list.
type listStream struct {
	reqs []Request
}

func (s *listStream) Next() (Request, bool) {
	if len(s.reqs) == 0 {
		return Request{}, false
	}
	r := s.reqs[0]
	s.reqs = s.reqs[1:]
	return r, true
}

// constSubmit completes every request a fixed latency after issue.
func constSubmit(lat dram.PS) func(dram.Row, bool, dram.PS) dram.PS {
	return func(_ dram.Row, _ bool, at dram.PS) dram.PS { return at + lat }
}

func drain(c *Core, submit func(dram.Row, bool, dram.PS) dram.PS) {
	for {
		t, ok := c.NextIssueTime()
		if !ok {
			return
		}
		c.Issue(t, submit)
	}
}

func TestComputeGapPacesIssues(t *testing.T) {
	// 3GHz, IPC 2: 600 instructions take 100ns.
	c := New(0, &fixedStream{n: 3, req: Request{GapInstr: 600}}, Config{})
	var issues []dram.PS
	drain(c, func(_ dram.Row, _ bool, at dram.PS) dram.PS {
		issues = append(issues, at)
		return at
	})
	if len(issues) != 3 {
		t.Fatalf("issued %d", len(issues))
	}
	want := dram.PS(100 * dram.Nanosecond)
	if issues[0] != want || issues[1] != 2*want || issues[2] != 3*want {
		t.Fatalf("issue times %v, want multiples of %d", issues, want)
	}
}

func TestMLPStall(t *testing.T) {
	// MLP 2, zero compute gap, 1us memory latency: issues 3 and beyond
	// must wait for earlier completions.
	c := New(0, &fixedStream{n: 4, req: Request{GapInstr: 0}}, Config{MLP: 2})
	var issues []dram.PS
	lat := dram.PS(dram.Microsecond)
	drain(c, func(_ dram.Row, _ bool, at dram.PS) dram.PS {
		issues = append(issues, at)
		return at + lat
	})
	if issues[0] != 0 || issues[1] != 0 {
		t.Fatalf("first two issues = %v, want both at 0", issues[:2])
	}
	if issues[2] != lat {
		t.Fatalf("third issue = %d, want %d (after first completion)", issues[2], lat)
	}
	if issues[3] != lat {
		t.Fatalf("fourth issue = %d, want %d", issues[3], lat)
	}
	if c.StallTime() == 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestInstrRetired(t *testing.T) {
	c := New(0, &fixedStream{n: 5, req: Request{GapInstr: 999}}, Config{})
	drain(c, constSubmit(100))
	if got := c.InstrRetired(); got != 5*1000 {
		t.Fatalf("instr = %d", got)
	}
}

func TestIPCAccounting(t *testing.T) {
	c := New(0, &fixedStream{n: 10, req: Request{GapInstr: 2999}}, Config{})
	drain(c, constSubmit(10*dram.Nanosecond))
	elapsed := c.FinishTime()
	ipc := c.IPC(elapsed)
	if ipc <= 0 || ipc > 8 {
		t.Fatalf("ipc = %g", ipc)
	}
	if c.IPC(0) != 0 {
		t.Fatal("zero-elapsed IPC must be 0")
	}
}

func TestDoneSemantics(t *testing.T) {
	c := New(0, &fixedStream{n: 1, req: Request{GapInstr: 1}}, Config{})
	if c.Done() {
		t.Fatal("done before start")
	}
	drain(c, constSubmit(100))
	if _, ok := c.NextIssueTime(); ok {
		t.Fatal("stream should be exhausted")
	}
}

func TestWriteFlagPropagated(t *testing.T) {
	c := New(0, &listStream{reqs: []Request{
		{Row: 7, Write: true, GapInstr: 1},
		{Row: 8, Write: false, GapInstr: 1},
	}}, Config{})
	var writes []bool
	drain(c, func(_ dram.Row, w bool, at dram.PS) dram.PS {
		writes = append(writes, w)
		return at
	})
	if len(writes) != 2 || !writes[0] || writes[1] {
		t.Fatalf("writes = %v", writes)
	}
}

func TestIssueWithoutQueuePanics(t *testing.T) {
	c := New(0, &fixedStream{n: 0}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Issue(0, constSubmit(1))
}

func TestNilStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, nil, Config{})
}

func TestSlowMemoryLowersIPC(t *testing.T) {
	mk := func(lat dram.PS) float64 {
		c := New(0, &fixedStream{n: 100, req: Request{GapInstr: 100}}, Config{MLP: 1})
		drain(c, constSubmit(lat))
		return c.IPC(c.FinishTime())
	}
	fast := mk(10 * dram.Nanosecond)
	slow := mk(1000 * dram.Nanosecond)
	if slow >= fast {
		t.Fatalf("slow memory did not lower IPC: %g vs %g", slow, fast)
	}
}

func TestID(t *testing.T) {
	if New(3, &fixedStream{n: 0}, Config{}).ID() != 3 {
		t.Fatal("id")
	}
}
