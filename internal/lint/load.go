package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/dram"), or a synthetic
	// label for directories outside the module (analyzer test corpora).
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking errors. Analysis proceeds
	// best-effort in their presence (mirroring x/tools behaviour for
	// corpora that deliberately contain odd code).
	TypeErrors []error

	ign *ignoreIndex // built on first use; shared across analyses
}

// ignoreIndex returns the package's `//aqualint:ignore` index, building
// it on first use. Sharing one index across per-package and module
// analyses is what lets the unused-suppression audit see every hit.
func (p *Package) ignoreIndex() *ignoreIndex {
	if p.ign == nil {
		p.ign = newIgnoreIndex(p.Fset, p.Files)
	}
	return p.ign
}

// Loader parses and type-checks packages of one module, resolving
// module-internal imports from source and standard-library imports
// through the compiler's source importer (both work offline).
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // memoized by directory (cleaned, absolute)
	seen    map[string]bool     // import-cycle guard by import path
	loading map[string]bool     // directories currently mid-load (re-entrancy = cycle)
	order   []*Package          // completion order: imports before importers
}

// Loaded returns every package this loader has finished loading, in
// completion order. Because Load resolves a package's module-internal
// imports before the package itself completes, this order is
// topological: dependencies come before dependents, which is the order
// module analyses process packages in.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, len(l.order))
	copy(out, l.order)
	return out
}

// NewLoader builds a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  modDir,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		seen:       make(map[string]bool),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks upward from dir looking for go.mod and returns the
// module directory and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
	}
}

// importPathFor maps a directory inside the module to its import path.
// Directories outside the module get a synthetic path (their base name),
// matching the layout of analyzer test corpora (testdata/src/<name>).
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirForImport maps a module-internal import path to its directory.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer so the type-checker can resolve the
// imports of packages under analysis.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirForImport(path); ok {
		if l.seen[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.seen[path] = true
		defer delete(l.seen, path)
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir (test files excluded),
// memoizing the result. Type errors are collected, not fatal.
func (l *Loader) Load(dir string) (*Package, error) {
	return l.LoadAs(dir, "")
}

// LoadAs is Load with an explicit import path, used by analyzer tests to
// give corpora under testdata/src a synthetic path ("a") that no
// path-scoping rule excludes. An empty path derives it from the module.
func (l *Loader) LoadAs(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	// A directory re-entered while its own load is still running can only
	// mean its imports lead back to it.
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s after build constraints", abs)
	}

	if path == "" {
		path = l.importPathFor(abs)
	}
	pkg := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Hard errors (unresolvable imports) surface through the returned
	// error; everything else lands in TypeErrors and analysis proceeds.
	tpkg, err := conf.Check(pkg.Path, l.Fset, files, pkg.Info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	l.pkgs[abs] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// fileIncluded evaluates a file's `//go:build` constraint (if any)
// against the host: GOOS, GOARCH, unix, the gc toolchain, and go1.N
// language-version tags are satisfied as the go tool would satisfy them;
// anything else (ignore, custom tags) is false. Files with no constraint
// are always included.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Build constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// An unparsable constraint excludes the file, matching
				// the go tool's refusal to build it.
				return false
			}
			if !expr.Eval(buildTagSatisfied) {
				return false
			}
		}
	}
	return true
}

// unixGOOS mirrors the go tool's "unix" build-tag set (the subset that
// matters for this module's platforms).
var unixGOOS = map[string]bool{
	"aix": true, "darwin": true, "dragonfly": true, "freebsd": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildTagSatisfied reports whether one build tag holds on this host.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	if strings.HasPrefix(tag, "go1") && version.IsValid(tag) {
		return version.Compare(version.Lang(runtime.Version()), tag) >= 0
	}
	return false
}

// PackageDirs expands a pattern list into package directories. Patterns
// ending in "/..." are walked recursively; others name single package
// directories. testdata, vendor, and hidden directories are skipped,
// mirroring the go tool's pattern semantics.
func PackageDirs(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil || seen[abs] {
			return
		}
		seen[abs] = true
		dirs = append(dirs, abs)
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			base, recursive = ".", true
		}
		if base == "" {
			base = "."
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
