// Package a is the noclock test corpus: wall-clock reads are flagged,
// duration arithmetic and type references are not.
package a

import "time"

func bad() time.Duration {
	start := time.Now()          // want `wall-clock call time.Now`
	time.Sleep(time.Millisecond) // want `wall-clock call time.Sleep`
	return time.Since(start)     // want `wall-clock call time.Since`
}

func badChannels() {
	<-time.After(time.Second) // want `wall-clock call time.After`
}

// ok: referring to the time package for types and constants is fine;
// only clock reads are banned.
func ok(d time.Duration) time.Duration { return d + 3*time.Second }
