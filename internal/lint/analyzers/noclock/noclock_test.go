package noclock_test

import (
	"testing"

	"repro/internal/lint/analyzers/noclock"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, noclock.Analyzer, "testdata", "a")
}

func TestScope(t *testing.T) {
	applies := noclock.Analyzer.Applies
	for _, p := range []string{"repro/cmd/aquasim", "repro/cmd/figures", "repro"} {
		if applies(p) {
			t.Errorf("%s is a front-end; wall-clock progress timing is allowed there", p)
		}
	}
	for _, p := range []string{"repro/internal/dram", "repro/internal/sim", "a"} {
		if !applies(p) {
			t.Errorf("%s is a simulation package; must be in scope", p)
		}
	}
}
