// Package noclock forbids wall-clock reads (time.Now, time.Since,
// time.Until, time.Sleep, time.After, time.Tick, time.NewTimer,
// time.NewTicker) in simulation packages (repro/internal/...). Simulated
// time must flow from the cycle counter (dram.PS); a wall-clock read in a
// model makes results depend on host speed and scheduling, destroying the
// identical-seed/identical-figure property. Command-line front-ends
// (cmd/...) may still measure wall time for progress reporting.
package noclock

import (
	"go/ast"
	"strings"

	"repro/internal/lint"
)

// banned lists the time-package functions that read or wait on the wall
// clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the noclock check.
var Analyzer = &lint.Analyzer{
	Name: "noclock",
	Doc: "forbid wall-clock reads in simulation packages; simulated time " +
		"must come from the cycle counter (dram.PS), not time.Now",
	Applies: func(pkgPath string) bool {
		// Simulation packages only; cmd/ front-ends and the repro root
		// package may time themselves. Non-module paths (analyzer test
		// corpora) are always in scope.
		if !strings.HasPrefix(pkgPath, "repro") {
			return true
		}
		return strings.HasPrefix(pkgPath, "repro/internal/")
	},
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(id)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock call time.%s in a simulation package; derive time from the cycle counter (dram.PS)", sel.Sel.Name)
			return true
		})
	}
}
