package keycoverage_test

import (
	"testing"

	"repro/internal/lint/analyzers/keycoverage"
	"repro/internal/lint/linttest"
)

func TestKeycoverage(t *testing.T) {
	linttest.Run(t, keycoverage.Analyzer, "testdata", "keycoveragetest")
}
