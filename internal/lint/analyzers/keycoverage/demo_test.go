package keycoverage_test

// The acceptance demonstration for keycoverage: growing a cell-key
// config struct by one field makes the lint fail, and it keeps failing
// until the field is either hashed or carries an //aquakey:exclude
// reason — exactly the regression the analyzer exists to catch in
// sim.ExpConfig / cellKeyAt.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers/keycoverage"
)

const demoKeyBase = `package cfg

import (
	"crypto/sha256"
	"fmt"
)

// Config parameterizes the demo experiment.
type Config struct {
	Window int
	Seed   uint64
%s}

// Key is the cell key: a hash over every result-determining field.
//
//aquakey:hash Config
func Key(c *Config) [32]byte {
	s := fmt.Sprintf("w=%%d seed=%%d\n", c.Window, c.Seed)
%s	return sha256.Sum256([]byte(s))
}
`

// runOver writes the module, loads it fresh, and runs keycoverage.
func runOver(t *testing.T, cfgSrc string) []lint.Diagnostic {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n\ngo 1.24\n")
	write("cfg/cfg.go", cfgSrc)
	mod, errs := lint.LoadModule(root, []string{"./..."})
	if len(errs) > 0 {
		t.Fatalf("LoadModule: %v", errs)
	}
	return lint.RunModuleAnalyzers(mod, []*lint.Analyzer{keycoverage.Analyzer})
}

func TestAddedFieldFailsUntilHandled(t *testing.T) {
	at := func(field, hash string) string {
		out := demoKeyBase
		out = strings.Replace(out, "%s}", field+"}", 1)
		out = strings.Replace(out, "%s\treturn", hash+"\treturn", 1)
		return out
	}

	// Phase 1: every field hashed — clean.
	if diags := runOver(t, at("", "")); len(diags) != 0 {
		t.Fatalf("baseline should be clean, got %v", diags)
	}

	// Phase 2: a new result-determining field lands without touching the
	// hash — the lint must fail on exactly that field.
	grown := at("\tRefresh int\n", "")
	diags := runOver(t, grown)
	if len(diags) != 1 {
		t.Fatalf("unhashed new field must fail the lint, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "Config.Refresh is not hashed") {
		t.Fatalf("wrong finding: %v", diags[0])
	}

	// Phase 3a: hashing the field clears it.
	hashed := at("\tRefresh int\n", "\ts += fmt.Sprintf(\"r=%d\\n\", c.Refresh)\n")
	if diags := runOver(t, hashed); len(diags) != 0 {
		t.Fatalf("hashed field must be clean, got %v", diags)
	}

	// Phase 3b: an //aquakey:exclude with a reason clears it too.
	excluded := at("\t//aquakey:exclude demo knob; wall-clock only\n\tRefresh int\n", "")
	if diags := runOver(t, excluded); len(diags) != 0 {
		t.Fatalf("excluded field must be clean, got %v", diags)
	}

	// ...but a bare exclude does not.
	bare := at("\t//aquakey:exclude\n\tRefresh int\n", "")
	diags = runOver(t, bare)
	if len(diags) != 2 {
		t.Fatalf("bare exclude must report missing reason and missing hash, got %v", diags)
	}
}
