// Package keycoverage enforces cache-key completeness: every field of a
// configuration struct that feeds a content-addressed hash must actually
// be hashed, or carry a written-down reason why not. It exists for one
// failure mode — someone adds a field to ExpConfig that changes
// simulated numbers, forgets to extend cellKeyAt, and the cell cache
// silently serves results computed under a different configuration.
//
// The hash function declares what it covers:
//
//	//aquakey:hash ExpConfig workload.Spec
//	func (r *Runner) cellKeyAt(...) (string, error) { ... }
//
// Each named type (bare = the function's package, qualified = any module
// package with that name) must be a struct; every one of its fields is
// then required to be hashed. Coverage evidence is gathered over the
// hash closure — the annotated function plus everything reachable from
// it in the call graph:
//
//   - a field selection (x.F) covers field F;
//   - a struct value passed as a call argument covers the whole struct
//     transitively (the `fmt.Fprintf(h, "%+v", cfg.Geometry)` idiom picks
//     up future fields automatically, so they are genuinely covered);
//   - a required field whose type is a module-declared struct (possibly
//     behind pointers/slices/arrays/maps) pulls that struct's fields into
//     the required set — hashing a struct field only by some of its
//     subfields leaves the others flagged.
//
// A field that must not be hashed is annotated on its declaration:
//
//	//aquakey:exclude wall-clock/recovery knob, never changes results
//
// The reason is mandatory; an empty exclude is itself a finding.
package keycoverage

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the keycoverage check.
var Analyzer = &lint.Analyzer{
	Name: "keycoverage",
	Doc: "every field of a //aquakey:hash config struct must be hashed by the " +
		"annotated function's call closure or carry //aquakey:exclude <reason>",
	RunModule: run,
}

// FactExcluded is exported for each //aquakey:exclude field; the value
// is the reason string.
const FactExcluded = "keycoverage.excluded"

var (
	hashRe    = regexp.MustCompile(`^//\s*aquakey:hash\s+(.+?)\s*$`)
	excludeRe = regexp.MustCompile(`^//\s*aquakey:exclude(?:\s+(.*))?$`)
)

func run(pass *lint.ModulePass) {
	graph := pass.Graph

	// Scan phase: find every //aquakey:hash function and resolve its
	// declared struct types.
	type hashRoot struct {
		fn    *types.Func
		types []*types.Named
	}
	var roots []hashRoot
	for _, fn := range graph.Functions() {
		info := graph.Decl(fn)
		if info.Decl.Doc == nil {
			continue
		}
		for _, c := range info.Decl.Doc.List {
			m := hashRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			root := hashRoot{fn: fn}
			for _, name := range strings.Fields(m[1]) {
				named := resolveNamedStruct(pass.Mod, info.Pkg, name)
				if named == nil {
					pass.Reportf(info.Decl.Pos(), "aquakey:hash names %q, which is not a struct type in this package or any module package", name)
					continue
				}
				root.types = append(root.types, named)
			}
			if len(root.types) > 0 {
				roots = append(roots, root)
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	fields := pass.Mod.Fields()

	// Record the excludes up front so expansion can skip them too.
	excluded := make(map[*types.Var]bool)
	for v, decl := range fields {
		reason, found, empty := excludeReason(decl.Field)
		if !found {
			continue
		}
		if empty {
			pass.Reportf(decl.Field.Pos(), "aquakey:exclude needs a reason: //aquakey:exclude <why this field never changes hashed results>")
			continue
		}
		excluded[v] = true
		pass.Facts.Export(v, FactExcluded, reason)
	}

	for _, root := range roots {
		checkRoot(pass, root.fn, root.types, fields, excluded)
	}
}

// checkRoot verifies one hash function against its declared types.
func checkRoot(pass *lint.ModulePass, fn *types.Func, declared []*types.Named,
	fields map[*types.Var]*lint.FieldDecl, excluded map[*types.Var]bool) {

	graph := pass.Graph
	reach := graph.Reachable([]*types.Func{fn}, nil)

	// Evidence pass over the hash closure.
	covered := make(map[*types.Var]bool) // exact field selections
	whole := make(map[*types.Named]bool) // struct values used wholesale
	for _, f := range graph.Functions() {
		if !reach.Has(f) {
			continue
		}
		info := graph.Decl(f)
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						covered[canonicalField(v)] = true
					}
				}
			case *ast.CallExpr:
				// A struct value handed to an opaque (non-module) callee —
				// fmt.Fprintf("%+v", ...), json.Marshal, hash writers — is
				// consumed wholesale: every field, present and future, is
				// covered. Module-internal callees grant nothing: they are
				// in the closure, so their real field reads are counted.
				if callee := staticCallee(info.Pkg.Info, x); callee != nil && graph.Decl(callee.Origin()) != nil {
					break
				}
				for _, arg := range x.Args {
					if named := namedStruct(info.Pkg.Info.TypeOf(arg)); named != nil {
						markWhole(named, whole)
					}
				}
			}
			return true
		})
	}

	// Required set: fields of the declared types, expanded to fixpoint
	// through struct-typed fields that are not wholly covered.
	type reqField struct {
		v     *types.Var
		owner *types.Named
	}
	var required []reqField
	seenType := make(map[*types.Named]bool)
	var addType func(named *types.Named)
	addType = func(named *types.Named) {
		if seenType[named] {
			return
		}
		seenType[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			v := canonicalField(st.Field(i))
			required = append(required, reqField{v: v, owner: named})
			if excluded[v] {
				continue
			}
			if sub := namedStruct(v.Type()); sub != nil && fields[firstField(sub)] != nil {
				// Module-declared struct field: its subfields matter too,
				// unless the struct is hashed wholesale.
				if !whole[sub] {
					addType(sub)
				}
			}
		}
	}
	for _, named := range declared {
		addType(named)
	}

	for _, rf := range required {
		if excluded[rf.v] || covered[rf.v] || wholeCovers(rf.v, whole) {
			continue
		}
		decl := fields[rf.v]
		if decl == nil {
			continue // field declared outside the module; nothing to annotate
		}
		pass.Reportf(decl.Field.Pos(),
			"field %s.%s is not hashed by %s; cached results would be shared across configurations that differ in it — hash it or annotate //aquakey:exclude <reason>",
			rf.owner.Obj().Name(), rf.v.Name(), lint.FuncName(fn))
	}
}

// staticCallee resolves a call's target when it is a plain function or
// method identifier, or nil for function values and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// excludeReason reads a field's //aquakey:exclude annotation from its doc
// or line comment.
func excludeReason(f *ast.Field) (reason string, found, empty bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m := excludeRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			if strings.TrimSpace(m[1]) == "" {
				return "", true, true
			}
			return m[1], true, false
		}
	}
	return "", false, false
}

// resolveNamedStruct resolves an annotation type name: bare names in the
// annotating package's scope, "pkg.Name" in any module package whose
// package name matches.
func resolveNamedStruct(mod *lint.Module, pkg *lint.Package, name string) *types.Named {
	lookup := func(scope *types.Scope, n string) *types.Named {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return nil
		}
		return named
	}
	if qual, base, ok := strings.Cut(name, "."); ok {
		for _, p := range mod.Pkgs {
			if p.Types != nil && p.Types.Name() == qual {
				if named := lookup(p.Types.Scope(), base); named != nil {
					return named
				}
			}
		}
		return nil
	}
	if pkg.Types == nil {
		return nil
	}
	return lookup(pkg.Types.Scope(), name)
}

// namedStruct unwraps pointers, slices, arrays and map values down to a
// named struct type, or nil.
func namedStruct(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			t = u.Underlying()
		default:
			return nil
		}
	}
}

// markWhole marks a struct type and, recursively, its struct-typed
// fields as wholly covered (the %+v idiom formats nested structs too).
func markWhole(named *types.Named, whole map[*types.Named]bool) {
	if whole[named] {
		return
	}
	whole[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if sub := namedStruct(st.Field(i).Type()); sub != nil {
			markWhole(sub, whole)
		}
	}
}

// wholeCovers reports whether v belongs to a struct type used wholesale.
func wholeCovers(v *types.Var, whole map[*types.Named]bool) bool {
	for named := range whole {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if canonicalField(st.Field(i)) == v {
				return true
			}
		}
	}
	return false
}

// canonicalField maps an instantiated generic struct's field back to its
// origin declaration, so annotations on the declared field apply.
func canonicalField(v *types.Var) *types.Var {
	if o := v.Origin(); o != nil {
		return o
	}
	return v
}

// firstField returns the first field object of a named struct (used only
// to test module membership via the Fields index), or nil for empty
// structs.
func firstField(named *types.Named) *types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return nil
	}
	return canonicalField(st.Field(0))
}
