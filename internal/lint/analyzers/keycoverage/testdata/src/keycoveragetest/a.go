// Package keycoveragetest is the keycoverage corpus: a config struct
// hashed by a key function, with covered fields, a wholesale-formatted
// nested struct, a partially hashed nested struct, an excluded field,
// and seeded coverage gaps.
package keycoveragetest

import (
	"fmt"
	"strings"
)

// Geometry is hashed wholesale via %+v: all its fields — including ones
// added later — are genuinely covered.
type Geometry struct {
	Rows  int
	Banks int
}

// Timing is hashed field-by-field, and incompletely.
type Timing struct {
	TRCD int
	TRP  int // want `field Timing\.TRP is not hashed`
}

// Config is the hashed struct.
type Config struct {
	Window int
	Seed   uint64
	// Parallel bounds concurrency only.
	//aquakey:exclude concurrency knob; results are collected by index
	Parallel int
	Geometry Geometry
	Timing   Timing
	Retries  int // want `field Config\.Retries is not hashed`
}

// Key hashes a Config. Window and Seed are hashed here; the Timing
// subfields are hashed two calls down, proving closure-wide evidence.
//
//aquakey:hash Config
func Key(c *Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "w=%d seed=%d\n", c.Window, c.Seed)
	fmt.Fprintf(&b, "geom=%+v\n", c.Geometry)
	sub(&b, c)
	return b.String()
}

func sub(b *strings.Builder, c *Config) {
	deeper(b, c)
}

func deeper(b *strings.Builder, c *Config) {
	fmt.Fprintf(b, "trcd=%d\n", c.Timing.TRCD)
}

// Bad exercises the annotation-error diagnostics.
type Bad struct {
	//aquakey:exclude
	X int // want `aquakey:exclude needs a reason`
}

//aquakey:hash Bad NoSuch
func BadKey(b *Bad) string { // want `aquakey:hash names "NoSuch"`
	return fmt.Sprint(b.X)
}
