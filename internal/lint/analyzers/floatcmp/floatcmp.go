// Package floatcmp flags == and != between floating-point operands in
// the closed-form model packages (internal/analytic, internal/crowmodel).
// Those packages reproduce the paper's tables bit-for-bit; an exact
// float comparison there either works by accident of rounding or
// silently diverges across architectures (FMA contraction, x87 spills).
// Compare against an explicit tolerance, or restructure to integers.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the floatcmp check.
var Analyzer = &lint.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on floating-point values in the analytic model " +
		"packages; use an explicit tolerance instead",
	Applies: func(pkgPath string) bool {
		if !strings.HasPrefix(pkgPath, "repro") {
			return true // analyzer test corpora
		}
		return pkgPath == "repro/internal/analytic" || pkgPath == "repro/internal/crowmodel"
	},
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypeOf(bin.X)) || isFloat(pass.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos,
					"floating-point %s comparison is not portable; compare with an explicit tolerance", bin.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
