// Package a is the floatcmp test corpus: exact float equality is
// flagged; integer equality, ordering comparisons, and tolerance checks
// are not.
package a

type mw float64

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func bad32(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func badNamed(a, b mw) bool {
	return a == b // want `floating-point == comparison`
}

func badZero(a float64) bool {
	return a == 0 // want `floating-point == comparison`
}

func okInt(a, b int) bool { return a == b }

func okOrdering(a, b float64) bool { return a < b }

func okTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
