package floatcmp_test

import (
	"testing"

	"repro/internal/lint/analyzers/floatcmp"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "testdata", "a")
}

func TestScope(t *testing.T) {
	applies := floatcmp.Analyzer.Applies
	for _, p := range []string{"repro/internal/analytic", "repro/internal/crowmodel", "a"} {
		if !applies(p) {
			t.Errorf("%s should be in scope", p)
		}
	}
	if applies("repro/internal/stats") {
		t.Error("floatcmp is scoped to the closed-form model packages")
	}
}
