// Package analyzers registers the aqualint analyzer suite: the
// determinism and soundness rules specific to this simulator. See each
// analyzer's package documentation for the rationale behind its rule.
package analyzers

import (
	"repro/internal/lint"
	"repro/internal/lint/analyzers/floatcmp"
	"repro/internal/lint/analyzers/maporder"
	"repro/internal/lint/analyzers/nakedgo"
	"repro/internal/lint/analyzers/noclock"
	"repro/internal/lint/analyzers/nodirectrand"
)

// All returns the full aqualint suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		nodirectrand.Analyzer,
		noclock.Analyzer,
		maporder.Analyzer,
		floatcmp.Analyzer,
		nakedgo.Analyzer,
	}
}
