// Package analyzers registers the aqualint analyzer suite: the
// determinism and soundness rules specific to this simulator. See each
// analyzer's package documentation for the rationale behind its rule.
//
// The suite has two depths. The first five are per-package syntactic
// rules; the last three (detertaint, keycoverage, guardedby) are
// module-wide: they type-check the whole module, build a call graph,
// and check interprocedural contracts declared by source annotations.
package analyzers

import (
	"repro/internal/lint"
	"repro/internal/lint/analyzers/detertaint"
	"repro/internal/lint/analyzers/floatcmp"
	"repro/internal/lint/analyzers/guardedby"
	"repro/internal/lint/analyzers/keycoverage"
	"repro/internal/lint/analyzers/maporder"
	"repro/internal/lint/analyzers/nakedgo"
	"repro/internal/lint/analyzers/noclock"
	"repro/internal/lint/analyzers/nodirectrand"
)

// All returns the full aqualint suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		nodirectrand.Analyzer,
		noclock.Analyzer,
		maporder.Analyzer,
		floatcmp.Analyzer,
		nakedgo.Analyzer,
		detertaint.Analyzer,
		keycoverage.Analyzer,
		guardedby.Analyzer,
	}
}
