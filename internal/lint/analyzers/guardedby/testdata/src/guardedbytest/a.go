// Package guardedbytest is the guardedby corpus: a store with a
// documented lock discipline, correct and incorrect accessors, a
// caller-holds contract, and a constructor.
package guardedbytest

import "sync"

// Store mirrors the simulator's cache shapes.
type Store struct {
	mu sync.Mutex
	// mem is the cached payload map.
	mem map[string]int // guarded by mu
	n   int            // guarded by lock; want `no sync\.Mutex/sync\.RWMutex field named lock`
}

// RW exercises RLock recognition.
type RW struct {
	mu    sync.RWMutex
	stats map[string]int // guarded by mu
}

// New builds a Store; the value is local, so no locking is required —
// for direct field writes and for caller-holds method calls alike.
func New() *Store {
	s := &Store{}
	s.mem = make(map[string]int)
	s.locked("seed", 1)
	return s
}

// Get locks correctly.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem[k]
}

// Bad reads the guarded map without the lock.
func (s *Store) Bad(k string) int {
	return s.mem[k] // want `access to mem \(guarded by mu\)`
}

// locked writes under a caller-holds contract.
//
// caller holds mu
func (s *Store) locked(k string, v int) {
	s.mem[k] = v
}

// Put honours the contract.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locked(k, v)
}

// relocked chains the contract one level: it may call locked because it
// declares the same obligation.
//
// caller holds mu
func (s *Store) relocked(k string) {
	s.locked(k, 0)
}

// PutUnlocked violates the contract.
func (s *Store) PutUnlocked(k string, v int) {
	s.locked(k, v) // want `call to \(\*guardedbytest\.Store\)\.locked requires holding mu`
}

// Snapshot uses a read lock on the RWMutex.
func (r *RW) Snapshot() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.stats))
	for k, v := range r.stats {
		out[k] = v
	}
	return out
}

// Peek reads without any lock.
func (r *RW) Peek(k string) int {
	return r.stats[k] // want `access to stats \(guarded by mu\)`
}
