package guardedby_test

import (
	"testing"

	"repro/internal/lint/analyzers/guardedby"
	"repro/internal/lint/linttest"
)

func TestGuardedby(t *testing.T) {
	linttest.Run(t, guardedby.Analyzer, "testdata", "guardedbytest")
}
