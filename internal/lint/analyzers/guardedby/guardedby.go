// Package guardedby checks documented lock discipline: a struct field
// whose comment says `guarded by mu` may only be touched by functions
// that demonstrably hold mu. The repo's shared state — the Runner's
// memo/cache maps, the flight.Group duplicate table, the cellcache
// store, the Lab render cache — all carry this comment; the analyzer
// turns the comment from prose into a checked contract.
//
// Annotation grammar:
//
//	type Store struct {
//		mu   sync.Mutex
//		mem  map[string][]byte // guarded by mu
//	}
//
// The named mutex must be a sibling field of type sync.Mutex or
// sync.RWMutex in the same struct. A function "holds" the mutex when:
//
//   - its body (closures included) calls <x>.mu.Lock() or <x>.mu.RLock()
//     — the check is flow-insensitive by design: it catches the real
//     failure mode (a new method that never locks at all), not exotic
//     early-unlock interleavings;
//   - its doc comment declares `// caller holds mu`, shifting the
//     obligation to its callers — every static (non-devirtualized)
//     caller must then itself hold mu, checked transitively over the
//     call graph; or
//   - the accessed value is a function-local (created inside the body,
//     as in constructors), so no other goroutine can see it yet.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint"
)

// Analyzer is the guardedby check.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc: "fields commented `guarded by <mu>` may only be accessed while holding " +
		"the named sibling mutex (or under a `caller holds <mu>` contract)",
	RunModule: run,
}

// FactCallerHolds marks a function whose doc declares `caller holds
// <mu>`; the value is the mutex name.
const FactCallerHolds = "guardedby.callerholds"

var (
	guardRe = regexp.MustCompile(`(?:^|\s)guarded by (\w+)`)
	holdsRe = regexp.MustCompile(`(?:^|\s)caller holds (\w+)`)
)

func run(pass *lint.ModulePass) {
	graph := pass.Graph
	fields := pass.Mod.Fields()

	// Scan phase 1: guarded fields. guards[field] = mutex field name.
	guards := make(map[*types.Var]string)
	for v, decl := range fields {
		mu, ok := guardAnnotation(decl.Field)
		if !ok {
			continue
		}
		if !hasMutexSibling(decl.Pkg, decl.Struct, mu) {
			pass.Reportf(decl.Field.Pos(),
				"field %s is marked `guarded by %s` but the struct has no sync.Mutex/sync.RWMutex field named %s",
				v.Name(), mu, mu)
			continue
		}
		guards[v] = mu
	}
	if len(guards) == 0 {
		return
	}

	// Scan phase 2: per-function lock evidence and caller-holds contracts.
	locksHeld := make(map[*types.Func]map[string]bool) // fn -> mutex names locked in body
	callerHolds := make(map[*types.Func]string)
	for _, fn := range graph.Functions() {
		info := graph.Decl(fn)
		if doc := info.Decl.Doc; doc != nil {
			for _, c := range doc.List {
				if m := holdsRe.FindStringSubmatch(c.Text); m != nil {
					callerHolds[fn] = m[1]
					pass.Facts.Export(fn, FactCallerHolds, m[1])
				}
			}
		}
		locksHeld[fn] = lockCalls(info.Decl.Body)
	}

	holds := func(fn *types.Func, mu string) bool {
		return locksHeld[fn][mu] || callerHolds[fn] == mu
	}

	// Check phase 1: every access to a guarded field happens in a
	// function that holds its mutex.
	for _, fn := range graph.Functions() {
		info := graph.Decl(fn)
		body := info.Decl.Body
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			mu, guarded := guards[v]
			if !guarded || holds(fn, mu) || localValue(info.Pkg.Info, body, sel.X) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"access to %s (guarded by %s) in %s, which neither locks %s nor documents `caller holds %s`",
				v.Name(), mu, lint.FuncName(fn), mu, mu)
			return true
		})
	}

	// Check phase 2: caller-holds contracts propagate — every static
	// caller of a `caller holds mu` function must itself hold mu.
	// Devirtualized interface edges are skipped: the interface call site
	// cannot know the implementation's lock contract, and flagging every
	// possible implementation would drown real findings.
	for fn, mu := range callerHolds {
		for _, e := range graph.CallersOf(fn) {
			if e.Dynamic {
				continue
			}
			if holds(e.Caller, mu) {
				continue
			}
			// A call on a function-local value (a constructor wiring up an
			// object before sharing it) needs no lock, mirroring phase 1.
			if caller := graph.Decl(e.Caller); caller != nil && localCallReceiver(caller, e.Pos) {
				continue
			}
			pass.Reportf(e.Pos,
				"call to %s requires holding %s (`caller holds %s`) but %s neither locks %s nor documents the same contract",
				lint.FuncName(fn), mu, mu, lint.FuncName(e.Caller), mu)
		}
	}
}

// guardAnnotation reads a field's `guarded by <mu>` comment (doc or
// trailing line comment).
func guardAnnotation(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}

// hasMutexSibling reports whether the struct declares a field named mu of
// type sync.Mutex or sync.RWMutex.
func hasMutexSibling(pkg *lint.Package, st *ast.StructType, mu string) bool {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name != mu {
				continue
			}
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isMutex(v.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockCalls collects the mutex field names the body locks:
// <expr>.<name>.Lock() or <expr>.<name>.RLock().
func lockCalls(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := sel.X.(type) {
		case *ast.SelectorExpr:
			out[recv.Sel.Name] = true
		case *ast.Ident:
			out[recv.Name] = true
		}
		return true
	})
	return out
}

// localCallReceiver reports whether the method call whose callee
// identifier sits at pos is invoked on a function-local value.
func localCallReceiver(caller *lint.FuncInfo, pos token.Pos) bool {
	found := false
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Pos() != pos {
			return true
		}
		found = localValue(caller.Pkg.Info, caller.Decl.Body, sel.X)
		return false
	})
	return found
}

// localValue reports whether the accessed base expression is a variable
// declared inside the function body — a value under construction that no
// other goroutine can reach, so lock discipline does not yet apply.
func localValue(info *types.Info, body *ast.BlockStmt, base ast.Expr) bool {
	id := rootIdent(base)
	if id == nil {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() > body.Lbrace && obj.Pos() < body.Rbrace+token.Pos(1)
}

// rootIdent unwraps selectors/parens/derefs to the leftmost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
