// Package a is the nakedgo test corpus: goroutines must be func literals
// that lexically recover; anything else is flagged.
package a

func work() {}

func bad() {
	go work()   // want `naked go statement`
	go func() { // want `goroutine func literal has no recover`
		work()
	}()
}

func good(errs []error) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errs[0] = nil
			}
		}()
		work()
	}()
}

// ok: the recover may live in any nested literal, as long as it is
// lexically inside the goroutine body.
func goodNested(protect func(func())) {
	go func() {
		protect(func() {
			defer func() { _ = recover() }()
			work()
		})
	}()
}

// A shadowed recover is not the builtin and protects nothing.
func shadowed() {
	recover := func() any { return nil }
	go func() { // want `goroutine func literal has no recover`
		_ = recover()
	}()
}
