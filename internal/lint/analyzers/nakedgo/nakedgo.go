// Package nakedgo forbids naked `go` statements in the goroutine-spawning
// packages (repro/internal/flight, repro/internal/sim). A panic inside a
// bare goroutine cannot be recovered by any caller — it kills the whole
// process, bypassing the harness's cell isolation (flight.Protect /
// sim.CellError). Every goroutine in those packages must therefore be a
// func literal that lexically contains a recover() call (normally inside
// a deferred literal), so the panic is converted into a structured error
// instead of an abort. Other packages spawn no goroutines today; if one
// starts to, add it to the scope rather than weakening the rule.
package nakedgo

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the nakedgo check.
var Analyzer = &lint.Analyzer{
	Name: "nakedgo",
	Doc: "forbid go statements without a lexically visible recover() in " +
		"goroutine-spawning packages; an unrecovered panic kills the process",
	Applies: func(pkgPath string) bool {
		// Non-module paths (analyzer test corpora) are always in scope.
		if !strings.HasPrefix(pkgPath, "repro") {
			return true
		}
		return pkgPath == "repro/internal/flight" || pkgPath == "repro/internal/sim" ||
			pkgPath == "repro/internal/farm"
	},
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "naked go statement: spawn a func literal with a deferred recover(), so a panic becomes an error instead of killing the process")
				return true
			}
			if !containsRecover(pass, lit.Body) {
				pass.Reportf(g.Pos(), "goroutine func literal has no recover(); a panic here kills the process — add a deferred recover that converts it to an error")
			}
			return true
		})
	}
}

// containsRecover reports whether body lexically contains a call to the
// recover builtin (at any nesting depth; a shadowed `recover` does not
// count).
func containsRecover(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "recover" {
			return true
		}
		if obj, ok := pass.Info.Uses[id]; ok {
			if _, builtin := obj.(*types.Builtin); builtin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
