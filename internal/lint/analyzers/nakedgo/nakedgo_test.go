package nakedgo_test

import (
	"testing"

	"repro/internal/lint/analyzers/nakedgo"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, nakedgo.Analyzer, "testdata", "a")
}

func TestScope(t *testing.T) {
	applies := nakedgo.Analyzer.Applies
	for _, p := range []string{"repro/internal/flight", "repro/internal/sim", "a"} {
		if !applies(p) {
			t.Errorf("%s spawns goroutines; must be in scope", p)
		}
	}
	for _, p := range []string{"repro", "repro/cmd/figures", "repro/internal/dram"} {
		if applies(p) {
			t.Errorf("%s spawns no goroutines; out of scope", p)
		}
	}
}
