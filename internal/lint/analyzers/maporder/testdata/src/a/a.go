// Package a is the maporder test corpus: order-dependent map-iteration
// bodies are flagged; aggregates, map stores, and the collect-then-sort
// idiom are not.
package a

import (
	"fmt"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
	}
	return keys
}

func okCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // exempt: sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

func okCollectThenSortSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // exempt: sort.Slice below mentions keys
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside map iteration`
	}
}

func badIndexedWrite(m map[int]string, out []string) {
	i := 0
	for _, v := range m {
		out[i] = v // want `indexed write to out inside map iteration`
		i++
	}
}

type holder struct{ rows []string }

func badFieldAppend(h *holder, m map[string]bool) {
	for k := range m {
		h.rows = append(h.rows, k) // want `append to h.rows inside map iteration`
	}
}

func okAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-independent accumulation: not flagged
	}
	return total
}

func okMapWrite(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v // map stores commute: not flagged
	}
}

func okSliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered: not flagged
	}
	return out
}

func suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //aqualint:ignore maporder reviewed: debug-only helper
	}
}
