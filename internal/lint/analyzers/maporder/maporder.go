// Package maporder flags `for range` loops over maps whose body has
// order-dependent effects: appending to a slice, writing output, or
// storing through a slice/array index. Go randomizes map iteration order,
// so such loops are the exact nondeterminism class that breaks
// bit-for-bit figure reproduction.
//
// The canonical fix — collect the keys, sort them, then iterate — is
// recognized: a loop whose appended slice is passed to sort.* or
// slices.* later in the same block is not flagged.
//
// The core detection is exported as FindViolations so the
// interprocedural detertaint analyzer can apply the same rule to the
// bodies of functions reachable from determinism roots.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (append, output, " +
		"ordered-state writes); iterate over sorted keys instead",
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		FindViolations(pass.Info, f, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s", msg)
		})
	}
}

// FindViolations walks root and reports each order-dependent effect
// inside a map-range body. The sorted-later exemption applies within
// root's statement lists exactly as in the package analyzer.
func FindViolations(info *types.Info, root ast.Node, report func(pos token.Pos, msg string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		list := stmtList(n)
		if list == nil {
			return true
		}
		for i, stmt := range list {
			rng, ok := stmt.(*ast.RangeStmt)
			if !ok || !isMapRange(info, rng) {
				continue
			}
			checkBody(info, rng, list[i+1:], report)
		}
		return true
	})
}

// stmtList returns a node's statement list if it directly holds
// statements (blocks and switch/select clauses).
func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// pkgNameOf resolves an identifier to the imported package it names, or
// nil if it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// checkBody reports order-dependent effects in a map-range body. rest is
// the tail of the enclosing statement list, used for the sorted-later
// exemption on appends.
func checkBody(info *types.Info, rng *ast.RangeStmt, rest []ast.Stmt, report func(pos token.Pos, msg string)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own; its body's
			// effects should not be double-reported here.
			if s != rng && isMapRange(info, s) {
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 {
					continue
				}
				obj, text := target(info, call.Args[0])
				if sortedLater(info, rest, obj, text) {
					continue
				}
				report(s.Pos(),
					"append to "+text+" inside map iteration makes its order nondeterministic; collect keys, sort, then iterate (or sort "+text+" afterwards)")
			}
			for _, lhs := range s.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := info.TypeOf(idx.X)
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					_, text := target(info, idx.X)
					report(s.Pos(),
						"indexed write to "+text+" inside map iteration depends on iteration order; iterate over sorted keys")
				}
			}
		case *ast.CallExpr:
			if name, ok := outputCall(info, s); ok {
				report(s.Pos(),
					name+" inside map iteration emits output in nondeterministic order; iterate over sorted keys")
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// target resolves the object and display text of an assignment target or
// append destination (handles plain identifiers and field selectors).
func target(info *types.Info, e ast.Expr) (types.Object, string) {
	switch x := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(x), x.Name
	case *ast.SelectorExpr:
		_, text := target(info, x.X)
		return info.ObjectOf(x.Sel), text + "." + x.Sel.Name
	}
	return nil, types.ExprString(e)
}

// sortedLater reports whether a later statement in the same block passes
// the appended slice to sort.* or slices.* — the collect-then-sort idiom.
func sortedLater(info *types.Info, rest []ast.Stmt, obj types.Object, text string) bool {
	if obj == nil && text == "" {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pkgNameOf(info, id)
			if pn == nil {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if mentions(info, arg, obj, text) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether expr references the given object (or, for
// field targets, the same selector text).
func mentions(info *types.Info, expr ast.Expr, obj types.Object, text string) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj != nil && info.ObjectOf(x) == obj {
				hit = true
				return false
			}
		case *ast.SelectorExpr:
			if o, t := target(info, x); (obj != nil && o == obj) || (text != "" && t == text) {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}

// outputCall recognizes calls that emit ordered output: fmt.Print* /
// fmt.Fprint* package calls and writer-shaped methods (Write*, Print*,
// AddRow) on any receiver.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn := pkgNameOf(info, id); pn != nil {
			if pn.Imported().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return "fmt." + name, true
			}
			return "", false // other package-level calls are not output sinks
		}
	}
	// Method calls: only writer-shaped names count, and only when the
	// receiver is a named method receiver (not a package qualifier).
	if info.Selections[sel] == nil {
		return "", false
	}
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || name == "AddRow" {
		return types.ExprString(sel.X) + "." + name, true
	}
	return "", false
}
