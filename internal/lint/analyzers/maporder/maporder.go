// Package maporder flags `for range` loops over maps whose body has
// order-dependent effects: appending to a slice, writing output, or
// storing through a slice/array index. Go randomizes map iteration order,
// so such loops are the exact nondeterminism class that breaks
// bit-for-bit figure reproduction.
//
// The canonical fix — collect the keys, sort them, then iterate — is
// recognized: a loop whose appended slice is passed to sort.* or
// slices.* later in the same block is not flagged.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (append, output, " +
		"ordered-state writes); iterate over sorted keys instead",
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rng) {
					continue
				}
				checkBody(pass, rng, list[i+1:])
			}
			return true
		})
	}
}

// stmtList returns a node's statement list if it directly holds
// statements (blocks and switch/select clauses).
func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

func isMapRange(pass *lint.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkBody reports order-dependent effects in a map-range body. rest is
// the tail of the enclosing statement list, used for the sorted-later
// exemption on appends.
func checkBody(pass *lint.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own; its body's
			// effects should not be double-reported here.
			if s != rng && isMapRange(pass, s) {
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
					continue
				}
				obj, text := target(pass, call.Args[0])
				if sortedLater(pass, rest, obj, text) {
					continue
				}
				pass.Reportf(s.Pos(),
					"append to %s inside map iteration makes its order nondeterministic; collect keys, sort, then iterate (or sort %s afterwards)",
					text, text)
			}
			for _, lhs := range s.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := pass.TypeOf(idx.X)
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					_, text := target(pass, idx.X)
					pass.Reportf(s.Pos(),
						"indexed write to %s inside map iteration depends on iteration order; iterate over sorted keys",
						text)
				}
			}
		case *ast.CallExpr:
			if name, ok := outputCall(pass, s); ok {
				pass.Reportf(s.Pos(),
					"%s inside map iteration emits output in nondeterministic order; iterate over sorted keys", name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// target resolves the object and display text of an assignment target or
// append destination (handles plain identifiers and field selectors).
func target(pass *lint.Pass, e ast.Expr) (types.Object, string) {
	switch x := e.(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(x), x.Name
	case *ast.SelectorExpr:
		_, text := target(pass, x.X)
		return pass.Info.ObjectOf(x.Sel), text + "." + x.Sel.Name
	}
	return nil, types.ExprString(e)
}

// sortedLater reports whether a later statement in the same block passes
// the appended slice to sort.* or slices.* — the collect-then-sort idiom.
func sortedLater(pass *lint.Pass, rest []ast.Stmt, obj types.Object, text string) bool {
	if obj == nil && text == "" {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(id)
			if pn == nil {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if mentions(pass, arg, obj, text) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether expr references the given object (or, for
// field targets, the same selector text).
func mentions(pass *lint.Pass, expr ast.Expr, obj types.Object, text string) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj != nil && pass.Info.ObjectOf(x) == obj {
				hit = true
				return false
			}
		case *ast.SelectorExpr:
			if o, t := target(pass, x); (obj != nil && o == obj) || (text != "" && t == text) {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}

// outputCall recognizes calls that emit ordered output: fmt.Print* /
// fmt.Fprint* package calls and writer-shaped methods (Write*, Print*,
// AddRow) on any receiver.
func outputCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn := pass.PkgNameOf(id); pn != nil {
			if pn.Imported().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return "fmt." + name, true
			}
			return "", false // other package-level calls are not output sinks
		}
	}
	// Method calls: only writer-shaped names count, and only when the
	// receiver is a named method receiver (not a package qualifier).
	if pass.Info.Selections[sel] == nil {
		return "", false
	}
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || name == "AddRow" {
		return types.ExprString(sel.X) + "." + name, true
	}
	return "", false
}
