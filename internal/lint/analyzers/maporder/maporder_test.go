package maporder_test

import (
	"testing"

	"repro/internal/lint/analyzers/maporder"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "testdata", "a")
}
