// Package nodirectrand forbids importing math/rand, math/rand/v2, or
// crypto/rand anywhere except internal/rng. All simulator randomness must
// flow through the explicitly-seeded xoshiro256** streams in internal/rng;
// a stray math/rand call ties figure output to Go-release-dependent
// generator behaviour (or, for crypto/rand, to the OS entropy pool) and
// silently breaks bit-for-bit reproducibility.
package nodirectrand

import (
	"strconv"

	"repro/internal/lint"
)

// forbidden lists the import paths that bypass the seeded RNG.
var forbidden = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Analyzer is the nodirectrand check.
var Analyzer = &lint.Analyzer{
	Name: "nodirectrand",
	Doc: "forbid math/rand and crypto/rand outside internal/rng; " +
		"use the seeded streams of repro/internal/rng so results stay deterministic",
	Applies: func(pkgPath string) bool { return pkgPath != "repro/internal/rng" },
	Run:     run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !forbidden[path] {
				continue
			}
			pos := imp.Path.Pos()
			if imp.Name != nil {
				pos = imp.Name.Pos()
			}
			pass.Reportf(pos, "direct import of %s breaks seed determinism; use repro/internal/rng", path)
		}
	}
}
