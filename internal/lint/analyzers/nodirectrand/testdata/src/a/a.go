// Package a is the nodirectrand test corpus: both forbidden rand
// packages, imported plainly and under an alias.
package a

import (
	crand "crypto/rand" // want `direct import of crypto/rand`
	"math/rand"         // want `direct import of math/rand`
)

// use keeps the imports referenced so the corpus stays type-clean.
func use() (int, error) {
	buf := make([]byte, 4)
	_, err := crand.Read(buf)
	return rand.Int(), err
}
