package nodirectrand_test

import (
	"testing"

	"repro/internal/lint/analyzers/nodirectrand"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, nodirectrand.Analyzer, "testdata", "a")
}

func TestScope(t *testing.T) {
	applies := nodirectrand.Analyzer.Applies
	if applies("repro/internal/rng") {
		t.Error("internal/rng is the sanctioned home of randomness; must be exempt")
	}
	for _, p := range []string{"repro/internal/core", "repro/cmd/aquasim", "repro", "a"} {
		if !applies(p) {
			t.Errorf("%s should be in scope", p)
		}
	}
}
