// Package detertaint is the interprocedural determinism-taint rule: no
// function transitively reachable from a determinism root may reach a
// nondeterminism source. It generalizes the per-call-site rules
// (nodirectrand, noclock, maporder) from call sites to call chains over
// the module call graph, interface devirtualization included.
//
// Roots are declared in source with a `//detertaint:root` directive on
// the function — the repo marks the experiment engine's cell execution
// (sim.Runner.RunCtx/RunGridCtx), the content-addressed cache write path
// (cellcache.Store.Put), and every figure/table rendering entry point.
// Anything those reach, at any depth and through any interface, must be
// a pure function of the configuration: results feed SHA-256 cell keys
// and byte-compared golden figures, so one wall-clock read or
// order-dependent map walk silently poisons caches and diffs.
//
// Nondeterminism sources:
//
//   - wall-clock reads: time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker
//   - unseeded or Go-release-dependent randomness: any use of math/rand,
//     math/rand/v2, or crypto/rand
//   - environment reads: os.Getenv, os.LookupEnv, os.Environ
//   - map iteration with order-dependent effects (the maporder rule) in
//     any reachable function body
//
// A reviewed sink is annotated `//detertaint:reviewed <reason>` on its
// declaration: the function is exempted and taint does not propagate
// through it. The annotation is exported as a fact ("detertaint.reviewed")
// so downstream analyzers can see which functions were vouched for.
package detertaint

import (
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint"
	"repro/internal/lint/analyzers/maporder"
)

// Analyzer is the detertaint check.
var Analyzer = &lint.Analyzer{
	Name: "detertaint",
	Doc: "forbid nondeterminism sources (wall clock, global rand, env reads, " +
		"order-dependent map iteration) anywhere reachable from //detertaint:root functions",
	RunModule: run,
}

// FactRoot marks a function annotated //detertaint:root.
const FactRoot = "detertaint.root"

// FactReviewed marks a function annotated //detertaint:reviewed; the
// fact value is the reason string.
const FactReviewed = "detertaint.reviewed"

var (
	rootRe     = regexp.MustCompile(`^//\s*detertaint:root\s*$`)
	reviewedRe = regexp.MustCompile(`^//\s*detertaint:reviewed(?:\s+(.*))?$`)
)

// clockFns mirrors the noclock rule's banned time-package calls.
var clockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// envFns are the os-package environment reads.
var envFns = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

func run(pass *lint.ModulePass) {
	graph := pass.Graph

	// Scan phase: collect //detertaint:root and //detertaint:reviewed
	// directives from function docs and export them as facts.
	var roots []*types.Func
	reviewed := make(map[*types.Func]bool)
	for _, fn := range graph.Functions() {
		info := graph.Decl(fn)
		if info.Decl.Doc == nil {
			continue
		}
		for _, c := range info.Decl.Doc.List {
			if rootRe.MatchString(c.Text) {
				roots = append(roots, fn)
				pass.Facts.Export(fn, FactRoot, true)
				continue
			}
			if m := reviewedRe.FindStringSubmatch(c.Text); m != nil {
				if m[1] == "" {
					pass.Reportf(info.Decl.Pos(), "detertaint:reviewed needs a reason: //detertaint:reviewed <why this sink is acceptable>")
					continue
				}
				reviewed[fn] = true
				pass.Facts.Export(fn, FactReviewed, m[1])
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Check phase: everything reachable from the roots — not traversing
	// through reviewed functions — must be free of nondeterminism sources.
	reach := graph.Reachable(roots, func(fn *types.Func) bool { return reviewed[fn] })
	for _, fn := range graph.Functions() {
		if !reach.Has(fn) {
			continue
		}
		for _, e := range graph.CallsFrom(fn) {
			source, ok := bannedCallee(e.Callee)
			if !ok {
				continue
			}
			pass.Reportf(e.Pos,
				"nondeterminism source %s is reachable from determinism root (chain: %s); results feed cell keys and golden figures — make it deterministic or annotate the function //detertaint:reviewed <reason>",
				source, reach.PathString(fn)+" → "+source)
		}
		info := graph.Decl(fn)
		maporder.FindViolations(info.Pkg.Info, info.Decl.Body, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s — and %s is reachable from determinism root (chain: %s)",
				msg, lint.FuncName(fn), reach.PathString(fn))
		})
	}
}

// bannedCallee classifies a callee as a nondeterminism source.
func bannedCallee(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		// Only the global-source package functions are nondeterministic.
		// Methods on an explicitly seeded *Rand, and the constructors that
		// make one, are exactly how deterministic code should use rand.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "", false
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "", false
		}
		return pkg.Path() + "." + fn.Name(), true
	case "crypto/rand":
		return pkg.Path() + "." + fn.Name(), true
	case "time":
		if clockFns[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "os":
		if envFns[fn.Name()] {
			return "os." + fn.Name(), true
		}
	}
	return "", false
}
