// Package detertainttest is the detertaint corpus: a miniature of the
// simulator's shape — a root runner, helpers at various call depths, an
// interface scheme, closures — with seeded nondeterminism sources.
package detertainttest

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Run drives the corpus: a direct helper chain, a closure, a method
// value, and an interface call.
//
//detertaint:root
func Run() {
	step()
	emit(map[string]int{"a": 1})
	_ = env()
	f := func() { _ = time.Now() } // want `nondeterminism source time\.Now`
	f()
	var s Scheme = ym{}
	_ = s.Tick()
	_ = stamp()
	_ = sorted(map[string]int{"a": 1})
}

// step is one call deep from the root.
func step() {
	deeper()
}

// deeper is two calls deep; depth must not hide the sink.
func deeper() {
	time.Sleep(time.Millisecond) // want `nondeterminism source time\.Sleep`
}

// emit has an order-dependent map loop, reachable from the root.
func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `emits output in nondeterministic order`
	}
}

// env reads the environment.
func env() string {
	return os.Getenv("HOME") // want `nondeterminism source os\.Getenv`
}

// Scheme is called through an interface; devirtualization must find the
// implementation.
type Scheme interface{ Tick() int }

type ym struct{}

// Tick is only ever reached through the Scheme interface.
func (ym) Tick() int {
	return rand.Int() // want `nondeterminism source math/rand\.Int`
}

// stamp is a vouched-for sink: exempt, and not traversed through.
//
//detertaint:reviewed corpus exemption; output is not hashed
func stamp() int64 {
	return time.Now().UnixNano()
}

// sorted uses the collect-then-sort idiom; the map loop is clean even
// though sorted is reachable from the root.
func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lonely is NOT reachable from any root: its clock read is the per-site
// noclock rule's business, not detertaint's.
func lonely() int64 {
	return time.Now().UnixNano()
}

//detertaint:reviewed
func noReason() {} // want `detertaint:reviewed needs a reason`
