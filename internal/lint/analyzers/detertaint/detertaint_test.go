package detertaint_test

import (
	"testing"

	"repro/internal/lint/analyzers/detertaint"
	"repro/internal/lint/linttest"
)

func TestDetertaint(t *testing.T) {
	linttest.Run(t, detertaint.Analyzer, "testdata", "detertainttest")
}
