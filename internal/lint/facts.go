package lint

// Facts: the cross-package side channel between analysis passes, the
// stdlib-only analogue of x/tools go/analysis facts. An analyzer's scan
// phase exports a fact about a function or type (e.g. "this function is
// a reviewed determinism sink", "this field is guarded by that mutex");
// the check phase — of the same analyzer or a later one in the suite —
// imports it, including across package boundaries, because the store is
// keyed by types.Object and shared across the whole module run.

import (
	"go/types"
	"sort"
)

type factKey struct {
	obj  types.Object
	name string
}

// Facts is a per-run store of named facts about program objects. One
// store is shared by every module analyzer of a RunModuleAnalyzers call,
// in suite order, so downstream analyzers can consume upstream exports.
type Facts struct {
	m map[factKey]any
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]any)} }

// Export records fact `name` about obj. A second export for the same
// (obj, name) overwrites the first.
func (f *Facts) Export(obj types.Object, name string, v any) {
	if obj == nil {
		return
	}
	f.m[factKey{obj, name}] = v
}

// Import returns the fact `name` recorded about obj, if any.
func (f *Facts) Import(obj types.Object, name string) (any, bool) {
	v, ok := f.m[factKey{obj, name}]
	return v, ok
}

// Has reports whether fact `name` is recorded about obj.
func (f *Facts) Has(obj types.Object, name string) bool {
	_, ok := f.m[factKey{obj, name}]
	return ok
}

// Objects returns every object carrying fact `name`, ordered by source
// position so consumers iterate deterministically.
func (f *Facts) Objects(name string) []types.Object {
	var out []types.Object
	for k := range f.m {
		if k.name == name {
			out = append(out, k.obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
