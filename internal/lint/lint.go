// Package lint is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast and go/types so the repository carries no external
// dependencies. It powers cmd/aqualint, the multichecker that enforces
// the simulator's determinism and timing-soundness rules (see DESIGN.md,
// "Static analysis v2").
//
// Analyzers come in two depths. A per-package analyzer inspects one
// type-checked package at a time through a Pass. A module analyzer
// (Analyzer.RunModule) sees the whole loaded module at once through a
// ModulePass — every package in dependency order, a call graph with
// interface devirtualization (see callgraph.go), and a cross-package
// facts store (see facts.go) — which is what the interprocedural rules
// (detertaint, keycoverage, guardedby) are built on.
//
// Diagnostics on a line that carries an `//aqualint:ignore <name>`
// comment are suppressed, giving call sites a reviewed escape hatch.
// Suppressions are tracked: UnusedIgnores reports directives that
// suppressed nothing, so stale escape hatches cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Exactly one of Run and RunModule is set:
// Run makes a per-package analyzer, RunModule a whole-module one.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// `//aqualint:ignore <name>` suppression comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Applies filters packages by import path; nil means every package.
	// Paths outside the module (e.g. the "a"-style paths of test corpora)
	// should be accepted so analyzer tests are unaffected by scoping.
	// Module analyzers ignore it — they always see the whole module.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded module at once, with the call
	// graph and facts store available (see RunModuleAnalyzers).
	RunModule func(pass *ModulePass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	diags   *[]Diagnostic
	ignores *ignoreIndex
}

// Reportf records a diagnostic at pos unless the line is suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppress(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown (e.g. the
// package had type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PkgNameOf resolves an identifier to the imported package it names, or
// nil if it is not a package qualifier. It is the building block for
// "is this selector fmt.Println / time.Now?" questions.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// IsPkgCall reports whether call invokes pkgPath.name (e.g. "time", "Now").
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := p.PkgNameOf(id)
	return pn != nil && pn.Imported().Path() == pkgPath
}

var ignoreRe = regexp.MustCompile(`^//\s*aqualint:ignore(?:\s+([A-Za-z0-9_,-]+))?`)

// ignoreEntry is one analyzer name on one `//aqualint:ignore` comment
// ("" = all analyzers). used is set when the entry suppresses a
// diagnostic, which is what the stale-suppression audit keys on.
type ignoreEntry struct {
	pos  token.Position
	name string
	used bool
}

// ignoreIndex holds a package's ignore directives by file and line. A
// package builds it once (Package.ignoreIndex) so suppression hits are
// shared between per-package and module analyses of the same load.
type ignoreIndex struct {
	byLine map[string]map[int][]*ignoreEntry
	all    []*ignoreEntry
}

// suppress reports whether a diagnostic from the named analyzer at pos is
// ignored, marking the matching entry used. Nil-safe (nothing suppressed).
func (ix *ignoreIndex) suppress(analyzer string, pos token.Position) bool {
	if ix == nil {
		return false
	}
	hit := false
	for _, e := range ix.byLine[pos.Filename][pos.Line] {
		if e.name == "" || e.name == analyzer {
			e.used = true
			hit = true
		}
	}
	return hit
}

// newIgnoreIndex indexes `//aqualint:ignore` comments by file and line.
func newIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	ix := &ignoreIndex{byLine: make(map[string]map[int][]*ignoreEntry)}
	add := func(pos token.Position, name string) {
		lines := ix.byLine[pos.Filename]
		if lines == nil {
			lines = make(map[int][]*ignoreEntry)
			ix.byLine[pos.Filename] = lines
		}
		e := &ignoreEntry{pos: pos, name: name}
		lines[pos.Line] = append(lines[pos.Line], e)
		ix.all = append(ix.all, e)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if m[1] == "" {
					add(pos, "")
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					add(pos, strings.TrimSpace(name))
				}
			}
		}
	}
	return ix
}

// RunAnalyzers applies every applicable per-package analyzer to a loaded
// package and returns the diagnostics sorted by position. Analyzers with
// only RunModule set are skipped; use RunModuleAnalyzers for those.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, an := range analyzers {
		if an.Run == nil {
			continue
		}
		if an.Applies != nil && !an.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: an,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			diags:    &diags,
			ignores:  pkg.ignoreIndex(),
		}
		an.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

// ModulePass carries the whole loaded module through one module
// analyzer: every package in dependency order, the call graph, and the
// shared facts store. Analyzers run in suite order over one store, so a
// fact exported by an earlier analyzer is importable by a later one.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module
	Graph    *CallGraph
	Facts    *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the line carries a matching
// `//aqualint:ignore` comment (looked up in the package owning pos).
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	if pkg := p.Mod.PackageOf(position.Filename); pkg != nil {
		if pkg.ignoreIndex().suppress(p.Analyzer.Name, position) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModuleAnalyzers builds the module's call graph once and applies
// every module analyzer in the suite, returning the diagnostics sorted
// by position.
func RunModuleAnalyzers(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var graph *CallGraph
	facts := NewFacts()
	for _, an := range analyzers {
		if an.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(mod)
		}
		an.RunModule(&ModulePass{
			Analyzer: an,
			Mod:      mod,
			Graph:    graph,
			Facts:    facts,
			diags:    &diags,
		})
	}
	sortDiagnostics(diags)
	return diags
}

// UnusedIgnores audits the given packages for `//aqualint:ignore`
// directives that suppressed nothing in the analyses run so far. enabled
// names the analyzers that actually ran: an unused entry naming a
// disabled analyzer is not reported (it may well suppress something when
// its analyzer runs), and blanket entries (no analyzer name) are only
// reported when the full suite ran (full = true).
func UnusedIgnores(pkgs []*Package, enabled map[string]bool, full bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.ignoreIndex().all {
			if e.used {
				continue
			}
			if e.name == "" {
				if !full {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "unusedignore",
					Pos:      e.pos,
					Message:  "aqualint:ignore suppresses nothing; remove the stale directive",
				})
				continue
			}
			if enabled != nil && !enabled[e.name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "unusedignore",
				Pos:      e.pos,
				Message:  fmt.Sprintf("aqualint:ignore %s suppresses no %s diagnostic; remove the stale directive", e.name, e.name),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
