// Package lint is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast and go/types so the repository carries no external
// dependencies. It powers cmd/aqualint, the multichecker that enforces
// the simulator's determinism and timing-soundness rules (see DESIGN.md,
// "Determinism & invariants").
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports diagnostics with Pass.Reportf. Diagnostics on a line that
// carries an `//aqualint:ignore <name>` comment are suppressed, giving
// call sites a reviewed escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// `//aqualint:ignore <name>` suppression comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Applies filters packages by import path; nil means every package.
	// Paths outside the module (e.g. the "a"-style paths of test corpora)
	// should be accepted so analyzer tests are unaffected by scoping.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	diags   *[]Diagnostic
	ignores map[string]map[int][]string // filename -> line -> analyzer names ("" = all)
}

// Reportf records a diagnostic at pos unless the line is suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, name := range p.ignores[position.Filename][position.Line] {
		if name == "" || name == p.Analyzer.Name {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown (e.g. the
// package had type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PkgNameOf resolves an identifier to the imported package it names, or
// nil if it is not a package qualifier. It is the building block for
// "is this selector fmt.Println / time.Now?" questions.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// IsPkgCall reports whether call invokes pkgPath.name (e.g. "time", "Now").
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := p.PkgNameOf(id)
	return pn != nil && pn.Imported().Path() == pkgPath
}

var ignoreRe = regexp.MustCompile(`^//\s*aqualint:ignore(?:\s+([A-Za-z0-9_,-]+))?`)

// buildIgnores indexes `//aqualint:ignore` comments by file and line.
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				if m[1] == "" {
					lines[pos.Line] = append(lines[pos.Line], "")
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every applicable analyzer to a loaded package and
// returns the diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := buildIgnores(pkg.Fset, pkg.Files)
	for _, an := range analyzers {
		if an.Applies != nil && !an.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: an,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			diags:    &diags,
			ignores:  ignores,
		}
		an.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
