package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeTree lays out a file tree under a fresh temp dir and returns its
// root. Keys are slash-separated relative paths.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const demoGoMod = "module demo\n\ngo 1.24\n"

func TestLoadCollectsTypeErrors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": demoGoMod,
		"p/p.go": "package p\n\nfunc F() int { return undefinedIdent }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("Load: soft type errors must not be fatal, got %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("expected TypeErrors for undefined identifier, got none")
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("package with soft errors must still carry types and info")
	}
}

func TestLoadSkipsBuildConstrainedFiles(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	root := writeTree(t, map[string]string{
		"go.mod":      demoGoMod,
		"p/p.go":      "package p\n\nfunc F() int { return 1 }\n",
		"p/gen.go":    "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
		"p/other.go":  "//go:build " + otherOS + "\n\npackage p\n\nfunc G() int { return brokenOnPurpose }\n",
		"p/future.go": "//go:build go1.999\n\npackage p\n\nfunc H() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want 1 file after build constraints, got %d", len(pkg.Files))
	}
	// The excluded files never reach the type-checker: other.go's
	// deliberate error must not show up.
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("unexpected type errors: %v", pkg.TypeErrors)
	}
}

func TestLoadAllFilesConstrainedOut(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": demoGoMod,
		"p/p.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load(filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "after build constraints") {
		t.Fatalf("want 'after build constraints' error, got %v", err)
	}
}

func TestLoadTestOnlyDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      demoGoMod,
		"p/p_test.go": "package p\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load(filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("want 'no Go files' error for test-only dir, got %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": demoGoMod,
		"a/a.go": "package a\n\nimport \"demo/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"demo/a\"\n\nvar Y = a.X\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(filepath.Join(root, "a"))
	// The cycle must surface somewhere — as a hard load error or as a
	// collected type error on any package in the cycle — never hang or
	// succeed silently.
	if err != nil {
		if !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("want cycle in load error, got %v", err)
		}
		return
	}
	pkgs := append(l.Loaded(), pkg)
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			if strings.Contains(terr.Error(), "cycle") {
				return
			}
		}
	}
	t.Fatal("import cycle went undetected")
}

func TestLoadNoGoMod(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "go.mod") {
		t.Fatalf("want go.mod error, got %v", err)
	}
}

func TestBuildTagSatisfied(t *testing.T) {
	cases := []struct {
		tag  string
		want bool
	}{
		{runtime.GOOS, true},
		{runtime.GOARCH, true},
		{"gc", true},
		{"go1.1", true},
		{"go1.999", false},
		{"ignore", false},
		{"sometag", false},
	}
	for _, c := range cases {
		if got := buildTagSatisfied(c.tag); got != c.want {
			t.Errorf("buildTagSatisfied(%q) = %v, want %v", c.tag, got, c.want)
		}
	}
	if unix := buildTagSatisfied("unix"); unix != unixGOOS[runtime.GOOS] {
		t.Errorf("buildTagSatisfied(unix) = %v on %s", unix, runtime.GOOS)
	}
}

func TestPackageDirsSkipsTestdata(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":            demoGoMod,
		"p/p.go":            "package p\n",
		"p/testdata/x.go":   "package x\n",
		"p/_hidden/h.go":    "package h\n",
		"vendor/v/v.go":     "package v\n",
		"q/sub/deep/d.go":   "package deep\n",
		"emptydir/.gitkeep": "",
	})
	dirs, err := PackageDirs(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var rels []string
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		rels = append(rels, filepath.ToSlash(rel))
	}
	want := []string{"p", "q/sub/deep"}
	if len(rels) != len(want) {
		t.Fatalf("PackageDirs = %v, want %v", rels, want)
	}
	for i := range want {
		if rels[i] != want[i] {
			t.Fatalf("PackageDirs = %v, want %v", rels, want)
		}
	}
}
