package lint

// Call-graph construction for the interprocedural analyzers. The graph
// is deliberately conservative in the direction that matters for the
// determinism rules (no nondeterminism source may go unseen):
//
//   - Every reference to a function or method — call position or not —
//     is an edge from the enclosing declared function. Passing a method
//     value into a callback (`c.Issue(t, ctrl.Submit)`) therefore links
//     the passer to Submit even though the call happens elsewhere.
//   - Function literals are attributed to the declared function whose
//     body lexically contains them, so work done inside closures handed
//     to flight.Protect / singleflight is charged to their creator.
//   - Calls through interface methods are devirtualized over the
//     module's concrete named types: an edge is added to every method
//     implementation whose type satisfies the interface (marked
//     Dynamic). Stdlib internals stay opaque leaves — sinks are
//     detected at the module-side reference, which is where they occur.
//
// Nodes are canonical *types.Func objects (generic origins, so every
// instantiation of flight.Group shares one node per method).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Edge is one caller→callee reference.
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	// Pos is the reference site (the callee identifier).
	Pos token.Pos
	// Dynamic marks a devirtualized interface-method edge: the callee is
	// one possible implementation, not a proven direct call.
	Dynamic bool
}

// FuncInfo ties a module-declared function to its AST.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// CallGraph is the module's reference graph.
type CallGraph struct {
	Mod *Module

	funcs []*types.Func // module-declared, in (package, file, decl) order
	decls map[*types.Func]*FuncInfo
	out   map[*types.Func][]Edge
	in    map[*types.Func][]Edge

	concrete []types.Type                  // named non-interface module types (value form)
	devirt   map[*types.Func][]*types.Func // interface method -> implementations
}

// BuildCallGraph walks every function declared in the module and records
// its outgoing references.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Mod:    mod,
		decls:  make(map[*types.Func]*FuncInfo),
		out:    make(map[*types.Func][]Edge),
		in:     make(map[*types.Func][]Edge),
		devirt: make(map[*types.Func][]*types.Func),
	}
	g.collectDecls()
	g.collectConcreteTypes()
	for _, fn := range g.funcs {
		g.addEdges(fn)
	}
	return g
}

// Functions returns every function declared in the module, in
// deterministic (package dependency, file, declaration) order.
func (g *CallGraph) Functions() []*types.Func { return g.funcs }

// Decl returns the declaration site of a module function, or nil for
// functions declared outside the module (stdlib leaves).
func (g *CallGraph) Decl(fn *types.Func) *FuncInfo { return g.decls[fn] }

// CallsFrom returns fn's outgoing edges in source order.
func (g *CallGraph) CallsFrom(fn *types.Func) []Edge { return g.out[fn] }

// CallersOf returns fn's incoming edges.
func (g *CallGraph) CallersOf(fn *types.Func) []Edge { return g.in[fn] }

func (g *CallGraph) collectDecls() {
	for _, pkg := range g.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = origin(fn)
				g.funcs = append(g.funcs, fn)
				g.decls[fn] = &FuncInfo{Pkg: pkg, Decl: fd}
			}
		}
	}
}

func (g *CallGraph) collectConcreteTypes() {
	for _, pkg := range g.Mod.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			g.concrete = append(g.concrete, t)
		}
	}
}

// addEdges walks fn's body (function literals included) and records an
// edge for every identifier resolving to a function object.
func (g *CallGraph) addEdges(fn *types.Func) {
	info := g.decls[fn]
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		callee, ok := info.Pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		callee = origin(callee)
		if isInterfaceMethod(callee) {
			for _, impl := range g.implementations(callee) {
				g.link(Edge{Caller: fn, Callee: impl, Pos: id.Pos(), Dynamic: true})
			}
		}
		g.link(Edge{Caller: fn, Callee: callee, Pos: id.Pos()})
		return true
	})
}

func (g *CallGraph) link(e Edge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
	g.in[e.Callee] = append(g.in[e.Callee], e)
}

// implementations resolves an interface method to the module's concrete
// methods satisfying it, memoized per interface method.
func (g *CallGraph) implementations(m *types.Func) []*types.Func {
	if impls, ok := g.devirt[m]; ok {
		return impls
	}
	var impls []*types.Func
	recv := m.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if ok {
		for _, t := range g.concrete {
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				impls = append(impls, origin(impl))
			}
		}
	}
	g.devirt[m] = impls
	return impls
}

// origin canonicalizes an instantiated generic function or method to its
// declared (generic) form, so every instantiation shares one node.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// Reach is the result of one reachability query: which functions are
// transitively referenced from a root set, with one witness path each.
type Reach struct {
	g    *CallGraph
	from map[*types.Func]*Edge // witness edge into each reached function (nil for roots)
}

// Reachable computes the functions transitively referenced from roots.
// skip, when non-nil, prunes traversal: a skipped function is neither
// reached nor traversed through (detertaint uses it for reviewed sinks).
func (g *CallGraph) Reachable(roots []*types.Func, skip func(*types.Func) bool) *Reach {
	r := &Reach{g: g, from: make(map[*types.Func]*Edge)}
	var queue []*types.Func
	for _, root := range roots {
		root = origin(root)
		if skip != nil && skip(root) {
			continue
		}
		if _, ok := r.from[root]; ok {
			continue
		}
		r.from[root] = nil
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for i := range g.out[fn] {
			e := &g.out[fn][i]
			callee := e.Callee
			if skip != nil && skip(callee) {
				continue
			}
			if _, ok := r.from[callee]; ok {
				continue
			}
			r.from[callee] = e
			queue = append(queue, callee)
		}
	}
	return r
}

// Has reports whether fn was reached.
func (r *Reach) Has(fn *types.Func) bool {
	_, ok := r.from[origin(fn)]
	return ok
}

// Path returns a witness root→…→fn chain, or nil if fn was not reached.
func (r *Reach) Path(fn *types.Func) []*types.Func {
	fn = origin(fn)
	if _, ok := r.from[fn]; !ok {
		return nil
	}
	var rev []*types.Func
	for cur := fn; ; {
		rev = append(rev, cur)
		e := r.from[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	path := make([]*types.Func, len(rev))
	for i, fn := range rev {
		path[len(rev)-1-i] = fn
	}
	return path
}

// PathString renders a witness chain as "root → … → fn" for diagnostics.
func (r *Reach) PathString(fn *types.Func) string {
	path := r.Path(fn)
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = FuncName(fn)
	}
	return strings.Join(names, " → ")
}

// FuncName renders fn for diagnostics: pkg.Func for package-level
// functions, (*pkg.T).Method / (pkg.T).Method for methods, with the
// package's short name.
func FuncName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgName + fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		return fmt.Sprintf("(*%s%s).%s", pkgName, typeBaseName(ptr.Elem()), fn.Name())
	}
	return fmt.Sprintf("(%s%s).%s", pkgName, typeBaseName(recv), fn.Name())
}

func typeBaseName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
