package lint

// Module loading: the whole-program view behind the interprocedural
// analyzers. A Module holds every package of one load in dependency
// order (imports before importers — the order the Loader completes them
// in), plus the lookups module analyzers need: package by import path,
// package by file, function objects by name, and struct-field
// declaration sites for annotation-driven rules.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Module is one whole-program load: the requested packages plus every
// module-internal dependency, type-checked, in dependency order.
type Module struct {
	Loader *Loader
	Fset   *token.FileSet
	// Pkgs is every loaded package in dependency order: a package's
	// module-internal imports precede it.
	Pkgs []*Package
	// Requested is the subset of Pkgs named by the load patterns (in
	// sorted directory order); the rest were pulled in as dependencies.
	Requested []*Package

	byPath map[string]*Package
	byFile map[string]*Package
	fields map[*types.Var]*FieldDecl // built on first use
}

// LoadModule loads every package matched by patterns rooted at root,
// plus (transitively) their module-internal imports. Packages that fail
// to load hard (unparsable files, unresolvable imports) are reported in
// the returned error slice; the module still carries every package that
// did load, so analysis degrades per-package instead of aborting. Soft
// type errors live on each Package.TypeErrors.
func LoadModule(root string, patterns []string) (*Module, []error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, []error{err}
	}
	dirs, err := PackageDirs(root, patterns)
	if err != nil {
		return nil, []error{err}
	}
	var errs []error
	var requested []*Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", dir, err))
			continue
		}
		requested = append(requested, pkg)
	}
	mod := newModule(loader, loader.Loaded())
	mod.Requested = requested
	return mod, errs
}

// ModuleFromPackages wraps already-loaded packages as a Module, in the
// given order. Analyzer tests use it to run module analyzers over a
// single corpus package.
func ModuleFromPackages(l *Loader, pkgs ...*Package) *Module {
	mod := newModule(l, pkgs)
	mod.Requested = append([]*Package(nil), pkgs...)
	return mod
}

func newModule(l *Loader, pkgs []*Package) *Module {
	mod := &Module{
		Loader: l,
		Fset:   l.Fset,
		Pkgs:   pkgs,
		byPath: make(map[string]*Package, len(pkgs)),
		byFile: make(map[string]*Package),
	}
	for _, pkg := range pkgs {
		mod.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			mod.byFile[l.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	return mod
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(path string) *Package { return m.byPath[path] }

// PackageOf returns the loaded package owning the given file, or nil.
func (m *Module) PackageOf(filename string) *Package { return m.byFile[filename] }

// FindFunc resolves a function or method in a loaded package: recv ""
// names a package-level function, otherwise the method recv.name (recv
// is the bare receiver type name, no pointer). Returns nil if absent.
func (m *Module) FindFunc(pkgPath, recv, name string) *types.Func {
	pkg := m.byPath[pkgPath]
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	scope := pkg.Types.Scope()
	if recv == "" {
		fn, _ := scope.Lookup(name).(*types.Func)
		return fn
	}
	tn, ok := scope.Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, name)
	fn, _ := obj.(*types.Func)
	return fn
}

// FieldDecl records where a struct field was declared: the package, the
// struct literal, and the field's AST node (whose Doc and Comment carry
// annotations like `//aquakey:exclude` and `// guarded by mu`).
type FieldDecl struct {
	Pkg    *Package
	Struct *ast.StructType
	Field  *ast.Field
}

// Fields maps every struct field object declared in the module to its
// declaration site, built on first use. Annotation-driven analyzers
// (keycoverage, guardedby) use it to read field comments and find
// sibling fields.
func (m *Module) Fields() map[*types.Var]*FieldDecl {
	if m.fields != nil {
		return m.fields
	}
	m.fields = make(map[*types.Var]*FieldDecl)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, f := range st.Fields.List {
					if len(f.Names) == 0 {
						// Embedded field: its implicit *Var is recorded
						// against the *ast.Field node.
						if v, ok := pkg.Info.Implicits[f].(*types.Var); ok {
							m.fields[v] = &FieldDecl{Pkg: pkg, Struct: st, Field: f}
						}
						continue
					}
					for _, name := range f.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							m.fields[v] = &FieldDecl{Pkg: pkg, Struct: st, Field: f}
						}
					}
				}
				return true
			})
		}
	}
	return m.fields
}
