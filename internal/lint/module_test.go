package lint

import (
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// demoModule is a two-package module: base is a leaf, app depends on it
// and exercises the call-graph shapes the interprocedural analyzers
// rely on (direct calls, method values, closures, interface dispatch).
var demoModule = map[string]string{
	"go.mod": demoGoMod,
	"base/base.go": `package base

// Ticker is implemented by app.Clock.
type Ticker interface{ Tick() int }

// Run dispatches through the interface.
func Run(t Ticker) int { return t.Tick() }
`,
	"app/app.go": `package app

import "demo/base"

// Clock implements base.Ticker.
type Clock struct {
	N int // guarded by nothing, just a field
}

func (c *Clock) Tick() int { return c.N }

// Helper is referenced as a method value, never called directly.
func (c *Clock) Helper() int { return c.N + 1 }

func Main() int {
	c := &Clock{N: 1}
	f := c.Helper
	_ = f
	closure := func() int { return base.Run(c) }
	return closure()
}
`,
}

func loadDemo(t *testing.T) *Module {
	t.Helper()
	root := writeTree(t, demoModule)
	mod, errs := LoadModule(root, []string{"./..."})
	if len(errs) > 0 {
		t.Fatalf("LoadModule: %v", errs)
	}
	return mod
}

func TestLoadModuleDependencyOrder(t *testing.T) {
	mod := loadDemo(t)
	pos := make(map[string]int)
	for i, pkg := range mod.Pkgs {
		pos[pkg.Path] = i
	}
	if pos["demo/base"] >= pos["demo/app"] {
		t.Fatalf("dependency order violated: base at %d, app at %d", pos["demo/base"], pos["demo/app"])
	}
	if len(mod.Requested) != 2 {
		t.Fatalf("want 2 requested packages, got %d", len(mod.Requested))
	}
	if mod.Package("demo/app") == nil || mod.Package("demo/nope") != nil {
		t.Fatal("Package lookup by import path broken")
	}
}

func TestLoadModuleCollectsPerDirFailures(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":       demoGoMod,
		"good/g.go":    "package good\n\nfunc G() {}\n",
		"broken/b.go":  "package broken\n\nfunc {garbage\n",
		"broken/ok.go": "package broken\n",
	})
	mod, errs := LoadModule(root, []string{"./..."})
	if len(errs) != 1 {
		t.Fatalf("want 1 load error, got %v", errs)
	}
	if mod == nil || mod.Package("demo/good") == nil {
		t.Fatal("healthy package must survive a sibling's load failure")
	}
}

func TestModuleFindFuncAndFields(t *testing.T) {
	mod := loadDemo(t)
	if fn := mod.FindFunc("demo/app", "Clock", "Tick"); fn == nil || fn.Name() != "Tick" {
		t.Fatalf("FindFunc method lookup failed: %v", fn)
	}
	if fn := mod.FindFunc("demo/app", "", "Main"); fn == nil {
		t.Fatal("FindFunc package-level lookup failed")
	}
	if fn := mod.FindFunc("demo/app", "Clock", "NoSuch"); fn != nil {
		t.Fatalf("FindFunc invented a method: %v", fn)
	}

	var foundN bool
	for v, decl := range mod.Fields() {
		if v.Name() == "N" {
			foundN = true
			if decl.Pkg.Path != "demo/app" || decl.Field == nil || decl.Struct == nil {
				t.Fatalf("field decl incomplete: %+v", decl)
			}
		}
	}
	if !foundN {
		t.Fatal("Fields() missed Clock.N")
	}

	appFile := mod.Fset.Position(mod.Package("demo/app").Files[0].Pos()).Filename
	if mod.PackageOf(appFile) != mod.Package("demo/app") {
		t.Fatal("PackageOf lookup broken")
	}
	if mod.PackageOf(filepath.Join("no", "such", "file.go")) != nil {
		t.Fatal("PackageOf invented a package")
	}
}

func TestCallGraphEdgesAndDevirtualization(t *testing.T) {
	mod := loadDemo(t)
	g := BuildCallGraph(mod)

	mainFn := mod.FindFunc("demo/app", "", "Main")
	tick := mod.FindFunc("demo/app", "Clock", "Tick")
	helper := mod.FindFunc("demo/app", "Clock", "Helper")
	run := mod.FindFunc("demo/base", "", "Run")

	edges := func(fn *types.Func) map[string]bool {
		out := make(map[string]bool)
		for _, e := range g.CallsFrom(fn) {
			out[FuncName(e.Callee)] = true
		}
		return out
	}

	// Main references Helper as a method value and Run inside a closure.
	mainEdges := edges(mainFn)
	if !mainEdges[FuncName(helper)] {
		t.Fatalf("method-value reference missing from Main's edges: %v", mainEdges)
	}
	if !mainEdges[FuncName(run)] {
		t.Fatalf("closure-attributed call missing from Main's edges: %v", mainEdges)
	}

	// Run calls Ticker.Tick; devirtualization must add a Dynamic edge to
	// the only implementation.
	var dynamic bool
	for _, e := range g.CallsFrom(run) {
		if e.Callee == tick && e.Dynamic {
			dynamic = true
		}
	}
	if !dynamic {
		t.Fatalf("devirtualized edge Run→Tick missing: %v", edges(run))
	}

	// Reachability: Main → Run → Tick, with a witness path.
	reach := g.Reachable([]*types.Func{mainFn}, nil)
	if !reach.Has(tick) {
		t.Fatal("Tick not reachable from Main through the interface")
	}
	path := reach.PathString(tick)
	for _, part := range []string{"app.Main", "base.Run", "Tick"} {
		if !strings.Contains(path, part) {
			t.Fatalf("witness path %q missing %q", path, part)
		}
	}

	// Skip pruning: refusing to traverse Run must hide Tick.
	pruned := g.Reachable([]*types.Func{mainFn}, func(fn *types.Func) bool { return fn == run })
	if pruned.Has(tick) {
		t.Fatal("skip(Run) must prune Tick")
	}
	if pruned.Path(tick) != nil {
		t.Fatal("pruned function must have no witness path")
	}
}

func TestFactsStore(t *testing.T) {
	mod := loadDemo(t)
	facts := NewFacts()
	tick := mod.FindFunc("demo/app", "Clock", "Tick")
	run := mod.FindFunc("demo/base", "", "Run")

	if facts.Has(tick, "mark") {
		t.Fatal("empty store has facts")
	}
	facts.Export(tick, "mark", "v1")
	facts.Export(run, "mark", "v2")
	facts.Export(nil, "mark", "dropped") // nil objects are ignored
	if v, ok := facts.Import(tick, "mark"); !ok || v != "v1" {
		t.Fatalf("Import = %v, %v", v, ok)
	}
	facts.Export(tick, "mark", "v1b") // overwrite
	if v, _ := facts.Import(tick, "mark"); v != "v1b" {
		t.Fatalf("overwrite failed: %v", v)
	}
	objs := facts.Objects("mark")
	if len(objs) != 2 {
		t.Fatalf("Objects = %d, want 2", len(objs))
	}
	if objs[0].Pos() > objs[1].Pos() {
		t.Fatal("Objects not ordered by position")
	}
}

func TestUnusedIgnoreAudit(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": demoGoMod,
		"p/p.go": `package p

func F() int { return 1 } //aqualint:ignore testrule
func G() int { return 2 } //aqualint:ignore testrule
func H() int { return 3 } //aqualint:ignore otherrule
func I() int { return 4 } //aqualint:ignore
`,
	})
	mod, errs := LoadModule(root, []string{"./p"})
	if len(errs) > 0 {
		t.Fatal(errs)
	}

	// testrule fires only on F's line: that ignore is used, G's is stale.
	an := &Analyzer{
		Name: "testrule",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if pass.Fset.Position(d.Pos()).Line == 3 {
						pass.Reportf(d.Pos(), "finding on F")
					}
				}
			}
		},
	}
	diags := RunAnalyzers(mod.Requested[0], []*Analyzer{an})
	if len(diags) != 0 {
		t.Fatalf("ignored diagnostic leaked: %v", diags)
	}

	enabled := map[string]bool{"testrule": true}
	audit := UnusedIgnores(mod.Requested, enabled, false)
	if len(audit) != 1 {
		t.Fatalf("partial-suite audit = %v, want only G's stale testrule ignore", audit)
	}
	if audit[0].Pos.Line != 4 || !strings.Contains(audit[0].Message, "testrule") {
		t.Fatalf("wrong stale entry: %v", audit[0])
	}

	// With the full suite running, the disabled-analyzer shield drops and
	// blanket ignores are audited too.
	enabled["otherrule"] = true
	full := UnusedIgnores(mod.Requested, enabled, true)
	if len(full) != 3 {
		t.Fatalf("full-suite audit = %v, want stale testrule + otherrule + blanket", full)
	}
}

func TestModulePassRespectsIgnores(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": demoGoMod,
		"p/p.go": `package p

func F() int { return 1 } //aqualint:ignore modrule
func G() int { return 2 }
`,
	})
	mod, errs := LoadModule(root, []string{"./p"})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	an := &Analyzer{
		Name: "modrule",
		RunModule: func(pass *ModulePass) {
			for _, fn := range pass.Graph.Functions() {
				pass.Reportf(fn.Pos(), "flag every function")
			}
		},
	}
	diags := RunModuleAnalyzers(mod, []*Analyzer{an})
	if len(diags) != 1 {
		t.Fatalf("want only G flagged (F's line is ignored), got %v", diags)
	}
	if diags[0].Pos.Line != 4 {
		t.Fatalf("wrong line: %v", diags[0])
	}
}

func TestSortDiagnosticsOrder(t *testing.T) {
	mk := func(file string, line, col int, an string) Diagnostic {
		return Diagnostic{Analyzer: an, Pos: token.Position{Filename: file, Line: line, Column: col}}
	}
	diags := []Diagnostic{
		mk("b.go", 1, 1, "z"),
		mk("a.go", 2, 1, "z"),
		mk("a.go", 2, 1, "a"),
		mk("a.go", 1, 9, "z"),
	}
	sortDiagnostics(diags)
	want := []Diagnostic{
		mk("a.go", 1, 9, "z"),
		mk("a.go", 2, 1, "a"),
		mk("a.go", 2, 1, "z"),
		mk("b.go", 1, 1, "z"),
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, diags[i], want[i])
		}
	}
}
