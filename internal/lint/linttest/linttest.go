// Package linttest runs a lint.Analyzer over a testdata corpus and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Corpus layout matches analysistest: testdata/src/<pkg>/*.go, with each
// expected diagnostic marked on its line:
//
//	rand.Int() // want `direct import of math/rand`
//
// A line with no want comment must produce no diagnostic.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile("want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one `// want` marker.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each named package from testdataDir/src and checks the
// analyzer's diagnostics against the corpus's want comments.
func Run(t *testing.T, an *lint.Analyzer, testdataDir string, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdataDir, "src", name)
		loader, err := lint.NewLoader(dir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		pkg, err := loader.LoadAs(dir, name)
		if err != nil {
			t.Fatalf("linttest: loading %s: %v", dir, err)
		}
		expects, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		var diags []lint.Diagnostic
		if an.RunModule != nil {
			mod := lint.ModuleFromPackages(loader, pkg)
			diags = lint.RunModuleAnalyzers(mod, []*lint.Analyzer{an})
		} else {
			diags = lint.RunAnalyzers(pkg, []*lint.Analyzer{an})
		}

		for _, d := range diags {
			matched := false
			for _, e := range expects {
				if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
					e.hit = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", name, d)
			}
		}
		for _, e := range expects {
			if !e.hit {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					name, filepath.Base(e.file), e.line, e.re)
			}
		}
	}
}

// collectWants extracts the want markers from a package's comments.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				e, err := parseWant(pkg.Fset, c.Pos(), c.Text)
				if err != nil {
					return nil, err
				}
				if e != nil {
					out = append(out, e)
				}
			}
		}
	}
	return out, nil
}

func parseWant(fset *token.FileSet, pos token.Pos, text string) (*expectation, error) {
	if !strings.Contains(text, "want") {
		return nil, nil
	}
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, nil
	}
	pattern := m[2]
	if m[1] != "" {
		unq, err := strconv.Unquote(`"` + m[1] + `"`)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", m[1], err)
		}
		pattern = unq
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad want regexp %q: %v", pattern, err)
	}
	position := fset.Position(pos)
	return &expectation{file: position.Filename, line: position.Line, re: re}, nil
}
