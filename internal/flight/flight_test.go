package flight

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupSharesInFlightCall(t *testing.T) {
	var g Group[string, int]
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	// Leader: opens the flight and holds it open on release. Its fn runs
	// only after the call is registered, so once started closes, every
	// later Do("k", …) is guaranteed to find the call in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := g.Do("k", func() (int, error) {
			executions.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader: %d, %v", v, err)
		}
	}()
	<-started

	// Followers: each marks arrival, then piles onto the open flight.
	var arrived atomic.Int64
	results := make([]int, 7)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			v, err := g.Do("k", func() (int, error) {
				executions.Add(1)
				return -1, nil // must never run: the flight is open
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Keep the flight open until every follower has arrived and had
	// ample chance to advance from its arrival mark into Do (each yield
	// lets runnable goroutines run until they block on the call).
	for arrived.Load() < int64(len(results)) {
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Fatalf("follower %d got %d (ran its own fn instead of sharing)", i, v)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("want 1 shared execution, got %d", n)
	}
}

func TestGroupDistinctKeysDoNotBlock(t *testing.T) {
	var g Group[int, int]
	for k := 0; k < 10; k++ {
		v, err := g.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("key %d: %d, %v", k, v, err)
		}
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err := g.Do("k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("got %v", err)
	}
	// The key is forgotten after the call; a retry re-executes.
	v, err := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry: %d, %v", v, err)
	}
}

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 50
		seen := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEach(20, workers, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachKeepsRunningAfterFailure(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(10, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 10 {
		t.Fatalf("only %d of 10 indices ran", ran.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
