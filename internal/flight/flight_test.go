package flight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupSharesInFlightCall(t *testing.T) {
	var g Group[string, int]
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	// Leader: opens the flight and holds it open on release. Its fn runs
	// only after the call is registered, so once started closes, every
	// later Do("k", …) is guaranteed to find the call in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := g.Do("k", func() (int, error) {
			executions.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader: %d, %v", v, err)
		}
	}()
	<-started

	// Followers: each marks arrival, then piles onto the open flight.
	var arrived atomic.Int64
	results := make([]int, 7)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			v, err := g.Do("k", func() (int, error) {
				executions.Add(1)
				return -1, nil // must never run: the flight is open
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Keep the flight open until every follower has arrived and had
	// ample chance to advance from its arrival mark into Do (each yield
	// lets runnable goroutines run until they block on the call).
	for arrived.Load() < int64(len(results)) {
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Fatalf("follower %d got %d (ran its own fn instead of sharing)", i, v)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("want 1 shared execution, got %d", n)
	}
}

func TestGroupDistinctKeysDoNotBlock(t *testing.T) {
	var g Group[int, int]
	for k := 0; k < 10; k++ {
		v, err := g.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("key %d: %d, %v", k, v, err)
		}
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err := g.Do("k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("got %v", err)
	}
	// The key is forgotten after the call; a retry re-executes.
	v, err := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry: %d, %v", v, err)
	}
}

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 50
		seen := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEach(20, workers, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachKeepsRunningAfterFailure(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(10, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 10 {
		t.Fatalf("only %d of 10 indices ran", ran.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachConvertsPanicToPanicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(10, workers, func(i int) error {
			ran.Add(1)
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError lost value or stack: %+v", workers, pe)
		}
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: panic at one index stopped the others (%d of 10 ran)", workers, ran.Load())
		}
	}
}

func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n, workers = 100, 2
	var dispatched atomic.Int64
	gate := make(chan struct{})
	busy := make(chan struct{}, workers)
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(ctx, n, workers, func(i int) error {
			dispatched.Add(1)
			if i < workers {
				busy <- struct{}{}
				<-gate
			}
			return nil
		})
	}()
	// Both workers are now parked inside fn, so the feeder is blocked on
	// its select; cancelling must be the only case that can complete.
	<-busy
	<-busy
	cancel()
	close(gate)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := dispatched.Load(); d >= n {
		t.Fatalf("cancellation did not stop dispatch: %d of %d indices ran", d, n)
	}
}

func TestForEachCtxSerialPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 10, 1, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
		t.Fatalf("pre-cancelled serial run: err=%v ran=%d", err, ran.Load())
	}
}

func TestForEachCtxCancellationDominatesCellError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 5, 1, func(i int) error {
		cancel()
		return errors.New("cell failed")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v; an incomplete index set must report cancellation", err)
	}
}

func TestGroupLeaderPanicPropagatesToWaiters(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = g.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("leader died")
		})
	}()
	<-started
	var arrived atomic.Int64
	for i := 1; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			_, errs[i] = g.Do("k", func() (int, error) { return -1, nil })
		}(i)
	}
	for arrived.Load() < int64(len(errs)-1) {
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: got %v, want *PanicError from the leader's panic", i, err)
		}
		if pe.Value != "leader died" {
			t.Fatalf("caller %d: wrong panic value %v", i, pe.Value)
		}
	}
}

func TestGroupDoCtxWaiterAbandonsOnCancel(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader: %d, %v (waiter cancellation must not disturb the flight)", v, err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := g.DoCtx(ctx, "k", func() (int, error) { return -1, nil })
		waiterDone <- err
	}()
	// Let the waiter join the open flight, then cancel only its context.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

func TestGroupDoCtxPreCancelledSkipsExecution(t *testing.T) {
	var g Group[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := g.DoCtx(ctx, "k", func() (int, error) { ran.Add(1); return 1, nil })
	if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
		t.Fatalf("pre-cancelled DoCtx: err=%v ran=%d", err, ran.Load())
	}
}

func TestProtect(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("plain")
	if err := Protect(func() error { return sentinel }); err != sentinel {
		t.Fatalf("got %v", err)
	}
	err := Protect(func() error { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("got %v, want *PanicError{42}", err)
	}
}

// transientErr marks itself retryable for Retry/IsTransient.
type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

// permanentErr carries an explicit Transient() == false marker wrapping
// an inner error, pinning the chain as non-retryable.
type permanentErr struct{ err error }

func (e permanentErr) Error() string   { return "permanent: " + e.err.Error() }
func (e permanentErr) Unwrap() error   { return e.err }
func (e permanentErr) Transient() bool { return false }

// fakeNetErr implements net.Error with a configurable Timeout answer.
type fakeNetErr struct{ timeout bool }

func (e fakeNetErr) Error() string   { return "fake net error" }
func (e fakeNetErr) Timeout() bool   { return e.timeout }
func (e fakeNetErr) Temporary() bool { return false }

func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("plain"), false},
		{"marker", transientErr{"flaky"}, true},
		{"marker joined", errors.Join(errors.New("context"), transientErr{"flaky"}), true},
		{"marker wrapped", fmt.Errorf("cell: %w", transientErr{"flaky"}), true},

		// net.Error classification: timeouts retry, other net errors do not.
		{"net timeout", fakeNetErr{timeout: true}, true},
		{"net timeout wrapped", fmt.Errorf("round trip: %w", fakeNetErr{timeout: true}), true},
		{"net non-timeout", fakeNetErr{timeout: false}, false},
		{"op error timeout", &net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, true},

		// Wrapped I/O: torn reads and expired I/O deadlines retry.
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"unexpected EOF wrapped", fmt.Errorf("decode header: %w", io.ErrUnexpectedEOF), true},
		{"io deadline wrapped", fmt.Errorf("conn read: %w", os.ErrDeadlineExceeded), true},
		{"plain EOF", io.EOF, false},

		// Cancellation is the caller giving up, never retried — even
		// though context.DeadlineExceeded itself answers Timeout() true.
		{"ctx canceled", context.Canceled, false},
		{"ctx deadline", fmt.Errorf("job: %w", context.DeadlineExceeded), false},

		// An explicit marker is authoritative in both directions.
		{"permanent marker over timeout", permanentErr{os.ErrDeadlineExceeded}, false},
		{"permanent marker over net timeout", fmt.Errorf("x: %w", permanentErr{fakeNetErr{timeout: true}}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := IsTransient(c.err); got != c.want {
				t.Fatalf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestRetryStopsOnSuccessAndNonTransient(t *testing.T) {
	var calls int
	if err := Retry(5, nil, func(int) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("success: err=%v calls=%d", err, calls)
	}
	calls = 0
	hard := errors.New("hard failure")
	if err := Retry(5, nil, func(int) error { calls++; return hard }); err != hard || calls != 1 {
		t.Fatalf("non-transient: err=%v calls=%d (must not retry)", err, calls)
	}
}

func TestRetryRetriesTransientWithBackoff(t *testing.T) {
	var attempts, backoffs []int
	err := Retry(5, func(a int) { backoffs = append(backoffs, a) }, func(a int) error {
		attempts = append(attempts, a)
		if a < 2 {
			return transientErr{"flaky"}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2}; len(attempts) != 3 || attempts[0] != want[0] || attempts[1] != want[1] || attempts[2] != want[2] {
		t.Fatalf("attempt numbers %v, want %v", attempts, want)
	}
	if want := []int{1, 2}; len(backoffs) != 2 || backoffs[0] != want[0] || backoffs[1] != want[1] {
		t.Fatalf("backoff ran with %v, want %v (before each re-attempt only)", backoffs, want)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var calls int
	err := Retry(3, nil, func(int) error { calls++; return transientErr{"always flaky"} })
	if calls != 3 {
		t.Fatalf("ran %d attempts, want 3", calls)
	}
	if !IsTransient(err) {
		t.Fatalf("final error %v lost its transient marker", err)
	}
}

func TestRetryContainsPanicAsNonTransient(t *testing.T) {
	var calls int
	err := Retry(5, nil, func(int) error { calls++; panic("poisoned cell") })
	var pe *PanicError
	if !errors.As(err, &pe) || calls != 1 {
		t.Fatalf("err=%v calls=%d; a panic must surface once as *PanicError, not retry", err, calls)
	}
}
