// Package flight provides the concurrency primitives the experiment
// engine is built on: a generic singleflight group (concurrent callers
// asking for the same key share one execution and its result), a bounded
// worker pool with deterministic error selection, and the resilience
// helpers layered on both — context cancellation, panic containment, and
// bounded retry.
//
// The primitives are deliberately free of any randomness or wall-clock
// reads: which goroutine computes a value may vary run to run, but the
// value computed, the caches it lands in, and the error reported are
// identical regardless of scheduling. That property is what lets the
// parallel experiment engine emit byte-identical tables to the serial
// one (see DESIGN.md "Concurrency model").
//
// Panic policy: a panic inside work submitted to ForEach, ForEachCtx,
// Group.Do or Protect never crosses the package boundary. It is caught at
// the index (or call) that raised it and converted into a *PanicError
// carrying the panic value and stack, so one poisoned grid cell reports
// a structured failure instead of killing a multi-minute run.
package flight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
)

// PanicError is a recovered panic converted into an error: the panic
// value plus the stack of the goroutine at the recovery point.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// NewPanicError wraps a recovered panic value, capturing the stack at the
// call site (i.e. inside the recovering deferred function, which still
// shows the panicking frames).
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Protect runs fn, converting a panic into a *PanicError return. It is
// the package's panic policy as a standalone helper for callers that run
// risky work outside a pool.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r)
		}
	}()
	return fn()
}

// IsTransient reports whether err is worth retrying. The classification,
// in precedence order:
//
//  1. An explicit marker anywhere in the chain (interface{ Transient()
//     bool }) is authoritative in both directions: Transient() == false
//     pins the error as permanent even if a timeout sits deeper in the
//     chain.
//  2. net.Error timeouts (net/http round-trip deadlines, dial timeouts)
//     are transient: the peer may well answer the next attempt.
//  3. Torn short reads (io.ErrUnexpectedEOF) and expired I/O deadlines
//     (os.ErrDeadlineExceeded) are transient: both mean the bytes were
//     cut off mid-flight, not that they can never arrive.
//
// Cancellation is never transient — context.Canceled and
// context.DeadlineExceeded mean the caller gave up, and retrying against
// a dead context would spin through attempts doing nothing.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, os.ErrDeadlineExceeded)
}

// Retry runs fn up to `attempts` times, stopping at the first success or
// the first non-transient error (panics are contained by Protect around
// fn and are non-transient). backoff, when non-nil, runs before each
// re-attempt with the attempt number (1, 2, …); the simulator passes nil
// — its faults clear by re-execution, not by waiting — while interactive
// front-ends may sleep.
func Retry(attempts int, backoff func(attempt int), fn func(attempt int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 && backoff != nil {
			backoff(a)
		}
		attempt := a
		err = Protect(func() error { return fn(attempt) })
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// call is one in-flight computation. done is closed when val/err are
// final, so waiters can select against a context.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group deduplicates concurrent computations by key: while a call for a
// key is executing, later callers for the same key block and receive the
// same result instead of re-executing. The zero value is ready to use.
//
// Unlike a cache, a Group forgets the key once the call completes; pair
// it with a mutex-guarded map when results should persist (the Runner
// and Lab caches do exactly that).
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V] // guarded by mu
}

// Do executes fn for key, unless a call for key is already in flight, in
// which case it waits for that call and returns its result. A panic in
// fn is contained: the executing caller and every waiter receive a
// *PanicError instead of a hung WaitGroup or a crashed process.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return g.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with cancellation: a waiter whose context ends abandons
// the wait and returns ctx.Err() (the in-flight execution itself is not
// interrupted — its result still lands for other waiters), and a would-be
// executor whose context has already ended returns ctx.Err() without
// executing.
func (g *Group[K, V]) DoCtx(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = NewPanicError(r)
			}
		}()
		c.val, c.err = fn()
	}()
	close(c.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err
}

// ForEach runs fn(0), fn(1), …, fn(n-1) on at most workers goroutines
// and waits for all of them. Every index runs exactly once even when
// some fail, and a panic at one index becomes that index's *PanicError
// without disturbing the others. The returned error is the one from the
// lowest failing index — not the first to fail in wall-clock order — so
// the error a caller sees does not depend on goroutine scheduling.
//
// workers <= 1 degenerates to a plain serial loop on the calling
// goroutine (still running every index).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx ends, no further
// index is dispatched (in-flight indices finish). Cancellation dominates
// the result — the index set is incomplete, so the return is ctx.Err()
// even when a dispatched index also failed; with an intact context the
// lowest-index error rule applies. Deadlines propagate by construction:
// fn closures capture ctx and pass it down to cancellable work.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protectIdx(fn, i); err != nil && first == nil {
				first = err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return first
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				// The recovery must live lexically inside the goroutine
				// (the nakedgo lint guards exactly this): a panic that
				// escaped a pooled worker would kill the whole process.
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = NewPanicError(r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	cancelled := false
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
	}
	close(next)
	wg.Wait()

	if cancelled {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protectIdx runs fn(i) under the package panic policy (serial path; the
// pooled path inlines the same recovery inside the worker goroutine).
func protectIdx(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r)
		}
	}()
	return fn(i)
}
