// Package flight provides the two concurrency primitives the experiment
// engine is built on: a generic singleflight group (concurrent callers
// asking for the same key share one execution and its result) and a
// bounded worker pool with deterministic error selection.
//
// Both primitives are deliberately free of any randomness or wall-clock
// reads: which goroutine computes a value may vary run to run, but the
// value computed, the caches it lands in, and the error reported are
// identical regardless of scheduling. That property is what lets the
// parallel experiment engine emit byte-identical tables to the serial
// one (see DESIGN.md "Concurrency model").
package flight

import "sync"

// call is one in-flight computation.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group deduplicates concurrent computations by key: while a call for a
// key is executing, later callers for the same key block and receive the
// same result instead of re-executing. The zero value is ready to use.
//
// Unlike a cache, a Group forgets the key once the call completes; pair
// it with a mutex-guarded map when results should persist (the Runner
// and Lab caches do exactly that).
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do executes fn for key, unless a call for key is already in flight, in
// which case it waits for that call and returns its result.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := new(call[V])
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err
}

// ForEach runs fn(0), fn(1), …, fn(n-1) on at most workers goroutines
// and waits for all of them. Every index runs exactly once even when
// some fail. The returned error is the one from the lowest failing
// index — not the first to fail in wall-clock order — so the error a
// caller sees does not depend on goroutine scheduling.
//
// workers <= 1 degenerates to a plain serial loop on the calling
// goroutine (still running every index).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
