// Package core implements AQUA, the paper's primary contribution: a
// Rowhammer mitigation that quarantines aggressor rows at runtime in a
// dedicated Row Quarantine Area (RQA) of memory (Section IV).
//
// The engine owns:
//
//   - the RQA, a region of DRAM rows reserved by the memory controller and
//     invisible to software, managed as a circular buffer with a head
//     pointer;
//   - the Forward-Pointer Table (FPT), mapping quarantined install rows to
//     their RQA slot;
//   - the Reverse-Pointer Table (RPT), mapping each RQA slot back to the
//     install row it holds;
//   - an Aggressor-Row Tracker (ART), by default a per-bank Misra-Gries
//     tracker that flags a row every T_RH/2 activations;
//   - in memory-mapped mode (Section V), the resettable bloom filter, the
//     FPT-Cache with singleton filtering, and the in-DRAM copies of FPT
//     and RPT whose accesses consume real channel time — with the FPT
//     entries of the table-holding rows pinned in SRAM to avoid recursive
//     lookups (Section VI-B).
//
// Epoch behaviour follows Section IV-A: the tracker resets every refresh
// interval, while FPT/RPT entries drain lazily — a stale entry is evicted
// (moved back to its original location) only when its RQA slot is about to
// be reused, and a slot is never reused within the epoch in which it was
// last hammered.
package core

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/bloom"
	"repro/internal/cat"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mitigation"
	"repro/internal/sramcache"
	"repro/internal/tracker"
)

// Mode selects where AQUA's mapping tables live.
type Mode int

const (
	// ModeSRAM stores FPT and RPT entirely in SRAM (Section IV-C: 172KB
	// per rank at T_RH=1K).
	ModeSRAM Mode = iota
	// ModeMemMapped stores FPT and RPT in DRAM and filters lookups with a
	// bloom filter and FPT-Cache (Section V: 41KB SRAM per rank).
	ModeMemMapped
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSRAM {
		return "sram"
	}
	return "memmapped"
}

// Config parameterizes an AQUA engine.
type Config struct {
	// TRH is the Rowhammer threshold; migrations trigger every TRH/2
	// activations (the tracker-reset headroom of property P1).
	TRH int64
	// Mode selects SRAM or memory-mapped tables.
	Mode Mode
	// RQARows overrides the quarantine size; 0 derives it from Equation 3.
	RQARows int
	// Tracker overrides the aggressor-row tracker; nil uses a per-bank
	// Misra-Gries tracker provisioned per the Graphene rule.
	Tracker tracker.Tracker
	// BloomGroupSize is the rows-per-bloom-bit grouping (default 16: half a
	// 64-byte FPT cacheline).
	BloomGroupSize int
	// FPTCacheEntries and FPTCacheWays size the FPT-Cache (default 4K x 16).
	FPTCacheEntries int
	FPTCacheWays    int
	// ProactiveDrain enables the Section IV-D optimization: during idle
	// periods the engine evicts stale quarantine entries just ahead of
	// the head pointer, so a later quarantine rarely pays the extra
	// 1.37us move-out on its critical path.
	ProactiveDrain bool
	// DrainLookahead bounds how many slots ahead of the head pointer the
	// background drainer keeps clean (default 64).
	DrainLookahead int
	// SRAMLatency is the lookup latency of SRAM tables (default 4 cycles at
	// 3GHz ~= 1.33ns, the paper's "3 to 4 cycles").
	SRAMLatency dram.PS
	// BloomLatency and CacheLatency are the lookup latencies of the bloom
	// filter and FPT-Cache.
	BloomLatency dram.PS
	CacheLatency dram.PS
	// Seed controls hash seeds of the CAT.
	Seed uint64
	// Invariants, when non-nil, enables runtime invariant checking: O(1)
	// structural assertions after every mitigation plus the full
	// CheckInvariants sweep at each epoch boundary, reported through the
	// checker instead of panicking.
	Invariants *invariant.Checker
	// Faults, when non-nil, consults the injector for mitigation-level
	// faults (RQAOverflow, MigrationAbort, FPTCachePoison, TrackerCorrupt)
	// and scopes the DRAM layer's ECCFlip to the quarantine region.
	Faults *fault.Injector
}

// DefaultConfig returns the paper's default configuration at T_RH=1K with
// memory-mapped tables.
func DefaultConfig() Config {
	return Config{TRH: 1000, Mode: ModeMemMapped}
}

func (c *Config) fillDefaults() {
	if c.TRH == 0 {
		c.TRH = 1000
	}
	if c.BloomGroupSize == 0 {
		c.BloomGroupSize = 16
	}
	if c.FPTCacheEntries == 0 {
		c.FPTCacheEntries = 4096
	}
	if c.FPTCacheWays == 0 {
		c.FPTCacheWays = 16
	}
	if c.SRAMLatency == 0 {
		c.SRAMLatency = 1330 // ~4 cycles at 3GHz
	}
	if c.BloomLatency == 0 {
		c.BloomLatency = 340 // ~1 cycle
	}
	if c.CacheLatency == 0 {
		c.CacheLatency = 670 // ~2 cycles
	}
	if c.DrainLookahead == 0 {
		c.DrainLookahead = 64
	}
}

// EffectiveThreshold returns the migration trigger threshold T_RH/2.
func (c Config) EffectiveThreshold() int64 {
	t := c.TRH / 2
	if t < 1 {
		t = 1
	}
	return t
}

// rptEntry is one Reverse-Pointer Table slot.
type rptEntry struct {
	install dram.Row // original (install) row held in this slot
	valid   bool
	// epochUsed is the last epoch in which this slot was installed to or
	// hammered; a slot is never reused as a destination within that epoch.
	epochUsed int64
}

// Engine is the AQUA mitigation engine for one rank. It implements
// mitigation.Mitigator. Not safe for concurrent use.
type Engine struct {
	cfg  Config
	rank *dram.Rank
	geom dram.Geometry

	art tracker.Tracker

	// Region layout (rows reserved from the top of every bank).
	rqaRows         int
	rqaRowsPerBank  int
	fptTableRows    int // memory-mapped mode only
	rptTableRows    int
	tableRowsPerBnk int

	// fptSlot is the authoritative forward mapping: install row -> RQA slot
	// (-1 when not quarantined). In hardware this is the FPT content; the
	// SRAM CAT / in-DRAM table model the *access cost* of reaching it.
	fptSlot []int32
	rpt     []rptEntry
	// fast is the Translate fast path: bit `row` is set exactly when the
	// row resolves to itself through the slow path's cheapest early
	// return — not an RQA slot or table row, not quarantined, and
	// (memory-mapped mode) its bloom group bit clear. The common
	// "ordinary row" case then costs one branch-predictable bit probe
	// instead of the layout arithmetic and filter walk; translateSlow
	// keeps every panic, fault hook, and latency charge for the rest.
	// A bitmap rather than a byte array because the probe is a cache
	// miss magnet: one bit per row keeps the whole structure (~256KB for
	// 2M rows) cache-resident where a byte map would not be. Maintained
	// at the three places the predicate can change: New, mitigate,
	// clearMapping.
	fast     []uint64
	fastRows uint64
	// fastLat/fastClass are the mode's precomputed fast-path translation
	// (BloomLatency/LookupBloomFiltered memory-mapped, SRAMLatency/
	// LookupSRAM in SRAM mode), so the hot path is branch-free on mode.
	fastLat   dram.PS
	fastClass mitigation.LookupClass
	head    int
	epoch   int64
	// quarCount tracks the number of valid RPT entries incrementally, so
	// the invariant layer can assert occupancy in O(1) after each
	// mitigation and cross-check it against the full scan at epoch ends.
	quarCount int
	chk       *invariant.Checker
	// drainCursor is the proactive drainer's sweep position;
	// drainRemaining counts the slots left in the current epoch's sweep
	// (0 = sweep complete, nothing more to drain until the next epoch).
	drainCursor    int
	drainRemaining int

	// SRAM mode: the CAT models set-conflict behaviour of the real FPT.
	fptCAT *cat.Table
	// catFailures counts placements the CAT could not hold (must stay 0
	// with the paper's overprovisioning).
	catFailures int64

	// Memory-mapped mode structures.
	bloom    *bloom.Filter
	fptCache *sramcache.Cache

	// pending holds physical rows activated by the engine's own row
	// streams, to be fed to the tracker after the current mitigation
	// completes (avoids re-entrancy).
	pending []dram.Row

	// faults, when non-nil, is consulted at each mitigation-level fault
	// opportunity (nil-safe methods; one pointer test on the hot path).
	faults *fault.Injector

	stats mitigation.Stats
}

// compile-time interface check
var _ mitigation.Mitigator = (*Engine)(nil)

// layout is the pure region arithmetic of an engine: how many rows the
// RQA and (in memory-mapped mode) the FPT/RPT table strips reserve. It is
// computed without touching DRAM or tracker state, so callers that only
// need the software-visible region size (sim.VisibleRegion) can get it
// without paying for an engine build.
type layout struct {
	rqaRows         int
	rqaRowsPerBank  int
	fptTableRows    int // memory-mapped mode only
	rptTableRows    int
	tableRowsPerBnk int
}

// layoutFor computes the region layout for a configuration. cfg must
// already have defaults filled. It panics on configurations that cannot
// be laid out, since all callers construct configurations statically.
func layoutFor(geom dram.Geometry, timing dram.Timing, cfg Config) layout {
	rqa := cfg.RQARows
	if rqa == 0 {
		rqa = analytic.RQAParams{
			EffectiveThreshold: cfg.EffectiveThreshold(),
			Banks:              geom.Banks,
			Timing:             timing,
			LinesPerRow:        geom.LinesPerRow(),
		}.RMax()
	}
	if rqa < 1 {
		panic("core: RQA must have at least one row")
	}
	l := layout{rqaRows: rqa, rqaRowsPerBank: ceilDiv(rqa, geom.Banks)}
	if cfg.Mode == ModeMemMapped {
		fptBytes := geom.Rows() * 2
		rptBytes := rqa * 4
		l.fptTableRows = ceilDiv(fptBytes, geom.RowBytes)
		l.rptTableRows = ceilDiv(rptBytes, geom.RowBytes)
		l.tableRowsPerBnk = ceilDiv(l.fptTableRows+l.rptTableRows, geom.Banks)
	}
	if l.rqaRowsPerBank+l.tableRowsPerBnk >= geom.RowsPerBank {
		panic(fmt.Sprintf("core: reserved rows (%d RQA + %d table per bank) exceed bank size %d",
			l.rqaRowsPerBank, l.tableRowsPerBnk, geom.RowsPerBank))
	}
	return l
}

// VisibleRowsPerBankFor returns the software-visible rows per bank an
// engine with this configuration would leave, without building one: the
// layout arithmetic alone, not the multi-megabyte FPT/tracker state. An
// engine build per region query used to dominate experiment setup time.
func VisibleRowsPerBankFor(geom dram.Geometry, timing dram.Timing, cfg Config) int {
	cfg.fillDefaults()
	l := layoutFor(geom, timing, cfg)
	return geom.RowsPerBank - l.rqaRowsPerBank - l.tableRowsPerBnk
}

// New builds an AQUA engine bound to a rank. It panics on configurations
// that cannot be laid out (e.g. an RQA larger than memory), since all
// callers construct configurations statically.
func New(rank *dram.Rank, cfg Config) *Engine {
	cfg.fillDefaults()
	geom := rank.Geometry()
	timing := rank.Timing()

	l := layoutFor(geom, timing, cfg)
	rqa := l.rqaRows

	e := &Engine{
		cfg:             cfg,
		rank:            rank,
		geom:            geom,
		rqaRows:         rqa,
		rqaRowsPerBank:  l.rqaRowsPerBank,
		fptTableRows:    l.fptTableRows,
		rptTableRows:    l.rptTableRows,
		tableRowsPerBnk: l.tableRowsPerBnk,
		fptSlot:         make([]int32, geom.Rows()),
		rpt:             make([]rptEntry, rqa),
	}
	for i := range e.fptSlot {
		e.fptSlot[i] = -1
	}
	for i := range e.rpt {
		e.rpt[i].epochUsed = -1
	}

	if cfg.Mode == ModeMemMapped {
		e.bloom = bloom.New(geom.Rows(), cfg.BloomGroupSize)
		e.fptCache = sramcache.New(cfg.FPTCacheEntries, cfg.FPTCacheWays, cfg.BloomGroupSize)
	}

	if cfg.Mode == ModeSRAM {
		sets := nextPow2(ceilDiv(rqa*14/10, 16)) // ~1.4x overprovision, 2 skews x 8 ways
		if sets < 1 {
			sets = 1
		}
		e.fptCAT = cat.New(cat.Config{Sets: sets, Ways: 8, Seed: cfg.Seed ^ 0xa9fa, MaxRelocations: 16})
	}

	e.fast = make([]uint64, (geom.Rows()+63)/64)
	e.fastRows = uint64(geom.Rows())
	if cfg.Mode == ModeMemMapped {
		e.fastLat, e.fastClass = e.cfg.BloomLatency, mitigation.LookupBloomFiltered
	} else {
		e.fastLat, e.fastClass = e.cfg.SRAMLatency, mitigation.LookupSRAM
	}
	// At construction nothing is quarantined, no forward entry exists, and
	// the bloom is empty, so fastEligible reduces to the static region
	// predicates — false only inside the reserved strip at the top of each
	// bank (RQA slots + table rows). Bulk-set every bit and recompute just
	// the strip: O(rows/64 + reserved) instead of a predicate call per row,
	// which dominated per-cell engine construction on grid runs.
	// CheckInvariants audits bitmap == fastEligible over all rows, so the
	// equivalence is a tested contract, not an assumption.
	for i := range e.fast {
		e.fast[i] = ^uint64(0)
	}
	if tail := uint(geom.Rows()) & 63; tail != 0 {
		e.fast[len(e.fast)-1] = 1<<tail - 1
	}
	reserved := l.rqaRowsPerBank + l.tableRowsPerBnk
	for bank := 0; bank < geom.Banks; bank++ {
		hi := (bank + 1) * geom.RowsPerBank
		for r := hi - reserved; r < hi; r++ {
			e.setFast(dram.Row(r), e.fastEligible(dram.Row(r)))
		}
	}

	e.chk = cfg.Invariants
	e.art = cfg.Tracker
	if e.art == nil {
		e.art = tracker.NewMisraGries(geom, cfg.EffectiveThreshold(),
			tracker.ProvisionEntries(timing, cfg.EffectiveThreshold()))
	}
	e.faults = cfg.Faults
	if e.faults != nil {
		// Scope the DRAM layer's ECC flips to the quarantine region: the
		// RQA is where hammering concentrates, so that is where the fault
		// model places correctable flips (ISSUE fault taxonomy).
		e.faults.SetRowFilter(fault.ECCFlip, func(row int64) bool {
			_, isSlot := e.rowSlot(dram.Row(row))
			return isSlot
		})
	}
	return e
}

// --- region layout -------------------------------------------------------

// slotRow returns the physical row of RQA slot s: slots stripe across
// banks, filling each bank's topmost rows downward, so concurrent attacks
// on all banks are absorbed by per-bank quarantine capacity.
func (e *Engine) slotRow(s int) dram.Row {
	bank := s % e.geom.Banks
	idx := e.geom.RowsPerBank - 1 - s/e.geom.Banks
	return e.geom.RowOf(bank, idx)
}

// rowSlot returns the RQA slot of a physical row, if it is one.
func (e *Engine) rowSlot(r dram.Row) (int, bool) {
	idx := e.geom.IndexOf(r)
	depth := e.geom.RowsPerBank - 1 - idx
	if depth < 0 || depth >= e.rqaRowsPerBank {
		return 0, false
	}
	s := depth*e.geom.Banks + e.geom.BankOf(r)
	if s >= e.rqaRows {
		return 0, false
	}
	return s, true
}

// tableRowAt returns the physical row of table-row index t (memory-mapped
// mode): table rows occupy the strip just below the RQA.
func (e *Engine) tableRowAt(t int) dram.Row {
	bank := t % e.geom.Banks
	idx := e.geom.RowsPerBank - e.rqaRowsPerBank - 1 - t/e.geom.Banks
	return e.geom.RowOf(bank, idx)
}

// isTableRow reports whether r holds FPT/RPT content; such rows have their
// FPT entries pinned in SRAM (Section VI-B).
func (e *Engine) isTableRow(r dram.Row) bool {
	if e.cfg.Mode != ModeMemMapped {
		return false
	}
	idx := e.geom.IndexOf(r)
	depth := e.geom.RowsPerBank - e.rqaRowsPerBank - 1 - idx
	if depth < 0 || depth >= e.tableRowsPerBnk {
		return false
	}
	t := depth*e.geom.Banks + e.geom.BankOf(r)
	return t < e.fptTableRows+e.rptTableRows
}

// fptTableRowFor returns the physical row holding install row x's FPT
// entry (2 bytes per entry).
func (e *Engine) fptTableRowFor(x dram.Row) dram.Row {
	return e.tableRowAt(int(x) * 2 / e.geom.RowBytes)
}

// rptTableRowFor returns the physical row holding slot s's RPT entry.
func (e *Engine) rptTableRowFor(s int) dram.Row {
	return e.tableRowAt(e.fptTableRows + s*4/e.geom.RowBytes)
}

// VisibleRowsPerBank returns the number of software-visible rows per bank
// (everything below the RQA and table strips).
func (e *Engine) VisibleRowsPerBank() int {
	return e.geom.RowsPerBank - e.rqaRowsPerBank - e.tableRowsPerBnk
}

// RQASize returns the number of quarantine slots.
func (e *Engine) RQASize() int { return e.rqaRows }

// IsQuarantined reports whether install row x currently lives in the RQA.
func (e *Engine) IsQuarantined(x dram.Row) bool { return e.fptSlot[x] >= 0 }

// QuarantinedCount returns the number of currently quarantined rows.
func (e *Engine) QuarantinedCount() int {
	n := 0
	for _, s := range e.rpt {
		if s.valid {
			n++
		}
	}
	return n
}

// CATFailures returns the number of FPT placements the SRAM CAT rejected
// (always 0 with correct provisioning).
func (e *Engine) CATFailures() int64 { return e.catFailures }

// Tracker exposes the engine's ART (for tests).
func (e *Engine) Tracker() tracker.Tracker { return e.art }

// BloomFilter exposes the bloom filter in memory-mapped mode (nil in SRAM
// mode); used by tests and storage accounting.
func (e *Engine) BloomFilter() *bloom.Filter { return e.bloom }

// FPTCache exposes the FPT-Cache in memory-mapped mode (nil in SRAM mode).
func (e *Engine) FPTCache() *sramcache.Cache { return e.fptCache }

// --- Mitigator implementation -------------------------------------------

// Name implements mitigation.Mitigator.
func (e *Engine) Name() string { return "aqua-" + e.cfg.Mode.String() }

// Translate implements mitigation.Mitigator: it resolves the current
// physical location of an install row, charging the lookup path of the
// configured mode (Figure 10's four categories in memory-mapped mode).
//
// The common "ordinary row" case — not quarantined, not remapped, outside
// AQUA's own regions — is answered by one probe of the fast bitmap with
// the mode's precomputed latency and class; it returns exactly what the
// slow path's earliest return would (in memory-mapped mode that return
// sits behind the bloom filter's definitive negative, so the fast path
// skips the filter's internal test counter but charges the same latency
// and increments the same Lookups class). Everything else — RQA/geometry
// panics, pinned table rows, quarantine hits, fault hooks — falls through
// to translateSlow, which is the previous Translate verbatim.
func (e *Engine) Translate(row dram.Row, now dram.PS) mitigation.Translation {
	if w := uint64(row); w < e.fastRows && e.fast[w>>6]&(1<<(w&63)) != 0 {
		e.stats.Lookups[e.fastClass]++
		return mitigation.Translation{PhysRow: row, Latency: e.fastLat, Class: e.fastClass}
	}
	return e.translateSlow(row, now)
}

// setFast writes one row's fast-bitmap bit.
func (e *Engine) setFast(r dram.Row, v bool) {
	if v {
		e.fast[uint64(r)>>6] |= 1 << (uint64(r) & 63)
	} else {
		e.fast[uint64(r)>>6] &^= 1 << (uint64(r) & 63)
	}
}

// fastEligible computes one row's fast-bitmap entry from the authoritative
// structures; the maintenance hooks keep the bitmap equal to this
// predicate at all times (CheckInvariants audits it).
func (e *Engine) fastEligible(r dram.Row) bool {
	if _, isSlot := e.rowSlot(r); isSlot {
		return false
	}
	if e.isTableRow(r) || e.fptSlot[r] >= 0 {
		return false
	}
	if e.cfg.Mode == ModeMemMapped && e.bloom.GroupOccupancy(uint32(r)) > 0 {
		// Group bit set (bit state and occupancy move together): the slow
		// path must walk the cache/singleton/DRAM chain.
		return false
	}
	return true
}

// fastRefreshGroup recomputes the bitmap for every row sharing old's bloom
// group, called on the two transitions that flip a whole group's bit:
// first quarantine in a group (all members lose the fast path to the
// filter's possibly-quarantined answer) and last eviction from it (the
// surviving ordinary members get it back). Group size is a small constant
// (default 16 rows).
func (e *Engine) fastRefreshGroup(member dram.Row) {
	size := e.bloom.GroupSize()
	start := int(e.bloom.GroupOf(uint32(member))) * size
	end := start + size
	if end > int(e.fastRows) {
		end = int(e.fastRows)
	}
	for r := start; r < end; r++ {
		e.setFast(dram.Row(r), e.fastEligible(dram.Row(r)))
	}
}

func (e *Engine) translateSlow(row dram.Row, now dram.PS) mitigation.Translation {
	if !e.geom.Contains(row) {
		panic(fmt.Sprintf("core: translate of row %d outside geometry", row))
	}
	if _, isSlot := e.rowSlot(row); isSlot {
		panic(fmt.Sprintf("core: translate of RQA row %d (software must not address the RQA)", row))
	}

	// The forward-table read is deferred into the branches that resolve
	// through it: the memory-mapped bloom/cache/singleton paths below
	// never consult fptSlot directly (the FPT-Cache and the in-DRAM walk
	// carry the mapping), so probing the big array up front would cost
	// every bloom false positive a pointless cache miss.

	// Rows holding AQUA's own tables resolve from pinned SRAM entries.
	if e.isTableRow(row) {
		phys := row
		if s := e.fptSlot[row]; s >= 0 {
			phys = e.slotRow(int(s))
		}
		e.stats.Lookups[mitigation.LookupPinned]++
		return mitigation.Translation{PhysRow: phys, Latency: e.cfg.SRAMLatency, Class: mitigation.LookupPinned}
	}

	if e.cfg.Mode == ModeSRAM {
		phys := row
		if s := e.fptSlot[row]; s >= 0 {
			phys = e.slotRow(int(s))
		}
		e.stats.Lookups[mitigation.LookupSRAM]++
		return mitigation.Translation{PhysRow: phys, Latency: e.cfg.SRAMLatency, Class: mitigation.LookupSRAM}
	}

	// Memory-mapped lookup path.
	lat := e.cfg.BloomLatency
	if !e.bloom.MightContain(uint32(row)) {
		e.stats.Lookups[mitigation.LookupBloomFiltered]++
		return mitigation.Translation{PhysRow: row, Latency: lat, Class: mitigation.LookupBloomFiltered}
	}
	if e.faults != nil && e.faults.Fire(fault.FPTCachePoison, now) {
		// Poisoned FPT-Cache entry: drop it so the lookup must walk the
		// in-DRAM FPT below, which re-inserts the authoritative mapping —
		// the cache self-heals and the translation stays correct (the
		// fptSlot array, not the cache, is the source of truth).
		e.fptCache.Invalidate(uint32(row))
	}
	lat += e.cfg.CacheLatency
	if slot, hit := e.fptCache.Lookup(uint32(row)); hit {
		e.stats.Lookups[mitigation.LookupCacheHit]++
		return mitigation.Translation{PhysRow: e.slotRow(int(slot)), Latency: lat, Class: mitigation.LookupCacheHit}
	}
	// Second same-set probe: singleton filtering (Section V-D).
	lat += e.cfg.CacheLatency
	if e.fptCache.ProbeGroupSingleton(uint32(row)) {
		e.stats.Lookups[mitigation.LookupSingleton]++
		return mitigation.Translation{PhysRow: row, Latency: lat, Class: mitigation.LookupSingleton}
	}
	// Walk to the in-DRAM FPT: a real DRAM access on the critical path.
	done := e.tableAccess(e.fptTableRowFor(row), false, now+lat)
	lat = done - now
	e.stats.Lookups[mitigation.LookupDRAM]++
	if s := e.fptSlot[row]; s >= 0 {
		e.fptCache.Insert(uint32(row), uint16(s), e.bloom.GroupOccupancy(uint32(row)) == 1)
		return mitigation.Translation{PhysRow: e.slotRow(int(s)), Latency: lat, Class: mitigation.LookupDRAM}
	}
	return mitigation.Translation{PhysRow: row, Latency: lat, Class: mitigation.LookupDRAM}
}

// tableAccess performs one line access to an engine table row, resolving
// the (pinned) indirection for the table row itself and feeding the
// resulting activation to the tracker via the pending queue.
func (e *Engine) tableAccess(tr dram.Row, write bool, at dram.PS) dram.PS {
	phys := tr
	if s := e.fptSlot[tr]; s >= 0 {
		phys = e.slotRow(int(s))
	}
	done, activated := e.rank.Access(phys, write, at)
	e.stats.TableDRAMAccesses++
	if activated {
		e.pending = append(e.pending, phys)
	}
	return done
}

// Delay implements mitigation.Mitigator; AQUA never throttles accesses.
func (e *Engine) Delay(_ dram.Row, now dram.PS) dram.PS { return now }

// OnActivate implements mitigation.Mitigator: the tracker counts the
// activation and, when it crosses a multiple of T_RH/2, the row is
// quarantined. Activations caused by the migration's own row streams are
// fed back to the tracker iteratively.
func (e *Engine) OnActivate(physRow dram.Row, at dram.PS) dram.PS {
	if e.faults != nil && e.faults.Fire(fault.TrackerCorrupt, at) {
		e.corruptTracker(at)
	}
	var busy dram.PS
	if e.art.RecordACT(physRow) {
		busy += e.mitigate(physRow, at+busy)
	}
	// Drain activations generated by the mitigation itself (bounded: each
	// mitigation adds a handful of ACTs, and triggering again requires
	// another 500 on one row, so this loop terminates immediately in
	// practice). Indexed iteration (appends during the loop extend it)
	// with a final truncation keeps the queue's backing array reusable
	// instead of re-slicing its capacity away.
	for i := 0; i < len(e.pending); i++ {
		if e.art.RecordACT(e.pending[i]) {
			busy += e.mitigate(e.pending[i], at+busy)
		}
	}
	e.pending = e.pending[:0]
	return busy
}

// mitigate quarantines the aggressor at physRow (Section IV-D) and returns
// the channel time consumed.
func (e *Engine) mitigate(physRow dram.Row, at dram.PS) dram.PS {
	if e.faults != nil && e.faults.Fire(fault.RQAOverflow, at) {
		// Forced overflow: the quarantine refuses the aggressor before any
		// table state changes, and the engine degrades gracefully to a
		// victim-refresh fallback for this one mitigation.
		return e.fallbackRefresh(physRow, at)
	}
	// Identify the install row X and the source of the copy.
	var install dram.Row
	src := physRow
	srcSlot := -1
	if slot, isSlot := e.rowSlot(physRow); isSlot {
		if !e.rpt[slot].valid {
			// Stale activity on an empty slot (e.g. an eviction's write);
			// nothing to quarantine.
			return 0
		}
		install = e.rpt[slot].install
		// The hammered slot is retired for the rest of this epoch.
		e.rpt[slot].valid = false
		e.rpt[slot].epochUsed = e.epoch
		e.quarCount--
		srcSlot = slot
	} else {
		if e.fptSlot[physRow] >= 0 {
			// The original location of an already-quarantined row (its
			// only ACTs come from evictions); demand accesses are routed
			// to the RQA, so no action is needed here.
			return 0
		}
		install = physRow
	}

	e.stats.Mitigations++
	t := at

	// Claim the next RQA slot (circular buffer head). A slot used in the
	// current epoch — including the slot the aggressor is migrating *out
	// of* — must not be reused: it has absorbed activations this epoch,
	// and reinstalling there would let the attacker keep accumulating on
	// one physical row. With Equation 3 sizing the head never reaches a
	// same-epoch slot; the bounded scan makes the guarantee structural,
	// and an undersized RQA surfaces as a ReuseViolations count.
	d := e.head
	for scanned := 0; scanned < e.rqaRows && e.rpt[d].epochUsed == e.epoch; scanned++ {
		d = (d + 1) % e.rqaRows
	}
	if e.rpt[d].epochUsed == e.epoch {
		// Every slot was used this epoch: the RQA is undersized. Even so,
		// never self-copy into the slot the row is leaving.
		e.stats.ReuseViolations++
		if d == srcSlot && e.rqaRows > 1 {
			d = (d + 1) % e.rqaRows
		}
	}
	e.head = (d + 1) % e.rqaRows

	// Evict a stale occupant from a previous epoch back to its original
	// location (lazy drain, Section IV-A).
	if e.rpt[d].valid {
		old := e.rpt[d].install
		t = e.streamPair(e.slotRow(d), old, t)
		e.clearMapping(old, t)
		e.rpt[d].valid = false
		e.quarCount--
		e.stats.Evictions++
		e.stats.RowMigrations++
	}

	// Copy the aggressor into the quarantine slot.
	t = e.streamPair(src, e.slotRow(d), t)
	e.stats.RowMigrations++

	// Update FPT and RPT.
	wasQuarantined := e.fptSlot[install] >= 0
	e.fptSlot[install] = int32(d)
	e.setFast(install, false) // quarantined rows always take the slow path
	e.rpt[d] = rptEntry{install: install, valid: true, epochUsed: e.epoch}
	e.quarCount++

	switch e.cfg.Mode {
	case ModeSRAM:
		if err := e.fptCAT.Insert(install, uint32(d)); err != nil {
			e.catFailures++
		}
	case ModeMemMapped:
		if !wasQuarantined && !e.isTableRow(install) {
			occBefore := e.bloom.GroupOccupancy(uint32(install))
			e.bloom.Add(uint32(install))
			if occBefore == 0 {
				// The group bit flipped set: every member now gets the
				// filter's "possibly quarantined" answer.
				e.fastRefreshGroup(install)
			}
			if occBefore == 1 {
				// The group just stopped being a singleton.
				e.fptCache.SetGroupSingleton(uint32(install), false)
			}
			e.fptCache.Insert(uint32(install), uint16(d), occBefore == 0)
		} else if wasQuarantined && !e.isTableRow(install) {
			e.fptCache.Insert(uint32(install), uint16(d), e.bloom.GroupOccupancy(uint32(install)) == 1)
		}
		// Table maintenance traffic: FPT entry write and RPT entry write.
		t = e.tableAccess(e.fptTableRowFor(install), true, t)
		t = e.tableAccess(e.rptTableRowFor(d), true, t)
	}

	if e.chk != nil {
		// O(1) structural checks on the slot just written; the full-table
		// sweep runs at epoch boundaries.
		e.chk.Checkf(e.fptSlot[install] == int32(d) && e.rpt[d].valid && e.rpt[d].install == install,
			"core", "fpt-rpt-bijection", t,
			"install row %d and slot %d disagree after quarantine", install, d)
		e.chk.Checkf(e.quarCount <= e.rqaRows, "core", "rqa-occupancy", t,
			"%d quarantined rows exceed RQA capacity %d", e.quarCount, e.rqaRows)
	}

	// The channel is reserved until the migration completes (Section IV-G).
	e.rank.Reserve(t)
	busy := t - at
	e.stats.ChannelBusy += busy
	return busy
}

// streamPair copies one row through the copy buffer: a full-row read from
// src followed by a full-row write to dst (~1.37us). The activations it
// causes are queued for the tracker.
func (e *Engine) streamPair(src, dst dram.Row, at dram.PS) dram.PS {
	t := e.rank.StreamRow(src, false, at)
	e.pending = append(e.pending, src)
	if e.faults != nil && e.faults.Fire(fault.MigrationAbort, t) {
		// Aborted mid-copy: the write pass is torn down and the migration
		// retries from scratch, wasting one full-row read of channel time.
		e.stats.MigrationAborts++
		t = e.rank.StreamRow(src, false, t)
		e.pending = append(e.pending, src)
	}
	t = e.rank.StreamRow(dst, true, t)
	e.pending = append(e.pending, dst)
	if e.chk != nil {
		e.chk.Checkf(t >= at+e.rank.Timing().MigrationTime(e.geom.LinesPerRow()),
			"core", "migration-complete", t,
			"migration %d -> %d finished at %dps, before one full copy could", src, dst, t)
	}
	return t
}

// fallbackRefresh is the graceful-degradation path when an injected RQA
// overflow refuses a quarantine: refresh the aggressor's distance-1
// neighbours instead (the victim-refresh model of internal/vrefresh),
// preserving the Rowhammer guarantee for this mitigation at tRC per victim
// without touching FPT/RPT state. The occupancy invariant is re-checked
// after the recovery: degradation must not have perturbed the quarantine.
func (e *Engine) fallbackRefresh(physRow dram.Row, at dram.PS) dram.PS {
	e.stats.Mitigations++
	e.stats.OverflowFallbacks++
	trc := e.rank.Timing().TRC
	t := at
	_, n := e.geom.NeighborPair(physRow, 1)
	for v := 0; v < n; v++ {
		t += trc
		e.stats.VictimRefreshes++
	}
	e.rank.Reserve(t)
	busy := t - at
	e.stats.ChannelBusy += busy
	if e.chk != nil {
		e.chk.Checkf(e.quarCount <= e.rqaRows && e.quarCount >= 0,
			"core", "rqa-occupancy", t,
			"occupancy %d out of range after overflow fallback (capacity %d)", e.quarCount, e.rqaRows)
	}
	return busy
}

// corruptTracker injects a Misra-Gries counter corruption: the payload
// stream picks a bank, an entry, and a bogus count; CorruptEntry
// re-heapifies around the bad value, and the structural re-check verifies
// the recovery left a well-formed tracker (the *estimate* is now wrong,
// which is the fault — Misra-Gries over-estimates stay safe, while an
// under-estimate models a real missed-detection hazard).
func (e *Engine) corruptTracker(at dram.PS) {
	mg, ok := e.art.(*tracker.MisraGries)
	if !ok {
		return // only the Misra-Gries tracker models counter corruption
	}
	bank := int(e.faults.Draw(fault.TrackerCorrupt) % uint64(e.geom.Banks))
	idx := int(e.faults.Draw(fault.TrackerCorrupt) & 0x7fffffff)
	bogus := int64(e.faults.Draw(fault.TrackerCorrupt)%uint64(2*e.cfg.EffectiveThreshold())) + 1
	if _, corrupted := mg.CorruptEntry(bank, idx, bogus); corrupted && e.chk != nil {
		if err := mg.CheckConsistency(); err != nil {
			e.chk.Reportf("core", "tracker-recovery", at, "%v", err)
		}
	}
}

// clearMapping removes install row old from all mapping structures after
// its eviction completes at time t.
func (e *Engine) clearMapping(old dram.Row, t dram.PS) {
	e.fptSlot[old] = -1
	switch e.cfg.Mode {
	case ModeSRAM:
		e.fptCAT.Delete(old)
		e.setFast(old, e.fastEligible(old))
	case ModeMemMapped:
		if !e.isTableRow(old) {
			e.fptCache.Invalidate(uint32(old))
			e.bloom.Remove(uint32(old))
			if e.bloom.GroupOccupancy(uint32(old)) == 0 {
				// The group bit flipped clear: surviving ordinary members
				// regain the bloom-filtered fast path.
				e.fastRefreshGroup(old)
			}
			if e.bloom.GroupOccupancy(uint32(old)) == 1 {
				// Back to a singleton group: set the bit on the remaining
				// resident member, if cached.
				e.fptCache.SetGroupSingleton(uint32(old), true)
			}
		}
		// Writing the invalidation back to the in-DRAM FPT.
		_ = e.tableAccess(e.fptTableRowFor(old), true, t)
	}
}

// OnEpoch implements mitigation.Mitigator: the tracker resets every
// refresh interval; FPT/RPT drain lazily (Section IV-A).
func (e *Engine) OnEpoch(now dram.PS) {
	if e.chk != nil {
		// Full structural sweep at the epoch boundary, reported through the
		// checker rather than panicking mid-simulation.
		if err := e.CheckInvariants(); err != nil {
			e.chk.Reportf("core", "structural", now, "%v", err)
		}
		e.chk.Checkf(e.quarCount == e.QuarantinedCount(), "core", "occupancy-count", now,
			"incremental occupancy %d disagrees with RPT scan %d", e.quarCount, e.QuarantinedCount())
		if e.cfg.ProactiveDrain && e.drainRemaining == 0 {
			// A completed drain sweep must leave no quarantined row from an
			// earlier epoch: entries installed after their slot was swept
			// all carry the current epoch.
			for s, ent := range e.rpt {
				if ent.valid && ent.epochUsed < e.epoch {
					e.chk.Reportf("core", "stale-after-drain", now,
						"slot %d still holds row %d from epoch %d after a completed drain sweep",
						s, ent.install, ent.epochUsed)
				}
			}
		}
	}
	e.art.Reset()
	e.epoch++
	if e.cfg.ProactiveDrain {
		// Entries from earlier epochs are now stale: restart the sweep.
		e.drainCursor = 0
		e.drainRemaining = e.rqaRows
	}
}

// OnIdle implements memctrl's optional Drainer hook: when the channel is
// idle and proactive draining is enabled, evict one stale quarantine
// entry (Section IV-D: "the latency for moving out a row from the RQA can
// be removed from the critical path by periodically draining old
// entries"). A persistent cursor sweeps the RQA so every stale entry is
// eventually restored to its original location; per call, at most
// DrainLookahead slots are scanned and at most one eviction is performed.
// Returns the channel time consumed (0 if there was nothing to drain).
func (e *Engine) OnIdle(now dram.PS) dram.PS {
	if !e.cfg.ProactiveDrain || e.drainRemaining == 0 {
		return 0
	}
	look := e.cfg.DrainLookahead
	if look > e.drainRemaining {
		look = e.drainRemaining
	}
	for i := 0; i < look; i++ {
		d := e.drainCursor
		e.drainCursor = (e.drainCursor + 1) % e.rqaRows
		e.drainRemaining--
		ent := &e.rpt[d]
		if !ent.valid || ent.epochUsed >= e.epoch {
			continue
		}
		old := ent.install
		t := e.streamPair(e.slotRow(d), old, now)
		e.clearMapping(old, t)
		ent.valid = false
		e.quarCount--
		e.stats.Evictions++
		e.stats.ProactiveDrains++
		e.stats.RowMigrations++
		e.rank.Reserve(t)
		busy := t - now
		e.stats.ChannelBusy += busy
		// Feed the drain's own activations to the tracker.
		for i := 0; i < len(e.pending); i++ {
			if e.art.RecordACT(e.pending[i]) {
				busy += e.mitigate(e.pending[i], now+busy)
			}
		}
		e.pending = e.pending[:0]
		return busy
	}
	return 0
}

// Stats implements mitigation.Mitigator.
func (e *Engine) Stats() mitigation.Stats { return e.stats }

// StatsReset zeroes the counters (between measurement phases).
func (e *Engine) StatsReset() {
	e.stats = mitigation.Stats{}
	if e.bloom != nil {
		e.bloom.StatsReset()
	}
	if e.fptCache != nil {
		e.fptCache.StatsReset()
	}
}

// CheckInvariants validates the engine's structural invariants; tests call
// it after arbitrary operation sequences:
//
//   - forward/backward consistency: fptSlot[x] = s implies rpt[s] is valid
//     and points back to x, and vice versa;
//   - no two install rows share an RQA slot;
//   - in memory-mapped mode, the bloom filter's per-group occupancy equals
//     the number of quarantined (non-table) rows in that group, and every
//     quarantined row tests positive.
func (e *Engine) CheckInvariants() error {
	quarantined := 0
	for x, s := range e.fptSlot {
		if s < 0 {
			continue
		}
		quarantined++
		if int(s) >= len(e.rpt) {
			return fmt.Errorf("core: fptSlot[%d] = %d out of RQA range", x, s)
		}
		if !e.rpt[s].valid {
			return fmt.Errorf("core: fptSlot[%d] = %d but slot invalid", x, s)
		}
		if e.rpt[s].install != dram.Row(x) {
			return fmt.Errorf("core: slot %d holds %d, expected %d", s, e.rpt[s].install, x)
		}
	}
	valid := 0
	for s, ent := range e.rpt {
		if !ent.valid {
			continue
		}
		valid++
		if e.fptSlot[ent.install] != int32(s) {
			return fmt.Errorf("core: slot %d points to %d whose fptSlot is %d",
				s, ent.install, e.fptSlot[ent.install])
		}
	}
	if quarantined != valid {
		return fmt.Errorf("core: %d forward pointers vs %d valid slots", quarantined, valid)
	}
	for r := uint64(0); r < e.fastRows; r++ {
		have := e.fast[r>>6]&(1<<(r&63)) != 0
		if want := e.fastEligible(dram.Row(r)); have != want {
			return fmt.Errorf("core: translate fast bitmap stale at row %d (have %v, want %v)", r, have, want)
		}
	}
	if e.cfg.Mode == ModeMemMapped {
		occ := make(map[uint32]int)
		for x, s := range e.fptSlot {
			if s >= 0 && !e.isTableRow(dram.Row(x)) {
				occ[e.bloom.GroupOf(uint32(x))]++
				if !e.bloom.MightContain(uint32(x)) {
					return fmt.Errorf("core: quarantined row %d tests negative in bloom", x)
				}
			}
		}
		for g, n := range occ {
			row := g * uint32(e.bloom.GroupSize())
			if got := e.bloom.GroupOccupancy(row); got != n {
				return fmt.Errorf("core: group %d occupancy %d, expected %d", g, got, n)
			}
		}
	}
	return nil
}

// --- helpers -------------------------------------------------------------

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
