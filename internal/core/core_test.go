package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mitigation"
	"repro/internal/rng"
	"repro/internal/tracker"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

// newEngine builds a small engine with an exact tracker so tests control
// exactly when mitigations fire.
func newEngine(t *testing.T, mode Mode, rqaRows int, trh int64) (*dram.Rank, *Engine) {
	t.Helper()
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := New(rank, Config{
		TRH:     trh,
		Mode:    mode,
		RQARows: rqaRows,
		Tracker: tracker.NewExact(testGeom(), trh/2),
		Seed:    1,
	})
	return rank, eng
}

// hammer drives `acts` activations of the row's *current physical
// location* through the engine, following migrations, and returns the
// accumulated busy time.
func hammer(eng *Engine, install dram.Row, acts int, at dram.PS) dram.PS {
	var busy dram.PS
	for i := 0; i < acts; i++ {
		tr := eng.Translate(install, at)
		busy += eng.OnActivate(tr.PhysRow, at)
		at += 50 * dram.Nanosecond
	}
	return busy
}

// TestFreshEngineFastBitmap pins the construction fast path: the bulk
// bitmap fill plus per-bank strip recompute must land exactly where the
// old full-row predicate sweep did, in both modes and on a geometry
// whose row count is not a multiple of 64 (the partial-word tail).
func TestFreshEngineFastBitmap(t *testing.T) {
	geoms := []dram.Geometry{
		testGeom(),
		{Banks: 3, RowsPerBank: 50, RowBytes: 1024, LineBytes: 64}, // 150 rows: 64-bit tail
	}
	for _, geom := range geoms {
		for _, mode := range []Mode{ModeSRAM, ModeMemMapped} {
			eng := New(dram.NewRank(geom, dram.DDR4()), Config{
				TRH:     40,
				Mode:    mode,
				RQARows: 8,
				Tracker: tracker.NewExact(geom, 20),
				Seed:    1,
			})
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("geom %dx%d mode %v: fresh engine: %v",
					geom.Banks, geom.RowsPerBank, mode, err)
			}
			// The tail bits past Rows() must stay clear so the bitmap never
			// claims rows outside the geometry.
			for w := uint64(geom.Rows()); w < uint64(len(eng.fast)*64); w++ {
				if eng.fast[w>>6]&(1<<(w&63)) != 0 {
					t.Fatalf("geom %dx%d mode %v: fast bit set past Rows() at %d",
						geom.Banks, geom.RowsPerBank, mode, w)
				}
			}
		}
	}
}

func TestQuarantineAfterEffectiveThreshold(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 8, 40) // migrate every 20 ACTs
	row := testGeom().RowOf(0, 5)
	busy := hammer(eng, row, 19, 0)
	if eng.IsQuarantined(row) {
		t.Fatal("quarantined before threshold")
	}
	if busy != 0 {
		t.Fatal("busy time before any mitigation")
	}
	busy = hammer(eng, row, 1, 0)
	if !eng.IsQuarantined(row) {
		t.Fatal("not quarantined at threshold")
	}
	if busy <= 0 {
		t.Fatal("mitigation consumed no channel time")
	}
	st := eng.Stats()
	if st.Mitigations != 1 || st.RowMigrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateRedirectsToRQA(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 8, 40)
	row := testGeom().RowOf(1, 9)
	hammer(eng, row, 20, 0)
	tr := eng.Translate(row, 0)
	if tr.PhysRow == row {
		t.Fatal("translate still points at the original location")
	}
	// The destination is in the reserved top strip of a bank.
	idx := testGeom().IndexOf(tr.PhysRow)
	if idx < testGeom().RowsPerBank-eng.rqaRowsPerBank {
		t.Fatalf("destination row index %d is not in the RQA strip", idx)
	}
	// Other rows unaffected.
	other := testGeom().RowOf(1, 10)
	if got := eng.Translate(other, 0); got.PhysRow != other {
		t.Fatal("unrelated row translated")
	}
}

func TestInternalMigrationWithinRQA(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 8, 40)
	row := testGeom().RowOf(0, 5)
	hammer(eng, row, 20, 0)
	first := eng.Translate(row, 0).PhysRow
	// Keep hammering: the quarantined location itself crosses the
	// threshold (property P3) and must move within the RQA.
	hammer(eng, row, 20, dram.PS(1)*dram.Millisecond)
	second := eng.Translate(row, 0).PhysRow
	if second == first || second == row {
		t.Fatalf("internal migration missing: %d -> %d", first, second)
	}
	st := eng.Stats()
	if st.Mitigations != 2 {
		t.Fatalf("mitigations = %d", st.Mitigations)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyEvictionOnWrap(t *testing.T) {
	geom := testGeom()
	_, eng := newEngine(t, ModeSRAM, 2, 40)
	a, b, c := geom.RowOf(0, 1), geom.RowOf(1, 1), geom.RowOf(2, 1)
	hammer(eng, a, 20, 0)
	hammer(eng, b, 20, dram.Millisecond)
	eng.OnEpoch(64 * dram.Millisecond) // next epoch: slots become stale
	hammer(eng, c, 20, 65*dram.Millisecond)
	st := eng.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if eng.IsQuarantined(a) {
		t.Fatal("evicted row still mapped")
	}
	if got := eng.Translate(a, 0); got.PhysRow != a {
		t.Fatal("evicted row not restored to original location")
	}
	if !eng.IsQuarantined(b) || !eng.IsQuarantined(c) {
		t.Fatal("wrong slot evicted")
	}
	if st.ReuseViolations != 0 {
		t.Fatalf("reuse violations = %d (eviction crossed epochs)", st.ReuseViolations)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReuseViolationDetectedWhenUndersized(t *testing.T) {
	geom := testGeom()
	_, eng := newEngine(t, ModeSRAM, 2, 40)
	// Three quarantines in one epoch with a 2-slot RQA: the third reuses
	// a slot installed this epoch.
	hammer(eng, geom.RowOf(0, 1), 20, 0)
	hammer(eng, geom.RowOf(1, 1), 20, 0)
	hammer(eng, geom.RowOf(2, 1), 20, 0)
	if eng.Stats().ReuseViolations == 0 {
		t.Fatal("undersized RQA reuse not detected")
	}
}

func TestProperlySizedRQANeverReuses(t *testing.T) {
	// Equation 3 sizing (the default) must keep ReuseViolations at zero
	// even under a worst-case quarantine-rate attack within one epoch:
	// here we force many quarantines with a generous RQA.
	geom := testGeom()
	_, eng := newEngine(t, ModeSRAM, 64, 40)
	at := dram.PS(0)
	for i := 0; i < 32; i++ {
		hammer(eng, geom.RowOf(i%4, 1+i/4), 20, at)
		at += 10 * dram.Microsecond
	}
	if v := eng.Stats().ReuseViolations; v != 0 {
		t.Fatalf("reuse violations = %d", v)
	}
}

func TestLookupClassesMemMapped(t *testing.T) {
	geom := testGeom()
	_, eng := newEngine(t, ModeMemMapped, 8, 40)

	// Fresh row: bloom bit clear.
	r0 := geom.RowOf(0, 5)
	if tr := eng.Translate(r0, 0); tr.Class != mitigation.LookupBloomFiltered {
		t.Fatalf("fresh row class = %v", tr.Class)
	}

	// Quarantined row: present in the FPT-Cache after the mitigation.
	hammer(eng, r0, 20, 0)
	if tr := eng.Translate(r0, 0); tr.Class != mitigation.LookupCacheHit {
		t.Fatalf("quarantined row class = %v", tr.Class)
	}

	// Same-group sibling (group size 16, rows (0,5) and (0,6) share the
	// bloom group): bloom positive, cache miss, singleton bit proves
	// non-residency.
	sibling := geom.RowOf(0, 6)
	if tr := eng.Translate(sibling, 0); tr.Class != mitigation.LookupSingleton {
		t.Fatalf("sibling class = %v", tr.Class)
	}

	// Quarantine a second row of the group: no longer a singleton, so a
	// third sibling must walk to DRAM.
	hammer(eng, sibling, 20, dram.Millisecond)
	third := geom.RowOf(0, 7)
	if tr := eng.Translate(third, 2*dram.Millisecond); tr.Class != mitigation.LookupDRAM {
		t.Fatalf("third sibling class = %v", tr.Class)
	}
	if eng.Stats().TableDRAMAccesses == 0 {
		t.Fatal("DRAM walk not accounted")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupClassSRAMMode(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 8, 40)
	row := testGeom().RowOf(0, 5)
	tr := eng.Translate(row, 0)
	if tr.Class != mitigation.LookupSRAM {
		t.Fatalf("class = %v", tr.Class)
	}
	if tr.Latency <= 0 {
		t.Fatal("SRAM lookup has no latency")
	}
	if eng.CATFailures() != 0 {
		t.Fatal("CAT failures on empty engine")
	}
}

func TestPinnedTableRows(t *testing.T) {
	geom := testGeom()
	_, eng := newEngine(t, ModeMemMapped, 8, 40)
	// The table strip sits just below the RQA strip.
	tableRow := geom.RowOf(0, geom.RowsPerBank-eng.rqaRowsPerBank-1)
	if !eng.isTableRow(tableRow) {
		t.Fatal("expected a table row in the reserved strip")
	}
	if tr := eng.Translate(tableRow, 0); tr.Class != mitigation.LookupPinned {
		t.Fatalf("table row class = %v", tr.Class)
	}
}

func TestTableRowsCanBeQuarantined(t *testing.T) {
	// Section VI-B: hammering the rows that hold AQUA's own tables must
	// quarantine them like any other row (PTHammer defence).
	geom := testGeom()
	_, eng := newEngine(t, ModeMemMapped, 8, 40)
	tableRow := geom.RowOf(0, geom.RowsPerBank-eng.rqaRowsPerBank-1)
	hammer(eng, tableRow, 20, 0)
	if !eng.IsQuarantined(tableRow) {
		t.Fatal("table row not quarantined")
	}
	if tr := eng.Translate(tableRow, 0); tr.PhysRow == tableRow || tr.Class != mitigation.LookupPinned {
		t.Fatalf("pinned translate after quarantine: %+v", tr)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochResetsTrackerOnly(t *testing.T) {
	geom := testGeom()
	_, eng := newEngine(t, ModeSRAM, 8, 40)
	row := geom.RowOf(0, 5)
	hammer(eng, row, 20, 0)
	eng.OnEpoch(64 * dram.Millisecond)
	if !eng.IsQuarantined(row) {
		t.Fatal("epoch reset dropped the FPT mapping (must drain lazily)")
	}
	// 19 more ACTs do not re-trigger (tracker was reset).
	before := eng.Stats().Mitigations
	hammer(eng, row, 19, 65*dram.Millisecond)
	if eng.Stats().Mitigations != before {
		t.Fatal("tracker not reset at epoch")
	}
}

func TestMitigationBusyTimeMatchesTiming(t *testing.T) {
	geom := testGeom()
	rank, eng := newEngine(t, ModeSRAM, 8, 40)
	row := geom.RowOf(0, 5)
	busy := hammer(eng, row, 20, 0)
	// One quarantine without eviction: ~one migration = 2 row streams.
	want := rank.Timing().MigrationTime(geom.LinesPerRow())
	if busy < want || busy > want*2 {
		t.Fatalf("busy = %d, want ~%d", busy, want)
	}
}

func TestDefaultRQASizeFromEquation3(t *testing.T) {
	rank := dram.NewRank(dram.Baseline(), dram.DDR4())
	eng := New(rank, Config{TRH: 1000, Mode: ModeSRAM})
	if got := eng.RQASize(); got != 23053 {
		t.Fatalf("default RQA = %d, want 23053 (Table III)", got)
	}
}

func TestVisibleRowsExcludeReservedStrips(t *testing.T) {
	_, eng := newEngine(t, ModeMemMapped, 8, 40)
	geom := testGeom()
	vis := eng.VisibleRowsPerBank()
	if vis >= geom.RowsPerBank {
		t.Fatal("no rows reserved")
	}
	// 8 RQA rows over 4 banks = 2 per bank, plus at least 1 table row.
	if vis > geom.RowsPerBank-3 {
		t.Fatalf("visible = %d, want <= %d", vis, geom.RowsPerBank-3)
	}
}

func TestTranslatePanicsOnRQARow(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 8, 40)
	geom := testGeom()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng.Translate(geom.RowOf(0, geom.RowsPerBank-1), 0)
}

func TestRandomizedInvariantProperty(t *testing.T) {
	// Property: after an arbitrary mix of hammering, epochs, and
	// re-hammering, the FPT/RPT/bloom state is always mutually consistent
	// and the CAT never overflows.
	geom := testGeom()
	check := func(seed uint64) bool {
		for _, mode := range []Mode{ModeSRAM, ModeMemMapped} {
			_, eng := newEngine(t, mode, 16, 20)
			r := rng.New(seed)
			at := dram.PS(0)
			for op := 0; op < 120; op++ {
				switch r.Intn(10) {
				case 9:
					eng.OnEpoch(at)
				default:
					row := geom.RowOf(r.Intn(4), r.Intn(eng.VisibleRowsPerBank()))
					n := 1 + r.Intn(12)
					hammer(eng, row, n, at)
				}
				at += 100 * dram.Microsecond
			}
			if eng.CheckInvariants() != nil {
				return false
			}
			if mode == ModeSRAM && eng.CATFailures() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReset(t *testing.T) {
	_, eng := newEngine(t, ModeMemMapped, 8, 40)
	hammer(eng, testGeom().RowOf(0, 5), 20, 0)
	eng.StatsReset()
	st := eng.Stats()
	if st.Mitigations != 0 || st.TotalLookups() != 0 {
		t.Fatal("stats reset incomplete")
	}
	if !eng.IsQuarantined(testGeom().RowOf(0, 5)) {
		t.Fatal("stats reset dropped engine state")
	}
}

func TestModeString(t *testing.T) {
	if ModeSRAM.String() != "sram" || ModeMemMapped.String() != "memmapped" {
		t.Fatal("mode names")
	}
	_, eng := newEngine(t, ModeMemMapped, 8, 40)
	if eng.Name() != "aqua-memmapped" {
		t.Fatalf("name = %s", eng.Name())
	}
}

func TestEffectiveThreshold(t *testing.T) {
	if (Config{TRH: 1000}).EffectiveThreshold() != 500 {
		t.Fatal("effective threshold")
	}
	if (Config{TRH: 1}).EffectiveThreshold() != 1 {
		t.Fatal("floor of 1")
	}
}

func TestProactiveDrainClearsStaleEntries(t *testing.T) {
	geom := testGeom()
	rank := dram.NewRank(geom, dram.DDR4())
	eng := New(rank, Config{
		TRH: 40, Mode: ModeSRAM, RQARows: 4,
		Tracker:        tracker.NewExact(geom, 20),
		ProactiveDrain: true,
	})
	// Fill two slots in epoch 0.
	hammer(eng, geom.RowOf(0, 1), 20, 0)
	hammer(eng, geom.RowOf(1, 1), 20, 0)
	eng.OnEpoch(64 * dram.Millisecond)

	// Idle time: the drainer evicts the stale entries one at a time.
	busy := eng.OnIdle(65 * dram.Millisecond)
	if busy <= 0 {
		t.Fatal("first OnIdle drained nothing")
	}
	if eng.OnIdle(66*dram.Millisecond) <= 0 {
		t.Fatal("second OnIdle drained nothing")
	}
	if eng.OnIdle(67*dram.Millisecond) != 0 {
		t.Fatal("third OnIdle drained a ghost")
	}
	st := eng.Stats()
	if st.ProactiveDrains != 2 || st.Evictions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if eng.IsQuarantined(geom.RowOf(0, 1)) || eng.IsQuarantined(geom.RowOf(1, 1)) {
		t.Fatal("drained rows still mapped")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A quarantine now pays only the move-in, not an eviction.
	before := eng.Stats().RowMigrations
	busy = hammer(eng, geom.RowOf(2, 1), 20, 70*dram.Millisecond)
	if eng.Stats().RowMigrations-before != 1 {
		t.Fatalf("quarantine after drain cost %d migrations, want 1",
			eng.Stats().RowMigrations-before)
	}
	want := rank.Timing().MigrationTime(geom.LinesPerRow())
	if busy > want*3/2 {
		t.Fatalf("busy = %d, want ~%d (no eviction on critical path)", busy, want)
	}
}

func TestProactiveDrainDisabledByDefault(t *testing.T) {
	_, eng := newEngine(t, ModeSRAM, 4, 40)
	hammer(eng, testGeom().RowOf(0, 1), 20, 0)
	eng.OnEpoch(64 * dram.Millisecond)
	if eng.OnIdle(65*dram.Millisecond) != 0 {
		t.Fatal("drain ran while disabled")
	}
}

func TestProactiveDrainSkipsCurrentEpochEntries(t *testing.T) {
	geom := testGeom()
	rank := dram.NewRank(geom, dram.DDR4())
	_ = rank
	r2 := dram.NewRank(geom, dram.DDR4())
	eng := New(r2, Config{
		TRH: 40, Mode: ModeSRAM, RQARows: 4,
		Tracker:        tracker.NewExact(geom, 20),
		ProactiveDrain: true,
	})
	hammer(eng, geom.RowOf(0, 1), 20, 0)
	// Same epoch: the fresh entry must not be drained.
	if eng.OnIdle(dram.Millisecond) != 0 {
		t.Fatal("drained a current-epoch entry")
	}
	if !eng.IsQuarantined(geom.RowOf(0, 1)) {
		t.Fatal("fresh quarantine lost")
	}
}

func TestModesMakeIdenticalQuarantineDecisions(t *testing.T) {
	// SRAM and memory-mapped tables are two implementations of one
	// mechanism: driven by the same activation sequence they must
	// quarantine the same rows into the same slots — only lookup costs
	// differ. (The memory-mapped engine's own table accesses add ACTs to
	// table rows, so the property is checked over visible rows only,
	// which the sequence below confines itself to.)
	geom := testGeom()
	check := func(seed uint64) bool {
		_, sram := newEngine(t, ModeSRAM, 16, 40)
		_, mm := newEngine(t, ModeMemMapped, 16, 40)
		r := rng.New(seed)
		at := dram.PS(0)
		for op := 0; op < 60; op++ {
			row := geom.RowOf(r.Intn(4), r.Intn(mm.VisibleRowsPerBank()))
			n := 1 + r.Intn(25)
			hammer(sram, row, n, at)
			hammer(mm, row, n, at)
			at += 100 * dram.Microsecond
			if r.Intn(12) == 0 {
				sram.OnEpoch(at)
				mm.OnEpoch(at)
			}
		}
		for row := 0; row < geom.Rows(); row++ {
			x := dram.Row(row)
			if mm.isTableRow(x) {
				continue
			}
			if _, isSlot := sram.rowSlot(x); isSlot {
				continue
			}
			if sram.IsQuarantined(x) != mm.IsQuarantined(x) {
				return false
			}
			if sram.IsQuarantined(x) && sram.fptSlot[x] != mm.fptSlot[x] {
				return false
			}
		}
		return sram.CheckInvariants() == nil && mm.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadSkipsSameEpochSlots(t *testing.T) {
	// Wrap the head into territory used this epoch: the destination scan
	// must skip those slots — in particular, an internal migration must
	// never self-copy into the slot the row is leaving.
	geom := testGeom()
	_, eng := newEngine(t, ModeSRAM, 3, 40)
	a, bRow, c := geom.RowOf(0, 1), geom.RowOf(1, 1), geom.RowOf(2, 1)
	hammer(eng, a, 20, 0)    // slot 0
	hammer(eng, bRow, 20, 0) // slot 1
	hammer(eng, c, 20, 0)    // slot 2; head wraps to 0
	// Keep hammering `a` at its quarantine slot: slot 0 retires and the
	// destination must be a *different* physical row even though head==0.
	before := eng.Translate(a, 0).PhysRow
	hammer(eng, a, 20, dram.Millisecond)
	after := eng.Translate(a, 0).PhysRow
	if after == before {
		t.Fatal("internal migration self-copied into the retiring slot")
	}
	// All three slots were used this epoch, so this forced reuse is
	// reported.
	if eng.Stats().ReuseViolations == 0 {
		t.Fatal("undersized forced reuse not reported")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
