package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/tracker"
)

// FuzzCore drives the AQUA engine with a byte-coded operation sequence —
// hammer bursts on fuzzer-chosen rows, epoch rolls, idle drains — and
// checks the structural invariants after every step, both through the
// runtime invariant checker and the full CheckInvariants sweep. This is
// the adversarial-scheduler counterpart to the randomized property test.
func FuzzCore(f *testing.F) {
	f.Add([]byte{0x10, 0x20, 0xFF, 0x30, 0x01})
	f.Add([]byte{0xFE, 0x00, 0xFE, 0x00})
	f.Add([]byte{})

	geom := dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		for _, mode := range []Mode{ModeSRAM, ModeMemMapped} {
			chk := invariant.New()
			rank := dram.NewRank(geom, dram.DDR4())
			eng := New(rank, Config{
				TRH:            16,
				Mode:           mode,
				RQARows:        12,
				Tracker:        tracker.NewExact(geom, 8),
				ProactiveDrain: true,
				Invariants:     chk,
			})
			at := dram.PS(0)
			visible := eng.VisibleRowsPerBank()
			for _, op := range ops {
				switch {
				case op == 0xFF:
					eng.OnEpoch(at)
				case op == 0xFE:
					eng.OnIdle(at)
				default:
					// Hammer a derived row for a derived burst length.
					row := geom.RowOf(int(op)%geom.Banks, int(op>>2)%visible)
					burst := int(op%13) + 1
					for i := 0; i < burst; i++ {
						tr := eng.Translate(row, at)
						eng.OnActivate(tr.PhysRow, at)
						at += 50 * dram.Nanosecond
					}
				}
				at += dram.Microsecond
				if err := eng.CheckInvariants(); err != nil {
					t.Fatalf("mode %v after op %#x: %v", mode, op, err)
				}
				if err := chk.Err(); err != nil {
					t.Fatalf("mode %v after op %#x: %v", mode, op, err)
				}
			}
			if mode == ModeSRAM && eng.CATFailures() != 0 {
				t.Fatalf("CAT failures: %d", eng.CATFailures())
			}
		}
	})
}
