package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/tracker"
)

func invGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

// newInvEngine builds a small engine with the checker installed and a low
// threshold so a short hammer burst triggers quarantines.
func newInvEngine(t *testing.T, chk *invariant.Checker) *Engine {
	t.Helper()
	geom := invGeom()
	rank := dram.NewRank(geom, dram.DDR4())
	return New(rank, Config{
		TRH:        16,
		Mode:       ModeSRAM,
		RQARows:    12,
		Tracker:    tracker.NewExact(geom, 8),
		Invariants: chk,
	})
}

// hammerAt drives enough activations on a row to cross the quarantine
// threshold, feeding the engine the way the controller would, and
// returns the advanced time (core_test.go's hammer returns busy time).
func hammerAt(e *Engine, row dram.Row, n int, at dram.PS) dram.PS {
	for i := 0; i < n; i++ {
		tr := e.Translate(row, at)
		e.OnActivate(tr.PhysRow, at)
		at += 50 * dram.Nanosecond
	}
	return at
}

func TestEngineInvariantsCleanRun(t *testing.T) {
	chk := invariant.New()
	e := newInvEngine(t, chk)
	geom := invGeom()
	at := dram.PS(0)
	for b := 0; b < geom.Banks; b++ {
		at = hammerAt(e, geom.RowOf(b, b*3), 20, at)
	}
	e.OnEpoch(at)
	at += dram.Millisecond
	at = hammerAt(e, geom.RowOf(0, 7), 20, at)
	e.OnEpoch(at)
	if err := chk.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
	if e.QuarantinedCount() == 0 {
		t.Fatal("hammering quarantined nothing; test exercised no mitigation")
	}
}

// TestCorruptedFPTEntryDetected flips one forward pointer to a slot the
// RPT does not agree with; the epoch-boundary sweep must report it.
func TestCorruptedFPTEntryDetected(t *testing.T) {
	chk := invariant.New()
	e := newInvEngine(t, chk)
	geom := invGeom()
	at := hammerAt(e, geom.RowOf(0, 3), 20, 0)
	if e.QuarantinedCount() == 0 {
		t.Fatal("setup failed: nothing quarantined")
	}

	// Corrupt: point a never-quarantined row at slot 0 behind the
	// engine's back, breaking the FPT<->RPT bijection.
	victim := geom.RowOf(1, 9)
	if e.fptSlot[victim] != -1 {
		t.Fatalf("row %d unexpectedly quarantined", victim)
	}
	e.fptSlot[victim] = 0

	e.OnEpoch(at)
	if chk.Count() == 0 {
		t.Fatal("corrupted FPT entry went undetected")
	}
	var sawStructural bool
	for _, v := range chk.Violations() {
		if v.Component == "core" && v.Rule == "structural" {
			sawStructural = true
		}
	}
	if !sawStructural {
		t.Fatalf("no core/structural violation among: %v", chk.Violations())
	}
}

// TestUndersizedRQAOverflowDetected shrinks the RQA to fewer slots than
// concurrent aggressors; the occupancy and reuse accounting must surface
// rather than silently wrap.
func TestUndersizedRQAOverflowDetected(t *testing.T) {
	chk := invariant.New()
	geom := invGeom()
	rank := dram.NewRank(geom, dram.DDR4())
	e := New(rank, Config{
		TRH:        16,
		Mode:       ModeSRAM,
		RQARows:    2,
		Tracker:    tracker.NewExact(geom, 8),
		Invariants: chk,
	})
	at := dram.PS(0)
	for i := 0; i < 6; i++ {
		at = hammerAt(e, geom.RowOf(i%geom.Banks, 2+i), 20, at)
	}
	e.OnEpoch(at)
	// Slot reuse within the epoch is the expected failure mode here; the
	// occupancy invariant itself must still hold.
	if e.Stats().ReuseViolations == 0 {
		t.Fatal("undersized RQA recorded no reuse violations")
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("occupancy invariant broke under reuse pressure: %v", err)
	}
}
