package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// TestAvgLatencyZeroRequests pins the division guard: a fresh controller
// must report zero average latency, not divide by zero.
func TestAvgLatencyZeroRequests(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	if got := c.Stats().AvgLatency(); got != 0 {
		t.Fatalf("AvgLatency with no requests = %d, want 0", got)
	}
	if st := (Stats{}); st.AvgLatency() != 0 {
		t.Fatal("zero-value Stats AvgLatency not 0")
	}
}

// TestLatencyAccounting checks TotalLatency/MaxLatency against latencies
// reconstructed from the returned completion times.
func TestLatencyAccounting(t *testing.T) {
	_, c := newCtrl(t, nil, Config{DisableRefresh: true})
	row1, row2 := testGeom().RowOf(0, 1), testGeom().RowOf(0, 90)
	var total, max dram.PS
	at := dram.PS(0)
	// Alternate conflicting rows in one bank so latencies vary.
	for i := 0; i < 8; i++ {
		row := row1
		if i%2 == 1 {
			row = row2
		}
		done := c.Submit(row, false, at)
		lat := done - at
		total += lat
		if lat > max {
			max = lat
		}
		at += 1 * dram.Nanosecond
	}
	st := c.Stats()
	if st.TotalLatency != total {
		t.Fatalf("TotalLatency = %d, want %d", st.TotalLatency, total)
	}
	if st.MaxLatency != max {
		t.Fatalf("MaxLatency = %d, want %d", st.MaxLatency, max)
	}
	if st.AvgLatency() != total/8 {
		t.Fatalf("AvgLatency = %d, want %d", st.AvgLatency(), total/8)
	}
}

// epochProbe records, at each OnEpoch, how many refreshes the rank had
// already serviced.
type epochProbe struct {
	mitigation.None
	rank      *dram.Rank
	refreshes []int64
	times     []dram.PS
}

func (p *epochProbe) OnEpoch(now dram.PS) {
	p.refreshes = append(p.refreshes, p.rank.Stats().Refreshes)
	p.times = append(p.times, now)
}

// TestAdvanceServicesEventsInDueOrder is the regression test for the
// background-event ordering bug: when one Advance gap spans both a
// refresh and an earlier-due epoch boundary, the epoch must be processed
// first. The old switch always serviced every due refresh before any
// epoch, so an epoch due at 10us observed a refresh that (in time) only
// happened at 15.6us.
func TestAdvanceServicesEventsInDueOrder(t *testing.T) {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	probe := &epochProbe{rank: rank}
	c := New(rank, probe, Config{EpochLength: 10 * dram.Microsecond})
	// One gap covering: refresh@7.8us, epoch@10us, refresh@15.6us, epoch@20us.
	c.Advance(20 * dram.Microsecond)
	if len(probe.refreshes) != 2 {
		t.Fatalf("epochs fired = %d, want 2", len(probe.refreshes))
	}
	if probe.refreshes[0] != 1 {
		t.Fatalf("epoch@10us saw %d refreshes, want 1 (the 7.8us one only)", probe.refreshes[0])
	}
	if probe.refreshes[1] != 2 {
		t.Fatalf("epoch@20us saw %d refreshes, want 2", probe.refreshes[1])
	}
}

// drainProbe is a Drainer recording each OnIdle call alongside the number
// of epochs that had fired by then.
type drainProbe struct {
	mitigation.None
	epochs int
	calls  []dram.PS
	seen   []int // epochs observed at each call
}

func (p *drainProbe) OnEpoch(dram.PS) { p.epochs++ }
func (p *drainProbe) OnIdle(now dram.PS) dram.PS {
	p.calls = append(p.calls, now)
	p.seen = append(p.seen, p.epochs)
	return 0
}

// TestIdleDrainEpochBoundaryOrder covers the idle-drain x epoch
// interaction: drain opportunities due before an epoch boundary must run
// against the old epoch's state, and ones due after must see the new
// epoch. The old switch serviced the epoch before any due drain
// regardless of timestamps.
func TestIdleDrainEpochBoundaryOrder(t *testing.T) {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	probe := &drainProbe{}
	c := New(rank, probe, Config{
		DisableRefresh:    true,
		EpochLength:       10 * dram.Microsecond,
		IdleDrainInterval: 3 * dram.Microsecond,
	})
	// Events in one gap: drains@3,6,9us, epoch@10us, drain@12us.
	c.Advance(12 * dram.Microsecond)
	wantCalls := []dram.PS{3 * dram.Microsecond, 6 * dram.Microsecond, 9 * dram.Microsecond, 12 * dram.Microsecond}
	wantSeen := []int{0, 0, 0, 1}
	if len(probe.calls) != len(wantCalls) {
		t.Fatalf("OnIdle calls = %v, want %v", probe.calls, wantCalls)
	}
	for i := range wantCalls {
		if probe.calls[i] != wantCalls[i] {
			t.Fatalf("OnIdle call %d at %d, want %d", i, probe.calls[i], wantCalls[i])
		}
		if probe.seen[i] != wantSeen[i] {
			t.Fatalf("OnIdle call at %dus saw %d epochs, want %d",
				probe.calls[i]/dram.Microsecond, probe.seen[i], wantSeen[i])
		}
	}
}

// TestSubmitBatchMatchesSubmit proves the batched path is identical to
// per-request Submit — including batches that straddle a refresh (slow
// path) and ones that fit before the next background event (fast path).
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	geom := testGeom()
	trefi := dram.DDR4().TREFI
	build := func() []Request {
		var reqs []Request
		at := dram.PS(0)
		for i := 0; i < 64; i++ {
			reqs = append(reqs, Request{
				Row:   geom.RowOf(i%geom.Banks, (i*7)%geom.RowsPerBank),
				Write: i%3 == 0,
				At:    at,
			})
			// March across a refresh boundary mid-batch.
			at += trefi / 16
		}
		return reqs
	}

	_, serial := newCtrl(t, nil, Config{})
	var want []dram.PS
	for _, r := range build() {
		want = append(want, serial.Submit(r.Row, r.Write, r.At))
	}

	_, batched := newCtrl(t, nil, Config{})
	got := batched.SubmitBatch(build(), nil)

	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion %d: batch %d vs serial %d", i, got[i], want[i])
		}
	}
	if serial.Stats() != batched.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", serial.Stats(), batched.Stats())
	}
}

// TestSubmitBatchFastPath checks that a batch entirely inside one
// background-quiet window produces the same results and leaves the
// controller in a state consistent with per-request submission.
func TestSubmitBatchFastPath(t *testing.T) {
	geom := testGeom()
	mk := func() []Request {
		var reqs []Request
		for i := 0; i < 32; i++ {
			reqs = append(reqs, Request{Row: geom.RowOf(i%geom.Banks, i), At: dram.PS(i) * dram.Nanosecond})
		}
		return reqs
	}
	_, serial := newCtrl(t, nil, Config{})
	var want []dram.PS
	for _, r := range mk() {
		want = append(want, serial.Submit(r.Row, r.Write, r.At))
	}
	_, batched := newCtrl(t, nil, Config{})
	got := batched.SubmitBatch(mk(), make([]dram.PS, 0, 32))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion %d: %d vs %d", i, got[i], want[i])
		}
	}
	if serial.Now() != batched.Now() {
		t.Fatalf("now diverged: %d vs %d", serial.Now(), batched.Now())
	}
}
