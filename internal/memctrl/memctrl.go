// Package memctrl implements the memory controller: the component that
// accepts line-granularity requests from the cores, routes them through
// the mitigation scheme's indirection (FPT for AQUA, RIT for RRS), issues
// them to the DRAM rank, schedules periodic refresh, and drives tracker
// epochs.
//
// The controller is transaction-level: requests are processed in arrival
// order and the rank's bank state machines resolve row hits, conflicts,
// and bus contention. Channel reservation during row migrations — the
// dominant cost of migration-based mitigations (Section IV-G) — is applied
// by the mitigation engines through dram.Rank.Reserve and surfaces here as
// queueing delay on subsequent requests.
package memctrl

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mitigation"
)

// Config parameterizes a controller.
type Config struct {
	// EpochLength is the tracker epoch (default tREFW = 64ms).
	EpochLength dram.PS
	// DisableRefresh turns off periodic refresh (micro-benchmarks only).
	DisableRefresh bool
	// IdleDrainInterval, when non-zero, gives the mitigation scheme a
	// background-work opportunity (Drainer.OnIdle) at most once per
	// interval, modelling work done while the channel is idle.
	IdleDrainInterval dram.PS
	// Invariants, when non-nil, enables runtime invariant checking on
	// this controller and (if not already enabled) the rank's timing
	// shadow checker. Tests turn this on everywhere; release-mode
	// simulation leaves it nil and pays nothing.
	Invariants *invariant.Checker
	// Faults, when non-nil, consults the injector for controller-level
	// faults (RefreshCollision). The injector's methods are nil-safe, so
	// the hook is a plain call.
	Faults *fault.Injector
}

// Drainer is the optional background-work hook a mitigation scheme may
// implement (AQUA's proactive quarantine draining, Section IV-D).
type Drainer interface {
	// OnIdle performs at most one unit of background work at the given
	// time and returns the channel time it consumed.
	OnIdle(now dram.PS) dram.PS
}

// Stats aggregates controller-level counters.
type Stats struct {
	Requests     int64
	Reads        int64
	Writes       int64
	TotalLatency dram.PS // sum of (completion - arrival) over requests
	MaxLatency   dram.PS
	Refreshes    int64
	Epochs       int64
	// RefreshCollisions counts refresh commands that collided with an
	// in-flight migration's channel reservation and were re-issued after
	// it (injected faults only; the fault-free schedule never collides).
	RefreshCollisions int64
}

// AvgLatency returns the mean request latency.
func (s Stats) AvgLatency() dram.PS {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalLatency / s.Requests
}

// Controller binds a rank to a mitigation scheme. Not safe for concurrent
// use; the simulator is single-threaded.
type Controller struct {
	rank *dram.Rank
	mit  mitigation.Mitigator
	cfg  Config

	nextRefresh dram.PS
	nextEpoch   dram.PS
	nextDrain   dram.PS
	// bgNext caches the earliest pending background event, so the
	// per-request Advance is a single comparison when nothing is due (the
	// overwhelmingly common case: tREFI is ~7.8us of simulated time, i.e.
	// thousands of requests apart).
	bgNext  dram.PS
	drainer Drainer
	now     dram.PS
	chk     *invariant.Checker
	// cal, when non-nil, is the run loop's event calendar: the controller
	// keeps its refresh/epoch/drain lanes armed at the same times bgNext
	// summarizes, so the loop can bound time-skips without polling.
	cal *event.Calendar

	stats Stats
}

// New builds a controller. A nil mitigator means the unprotected baseline.
func New(rank *dram.Rank, mit mitigation.Mitigator, cfg Config) *Controller {
	if mit == nil {
		mit = mitigation.None{}
	}
	if cfg.EpochLength == 0 {
		cfg.EpochLength = rank.Timing().TREFW
	}
	c := &Controller{
		rank:        rank,
		mit:         mit,
		cfg:         cfg,
		nextRefresh: rank.Timing().TREFI,
		nextEpoch:   cfg.EpochLength,
		nextDrain:   cfg.IdleDrainInterval,
	}
	if cfg.IdleDrainInterval > 0 {
		c.drainer, _ = mit.(Drainer)
	}
	if cfg.Invariants != nil {
		c.chk = cfg.Invariants
		if !rank.InvariantsEnabled() {
			rank.EnableInvariants(cfg.Invariants, rank.Timing())
		}
	}
	c.updateBGNext()
	return c
}

// updateBGNext recomputes the earliest pending background event and, when
// a calendar is attached, re-arms its lanes to match.
func (c *Controller) updateBGNext() {
	n := c.nextEpoch
	if !c.cfg.DisableRefresh && c.nextRefresh < n {
		n = c.nextRefresh
	}
	if c.drainer != nil && c.nextDrain < n {
		n = c.nextDrain
	}
	c.bgNext = n
	if c.cal != nil {
		c.publishLanes()
	}
}

// AttachCalendar registers the event calendar this controller publishes
// its background events into. From then on every background-schedule
// change (serviced refresh, epoch rollover, drain) re-arms the calendar's
// refresh/epoch/drain lanes, so the run loop sees the controller's
// horizon without polling Advance.
func (c *Controller) AttachCalendar(cal *event.Calendar) {
	c.cal = cal
	c.publishLanes()
}

// PublishEvents re-arms the attached calendar's lanes from the current
// background schedule (used after a calendar Reset). No-op when no
// calendar is attached.
func (c *Controller) PublishEvents() {
	if c.cal != nil {
		c.publishLanes()
	}
}

func (c *Controller) publishLanes() {
	if c.cfg.DisableRefresh {
		c.cal.ClearLane(event.ClassRefresh)
	} else {
		c.cal.SetLane(event.ClassRefresh, c.nextRefresh)
	}
	c.cal.SetLane(event.ClassEpoch, c.nextEpoch)
	if c.drainer != nil {
		c.cal.SetLane(event.ClassDrain, c.nextDrain)
	} else {
		c.cal.ClearLane(event.ClassDrain)
	}
}

// NextEvent returns the due time of the earliest pending background event
// (refresh, epoch, or drain) — the controller's contribution to the
// system event horizon. Submissions strictly before it cannot trigger
// background work.
func (c *Controller) NextEvent() dram.PS { return c.bgNext }

// Rank returns the attached rank.
func (c *Controller) Rank() *dram.Rank { return c.rank }

// Mitigator returns the attached mitigation scheme.
func (c *Controller) Mitigator() mitigation.Mitigator { return c.mit }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// Now returns the latest time the controller has advanced to.
func (c *Controller) Now() dram.PS { return c.now }

// StatsReset zeroes the counters (between warmup and measurement).
func (c *Controller) StatsReset() { c.stats = Stats{} }

// Advance processes background work (refresh commands, epoch boundaries,
// idle drains) up to the given time, in due-timestamp order. Submit calls
// it implicitly.
func (c *Controller) Advance(at dram.PS) {
	if at < c.now {
		panic(fmt.Sprintf("memctrl: time went backwards: %d then %d", c.now, at))
	}
	if at < c.bgNext {
		// Nothing due: the starvation invariants hold by construction
		// (every next-event timestamp exceeds at).
		c.now = at
		return
	}
	c.drainBackground(at)
}

// drainBackground services every due background event in timestamp order.
// Ties are broken refresh > epoch > drain (hardware priority: the charge
// model outranks bookkeeping). Servicing strictly by due time matters when
// one inter-request gap spans several events: an epoch boundary due before
// a refresh must observe the pre-refresh bank state, and an idle drain due
// before an epoch must run against the old epoch's tracker.
func (c *Controller) drainBackground(at dram.PS) {
	for {
		const (
			evNone = iota
			evRefresh
			evEpoch
			evDrain
		)
		ev := evNone
		var due dram.PS
		if !c.cfg.DisableRefresh && c.nextRefresh <= at {
			ev, due = evRefresh, c.nextRefresh
		}
		if c.nextEpoch <= at && (ev == evNone || c.nextEpoch < due) {
			ev, due = evEpoch, c.nextEpoch
		}
		if c.drainer != nil && c.nextDrain <= at && (ev == evNone || c.nextDrain < due) {
			ev, due = evDrain, c.nextDrain
		}
		switch ev {
		case evRefresh:
			issue := c.nextRefresh
			if c.cfg.Faults.Fire(fault.RefreshCollision, issue) {
				// The refresh collides with an in-flight migration's channel
				// reservation and is re-queued to issue after it ends. The
				// re-check: the deferred refresh must still land within its
				// own interval, or the charge model would silently skip a
				// whole refresh command.
				if ru := c.rank.ReservedUntil(); ru > issue {
					issue = ru
				}
				c.stats.RefreshCollisions++
				if c.chk != nil {
					c.chk.Checkf(issue < c.nextRefresh+c.rank.Timing().TREFI,
						"memctrl", "refresh-requeue", issue,
						"re-queued refresh due %dps deferred past its interval to %dps",
						c.nextRefresh, issue)
				}
			}
			c.rank.RefreshAll(issue)
			c.nextRefresh += c.rank.Timing().TREFI
			c.stats.Refreshes++
		case evEpoch:
			c.mit.OnEpoch(c.nextEpoch)
			c.nextEpoch += c.cfg.EpochLength
			c.stats.Epochs++
		case evDrain:
			// Background draining: the work happens "behind" the current
			// request, modelling idle-channel use.
			c.drainer.OnIdle(c.nextDrain)
			c.nextDrain += c.cfg.IdleDrainInterval
		default:
			if c.chk != nil {
				// All due background work must have been drained: a
				// starved refresh or epoch would silently skew both the
				// charge model and the tracker guarantee.
				if !c.cfg.DisableRefresh {
					c.chk.Checkf(c.nextRefresh > at, "memctrl", "refresh-starved", at,
						"refresh due at %dps not issued by %dps", c.nextRefresh, at)
				}
				c.chk.Checkf(c.nextEpoch > at, "memctrl", "epoch-starved", at,
					"epoch due at %dps not processed by %dps", c.nextEpoch, at)
			}
			c.updateBGNext()
			c.now = at
			return
		}
	}
}

// Submit processes one line-granularity request to an install (software-
// visible) row arriving at time `at`, and returns its completion time.
// The request flows through: rate-limiter delay -> indirection lookup ->
// DRAM access -> tracker accounting (which may trigger a mitigation that
// reserves the channel before the completion is reported).
func (c *Controller) Submit(row dram.Row, write bool, at dram.PS) dram.PS {
	c.Advance(at)
	return c.submitOne(row, write, at)
}

// Request is one batched line access (see SubmitBatch).
type Request struct {
	Row   dram.Row
	Write bool
	At    dram.PS // arrival time; batches must be non-decreasing in At
}

// SubmitBatch processes a run of requests in arrival order and appends
// each completion time to `done`, returning the extended slice. When the
// whole batch lands before the next background event, the controller
// advances once for the entire run instead of re-scanning the background
// horizon per request — the batched analogue of Submit for callers that
// already hold a sequence of same-epoch requests (trace replay, the perf
// harness). Results are identical to calling Submit per request.
func (c *Controller) SubmitBatch(reqs []Request, done []dram.PS) []dram.PS {
	if len(reqs) == 0 {
		return done
	}
	last := reqs[len(reqs)-1].At
	if c.now <= last && last < c.bgNext {
		// One bounds check covers the run: arrival times are monotonic, so
		// no request can step over a background event the last one missed.
		for i := range reqs {
			r := &reqs[i]
			if r.At < c.now {
				panic(fmt.Sprintf("memctrl: time went backwards: %d then %d", c.now, r.At))
			}
			c.now = r.At
			done = append(done, c.submitOne(r.Row, r.Write, r.At))
		}
		return done
	}
	for i := range reqs {
		r := &reqs[i]
		c.Advance(r.At)
		done = append(done, c.submitOne(r.Row, r.Write, r.At))
	}
	return done
}

// submitOne runs the request pipeline after background work has been
// advanced past the arrival time.
func (c *Controller) submitOne(row dram.Row, write bool, at dram.PS) dram.PS {
	issue := c.mit.Delay(row, at)
	tr := c.mit.Translate(row, issue)
	// Snapshot the reservation horizon before the access: the mitigation
	// triggered below may extend it, but this access must not have
	// overlapped a window reserved by an *earlier* migration.
	var resBefore dram.PS
	if c.chk != nil {
		resBefore = c.rank.ReservedUntil()
	}
	done, activated := c.rank.Access(tr.PhysRow, write, issue+tr.Latency)
	if c.chk != nil {
		c.chk.Checkf(done > resBefore, "memctrl", "reserved-channel", done,
			"access to row %d completed at %dps inside a reservation ending %dps",
			tr.PhysRow, done, resBefore)
	}
	if activated {
		// Mitigative action (if triggered) reserves the channel; the
		// triggering access itself has already completed.
		c.mit.OnActivate(tr.PhysRow, done)
	}

	c.stats.Requests++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	lat := done - at
	c.stats.TotalLatency += lat
	if lat > c.stats.MaxLatency {
		c.stats.MaxLatency = lat
	}
	return done
}

// EpochLength returns the configured tracker epoch.
func (c *Controller) EpochLength() dram.PS { return c.cfg.EpochLength }
