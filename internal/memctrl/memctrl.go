// Package memctrl implements the memory controller: the component that
// accepts line-granularity requests from the cores, routes them through
// the mitigation scheme's indirection (FPT for AQUA, RIT for RRS), issues
// them to the DRAM rank, schedules periodic refresh, and drives tracker
// epochs.
//
// The controller is transaction-level: requests are processed in arrival
// order and the rank's bank state machines resolve row hits, conflicts,
// and bus contention. Channel reservation during row migrations — the
// dominant cost of migration-based mitigations (Section IV-G) — is applied
// by the mitigation engines through dram.Rank.Reserve and surfaces here as
// queueing delay on subsequent requests.
package memctrl

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/invariant"
	"repro/internal/mitigation"
)

// Config parameterizes a controller.
type Config struct {
	// EpochLength is the tracker epoch (default tREFW = 64ms).
	EpochLength dram.PS
	// DisableRefresh turns off periodic refresh (micro-benchmarks only).
	DisableRefresh bool
	// IdleDrainInterval, when non-zero, gives the mitigation scheme a
	// background-work opportunity (Drainer.OnIdle) at most once per
	// interval, modelling work done while the channel is idle.
	IdleDrainInterval dram.PS
	// Invariants, when non-nil, enables runtime invariant checking on
	// this controller and (if not already enabled) the rank's timing
	// shadow checker. Tests turn this on everywhere; release-mode
	// simulation leaves it nil and pays nothing.
	Invariants *invariant.Checker
}

// Drainer is the optional background-work hook a mitigation scheme may
// implement (AQUA's proactive quarantine draining, Section IV-D).
type Drainer interface {
	// OnIdle performs at most one unit of background work at the given
	// time and returns the channel time it consumed.
	OnIdle(now dram.PS) dram.PS
}

// Stats aggregates controller-level counters.
type Stats struct {
	Requests     int64
	Reads        int64
	Writes       int64
	TotalLatency dram.PS // sum of (completion - arrival) over requests
	MaxLatency   dram.PS
	Refreshes    int64
	Epochs       int64
}

// AvgLatency returns the mean request latency.
func (s Stats) AvgLatency() dram.PS {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalLatency / s.Requests
}

// Controller binds a rank to a mitigation scheme. Not safe for concurrent
// use; the simulator is single-threaded.
type Controller struct {
	rank *dram.Rank
	mit  mitigation.Mitigator
	cfg  Config

	nextRefresh dram.PS
	nextEpoch   dram.PS
	nextDrain   dram.PS
	drainer     Drainer
	now         dram.PS
	chk         *invariant.Checker

	stats Stats
}

// New builds a controller. A nil mitigator means the unprotected baseline.
func New(rank *dram.Rank, mit mitigation.Mitigator, cfg Config) *Controller {
	if mit == nil {
		mit = mitigation.None{}
	}
	if cfg.EpochLength == 0 {
		cfg.EpochLength = rank.Timing().TREFW
	}
	c := &Controller{
		rank:        rank,
		mit:         mit,
		cfg:         cfg,
		nextRefresh: rank.Timing().TREFI,
		nextEpoch:   cfg.EpochLength,
		nextDrain:   cfg.IdleDrainInterval,
	}
	if cfg.IdleDrainInterval > 0 {
		c.drainer, _ = mit.(Drainer)
	}
	if cfg.Invariants != nil {
		c.chk = cfg.Invariants
		if !rank.InvariantsEnabled() {
			rank.EnableInvariants(cfg.Invariants, rank.Timing())
		}
	}
	return c
}

// Rank returns the attached rank.
func (c *Controller) Rank() *dram.Rank { return c.rank }

// Mitigator returns the attached mitigation scheme.
func (c *Controller) Mitigator() mitigation.Mitigator { return c.mit }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// Now returns the latest time the controller has advanced to.
func (c *Controller) Now() dram.PS { return c.now }

// StatsReset zeroes the counters (between warmup and measurement).
func (c *Controller) StatsReset() { c.stats = Stats{} }

// Advance processes background work (refresh commands, epoch boundaries)
// up to the given time. Submit calls it implicitly.
func (c *Controller) Advance(at dram.PS) {
	if at < c.now {
		panic(fmt.Sprintf("memctrl: time went backwards: %d then %d", c.now, at))
	}
	for {
		switch {
		case !c.cfg.DisableRefresh && c.nextRefresh <= at:
			c.rank.RefreshAll(c.nextRefresh)
			c.nextRefresh += c.rank.Timing().TREFI
			c.stats.Refreshes++
		case c.nextEpoch <= at:
			c.mit.OnEpoch(c.nextEpoch)
			c.nextEpoch += c.cfg.EpochLength
			c.stats.Epochs++
		case c.drainer != nil && c.nextDrain <= at:
			// Background draining: the work happens "behind" the current
			// request, modelling idle-channel use.
			c.drainer.OnIdle(c.nextDrain)
			c.nextDrain += c.cfg.IdleDrainInterval
		default:
			if c.chk != nil {
				// All due background work must have been drained: a
				// starved refresh or epoch would silently skew both the
				// charge model and the tracker guarantee.
				if !c.cfg.DisableRefresh {
					c.chk.Checkf(c.nextRefresh > at, "memctrl", "refresh-starved", at,
						"refresh due at %dps not issued by %dps", c.nextRefresh, at)
				}
				c.chk.Checkf(c.nextEpoch > at, "memctrl", "epoch-starved", at,
					"epoch due at %dps not processed by %dps", c.nextEpoch, at)
			}
			c.now = at
			return
		}
	}
}

// Submit processes one line-granularity request to an install (software-
// visible) row arriving at time `at`, and returns its completion time.
// The request flows through: rate-limiter delay -> indirection lookup ->
// DRAM access -> tracker accounting (which may trigger a mitigation that
// reserves the channel before the completion is reported).
func (c *Controller) Submit(row dram.Row, write bool, at dram.PS) dram.PS {
	c.Advance(at)

	issue := c.mit.Delay(row, at)
	tr := c.mit.Translate(row, issue)
	// Snapshot the reservation horizon before the access: the mitigation
	// triggered below may extend it, but this access must not have
	// overlapped a window reserved by an *earlier* migration.
	var resBefore dram.PS
	if c.chk != nil {
		resBefore = c.rank.ReservedUntil()
	}
	done, activated := c.rank.Access(tr.PhysRow, write, issue+tr.Latency)
	if c.chk != nil {
		c.chk.Checkf(done > resBefore, "memctrl", "reserved-channel", done,
			"access to row %d completed at %dps inside a reservation ending %dps",
			tr.PhysRow, done, resBefore)
	}
	if activated {
		// Mitigative action (if triggered) reserves the channel; the
		// triggering access itself has already completed.
		c.mit.OnActivate(tr.PhysRow, done)
	}

	c.stats.Requests++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	lat := done - at
	c.stats.TotalLatency += lat
	if lat > c.stats.MaxLatency {
		c.stats.MaxLatency = lat
	}
	return done
}

// EpochLength returns the configured tracker epoch.
func (c *Controller) EpochLength() dram.PS { return c.cfg.EpochLength }
