package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/mitigation"
)

// TestCalendarLanesFollowAdvance re-expresses the PR-3 due-order
// regression through the event calendar: walking the schedule one Peek +
// Advance step at a time must surface refresh@7.8us, epoch@10us,
// refresh@15.6us, epoch@20us in exactly that order, with the epoch probe
// observing one refresh at 10us and two at 20us — the property the old
// refreshes-before-epochs switch violated.
func TestCalendarLanesFollowAdvance(t *testing.T) {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	probe := &epochProbe{rank: rank}
	c := New(rank, probe, Config{EpochLength: 10 * dram.Microsecond})
	var cal event.Calendar
	c.AttachCalendar(&cal)

	trefi := dram.DDR4().TREFI
	want := []event.Event{
		{Time: trefi, Class: event.ClassRefresh},
		{Time: 10 * dram.Microsecond, Class: event.ClassEpoch},
		{Time: 2 * trefi, Class: event.ClassRefresh},
		{Time: 20 * dram.Microsecond, Class: event.ClassEpoch},
	}
	for i, w := range want {
		e, ok := cal.Peek()
		if !ok {
			t.Fatalf("step %d: calendar empty, want %v", i, w)
		}
		if e != w {
			t.Fatalf("step %d: next event = %v@%d, want %v@%d", i, e.Class, e.Time, w.Class, w.Time)
		}
		// Advancing exactly to the event's due time services it and re-arms
		// the lane at its successor occurrence.
		c.Advance(e.Time)
		if ne := c.NextEvent(); ne <= e.Time {
			t.Fatalf("step %d: NextEvent = %d, not past %d", i, ne, e.Time)
		}
	}
	if len(probe.refreshes) != 2 || probe.refreshes[0] != 1 || probe.refreshes[1] != 2 {
		t.Fatalf("epoch probe saw refreshes %v, want [1 2]", probe.refreshes)
	}
}

// collisionProbe is both an epoch observer and a Drainer, recording the
// rank refresh count at each epoch and the epoch count at each drain.
type collisionProbe struct {
	mitigation.None
	rank          *dram.Rank
	refreshesSeen []int64 // at each OnEpoch
	epochsSeen    []int   // at each OnIdle
	epochs        int
}

func (p *collisionProbe) OnEpoch(dram.PS) {
	p.refreshesSeen = append(p.refreshesSeen, p.rank.Stats().Refreshes)
	p.epochs++
}

func (p *collisionProbe) OnIdle(now dram.PS) dram.PS {
	p.epochsSeen = append(p.epochsSeen, p.epochs)
	return 0
}

// TestCalendarEqualTimeCollision pins the documented class order when
// refresh, epoch, and drain all fall due at the same picosecond: the
// calendar reports the refresh lane first, and Advance services
// refresh -> epoch -> drain — the epoch sees the refresh already counted,
// the drain sees the epoch already rolled over.
func TestCalendarEqualTimeCollision(t *testing.T) {
	trefi := dram.DDR4().TREFI
	rank := dram.NewRank(testGeom(), dram.DDR4())
	probe := &collisionProbe{rank: rank}
	c := New(rank, probe, Config{
		EpochLength:       trefi,
		IdleDrainInterval: trefi,
	})
	var cal event.Calendar
	c.AttachCalendar(&cal)

	// All three lanes armed at the same instant; the calendar's total
	// order must hand out the refresh first.
	for _, cl := range []event.Class{event.ClassRefresh, event.ClassEpoch, event.ClassDrain} {
		if at, ok := cal.Lane(cl); !ok || at != trefi {
			t.Fatalf("%v lane = %d,%v, want %d,true", cl, at, ok, trefi)
		}
	}
	if e, _ := cal.Peek(); e != (event.Event{Time: trefi, Class: event.ClassRefresh}) {
		t.Fatalf("peek = %v@%d, want refresh@%d", e.Class, e.Time, trefi)
	}
	if ne := c.NextEvent(); ne != trefi {
		t.Fatalf("NextEvent = %d, want %d", ne, trefi)
	}

	c.Advance(trefi)
	if got := c.Stats().Refreshes; got != 1 {
		t.Fatalf("refreshes = %d, want 1", got)
	}
	if got := c.Stats().Epochs; got != 1 {
		t.Fatalf("epochs = %d, want 1", got)
	}
	if len(probe.refreshesSeen) != 1 || probe.refreshesSeen[0] != 1 {
		t.Fatalf("epoch saw refreshes %v, want [1]: refresh must be serviced first", probe.refreshesSeen)
	}
	if len(probe.epochsSeen) != 1 || probe.epochsSeen[0] != 1 {
		t.Fatalf("drain saw epochs %v, want [1]: epoch must precede drain", probe.epochsSeen)
	}
	// All three lanes re-armed strictly forward.
	for _, cl := range []event.Class{event.ClassRefresh, event.ClassEpoch, event.ClassDrain} {
		if at, ok := cal.Lane(cl); !ok || at <= trefi {
			t.Fatalf("%v lane after collision = %d,%v, want > %d", cl, at, ok, trefi)
		}
	}
}

// TestCalendarDisabledLanesStayClear checks the negative space: with
// refresh disabled and no drainer, only the epoch lane is armed.
func TestCalendarDisabledLanesStayClear(t *testing.T) {
	_, c := newCtrl(t, nil, Config{DisableRefresh: true, EpochLength: 5 * dram.Microsecond})
	var cal event.Calendar
	c.AttachCalendar(&cal)
	if _, ok := cal.Lane(event.ClassRefresh); ok {
		t.Fatal("refresh lane armed with DisableRefresh")
	}
	if _, ok := cal.Lane(event.ClassDrain); ok {
		t.Fatal("drain lane armed without a drainer")
	}
	if at, ok := cal.Lane(event.ClassEpoch); !ok || at != 5*dram.Microsecond {
		t.Fatalf("epoch lane = %d,%v, want 5us,true", at, ok)
	}
	// PublishEvents restores the lanes after an external calendar reset.
	cal.Reset()
	c.PublishEvents()
	if at, ok := cal.Lane(event.ClassEpoch); !ok || at != 5*dram.Microsecond {
		t.Fatalf("epoch lane after republish = %d,%v, want 5us,true", at, ok)
	}
}
