package memctrl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mitigation"
	"repro/internal/tracker"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

func newCtrl(t *testing.T, mit mitigation.Mitigator, cfg Config) (*dram.Rank, *Controller) {
	t.Helper()
	rank := dram.NewRank(testGeom(), dram.DDR4())
	return rank, New(rank, mit, cfg)
}

func TestSubmitCompletesAndCounts(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	row := testGeom().RowOf(0, 1)
	done := c.Submit(row, false, 0)
	if done <= 0 {
		t.Fatal("no latency")
	}
	st := c.Stats()
	if st.Requests != 1 || st.Reads != 1 || st.Writes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgLatency() != done {
		t.Fatalf("avg latency = %d, want %d", st.AvgLatency(), done)
	}
	c.Submit(row, true, done)
	if c.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestRefreshScheduledEveryTREFI(t *testing.T) {
	rank, c := newCtrl(t, nil, Config{})
	c.Advance(10 * rank.Timing().TREFI)
	st := c.Stats()
	if st.Refreshes != 10 {
		t.Fatalf("refreshes = %d, want 10", st.Refreshes)
	}
	if rank.Stats().Refreshes != 10 {
		t.Fatal("rank did not see the refreshes")
	}
}

func TestRefreshDisable(t *testing.T) {
	rank, c := newCtrl(t, nil, Config{DisableRefresh: true})
	c.Advance(100 * rank.Timing().TREFI)
	if c.Stats().Refreshes != 0 {
		t.Fatal("refresh ran while disabled")
	}
}

func TestEpochFiresEveryEpochLength(t *testing.T) {
	epochs := 0
	mit := &epochCounter{onEpoch: func() { epochs++ }}
	_, c := newCtrl(t, mit, Config{EpochLength: 1 * dram.Millisecond})
	c.Advance(5 * dram.Millisecond)
	if epochs != 5 || c.Stats().Epochs != 5 {
		t.Fatalf("epochs = %d / %d", epochs, c.Stats().Epochs)
	}
}

// epochCounter is a minimal Mitigator observing epochs.
type epochCounter struct {
	mitigation.None
	onEpoch func()
}

func (e *epochCounter) OnEpoch(dram.PS) { e.onEpoch() }

func TestRefreshDelaysRequests(t *testing.T) {
	rank, c := newCtrl(t, nil, Config{})
	trefi := rank.Timing().TREFI
	// Submit right at the refresh instant: the access must complete after
	// the tRFC blackout.
	done := c.Submit(testGeom().RowOf(0, 1), false, trefi)
	if done < trefi+rank.Timing().TRFC {
		t.Fatalf("access during refresh blackout: done=%d", done)
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	c.Advance(1000)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Advance(999)
}

func TestMitigationIntegration(t *testing.T) {
	// End-to-end through the controller: hammering one install row via
	// Submit must trigger AQUA's quarantine and redirect subsequent
	// accesses, transparently to the caller.
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := core.New(rank, core.Config{
		TRH: 40, Mode: core.ModeSRAM, RQARows: 8,
		Tracker: tracker.NewExact(testGeom(), 20),
	})
	c := New(rank, eng, Config{})
	geom := testGeom()
	aggr, conflict := geom.RowOf(0, 1), geom.RowOf(0, 50)
	at := dram.PS(0)
	for i := 0; i < 25; i++ {
		at = c.Submit(aggr, false, at)
		at = c.Submit(conflict, false, at)
	}
	if !eng.IsQuarantined(aggr) {
		t.Fatal("controller-driven hammering did not quarantine")
	}
	if eng.Stats().Mitigations == 0 {
		t.Fatal("no mitigation recorded")
	}
	// Requests still complete after quarantine.
	done := c.Submit(aggr, false, at)
	if done <= at {
		t.Fatal("post-quarantine access broken")
	}
}

func TestMaxLatencyTracked(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	row := testGeom().RowOf(0, 1)
	c.Submit(row, false, 0)
	st := c.Stats()
	if st.MaxLatency < st.AvgLatency() {
		t.Fatal("max < avg")
	}
}

func TestStatsReset(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	c.Submit(testGeom().RowOf(0, 1), false, 0)
	c.StatsReset()
	if c.Stats().Requests != 0 {
		t.Fatal("reset failed")
	}
}

func TestNilMitigatorIsBaseline(t *testing.T) {
	_, c := newCtrl(t, nil, Config{})
	if c.Mitigator().Name() != "baseline" {
		t.Fatal("nil mitigator not defaulted")
	}
}

func TestEpochLengthDefaultsToTREFW(t *testing.T) {
	rank, c := newCtrl(t, nil, Config{})
	if c.EpochLength() != rank.Timing().TREFW {
		t.Fatal("default epoch length")
	}
}

func TestIdleDrainHookInvoked(t *testing.T) {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := core.New(rank, core.Config{
		TRH: 40, Mode: core.ModeSRAM, RQARows: 8,
		Tracker:        tracker.NewExact(testGeom(), 20),
		ProactiveDrain: true,
	})
	c := New(rank, eng, Config{
		EpochLength:       1 * dram.Millisecond,
		IdleDrainInterval: 100 * dram.Microsecond,
	})
	geom := testGeom()
	// Quarantine a row in epoch 0 via the controller.
	at := dram.PS(0)
	aggr, conflict := geom.RowOf(0, 1), geom.RowOf(0, 50)
	for i := 0; i < 25; i++ {
		at = c.Submit(aggr, false, at)
		at = c.Submit(conflict, false, at)
	}
	if !eng.IsQuarantined(aggr) {
		t.Fatal("setup failed")
	}
	// Advance into the next epoch and beyond: the controller's idle hook
	// must drain the stale entry without any demand traffic.
	c.Advance(3 * dram.Millisecond)
	if eng.Stats().ProactiveDrains == 0 {
		t.Fatal("controller never invoked the drainer")
	}
	if eng.IsQuarantined(aggr) {
		t.Fatal("stale entry not drained")
	}
}
