package crowmodel

import (
	"testing"

	"repro/internal/dram"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 1024, LineBytes: 64}
}

func TestMitigationConsumesCopyRows(t *testing.T) {
	m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: 8, TRH: 20})
	row := dram.Row(5)
	var mitigated bool
	for i := 0; i < 10; i++ {
		mit, prot := m.RecordACT(row)
		if mit {
			mitigated = true
			if !prot {
				t.Fatal("first aggressor unprotected")
			}
		}
	}
	if !mitigated {
		t.Fatal("no mitigation at threshold")
	}
	if m.CopyRowsUsed(m.SubarrayOf(row)) != 2 {
		t.Fatalf("copy rows used = %d", m.CopyRowsUsed(m.SubarrayOf(row)))
	}
}

func TestExhaustionAfterMaxAggressors(t *testing.T) {
	m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: 8, TRH: 20})
	// 4 aggressors fit (8 copy rows / 2); the 5th in the same subarray is
	// unprotected — the CROW security failure mode (Section VII-B).
	for a := 0; a < 4; a++ {
		for i := 0; i < 10; i++ {
			if _, prot := m.RecordACT(dram.Row(a)); !prot {
				t.Fatalf("aggressor %d unprotected too early", a)
			}
		}
	}
	var unprotected bool
	for i := 0; i < 10; i++ {
		if mit, prot := m.RecordACT(dram.Row(100)); mit && !prot {
			unprotected = true
		}
	}
	if !unprotected {
		t.Fatal("5th aggressor should exhaust the copy rows")
	}
	if m.Exhausted() == 0 {
		t.Fatal("exhaustion not counted")
	}
}

func TestDifferentSubarraysIndependent(t *testing.T) {
	m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: 2, TRH: 20})
	// One aggressor per subarray: each uses its own copy rows.
	for sa := 0; sa < 3; sa++ {
		row := dram.Row(sa * 512)
		for i := 0; i < 10; i++ {
			if mit, prot := m.RecordACT(row); mit && !prot {
				t.Fatalf("subarray %d interfered", sa)
			}
		}
	}
}

func TestToleratedTRHMatchesTable5(t *testing.T) {
	timing := dram.DDR4()
	cases := []struct {
		copyRows int
		loTRH    int64
		hiTRH    int64
	}{
		{8, 330_000, 345_000}, // paper: 340K
		{32, 82_000, 87_000},  // paper: 85K
		{128, 20_500, 22_000}, // paper: 21.3K
		{512, 5_100, 5_400},   // paper: 5.3K
	}
	for _, c := range cases {
		m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: c.copyRows, TRH: 1000})
		got := m.ToleratedTRH(timing)
		if got < c.loTRH || got > c.hiTRH {
			t.Errorf("copyRows=%d: tolerated TRH = %d, want in [%d,%d]",
				c.copyRows, got, c.loTRH, c.hiTRH)
		}
	}
}

func TestDRAMOverhead(t *testing.T) {
	m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: 512, TRH: 1000})
	if m.DRAMOverhead() != 1.0 {
		t.Fatalf("overhead = %g", m.DRAMOverhead())
	}
}

func TestEpochRestoresCopyRows(t *testing.T) {
	m := New(testGeom(), Config{SubarrayRows: 512, CopyRows: 2, TRH: 20})
	for i := 0; i < 10; i++ {
		m.RecordACT(dram.Row(1))
	}
	m.OnEpoch()
	if m.CopyRowsUsed(0) != 0 {
		t.Fatal("epoch did not restore copy rows")
	}
	for i := 0; i < 10; i++ {
		if mit, prot := m.RecordACT(dram.Row(2)); mit && !prot {
			t.Fatal("copy rows not reusable after epoch")
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { New(testGeom(), Config{SubarrayRows: 512, CopyRows: 1, TRH: 10}) },
		func() { New(testGeom(), Config{SubarrayRows: 4, CopyRows: 8, TRH: 10}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
