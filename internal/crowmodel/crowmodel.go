// Package crowmodel implements a behavioural model of CROW (Hassan et al.,
// ISCA 2019) as a Rowhammer mitigation, used for the paper's Table V
// analysis (Section VII-B).
//
// CROW provisions each DRAM subarray with a handful of copy rows and uses
// in-DRAM RowClone transfers to duplicate victim rows into them. Because
// RowClone can only copy *within* a subarray, an attacker who focuses on a
// single subarray exhausts its copy rows: with C copy rows, the subarray
// can absorb C/2 aggressors (each mitigation consumes the two copy rows
// flanking the victim pair), after which further aggressors are
// unprotected. The tolerated threshold is therefore ACTmax/(C/2) — 340K
// for the default 8 copy rows, far above today's T_RH (Table V).
//
// The model allocates copy rows per subarray and reports exhaustion, so
// tests can verify the Table V tolerance boundary behaviourally rather
// than only arithmetically.
package crowmodel

import (
	"fmt"

	"repro/internal/dram"
)

// Config parameterizes the CROW model.
type Config struct {
	// SubarrayRows is the subarray size (512 in the paper).
	SubarrayRows int
	// CopyRows per subarray (8 by default in CROW).
	CopyRows int
	// TRH is the Rowhammer threshold; mitigation triggers at TRH/2.
	TRH int64
}

func (c *Config) fillDefaults() {
	if c.SubarrayRows == 0 {
		c.SubarrayRows = 512
	}
	if c.CopyRows == 0 {
		c.CopyRows = 8
	}
	if c.TRH == 0 {
		c.TRH = 1000
	}
}

// Model tracks per-subarray copy-row consumption. Not safe for concurrent
// use.
type Model struct {
	cfg  Config
	geom dram.Geometry

	// used[subarray] counts consumed copy rows.
	used map[int]int
	// counts tracks per-row activations within the epoch.
	counts map[dram.Row]int64

	mitigations int64
	exhausted   int64 // aggressors that found no copy rows left
}

// New builds a CROW model over the geometry.
func New(geom dram.Geometry, cfg Config) *Model {
	cfg.fillDefaults()
	if cfg.CopyRows < 2 {
		panic("crowmodel: need at least two copy rows")
	}
	if cfg.SubarrayRows < cfg.CopyRows {
		panic(fmt.Sprintf("crowmodel: subarray of %d rows cannot hold %d copy rows",
			cfg.SubarrayRows, cfg.CopyRows))
	}
	return &Model{
		cfg:    cfg,
		geom:   geom,
		used:   make(map[int]int),
		counts: make(map[dram.Row]int64),
	}
}

// SubarrayOf returns the global subarray index of a row.
func (m *Model) SubarrayOf(row dram.Row) int {
	return int(row) / m.cfg.SubarrayRows
}

// RecordACT counts one activation; when a row crosses TRH/2 it consumes
// two copy rows in its subarray (the flanking victims are cloned). The
// return value reports whether the aggressor was *protected*; false means
// the subarray's copy rows were exhausted and the neighbourhood is
// vulnerable.
func (m *Model) RecordACT(row dram.Row) (mitigated, protected bool) {
	m.counts[row]++
	threshold := m.cfg.TRH / 2
	if threshold < 1 {
		threshold = 1
	}
	if m.counts[row]%threshold != 0 {
		return false, true
	}
	sa := m.SubarrayOf(row)
	if m.used[sa]+2 > m.cfg.CopyRows {
		m.exhausted++
		return true, false
	}
	m.used[sa] += 2
	m.mitigations++
	return true, true
}

// Exhausted returns the number of mitigations that failed for lack of copy
// rows.
func (m *Model) Exhausted() int64 { return m.exhausted }

// Mitigations returns the number of successful copy-row mitigations.
func (m *Model) Mitigations() int64 { return m.mitigations }

// CopyRowsUsed returns the consumed copy rows in a subarray.
func (m *Model) CopyRowsUsed(subarray int) int { return m.used[subarray] }

// MaxAggressors returns how many aggressors one subarray can absorb.
func (m *Model) MaxAggressors() int { return m.cfg.CopyRows / 2 }

// ToleratedTRH returns the minimum Rowhammer threshold at which this
// provisioning is secure against a single-subarray focused attack: with
// ACTmax activations available per bank per window, an attacker can raise
// ACTmax/(TRH/2) aggressors; security requires that number not to exceed
// MaxAggressors.
func (m *Model) ToleratedTRH(timing dram.Timing) int64 {
	return timing.ACTMax() / int64(m.MaxAggressors())
}

// DRAMOverhead returns the copy-row fraction.
func (m *Model) DRAMOverhead() float64 {
	return float64(m.cfg.CopyRows) / float64(m.cfg.SubarrayRows)
}

// OnEpoch resets per-epoch state (counts and copy-row allocations; CROW
// restores clones at refresh).
func (m *Model) OnEpoch() {
	clear(m.used)
	clear(m.counts)
	m.exhausted = 0
}
