package blockhammer

import (
	"testing"

	"repro/internal/dram"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

func newEngine(trh int64, blacklist int64) *Engine {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	return New(rank, Config{TRH: trh, BlacklistThreshold: blacklist})
}

func TestNoDelayBelowBlacklist(t *testing.T) {
	e := newEngine(1000, 16)
	row := testGeom().RowOf(0, 1)
	for i := 0; i < 15; i++ {
		e.OnActivate(row, dram.PS(i))
	}
	if e.Blacklisted(row) {
		t.Fatal("blacklisted early")
	}
	if got := e.Delay(row, 100); got != 100 {
		t.Fatalf("delayed below blacklist: %d", got)
	}
}

func TestBlacklistedRowThrottled(t *testing.T) {
	e := newEngine(1000, 16)
	row := testGeom().RowOf(0, 1)
	for i := 0; i < 16; i++ {
		e.OnActivate(row, dram.PS(i))
	}
	if !e.Blacklisted(row) {
		t.Fatal("not blacklisted at threshold")
	}
	spacing := e.cfg.Spacing()
	first := e.Delay(row, 1000)
	second := e.Delay(row, 1000)
	if second-first != spacing {
		t.Fatalf("spacing = %d, want %d", second-first, spacing)
	}
	if e.Stats().ThrottleDelay == 0 {
		t.Fatal("throttle delay not accounted")
	}
}

func TestSpacingEnforcesQuota(t *testing.T) {
	// Quota = TRH/2 activations per window; spacing = window/quota. At
	// TRH=1K that is 64ms/500 = 128us, the figure behind the paper's
	// 1280x worst case.
	cfg := Config{TRH: 1000}
	cfg.fillDefaults(dram.DDR4())
	if q := cfg.Quota(); q != 500 {
		t.Fatalf("quota = %d", q)
	}
	if s := cfg.Spacing(); s != 128*dram.Microsecond {
		t.Fatalf("spacing = %d, want 128us", s)
	}
}

func TestWorstCaseSlowdownFactor(t *testing.T) {
	// A conflicting two-row pattern runs one round per ~2*tRC unthrottled
	// versus one per spacing when blacklisted: the ratio at TRH=1K is
	// ~1280x (Section VII-B).
	cfg := Config{TRH: 1000}
	cfg.fillDefaults(dram.DDR4())
	// One round = two conflicting ACTs ~= 100ns unthrottled; throttled,
	// both rows release one activation per 128us spacing, so rounds
	// proceed at the spacing rate: 128us / ~100ns ~= 1280x-1400x.
	unthrottledRound := 2 * dram.DDR4().TRC
	ratio := float64(cfg.Spacing()) / float64(unthrottledRound)
	if ratio < 1000 || ratio > 1600 {
		t.Fatalf("worst-case ratio = %.0fx, want ~1280x", ratio)
	}
}

func TestEpochClearsState(t *testing.T) {
	e := newEngine(1000, 4)
	row := testGeom().RowOf(0, 1)
	for i := 0; i < 5; i++ {
		e.OnActivate(row, dram.PS(i))
	}
	if !e.Blacklisted(row) {
		t.Fatal("not blacklisted")
	}
	e.OnEpoch(64 * dram.Millisecond)
	if e.Blacklisted(row) {
		t.Fatal("blacklist survived epoch")
	}
	if got := e.Delay(row, 0); got != 0 {
		t.Fatal("delay survived epoch")
	}
}

func TestTranslateIsIdentity(t *testing.T) {
	e := newEngine(1000, 16)
	row := testGeom().RowOf(1, 2)
	tr := e.Translate(row, 0)
	if tr.PhysRow != row || tr.Latency != 0 {
		t.Fatalf("translate = %+v", tr)
	}
}

func TestMitigationsCountBlacklistEntries(t *testing.T) {
	e := newEngine(1000, 4)
	a, b := testGeom().RowOf(0, 1), testGeom().RowOf(1, 1)
	for i := 0; i < 10; i++ {
		e.OnActivate(a, dram.PS(i))
		e.OnActivate(b, dram.PS(i))
	}
	if got := e.Stats().Mitigations; got != 2 {
		t.Fatalf("mitigations = %d", got)
	}
}

func TestStatsReset(t *testing.T) {
	e := newEngine(1000, 2)
	row := testGeom().RowOf(0, 1)
	e.OnActivate(row, 0)
	e.OnActivate(row, 1)
	e.Delay(row, 2)
	e.Delay(row, 3)
	e.StatsReset()
	if s := e.Stats(); s.Mitigations != 0 || s.ThrottleDelay != 0 {
		t.Fatal("stats reset incomplete")
	}
}

func TestName(t *testing.T) {
	if newEngine(1000, 16).Name() != "blockhammer" {
		t.Fatal("name")
	}
}
