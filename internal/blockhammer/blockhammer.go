// Package blockhammer implements the Blockhammer baseline (Yaglikci et
// al., HPCA 2021): Rowhammer is prevented not by migrating rows but by
// rate-limiting activations, so that no row can be activated more than the
// permitted quota within a refresh window.
//
// Rows whose activation count crosses the blacklisting threshold are
// throttled: subsequent activations are delayed to enforce a minimum
// inter-activation spacing of tREFW/quota. At T_RH=1K the quota is 500
// activations per 64ms, a spacing of 128us — which is what produces the
// paper's 1280x worst-case slowdown for a conflicting two-row pattern
// (Section VII-B) versus ~100ns per round unthrottled.
package blockhammer

import (
	"repro/internal/dram"
	"repro/internal/mitigation"
)

// Config parameterizes Blockhammer.
type Config struct {
	// TRH is the Rowhammer threshold; the per-row quota is TRH/2 per
	// refresh window (headroom for the epoch-straddling attack, like
	// AQUA's tracker).
	TRH int64
	// BlacklistThreshold is the activation count after which a row is
	// throttled (the paper's Table VI comparison uses 256).
	BlacklistThreshold int64
	// Window is the enforcement window (default tREFW).
	Window dram.PS
}

func (c *Config) fillDefaults(t dram.Timing) {
	if c.TRH == 0 {
		c.TRH = 1000
	}
	if c.BlacklistThreshold == 0 {
		c.BlacklistThreshold = 256
	}
	if c.Window == 0 {
		c.Window = t.TREFW
	}
}

// Quota returns the maximum activations a row may receive per window.
func (c Config) Quota() int64 {
	q := c.TRH / 2
	if q < 1 {
		q = 1
	}
	return q
}

// Spacing returns the enforced minimum time between activations of a
// blacklisted row.
func (c Config) Spacing() dram.PS {
	return c.Window / dram.PS(c.Quota())
}

// Engine implements mitigation.Mitigator for Blockhammer. It uses an ideal
// (exact) activation counter per row, as in the paper's Table VI
// comparison, so the measured overhead is a lower bound for the scheme.
// Not safe for concurrent use.
type Engine struct {
	cfg  Config
	geom dram.Geometry

	counts      map[dram.Row]int64
	nextAllowed map[dram.Row]dram.PS

	stats mitigation.Stats
}

var _ mitigation.Mitigator = (*Engine)(nil)

// New builds a Blockhammer engine for the rank.
func New(rank *dram.Rank, cfg Config) *Engine {
	cfg.fillDefaults(rank.Timing())
	return &Engine{
		cfg:         cfg,
		geom:        rank.Geometry(),
		counts:      make(map[dram.Row]int64),
		nextAllowed: make(map[dram.Row]dram.PS),
	}
}

// Name implements mitigation.Mitigator.
func (e *Engine) Name() string { return "blockhammer" }

// Translate implements mitigation.Mitigator: no indirection.
func (e *Engine) Translate(row dram.Row, _ dram.PS) mitigation.Translation {
	e.stats.Lookups[mitigation.LookupNone]++
	return mitigation.Translation{PhysRow: row, Class: mitigation.LookupNone}
}

// Delay implements mitigation.Mitigator: blacklisted rows are released at
// the configured spacing.
func (e *Engine) Delay(row dram.Row, now dram.PS) dram.PS {
	if e.counts[row] < e.cfg.BlacklistThreshold {
		return now
	}
	issue := now
	if na, ok := e.nextAllowed[row]; ok && na > issue {
		issue = na
	}
	e.nextAllowed[row] = issue + e.cfg.Spacing()
	if issue > now {
		e.stats.ThrottleDelay += issue - now
	}
	return issue
}

// OnActivate implements mitigation.Mitigator: count the activation.
func (e *Engine) OnActivate(physRow dram.Row, _ dram.PS) dram.PS {
	e.counts[physRow]++
	if e.counts[physRow] == e.cfg.BlacklistThreshold {
		e.stats.Mitigations++ // a row entered the blacklist
	}
	return 0
}

// Blacklisted reports whether a row is currently throttled.
func (e *Engine) Blacklisted(row dram.Row) bool {
	return e.counts[row] >= e.cfg.BlacklistThreshold
}

// OnEpoch implements mitigation.Mitigator: the history window rolls over.
func (e *Engine) OnEpoch(_ dram.PS) {
	clear(e.counts)
	clear(e.nextAllowed)
}

// Stats implements mitigation.Mitigator.
func (e *Engine) Stats() mitigation.Stats { return e.stats }

// StatsReset zeroes the counters.
func (e *Engine) StatsReset() { e.stats = mitigation.Stats{} }
