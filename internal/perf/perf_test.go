package perf

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracker"
	"repro/internal/workload"
)

func BenchmarkAccess(b *testing.B)          { BenchAccess(b) }
func BenchmarkSubmit(b *testing.B)          { BenchSubmit(b) }
func BenchmarkSubmitBatch(b *testing.B)     { BenchSubmitBatch(b) }
func BenchmarkTrackerACT(b *testing.B)      { BenchTrackerACT(b) }
func BenchmarkTrackerACTHot(b *testing.B)   { BenchTrackerACTHot(b) }
func BenchmarkTrackerACTCold(b *testing.B)  { BenchTrackerACTCold(b) }
func BenchmarkTranslate(b *testing.B)       { BenchTranslate(b) }
func BenchmarkGeneratorStream(b *testing.B) { BenchGeneratorStream(b) }
func BenchmarkTraceReplay(b *testing.B)     { BenchTraceReplay(b) }
func BenchmarkEventPop(b *testing.B)        { BenchEventPop(b) }
func BenchmarkIssueLoop4(b *testing.B)      { BenchIssueLoop4(b) }
func BenchmarkIssueLoop8(b *testing.B)      { BenchIssueLoop8(b) }
func BenchmarkIssueLoop16(b *testing.B)     { BenchIssueLoop16(b) }

// TestRequestPathZeroAlloc is the allocation budget: the steady-state
// request path — cpu.Core.Issue through memctrl.Submit, the FPT
// translate, the DRAM access, and the tracker update — must allocate
// nothing once warm. Any regression here multiplies into GC pressure at
// hundreds of millions of requests per figure run.
func TestRequestPathZeroAlloc(t *testing.T) {
	sys := sim.NewSystem(sim.Config{
		Scheme: sim.SchemeAquaMemMapped,
		TRH:    1000,
		Cores:  1,
	}, []cpu.Stream{NewSyntheticStream(dram.Baseline())})
	c := sys.Cores[0]
	submit := sys.Ctrl.Submit
	issueOne := func() {
		at, ok := c.NextIssueTime()
		if !ok {
			t.Fatal("synthetic stream exhausted")
		}
		c.Issue(at, submit)
	}
	// Warm every lazily-sized structure (miss-slot ring, tracker table,
	// burst state) past its steady state.
	for i := 0; i < 20000; i++ {
		issueOne()
	}
	if avg := testing.AllocsPerRun(5000, issueOne); avg != 0 {
		t.Fatalf("steady-state request path allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTranslateTrackerZeroAlloc holds the budget for the two flattened
// profile leaders in isolation: the AQUA translate fast path and both
// tracker RecordACT paths must not allocate.
func TestTranslateTrackerZeroAlloc(t *testing.T) {
	sys := sim.NewSystem(sim.Config{
		Scheme: sim.SchemeAquaMemMapped,
		TRH:    1000,
		Cores:  1,
	}, []cpu.Stream{NewSyntheticStream(dram.Baseline())})
	geom := sys.Rank.Geometry()
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		sys.Mit.Translate(rowPattern(geom, i), 0)
		i++
	}); avg != 0 {
		t.Fatalf("Translate allocates %.2f allocs/op, want 0", avg)
	}
	tr := sys.Aqua.Tracker().(*tracker.MisraGries)
	j := 0
	if avg := testing.AllocsPerRun(5000, func() {
		tr.RecordACT(geom.RowOf(j%geom.Banks, (j*1021)%geom.RowsPerBank))
		tr.RecordACT(geom.RowOf(j%geom.Banks, 0))
		j++
	}); avg != 0 {
		t.Fatalf("RecordACT allocates %.2f allocs/op, want 0", avg)
	}
}

// TestIssueLoopZeroAlloc holds the allocation budget for the heap-driven
// issue-selection loop at 8 cores: once the heap's backing slice is
// warm, selecting and issuing a request must not allocate.
func TestIssueLoopZeroAlloc(t *testing.T) {
	const cores = 8
	streams := make([]cpu.Stream, cores)
	for i := range streams {
		streams[i] = NewSyntheticStream(dram.Baseline())
	}
	sys := sim.NewSystem(sim.Config{
		Scheme: sim.SchemeAquaMemMapped,
		TRH:    1000,
		Cores:  cores,
	}, streams)
	if got := sys.IssueN(20000); got != 20000 {
		t.Fatalf("warmup issued %d of 20000", got)
	}
	if avg := testing.AllocsPerRun(5000, func() { sys.IssueN(1) }); avg != 0 {
		t.Fatalf("issue loop allocates %.2f allocs/op, want 0", avg)
	}
}

// TestEventCalendarZeroAlloc holds the budget for the calendar itself:
// once the heap's backing slice exists, the run loop's primitives
// (MinIndexed/ReplaceIndexedMin/Horizon, lane re-arms, and a Reset +
// refill cycle) must not allocate.
func TestEventCalendarZeroAlloc(t *testing.T) {
	var c event.Calendar
	fill := func() {
		c.Reset()
		for i := int32(0); i < 16; i++ {
			c.Push(event.Event{Time: event.PS(100 + i), Class: event.ClassCoreIssue, Index: i})
		}
		c.SetLane(event.ClassRefresh, 1<<40)
		c.SetLane(event.ClassEpoch, 1<<41)
	}
	fill()
	if avg := testing.AllocsPerRun(5000, func() {
		e, _ := c.MinIndexed()
		c.ReplaceIndexedMin(e.Time + 7919)
		c.Horizon()
		c.SetLane(event.ClassRefresh, e.Time+1<<40)
	}); avg != 0 {
		t.Fatalf("calendar hot loop allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, fill); avg != 0 {
		t.Fatalf("calendar Reset+refill allocates %.2f allocs/op, want 0", avg)
	}
}

// TestWorkloadStreamZeroAlloc holds the same budget for workload
// synthesis: stream.Next must not allocate once the stream is built.
func TestWorkloadStreamZeroAlloc(t *testing.T) {
	spec, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("gcc spec missing")
	}
	gen := workload.NewGenerator(spec, workload.Region{Geom: dram.Baseline()}, 0, 1, workload.Params{})
	s := gen.Stream(1<<40, 1)
	for i := 0; i < 1000; i++ {
		s.Next()
	}
	if avg := testing.AllocsPerRun(5000, func() { s.Next() }); avg != 0 {
		t.Fatalf("stream.Next allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTraceReplayZeroAlloc holds the same budget for the replay tier:
// PackedStream.Next over a captured stream must not allocate — the
// record-once/replay-many design only pays off if replay is free of GC
// pressure.
func TestTraceReplayZeroAlloc(t *testing.T) {
	spec, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("gcc spec missing")
	}
	gen := workload.NewGenerator(spec, workload.Region{Geom: dram.Baseline()}, 0, 1, workload.Params{})
	p := trace.PackStream(gen.Stream(1<<16, 1), 1<<16)
	s := p.Stream()
	if avg := testing.AllocsPerRun(5000, func() {
		if _, ok := s.Next(); !ok {
			s = p.Stream()
		}
	}); avg != 0 {
		t.Fatalf("PackedStream.Next allocates %.2f allocs/op, want 0", avg)
	}
}
