// Package perf is the measurement layer for the simulator's single-thread
// hot path: per-layer microbenchmarks over the request pipeline
// (cpu.Core.Issue -> memctrl.Submit -> mitigation.Translate ->
// dram.Rank.Access -> tracker.RecordACT) plus the zero-allocation budget
// the steady-state path must hold.
//
// The benchmark bodies are exported as ordinary functions taking
// *testing.B so two callers can share them: the package's own
// Benchmark wrappers (run in CI with -benchtime=1x as a smoke test, and
// by hand when optimizing), and the repository bench harness, which runs
// them through testing.Benchmark and records ns/op and allocs/op in the
// committed BENCH_<date>.json trajectory.
//
// Every benchmark builds the paper's baseline configuration (16 banks x
// 128K rows, DDR4-2400, AQUA memory-mapped at T_RH=1K) so the numbers
// track what figure regeneration actually executes.
package perf

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracker"
	"repro/internal/workload"
)

// sinkRow keeps replayed rows observably live so the replay micro cannot
// be dead-code-eliminated around an inlined Next.
var sinkRow dram.Row

// reqSpread is the number of distinct rows the drivers cycle through:
// large enough to exercise row misses and tracker installs, small enough
// that per-row counts stay far below the mitigation threshold within a
// benchmark run's horizon.
const reqSpread = 4096

// batchSpread is the row spread for the batched driver. A 64-deep closed
// loop keeps every bank busy, so it sustains roughly banks× the
// activation rate of the serial driver per unit of simulated time; the
// spread must widen by the same factor to keep per-row activation counts
// below T_RH/2 within a refresh window, or the benchmark measures
// quarantine churn instead of steady-state submit cost.
const batchSpread = reqSpread * 64

// rowPattern returns the i-th row of the driver pattern: a stride walk
// that changes bank every request (worst case for row-buffer locality,
// the dominant shape of tracker-relevant traffic).
func rowPattern(geom dram.Geometry, i int) dram.Row {
	return rowPatternSpread(geom, i, reqSpread)
}

// rowPatternSpread is rowPattern over an explicit row spread.
func rowPatternSpread(geom dram.Geometry, i, spread int) dram.Row {
	n := i % spread
	bank := n % geom.Banks
	idx := (n / geom.Banks) * 3
	return geom.RowOf(bank, idx)
}

// BenchAccess measures the bare DRAM layer: one line access per op
// against the bank state machines, no controller or mitigation above it.
func BenchAccess(b *testing.B) {
	rank := dram.NewRank(dram.Baseline(), dram.DDR4())
	geom := rank.Geometry()
	b.ReportAllocs()
	b.ResetTimer()
	at := dram.PS(0)
	for i := 0; i < b.N; i++ {
		done, _ := rank.Access(rowPattern(geom, i), i%3 == 0, at)
		at = done
	}
}

// newSystem builds the benchmark system: AQUA memory-mapped at T_RH=1K
// over the baseline rank, one core. The stream is a placeholder; drivers
// that bypass the core feed the controller directly.
func newSystem() *sim.System {
	cfg := sim.Config{
		Scheme: sim.SchemeAquaMemMapped,
		TRH:    1000,
		Cores:  1,
	}
	return sim.NewSystem(cfg, []cpu.Stream{&SyntheticStream{}})
}

// BenchSubmit measures the full per-request pipeline through the memory
// controller: background-event scan, FPT translate, DRAM access, tracker
// update.
func BenchSubmit(b *testing.B) {
	sys := newSystem()
	geom := sys.Rank.Geometry()
	b.ReportAllocs()
	b.ResetTimer()
	at := dram.PS(0)
	for i := 0; i < b.N; i++ {
		done := sys.Ctrl.Submit(rowPattern(geom, i), i%3 == 0, at)
		if done > at {
			at = done
		}
	}
}

// BenchSubmitBatch measures the batched submit path: 64-wide runs of
// requests that share one background-event bounds check (64 matches the
// issue loop's drain quantum, the width figure regeneration submits at).
//
// Arrivals are self-paced: slot j of each batch arrives when slot j of
// the previous batch completed (clamped monotonic, as SubmitBatch
// requires), modeling a closed loop with 64 outstanding requests. Giving
// a whole batch one shared arrival instant instead compresses simulated
// time by the controller's bank-level overlap factor, which pushes
// per-window activation rates over T_RH/2 and drags quarantine
// migrations and in-DRAM FPT walks into the measurement; batchSpread
// keeps the paced loop's higher — but genuine — activation rate below
// threshold.
//
// This benchmark legitimately costs ~4x ctrl_submit per request, and the
// gap is the tracker, not accounting: a 64-deep closed loop keeps all 16
// banks busy, sustaining ~16x the serial driver's activation rate, and
// the Misra-Gries tracker is provisioned (ProvisionEntries) precisely so
// no working set can be simultaneously resident in its per-bank tables
// and below T_RH/2 per refresh window at that rate. Spread the rows
// wider and nearly every ACT takes the install/evict path (the
// tracker_act_cold micro); spread them tighter and rows cross the
// threshold and quarantine. ctrl_submit measures the latency-mode
// pipeline (tracker-hot, serial pacing); this measures the
// throughput-mode pipeline, where tracker churn is the true per-request
// cost of keeping every bank busy.
func BenchSubmitBatch(b *testing.B) {
	sys := newSystem()
	geom := sys.Rank.Geometry()
	const batch = 64
	reqs := make([]memctrl.Request, 0, batch)
	done := make([]dram.PS, 0, batch)
	prev := make([]dram.PS, batch)
	b.ReportAllocs()
	b.ResetTimer()
	at := dram.PS(0)
	for i := 0; i < b.N; i += batch {
		reqs = reqs[:0]
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			if prev[j] > at {
				at = prev[j]
			}
			reqs = append(reqs, memctrl.Request{Row: rowPatternSpread(geom, i+j, batchSpread), Write: (i+j)%3 == 0, At: at})
		}
		done = sys.Ctrl.SubmitBatch(reqs, done[:0])
		copy(prev, done)
	}
}

// BenchTrackerACT measures the aggressor tracker alone: one RecordACT
// per op on the provisioned Misra-Gries table.
func BenchTrackerACT(b *testing.B) {
	geom := dram.Baseline()
	timing := dram.DDR4()
	tr := tracker.NewMisraGries(geom, 500, tracker.ProvisionEntries(timing, 500))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordACT(rowPattern(geom, i))
	}
}

// BenchTranslate measures the AQUA engine's address translation alone —
// the per-request FPT lookup the mitigation charges on the critical
// path. The driver pattern is ordinary (never-quarantined) rows, so this
// tracks the flattened fast path: one bitmap probe per op in the common
// "not quarantined, not remapped" case the full-window profile is
// dominated by.
func BenchTranslate(b *testing.B) {
	sys := newSystem()
	geom := sys.Rank.Geometry()
	mit := sys.Mit
	b.ReportAllocs()
	b.ResetTimer()
	at := dram.PS(0)
	for i := 0; i < b.N; i++ {
		tr := mit.Translate(rowPattern(geom, i), at)
		at += tr.Latency
	}
}

// BenchTrackerACTHot measures the tracker's already-tracked fast path:
// every op hits a row with a live Misra-Gries entry, so the cost is one
// dense-array probe, increment, and divide-free threshold test.
func BenchTrackerACTHot(b *testing.B) {
	geom := dram.Baseline()
	timing := dram.DDR4()
	tr := tracker.NewMisraGries(geom, 500, tracker.ProvisionEntries(timing, 500))
	// Install one row per bank; the measured loop cycles over exactly
	// these, so every RecordACT takes the tracked-row path.
	for bank := 0; bank < geom.Banks; bank++ {
		tr.RecordACT(geom.RowOf(bank, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordACT(geom.RowOf(i%geom.Banks, 0))
	}
}

// BenchTrackerACTCold measures the tracker's untracked slow path: a wide
// stride keeps almost every op on a row with no live entry, so the cost
// is the install path — free-slot claim early on, then the spill pump
// and lazy-heap eviction check once the per-bank tables fill.
func BenchTrackerACTCold(b *testing.B) {
	geom := dram.Baseline()
	timing := dram.DDR4()
	tr := tracker.NewMisraGries(geom, 500, tracker.ProvisionEntries(timing, 500))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk every bank, striding far enough that a row repeats only
		// after rowsPerBank/1021 * banks ops — long past eviction.
		tr.RecordACT(geom.RowOf(i%geom.Banks, (i*1021)%geom.RowsPerBank))
	}
}

// BenchGeneratorStream measures workload synthesis: one stream.Next per
// op on a high-MPKI SPEC workload.
func BenchGeneratorStream(b *testing.B) {
	spec, ok := workload.ByName("gcc")
	if !ok {
		b.Fatal("gcc spec missing")
	}
	region := workload.Region{Geom: dram.Baseline()}
	gen := workload.NewGenerator(spec, region, 0, 0x41515541, workload.Params{})
	s := gen.Stream(int64(b.N)+1, 0x41515541)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted early")
		}
	}
}

// traceReplayRecords sizes the packed capture BenchTraceReplay cycles
// over: big enough that cursor resets are noise, small enough (~8 MiB
// packed) to build instantly.
const traceReplayRecords = 1 << 20

// BenchTraceReplay measures the capture/replay tier's replay path: one
// PackedStream.Next per op over a captured gcc stream. This is the
// per-record cost every grid cell after a workload's first touch pays in
// place of BenchGeneratorStream's synthesis cost, so the gap between the
// two numbers is the per-record win of record-once/replay-many.
func BenchTraceReplay(b *testing.B) {
	spec, ok := workload.ByName("gcc")
	if !ok {
		b.Fatal("gcc spec missing")
	}
	region := workload.Region{Geom: dram.Baseline()}
	gen := workload.NewGenerator(spec, region, 0, 0x41515541, workload.Params{})
	p := trace.PackStream(gen.Stream(traceReplayRecords, 0x41515541), traceReplayRecords)
	if p.Len() != traceReplayRecords {
		b.Fatalf("packed %d records, want %d", p.Len(), traceReplayRecords)
	}
	s := p.Stream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, ok := s.Next()
		if !ok {
			// Wrap to a fresh cursor; one allocation per 2^20 ops rounds
			// to zero allocs/op.
			s = p.Stream()
			req, ok = s.Next()
			if !ok {
				b.Fatal("packed stream empty after reset")
			}
		}
		sinkRow = req.Row
	}
}

// benchIssueLoop measures the full issue-selection loop — heap-ordered
// core selection plus the request pipeline — at a given core count. The
// selection cost is what scales with cores: the min-heap pays O(log
// cores) per request where the previous linear scan paid O(cores), so
// the 8- and 16-core variants are where the difference shows.
func benchIssueLoop(b *testing.B, cores int) {
	streams := make([]cpu.Stream, cores)
	for i := range streams {
		streams[i] = NewSyntheticStream(dram.Baseline())
	}
	sys := sim.NewSystem(sim.Config{
		Scheme: sim.SchemeAquaMemMapped,
		TRH:    1000,
		Cores:  cores,
	}, streams)
	b.ReportAllocs()
	b.ResetTimer()
	if got := sys.IssueN(b.N); got != b.N {
		b.Fatalf("issued %d of %d requests", got, b.N)
	}
}

// BenchEventPop measures the calendar primitive the run loop leans on:
// one pop + re-push cycle against a 16-entry indexed heap with two armed
// far-future lanes — the shape of a 16-core system between background
// events. This is the `event_pop` micro in BENCH_<date>.json; its alloc
// count must stay at zero.
func BenchEventPop(b *testing.B) {
	var c event.Calendar
	const entries = 16
	for i := int32(0); i < entries; i++ {
		c.Push(event.Event{Time: event.PS(1000 + i), Class: event.ClassCoreIssue, Index: i})
	}
	c.SetLane(event.ClassRefresh, 1<<40)
	c.SetLane(event.ClassEpoch, 1<<41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, ok := c.MinIndexed()
		if !ok {
			b.Fatal("heap drained")
		}
		c.ReplaceIndexedMin(e.Time + 7919)
	}
}

// BenchIssueLoop4 measures the issue loop at the paper's 4-core
// configuration.
func BenchIssueLoop4(b *testing.B) { benchIssueLoop(b, 4) }

// BenchIssueLoop8 measures the issue loop at 8 cores.
func BenchIssueLoop8(b *testing.B) { benchIssueLoop(b, 8) }

// BenchIssueLoop16 measures the issue loop at 16 cores.
func BenchIssueLoop16(b *testing.B) { benchIssueLoop(b, 16) }

// SyntheticStream is an endless allocation-free request stream over the
// driver row pattern; the zero-allocation budget test drives the full
// core -> controller pipeline with it.
type SyntheticStream struct {
	geom dram.Geometry
	i    int
}

// NewSyntheticStream builds a stream over the given geometry.
func NewSyntheticStream(geom dram.Geometry) *SyntheticStream {
	return &SyntheticStream{geom: geom}
}

// Next implements cpu.Stream.
func (s *SyntheticStream) Next() (cpu.Request, bool) {
	if s.geom == (dram.Geometry{}) {
		s.geom = dram.Baseline()
	}
	r := cpu.Request{Row: rowPattern(s.geom, s.i), Write: s.i%3 == 0, GapInstr: 200}
	s.i++
	return r, true
}
