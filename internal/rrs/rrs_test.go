package rrs

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mitigation"
	"repro/internal/rng"
	"repro/internal/tracker"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 128, RowBytes: 1024, LineBytes: 64}
}

func newEngine(t *testing.T, trh int64) (*dram.Rank, *Engine) {
	t.Helper()
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := New(rank, Config{
		TRH:     trh,
		Tracker: tracker.NewExact(testGeom(), trh/SwapDivisor),
		Seed:    2,
	})
	return rank, eng
}

func hammer(eng *Engine, install dram.Row, acts int, at dram.PS) dram.PS {
	var busy dram.PS
	for i := 0; i < acts; i++ {
		tr := eng.Translate(install, at)
		busy += eng.OnActivate(tr.PhysRow, at)
		at += 50 * dram.Nanosecond
	}
	return busy
}

func TestSwapThresholdIsOneSixth(t *testing.T) {
	if (Config{TRH: 1000}).SwapThreshold() != 166 {
		t.Fatal("swap threshold")
	}
	if (Config{TRH: 3}).SwapThreshold() != 1 {
		t.Fatal("floor of 1")
	}
}

func TestSwapRedirectsAccess(t *testing.T) {
	_, eng := newEngine(t, 60) // swap every 10 ACTs
	row := testGeom().RowOf(0, 5)
	hammer(eng, row, 10, 0)
	p, swapped := eng.Partner(row)
	if !swapped {
		t.Fatal("row not swapped at threshold")
	}
	tr := eng.Translate(row, 0)
	if tr.PhysRow != p {
		t.Fatal("translate does not follow the swap")
	}
	if tr.Class != mitigation.LookupSRAM {
		t.Fatalf("class = %v", tr.Class)
	}
	// The partner's accesses route to the original location (symmetric
	// swap).
	if back := eng.Translate(p, 0); back.PhysRow != row {
		t.Fatal("swap not symmetric")
	}
	if eng.SwappedPairs() != 1 {
		t.Fatalf("pairs = %d", eng.SwappedPairs())
	}
}

func TestFirstSwapCostsTwoMigrations(t *testing.T) {
	rank, eng := newEngine(t, 60)
	row := testGeom().RowOf(0, 5)
	busy := hammer(eng, row, 10, 0)
	st := eng.Stats()
	if st.Mitigations != 1 || st.RowMigrations != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// A swap streams four rows (two reads + two writes) ~= 2 migrations.
	want := 2 * rank.Timing().MigrationTime(testGeom().LinesPerRow())
	if busy < want*9/10 || busy > want*2 {
		t.Fatalf("swap busy = %d, want ~%d", busy, want)
	}
}

func TestReswapCostsFourMigrations(t *testing.T) {
	_, eng := newEngine(t, 60)
	row := testGeom().RowOf(0, 5)
	hammer(eng, row, 10, 0)
	first := eng.Stats().RowMigrations
	// Keep hammering the same install row: the new physical location
	// crosses the threshold and the existing pair must dissolve first
	// (Section IV-F: 4 row migrations).
	hammer(eng, row, 10, dram.Millisecond)
	delta := eng.Stats().RowMigrations - first
	if delta != 4 {
		t.Fatalf("re-swap cost %d migrations, want 4", delta)
	}
}

func TestDestinationNeverSelf(t *testing.T) {
	check := func(seed uint64) bool {
		rank := dram.NewRank(testGeom(), dram.DDR4())
		eng := New(rank, Config{TRH: 60, Seed: seed,
			Tracker: tracker.NewExact(testGeom(), 10)})
		r := rng.New(seed)
		for i := 0; i < 20; i++ {
			row := testGeom().RowOf(r.Intn(4), r.Intn(100))
			hammer(eng, row, 10, dram.PS(i)*dram.Millisecond)
			if p, ok := eng.Partner(row); ok && p == row {
				return false
			}
		}
		return eng.RITFailures() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsSymmetricProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rank := dram.NewRank(testGeom(), dram.DDR4())
		eng := New(rank, Config{TRH: 60, Seed: seed,
			Tracker: tracker.NewExact(testGeom(), 10)})
		r := rng.New(seed ^ 0xbeef)
		at := dram.PS(0)
		for i := 0; i < 40; i++ {
			row := testGeom().RowOf(r.Intn(4), r.Intn(eng.geom.RowsPerBank))
			hammer(eng, row, 1+r.Intn(12), at)
			at += 100 * dram.Microsecond
		}
		// Every partner link must be mutual.
		for x, p := range eng.partner {
			if p != dram.InvalidRow && eng.partner[p] != dram.Row(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochDissolvesPairsLazily(t *testing.T) {
	_, eng := newEngine(t, 60)
	row := testGeom().RowOf(0, 5)
	hammer(eng, row, 10, 0)
	migrBefore := eng.Stats().RowMigrations
	eng.OnEpoch(64 * dram.Millisecond)
	if eng.SwappedPairs() != 0 {
		t.Fatal("pairs survived the epoch")
	}
	if tr := eng.Translate(row, 0); tr.PhysRow != row {
		t.Fatal("stale mapping after epoch")
	}
	// The lazy unswap is off the critical path: not charged as
	// trigger-driven migrations (Appendix A accounting).
	if eng.Stats().RowMigrations != migrBefore {
		t.Fatal("epoch unswap charged to migrations")
	}
}

func TestTranslateIdentityWhenUnswapped(t *testing.T) {
	_, eng := newEngine(t, 60)
	row := testGeom().RowOf(2, 7)
	if tr := eng.Translate(row, 0); tr.PhysRow != row || tr.Latency <= 0 {
		t.Fatalf("identity translate: %+v", tr)
	}
}

func TestRITProvisioningNoFailuresUnderLoad(t *testing.T) {
	rank := dram.NewRank(dram.Baseline(), dram.DDR4())
	eng := New(rank, Config{TRH: 1000, Seed: 3,
		Tracker: tracker.NewExact(dram.Baseline(), 166)})
	r := rng.New(55)
	at := dram.PS(0)
	// Swap 2000 distinct rows: the RIT (provisioned for ~131K swaps) must
	// place every pair.
	for i := 0; i < 2000; i++ {
		row := dram.Baseline().RowOf(r.Intn(16), r.Intn(100000))
		tr := eng.Translate(row, at)
		for a := 0; a < 166; a++ {
			if eng.OnActivate(tr.PhysRow, at) > 0 {
				break
			}
		}
		at += 10 * dram.Microsecond
	}
	if eng.RITFailures() != 0 {
		t.Fatalf("RIT failures = %d", eng.RITFailures())
	}
}

func TestName(t *testing.T) {
	_, eng := newEngine(t, 60)
	if eng.Name() != "rrs" {
		t.Fatal("name")
	}
}

func TestCrowdedDestinationSpaceStillSwaps(t *testing.T) {
	// Force the destination draw to collide with existing pairs: with a
	// tiny swappable space, repeated swaps must dissolve old pairs rather
	// than fail, and links must stay symmetric.
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := New(rank, Config{
		TRH:              60,
		Seed:             5,
		Tracker:          tracker.NewExact(testGeom(), 10),
		MaxSwappableRows: 6,
	})
	at := dram.PS(0)
	for i := 0; i < 8; i++ {
		row := testGeom().RowOf(0, i)
		hammer(eng, row, 10, at)
		at += dram.Millisecond
	}
	for x, p := range eng.partner {
		if p != dram.InvalidRow && eng.partner[p] != dram.Row(x) {
			t.Fatalf("asymmetric pair after crowded swaps: %d<->%d", x, p)
		}
	}
	if eng.Stats().Mitigations == 0 {
		t.Fatal("no swaps happened")
	}
}

func TestDefaultTrackerProvisioned(t *testing.T) {
	rank := dram.NewRank(testGeom(), dram.DDR4())
	eng := New(rank, Config{TRH: 60, Seed: 1}) // nil tracker -> MG at TRH/6
	row := testGeom().RowOf(0, 5)
	hammer(eng, row, 10, 0)
	if eng.Stats().Mitigations == 0 {
		t.Fatal("default tracker never triggered")
	}
}
