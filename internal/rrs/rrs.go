// Package rrs implements Randomized Row-Swap (Saileshwar et al., ASPLOS
// 2022), the row-migration baseline AQUA is compared against throughout
// the paper.
//
// RRS mitigates Rowhammer by swapping an aggressor row with a randomly
// selected row once the aggressor accrues T_RH/6 activations — the
// threshold is artificially lowered (vs AQUA's T_RH/2) because RRS's
// security rests on the attacker not guessing the swap destination
// (birthday-paradox bound, Section II-F). The Row Indirection Table (RIT)
// must live entirely in SRAM: a memory-mapped RIT would leak destinations
// through access latency (footnote in Section V).
//
// Cost model per the paper's Figure 6 discussion: a first-time swap of an
// unswapped row moves two rows (2 row migrations, ~2.74us of channel
// time); a repeat mitigation of an already-swapped row must dissolve the
// existing pair and re-swap, moving four rows (~5.48us). Lazy unswapping
// of stale pairs at epoch boundaries happens off the critical path and is
// not charged to the channel (matching the analytical model of Appendix A,
// which counts only trigger-driven migrations).
package rrs

import (
	"fmt"

	"repro/internal/cat"
	"repro/internal/dram"
	"repro/internal/mitigation"
	"repro/internal/rng"
	"repro/internal/tracker"
)

// SwapDivisor is the paper's threshold ratio: rows swap every T_RH/6
// activations.
const SwapDivisor = 6

// Config parameterizes an RRS engine.
type Config struct {
	// TRH is the Rowhammer threshold; swaps trigger every TRH/6
	// activations.
	TRH int64
	// Tracker overrides the aggressor tracker; nil uses per-bank
	// Misra-Gries provisioned for the swap threshold.
	Tracker tracker.Tracker
	// SRAMLatency is the RIT lookup latency (default ~4 cycles at 3GHz).
	SRAMLatency dram.PS
	// Seed drives destination randomization.
	Seed uint64
	// MaxSwappableRows caps the randomly chosen destination space; 0 means
	// the whole rank. Tests use it to force pair collisions.
	MaxSwappableRows int
}

func (c *Config) fillDefaults() {
	if c.TRH == 0 {
		c.TRH = 1000
	}
	if c.SRAMLatency == 0 {
		c.SRAMLatency = 1330
	}
}

// SwapThreshold returns TRH/6 (at least 1).
func (c Config) SwapThreshold() int64 {
	t := c.TRH / SwapDivisor
	if t < 1 {
		t = 1
	}
	return t
}

// Engine is the RRS mitigation engine for one rank. It implements
// mitigation.Mitigator. Not safe for concurrent use.
type Engine struct {
	cfg  Config
	rank *dram.Rank
	geom dram.Geometry
	rnd  *rng.Rand
	art  tracker.Tracker

	// partner[x] is the row x's content currently resides in (InvalidRow
	// when unswapped). Swaps are symmetric: partner[partner[x]] == x.
	partner []dram.Row

	// rit mirrors the swapped pairs in a CAT to account for the SRAM
	// structure's set-conflict behaviour and storage.
	rit         *cat.Table
	ritFailures int64

	pending []dram.Row

	stats mitigation.Stats
}

var _ mitigation.Mitigator = (*Engine)(nil)

// New builds an RRS engine bound to a rank.
func New(rank *dram.Rank, cfg Config) *Engine {
	cfg.fillDefaults()
	geom := rank.Geometry()
	e := &Engine{
		cfg:     cfg,
		rank:    rank,
		geom:    geom,
		rnd:     rng.New(cfg.Seed ^ 0x5272735f), // "rrs_"
		partner: make([]dram.Row, geom.Rows()),
	}
	for i := range e.partner {
		e.partner[i] = dram.InvalidRow
	}
	// RIT provisioning: entries for every row swappable in one epoch (two
	// per swap), 1.4x overprovisioned, organised as a 2-skew x 8-way CAT.
	maxSwaps := rank.Timing().ACTMax() * int64(geom.Banks) / cfg.SwapThreshold()
	entries := int(float64(2*maxSwaps) * 1.4)
	sets := nextPow2(ceilDiv(entries, 16))
	if sets < 1 {
		sets = 1
	}
	e.rit = cat.New(cat.Config{Sets: sets, Ways: 8, Seed: cfg.Seed ^ 0x524954, MaxRelocations: 16})

	e.art = cfg.Tracker
	if e.art == nil {
		e.art = tracker.NewMisraGries(geom, cfg.SwapThreshold(),
			tracker.ProvisionEntries(rank.Timing(), cfg.SwapThreshold()))
	}
	return e
}

// Name implements mitigation.Mitigator.
func (e *Engine) Name() string { return "rrs" }

// SwappedPairs returns the number of currently swapped pairs.
func (e *Engine) SwappedPairs() int {
	n := 0
	for x, p := range e.partner {
		if p != dram.InvalidRow && dram.Row(x) < p {
			n++
		}
	}
	return n
}

// Partner returns where install row x's content currently lives.
func (e *Engine) Partner(x dram.Row) (dram.Row, bool) {
	p := e.partner[x]
	if p == dram.InvalidRow {
		return 0, false
	}
	return p, true
}

// RITFailures returns CAT placement failures (0 with correct provisioning).
func (e *Engine) RITFailures() int64 { return e.ritFailures }

// Tracker exposes the engine's tracker (for tests).
func (e *Engine) Tracker() tracker.Tracker { return e.art }

// Translate implements mitigation.Mitigator: a constant-latency SRAM
// lookup in the RIT.
func (e *Engine) Translate(row dram.Row, _ dram.PS) mitigation.Translation {
	if !e.geom.Contains(row) {
		panic(fmt.Sprintf("rrs: translate of row %d outside geometry", row))
	}
	phys := row
	if p := e.partner[row]; p != dram.InvalidRow {
		phys = p
	}
	e.stats.Lookups[mitigation.LookupSRAM]++
	return mitigation.Translation{PhysRow: phys, Latency: e.cfg.SRAMLatency, Class: mitigation.LookupSRAM}
}

// Delay implements mitigation.Mitigator; RRS never throttles.
func (e *Engine) Delay(_ dram.Row, now dram.PS) dram.PS { return now }

// OnActivate implements mitigation.Mitigator.
func (e *Engine) OnActivate(physRow dram.Row, at dram.PS) dram.PS {
	var busy dram.PS
	if e.art.RecordACT(physRow) {
		busy += e.mitigate(physRow, at+busy)
	}
	for len(e.pending) > 0 {
		row := e.pending[0]
		e.pending = e.pending[1:]
		if e.art.RecordACT(row) {
			busy += e.mitigate(row, at+busy)
		}
	}
	return busy
}

// mitigate swaps the install row whose content occupies physRow with a
// random destination.
func (e *Engine) mitigate(physRow dram.Row, at dram.PS) dram.PS {
	// Map the hammered physical row back to the install row it holds.
	install := physRow
	if p := e.partner[physRow]; p != dram.InvalidRow {
		install = p
	}
	e.stats.Mitigations++
	t := at

	// Repeat mitigation of a swapped row: dissolve the existing pair first
	// (two additional row moves; the 4x case of Section IV-F).
	if p := e.partner[install]; p != dram.InvalidRow {
		t = e.moveRows(install, p, t)
		e.unlink(install, p)
	}

	dest := e.pickDestination(install)
	t = e.moveRows(install, dest, t)
	e.link(install, dest)

	e.rank.Reserve(t)
	busy := t - at
	e.stats.ChannelBusy += busy
	return busy
}

// pickDestination draws a random unswapped row different from x. If the
// draw repeatedly lands on swapped rows (pathologically full RIT), the
// last candidate's pair is dissolved silently — provisioned configurations
// never need this.
func (e *Engine) pickDestination(x dram.Row) dram.Row {
	space := e.geom.Rows()
	if e.cfg.MaxSwappableRows > 0 && e.cfg.MaxSwappableRows < space {
		space = e.cfg.MaxSwappableRows
	}
	var cand dram.Row
	for try := 0; try < 16; try++ {
		cand = dram.Row(e.rnd.Intn(space))
		if cand != x && e.partner[cand] == dram.InvalidRow {
			return cand
		}
	}
	if cand == x {
		cand = dram.Row((int(x) + 1) % space)
	}
	if p := e.partner[cand]; p != dram.InvalidRow {
		e.unlink(cand, p)
	}
	return cand
}

// moveRows models the channel cost of exchanging two rows through the
// controller's swap buffers: two row reads plus two row writes (~2.74us).
func (e *Engine) moveRows(a, b dram.Row, at dram.PS) dram.PS {
	t := e.rank.StreamRow(a, false, at)
	e.pending = append(e.pending, a)
	t = e.rank.StreamRow(b, false, t)
	e.pending = append(e.pending, b)
	t = e.rank.StreamRow(a, true, t)
	t = e.rank.StreamRow(b, true, t)
	e.pending = append(e.pending, a, b)
	e.stats.RowMigrations += 2
	return t
}

func (e *Engine) link(a, b dram.Row) {
	e.partner[a] = b
	e.partner[b] = a
	if err := e.rit.Insert(a, uint32(b)); err != nil {
		e.ritFailures++
	}
	if err := e.rit.Insert(b, uint32(a)); err != nil {
		e.ritFailures++
	}
}

func (e *Engine) unlink(a, b dram.Row) {
	e.partner[a] = dram.InvalidRow
	e.partner[b] = dram.InvalidRow
	e.rit.Delete(a)
	e.rit.Delete(b)
}

// OnEpoch implements mitigation.Mitigator: the tracker resets and stale
// pairs are dissolved lazily off the critical path (uncharged, per the
// Appendix-A accounting).
func (e *Engine) OnEpoch(_ dram.PS) {
	e.art.Reset()
	for x := range e.partner {
		p := e.partner[x]
		if p != dram.InvalidRow && dram.Row(x) < p {
			e.unlink(dram.Row(x), p)
		}
	}
}

// Stats implements mitigation.Mitigator.
func (e *Engine) Stats() mitigation.Stats { return e.stats }

// StatsReset zeroes the counters.
func (e *Engine) StatsReset() { e.stats = mitigation.Stats{} }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
