package power

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dram"
)

func TestZeroElapsed(t *testing.T) {
	e := FromStats(MicronDDR4(), dram.DDR4(), dram.RankStats{}, 0)
	if e.Total() != 0 {
		t.Fatal("power from zero time")
	}
}

func TestBackgroundOnly(t *testing.T) {
	idd := MicronDDR4()
	e := FromStats(idd, dram.DDR4(), dram.RankStats{}, dram.PS(dram.Millisecond))
	want := idd.IDD3N / 1000 * idd.VDD * 1000
	if math.Abs(e.Background-want) > 1e-9 || e.ActPre != 0 {
		t.Fatalf("background = %g, want %g", e.Background, want)
	}
}

func TestComponentsScaleWithActivity(t *testing.T) {
	idd := MicronDDR4()
	tm := dram.DDR4()
	el := dram.PS(64 * dram.Millisecond)
	low := FromStats(idd, tm, dram.RankStats{Activates: 1000, Reads: 5000}, el)
	high := FromStats(idd, tm, dram.RankStats{Activates: 2000, Reads: 10000}, el)
	if math.Abs(high.ActPre-2*low.ActPre) > 1e-9 {
		t.Fatal("ActPre not linear in activates")
	}
	if math.Abs(high.Read-2*low.Read) > 1e-9 {
		t.Fatal("Read not linear in reads")
	}
}

func TestRefreshPowerRealistic(t *testing.T) {
	// 8205 refreshes per 64ms window is the steady DDR4 cadence; the
	// resulting refresh power should land in the tens of milliwatts for
	// these IDD values — the right order of magnitude for one device.
	idd := MicronDDR4()
	tm := dram.DDR4()
	refreshes := int64(tm.TREFW / tm.TREFI)
	e := FromStats(idd, tm, dram.RankStats{Refreshes: refreshes}, tm.TREFW)
	if e.Refresh < 1 || e.Refresh > 100 {
		t.Fatalf("refresh power = %g mW", e.Refresh)
	}
}

func TestOverheadOfMigrations(t *testing.T) {
	// A mitigated run with extra row streams must cost extra power, and
	// the fraction must be small when the extra activity is small —
	// mirroring the paper's +0.7% result.
	tm := dram.DDR4()
	el := dram.PS(64 * dram.Millisecond)
	base := dram.RankStats{Activates: 1_000_000, Reads: 3_000_000, Writes: 1_000_000, Refreshes: 8205}
	mit := base
	// 1000 migrations: 2 ACTs and 256 line transfers each.
	mit.Activates += 2000
	mit.Reads += 128_000
	mit.Writes += 128_000
	extra, frac := Overhead(MicronDDR4(), tm, base, mit, el, el)
	if extra <= 0 {
		t.Fatalf("extra = %g", extra)
	}
	if frac <= 0 || frac > 0.05 {
		t.Fatalf("fraction = %g, want small positive", frac)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Background: 55, ActPre: 10}
	if !strings.Contains(e.String(), "65.0 mW") {
		t.Fatalf("string: %s", e.String())
	}
}

func TestPaperSRAM(t *testing.T) {
	if got := PaperSRAM().Total(); math.Abs(got-13.6) > 1e-9 {
		t.Fatalf("SRAM total = %g", got)
	}
}
