// Package power estimates DRAM power from rank activity counters using
// the standard IDD-based methodology (Micron's DDR4 power calculator
// model): background current, an activate/precharge energy per row cycle,
// per-burst read/write energies, and refresh energy.
//
// The paper reports AQUA's DRAM power overhead as +0.7% (8.5mW) using
// gem5's DDR4 power model (Section V-H); this package reproduces that
// *measurement* — run a workload with and without AQUA and diff the
// estimates — rather than only quoting the constant.
package power

import (
	"fmt"

	"repro/internal/dram"
)

// IDD holds the datasheet current parameters (milliamps) and supply
// voltage used by the estimate.
type IDD struct {
	VDD float64 // supply voltage (V)
	// IDD0: one-bank activate-precharge current (average over tRC).
	IDD0 float64
	// IDD2N: precharge standby current.
	IDD2N float64
	// IDD3N: active standby current.
	IDD3N float64
	// IDD4R / IDD4W: burst read / write currents.
	IDD4R float64
	IDD4W float64
	// IDD5B: burst refresh current.
	IDD5B float64
}

// MicronDDR4 returns representative values for an 8Gb DDR4-2400 device
// (MT40A2G4-class, the paper's Table I part), scaled to the x16 rank the
// simulator models. Values are datasheet-order-of-magnitude; the paper's
// power result is a relative comparison, which these support.
func MicronDDR4() IDD {
	return IDD{
		VDD:   1.2,
		IDD0:  58,
		IDD2N: 34,
		IDD3N: 46,
		IDD4R: 150,
		IDD4W: 140,
		IDD5B: 255,
	}
}

// Estimate is a power breakdown in milliwatts, averaged over the elapsed
// interval.
type Estimate struct {
	Background float64
	ActPre     float64
	Read       float64
	Write      float64
	Refresh    float64
}

// Total sums the components.
func (e Estimate) Total() float64 {
	return e.Background + e.ActPre + e.Read + e.Write + e.Refresh
}

// String renders the breakdown.
func (e Estimate) String() string {
	return fmt.Sprintf("%.1f mW (bg %.1f, act/pre %.1f, rd %.1f, wr %.1f, ref %.1f)",
		e.Total(), e.Background, e.ActPre, e.Read, e.Write, e.Refresh)
}

// FromStats estimates average power from rank activity over the elapsed
// simulated time.
func FromStats(idd IDD, timing dram.Timing, stats dram.RankStats, elapsed dram.PS) Estimate {
	if elapsed <= 0 {
		return Estimate{}
	}
	sec := float64(elapsed) / 1e12

	// Energy helpers: E = (I_op - I_standby) * VDD * t_op, in joules.
	energy := func(deltaMA float64, dur dram.PS) float64 {
		return deltaMA / 1000 * idd.VDD * float64(dur) / 1e12
	}

	eAct := energy(idd.IDD0-idd.IDD3N, timing.TRC)
	eRead := energy(idd.IDD4R-idd.IDD3N, timing.TBL)
	eWrite := energy(idd.IDD4W-idd.IDD3N, timing.TBL)
	eRef := energy(idd.IDD5B-idd.IDD3N, timing.TRFC)

	mw := func(joules float64) float64 { return joules / sec * 1000 }

	return Estimate{
		Background: idd.IDD3N / 1000 * idd.VDD * 1000, // continuous standby, in mW
		ActPre:     mw(float64(stats.Activates) * eAct),
		Read:       mw(float64(stats.Reads) * eRead),
		Write:      mw(float64(stats.Writes) * eWrite),
		Refresh:    mw(float64(stats.Refreshes) * eRef),
	}
}

// Overhead compares a mitigated run against a baseline run of the same
// work and returns the extra power in milliwatts and as a fraction of the
// baseline total (the Section V-H metric).
func Overhead(idd IDD, timing dram.Timing, base, mitigated dram.RankStats, baseElapsed, mitElapsed dram.PS) (extraMW, fraction float64) {
	pb := FromStats(idd, timing, base, baseElapsed)
	pm := FromStats(idd, timing, mitigated, mitElapsed)
	extraMW = pm.Total() - pb.Total()
	if t := pb.Total(); t > 0 {
		fraction = extraMW / t
	}
	return extraMW, fraction
}

// SRAMPower holds the CACTI-derived SRAM structure powers the paper
// reports (Section V-H); these are constants, not simulated.
type SRAMPower struct {
	BloomMW      float64
	FPTCacheMW   float64
	CopyBufferMW float64
}

// PaperSRAM returns the Section V-H values (5.4 + 5.4 + 2.8 = 13.6mW).
func PaperSRAM() SRAMPower {
	return SRAMPower{BloomMW: 5.4, FPTCacheMW: 5.4, CopyBufferMW: 2.8}
}

// Total sums the SRAM components.
func (s SRAMPower) Total() float64 { return s.BloomMW + s.FPTCacheMW + s.CopyBufferMW }
