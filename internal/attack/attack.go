// Package attack generates adversarial access patterns: the classic
// Rowhammer shapes (single-sided, double-sided, many-sided), the
// Half-Double pattern that defeats victim refresh (Section I), the
// worst-case denial-of-service pattern of Section VI-C, and a
// table-hammering pattern (PTHammer-style) aimed at AQUA's memory-mapped
// tables (Section VI-B).
//
// Every pattern is a cpu.Stream, so attacks run through the same cores,
// controller, and rank as benign workloads and are observed by the same
// security monitor. Patterns are built from row sequences that force a row
// activation on (nearly) every access by alternating conflicting rows
// within a bank.
package attack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// Sequence is a cpu.Stream cycling through a fixed row sequence for a
// given total number of requests.
type Sequence struct {
	rows   []dram.Row
	remain int64
	idx    int
	gap    int64
}

var _ cpu.Stream = (*Sequence)(nil)

// NewSequence builds a stream that cycles `rows` until `total` requests
// have been issued. gapInstr is the instruction gap between accesses
// (attackers are memory-bound; 1 models a tight flush+access loop).
func NewSequence(rows []dram.Row, total int64, gapInstr int64) *Sequence {
	if len(rows) == 0 {
		panic("attack: empty row sequence")
	}
	if gapInstr < 1 {
		gapInstr = 1
	}
	return &Sequence{rows: rows, remain: total, gap: gapInstr}
}

// Next implements cpu.Stream.
func (s *Sequence) Next() (cpu.Request, bool) {
	if s.remain <= 0 {
		return cpu.Request{}, false
	}
	s.remain--
	row := s.rows[s.idx]
	s.idx = (s.idx + 1) % len(s.rows)
	return cpu.Request{Row: row, GapInstr: s.gap}, true
}

// Concat chains streams back to back.
func Concat(streams ...cpu.Stream) cpu.Stream { return &concat{streams: streams} }

type concat struct{ streams []cpu.Stream }

// Next implements cpu.Stream.
func (c *concat) Next() (cpu.Request, bool) {
	for len(c.streams) > 0 {
		if req, ok := c.streams[0].Next(); ok {
			return req, true
		}
		c.streams = c.streams[1:]
	}
	return cpu.Request{}, false
}

// conflictPartner returns a row in the same bank, far from r, used to
// force a row-buffer conflict between consecutive accesses to r.
func conflictPartner(geom dram.Geometry, r dram.Row, visibleRowsPerBank int) dram.Row {
	bank := geom.BankOf(r)
	n := visibleRowsPerBank
	if n <= 0 || n > geom.RowsPerBank {
		n = geom.RowsPerBank
	}
	idx := (geom.IndexOf(r) + n/2) % n
	if idx == geom.IndexOf(r) {
		idx = (idx + 1) % n
	}
	return geom.RowOf(bank, idx)
}

// SingleSided hammers one aggressor row: accesses alternate between the
// aggressor and a far conflict row in the same bank so that every access
// to the aggressor activates it. `acts` is the number of aggressor
// activations.
func SingleSided(geom dram.Geometry, aggressor dram.Row, visibleRowsPerBank int, acts int64) cpu.Stream {
	partner := conflictPartner(geom, aggressor, visibleRowsPerBank)
	return NewSequence([]dram.Row{aggressor, partner}, 2*acts, 1)
}

// DoubleSided hammers both neighbours of the victim row: the classic
// pattern, `acts` activations per aggressor. Panics if the victim is at a
// bank edge.
func DoubleSided(geom dram.Geometry, victim dram.Row, acts int64) cpu.Stream {
	nbrs := geom.Neighbors(victim, 1)
	if len(nbrs) != 2 {
		panic(fmt.Sprintf("attack: victim %d lacks two neighbours", victim))
	}
	return NewSequence(nbrs, 2*acts, 1)
}

// ManySided cycles n aggressors around the victim (TRRespass-style):
// rows victim-n..victim-1 and victim+1..victim+n.
func ManySided(geom dram.Geometry, victim dram.Row, n int, actsPerAggressor int64) cpu.Stream {
	var rows []dram.Row
	for d := 1; d <= n; d++ {
		rows = append(rows, geom.Neighbors(victim, d)...)
	}
	if len(rows) < 2 {
		panic("attack: many-sided needs at least two aggressors")
	}
	return NewSequence(rows, int64(len(rows))*actsPerAggressor, 1)
}

// HalfDouble hammers a far aggressor at distance 2 from the intended
// victim (plus its mirror), relying on the victim-refresh mitigation's own
// refreshes of the distance-1 rows to disturb the distance-2 victim
// (Figure 1a). The returned stream is a double-sided pattern centred on
// victim's distance-2 ring.
func HalfDouble(geom dram.Geometry, victim dram.Row, acts int64) cpu.Stream {
	far := geom.Neighbors(victim, 2)
	if len(far) != 2 {
		panic(fmt.Sprintf("attack: victim %d lacks distance-2 neighbours", victim))
	}
	return NewSequence(far, 2*acts, 1)
}

// AdaptiveHammer models an attacker who keeps hammering one install row
// even as row migration relocates it to unknown banks: each round touches
// a conflict row in *every* bank before re-touching the target, so
// whichever bank currently holds the target's physical row gets a
// row-buffer conflict and the target activates once per round. This is the
// strongest row-focused pattern available without knowing the FPT
// contents, and the one AQUA's per-round activation budget (rounds cost
// B+1 accesses) is analysed against.
func AdaptiveHammer(geom dram.Geometry, target dram.Row, visibleRowsPerBank int, rounds int64) cpu.Stream {
	n := visibleRowsPerBank
	if n <= 0 || n > geom.RowsPerBank {
		n = geom.RowsPerBank
	}
	rows := make([]dram.Row, 0, geom.Banks+1)
	rows = append(rows, target)
	idx := (geom.IndexOf(target) + n/2) % n
	for b := 0; b < geom.Banks; b++ {
		if geom.RowOf(b, idx) == target {
			idx = (idx + 1) % n
		}
		rows = append(rows, geom.RowOf(b, idx))
	}
	return NewSequence(rows, int64(len(rows))*rounds, 1)
}

// RotatingDoS implements the Section VI-C worst-case pattern: in every
// bank, hammer a fresh row exactly `threshold` times (forcing a quarantine
// with eviction), then move to the next row; all banks are attacked
// round-robin so mitigations pile up on the shared channel.
type RotatingDoS struct {
	geom      dram.Geometry
	visible   int
	threshold int64
	remain    int64

	bank    int
	target  []dram.Row // current target per bank
	partner []dram.Row
	count   []int64 // activations of current target
	cursor  []int   // next fresh row index per bank
	phase   []bool  // false: access target next; true: access partner
}

var _ cpu.Stream = (*RotatingDoS)(nil)

// NewRotatingDoS builds the DoS stream over the visible region.
func NewRotatingDoS(geom dram.Geometry, visibleRowsPerBank int, threshold int64, totalReqs int64) *RotatingDoS {
	if visibleRowsPerBank <= 0 || visibleRowsPerBank > geom.RowsPerBank {
		visibleRowsPerBank = geom.RowsPerBank
	}
	d := &RotatingDoS{
		geom:      geom,
		visible:   visibleRowsPerBank,
		threshold: threshold,
		remain:    totalReqs,
		target:    make([]dram.Row, geom.Banks),
		partner:   make([]dram.Row, geom.Banks),
		count:     make([]int64, geom.Banks),
		cursor:    make([]int, geom.Banks),
		phase:     make([]bool, geom.Banks),
	}
	for b := 0; b < geom.Banks; b++ {
		d.advanceTarget(b)
	}
	return d
}

// advanceTarget selects the next fresh aggressor row in a bank.
func (d *RotatingDoS) advanceTarget(bank int) {
	idx := d.cursor[bank] % d.visible
	d.cursor[bank] += 2 // leave space so partners never collide
	d.target[bank] = d.geom.RowOf(bank, idx)
	d.partner[bank] = conflictPartner(d.geom, d.target[bank], d.visible)
	d.count[bank] = 0
	d.phase[bank] = false
}

// Next implements cpu.Stream: banks are visited round-robin; within a bank
// accesses alternate target/partner so each target access activates it.
func (d *RotatingDoS) Next() (cpu.Request, bool) {
	if d.remain <= 0 {
		return cpu.Request{}, false
	}
	d.remain--
	b := d.bank
	d.bank = (d.bank + 1) % d.geom.Banks

	var row dram.Row
	if d.phase[b] {
		row = d.partner[b]
	} else {
		row = d.target[b]
		d.count[b]++
		if d.count[b] >= d.threshold {
			defer d.advanceTarget(b)
		}
	}
	d.phase[b] = !d.phase[b]
	return cpu.Request{Row: row, GapInstr: 1}, true
}

// TableHammer builds the PTHammer-style attack on AQUA's memory-mapped
// tables: first quarantine two rows in each of the given bloom groups (so
// the groups are neither filtered nor singletons), then sweep distinct
// rows of those groups so every sweep access forces a DRAM read of the
// same FPT table row, hammering it.
//
// groupRows must contain, per group, at least two setup rows followed by
// the sweep rows; the caller (tests, cmd/attacksim) derives them from the
// engine's layout. setupActs is the activation count that quarantines a
// row (T_RH/2).
func TableHammer(geom dram.Geometry, visibleRowsPerBank int, setupRows, sweepRows []dram.Row, setupActs, sweepRounds int64) cpu.Stream {
	streams := make([]cpu.Stream, 0, len(setupRows)+1)
	for _, r := range setupRows {
		streams = append(streams, SingleSided(geom, r, visibleRowsPerBank, setupActs))
	}
	if len(sweepRows) > 0 {
		streams = append(streams, NewSequence(sweepRows, int64(len(sweepRows))*sweepRounds, 1))
	}
	return Concat(streams...)
}
