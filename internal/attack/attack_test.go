package attack

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 256, RowBytes: 1024, LineBytes: 64}
}

// collect drains a stream into a request list.
func collect(s cpu.Stream) []cpu.Request {
	var out []cpu.Request
	for {
		req, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, req)
	}
}

// actsOn replays a stream against a rank and returns the ACT count of a row.
func actsOn(geom dram.Geometry, s cpu.Stream, row dram.Row) uint64 {
	rank := dram.NewRank(geom, dram.DDR4())
	at := dram.PS(0)
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		at, _ = rank.Access(req.Row, req.Write, at)
	}
	return rank.ActCount(row)
}

func TestSequenceCyclesAndEnds(t *testing.T) {
	rows := []dram.Row{1, 2, 3}
	reqs := collect(NewSequence(rows, 7, 1))
	if len(reqs) != 7 {
		t.Fatalf("len = %d", len(reqs))
	}
	for i, r := range reqs {
		if r.Row != rows[i%3] {
			t.Fatalf("req %d = %d", i, r.Row)
		}
	}
}

func TestConcat(t *testing.T) {
	s := Concat(NewSequence([]dram.Row{1}, 2, 1), NewSequence([]dram.Row{2}, 3, 1))
	reqs := collect(s)
	if len(reqs) != 5 || reqs[0].Row != 1 || reqs[4].Row != 2 {
		t.Fatalf("concat = %v", reqs)
	}
}

func TestSingleSidedActivatesEveryVisit(t *testing.T) {
	g := testGeom()
	aggr := g.RowOf(0, 10)
	acts := actsOn(g, SingleSided(g, aggr, 200, 100), aggr)
	if acts != 100 {
		t.Fatalf("aggressor ACTs = %d, want 100", acts)
	}
}

func TestDoubleSidedHitsBothNeighbors(t *testing.T) {
	g := testGeom()
	victim := g.RowOf(1, 50)
	s := DoubleSided(g, victim, 40)
	rank := dram.NewRank(g, dram.DDR4())
	at := dram.PS(0)
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		at, _ = rank.Access(req.Row, req.Write, at)
	}
	left, right := g.RowOf(1, 49), g.RowOf(1, 51)
	if rank.ActCount(left) != 40 || rank.ActCount(right) != 40 {
		t.Fatalf("ACTs = %d/%d, want 40/40", rank.ActCount(left), rank.ActCount(right))
	}
	if rank.ActCount(victim) != 0 {
		t.Fatal("victim itself activated")
	}
}

func TestDoubleSidedPanicsAtEdge(t *testing.T) {
	g := testGeom()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DoubleSided(g, g.RowOf(0, 0), 10)
}

func TestManySided(t *testing.T) {
	g := testGeom()
	victim := g.RowOf(0, 100)
	s := ManySided(g, victim, 2, 25)
	reqs := collect(s)
	if len(reqs) != 4*25 {
		t.Fatalf("len = %d", len(reqs))
	}
	seen := make(map[dram.Row]int)
	for _, r := range reqs {
		seen[r.Row]++
	}
	for _, d := range []int{1, 2} {
		for _, n := range g.Neighbors(victim, d) {
			if seen[n] != 25 {
				t.Fatalf("aggressor %d visited %d times", n, seen[n])
			}
		}
	}
}

func TestHalfDoubleTargetsDistanceTwo(t *testing.T) {
	g := testGeom()
	victim := g.RowOf(2, 80)
	reqs := collect(HalfDouble(g, victim, 30))
	far := g.Neighbors(victim, 2)
	for _, r := range reqs {
		if r.Row != far[0] && r.Row != far[1] {
			t.Fatalf("half-double touched %d", r.Row)
		}
	}
}

func TestRotatingDoSCoversAllBanksAndRotates(t *testing.T) {
	g := testGeom()
	const threshold = 10
	s := NewRotatingDoS(g, 200, threshold, 2000)
	rank := dram.NewRank(g, dram.DDR4())
	at := dram.PS(0)
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		at, _ = rank.Access(req.Row, req.Write, at)
	}
	// Every bank saw activity.
	banksTouched := 0
	maxACT := uint64(0)
	for b := 0; b < g.Banks; b++ {
		touched := false
		for i := 0; i < 200; i++ {
			acts := rank.ActCount(g.RowOf(b, i))
			if acts > 0 {
				touched = true
			}
			if acts > maxACT {
				maxACT = acts
			}
		}
		if touched {
			banksTouched++
		}
	}
	if banksTouched != g.Banks {
		t.Fatalf("only %d banks attacked", banksTouched)
	}
	// No single target row exceeds the per-target budget (the pattern
	// moves on after `threshold` ACTs; partners can take more).
	if maxACT > 2000/2 {
		t.Fatalf("one row absorbed %d ACTs — pattern did not rotate", maxACT)
	}
}

func TestTableHammerPhases(t *testing.T) {
	g := testGeom()
	setup := []dram.Row{g.RowOf(0, 1), g.RowOf(0, 2)}
	sweep := []dram.Row{g.RowOf(0, 3), g.RowOf(0, 4), g.RowOf(0, 5)}
	s := TableHammer(g, 200, setup, sweep, 5, 4)
	reqs := collect(s)
	// Setup: 2 rows x 2x5 accesses; sweep: 3 rows x 4 rounds.
	want := 2*2*5 + 3*4
	if len(reqs) != want {
		t.Fatalf("len = %d, want %d", len(reqs), want)
	}
	// The sweep visits each row per round.
	tail := reqs[len(reqs)-12:]
	for i, r := range tail {
		if r.Row != sweep[i%3] {
			t.Fatalf("sweep order broken at %d", i)
		}
	}
}

func TestEmptySequencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSequence(nil, 10, 1)
}

func TestConflictPartnerSameBankDifferentRow(t *testing.T) {
	g := testGeom()
	for _, idx := range []int{0, 1, 100, 255} {
		r := g.RowOf(2, idx)
		p := conflictPartner(g, r, 256)
		if g.BankOf(p) != 2 {
			t.Fatalf("partner in bank %d", g.BankOf(p))
		}
		if p == r {
			t.Fatal("partner equals target")
		}
	}
}

func TestAdaptiveHammerActivatesTargetEveryRound(t *testing.T) {
	g := testGeom()
	target := g.RowOf(2, 33)
	const rounds = 50
	acts := actsOn(g, AdaptiveHammer(g, target, 200, rounds), target)
	if acts != rounds {
		t.Fatalf("target ACTs = %d, want %d", acts, rounds)
	}
}

func TestAdaptiveHammerTouchesEveryBank(t *testing.T) {
	g := testGeom()
	target := g.RowOf(0, 10)
	reqs := collect(AdaptiveHammer(g, target, 200, 3))
	banks := make(map[int]bool)
	for _, r := range reqs {
		banks[g.BankOf(r.Row)] = true
	}
	if len(banks) != g.Banks {
		t.Fatalf("touched %d banks, want %d", len(banks), g.Banks)
	}
	// No partner collides with the target.
	for _, r := range reqs[1:] {
		if r.Row == target && g.BankOf(r.Row) != g.BankOf(target) {
			t.Fatal("partner equals target")
		}
	}
}
