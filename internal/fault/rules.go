// Rules: the textual grammar behind the -faults flag, mapping grid cells
// to fault plans.
//
// Grammar (entries separated by ';', whitespace around tokens ignored):
//
//	entry    = cell "=" fault
//	cell     = workload "/" scheme "/" trh      ("*" wildcards any field)
//	fault    = kind "@" trigger
//	trigger  = "p:" float                       probabilistic per opportunity
//	         | "once:" picoseconds              one-shot at or after time N
//	         | "burst:" picoseconds ":" count   burst of `count` fires from N
//
// Examples:
//
//	xz/rrs/1000=panic@once:0
//	wrf/aqua-sram/*=rqa-overflow@p:0.02
//	*/*/*=ecc-flip@burst:1000000:8
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// rule is one parsed entry: a cell pattern plus the arm it injects.
type rule struct {
	workload string // "*" = any
	scheme   string // "*" = any
	trh      int64  // 0 = any (the grammar's "*")
	arm      Arm
}

// Rules maps grid cells to fault plans. A nil *Rules matches nothing.
type Rules struct {
	rules []rule
	spec  string // canonical form, stable for checkpoint signatures
}

// ParseRules parses the -faults grammar. An empty spec returns nil (no
// faults), so callers can pass the flag value through unconditionally.
func ParseRules(spec string) (*Rules, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	r := &Rules{}
	var canon []string
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		ru, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		r.rules = append(r.rules, ru)
		canon = append(canon, ru.String())
	}
	if len(r.rules) == 0 {
		return nil, nil
	}
	r.spec = strings.Join(canon, ";")
	return r, nil
}

func parseEntry(entry string) (rule, error) {
	cell, fault, ok := strings.Cut(entry, "=")
	if !ok {
		return rule{}, fmt.Errorf("fault: entry %q: want cell=kind@trigger", entry)
	}
	parts := strings.Split(strings.TrimSpace(cell), "/")
	if len(parts) != 3 {
		return rule{}, fmt.Errorf("fault: cell %q: want workload/scheme/trh", cell)
	}
	ru := rule{workload: strings.TrimSpace(parts[0]), scheme: strings.TrimSpace(parts[1])}
	if ru.workload == "" || ru.scheme == "" {
		return rule{}, fmt.Errorf("fault: cell %q: empty workload or scheme", cell)
	}
	if trh := strings.TrimSpace(parts[2]); trh != "*" {
		v, err := strconv.ParseInt(trh, 10, 64)
		if err != nil || v <= 0 {
			return rule{}, fmt.Errorf("fault: cell %q: trh must be a positive integer or *", cell)
		}
		ru.trh = v
	}

	kindStr, trig, ok := strings.Cut(strings.TrimSpace(fault), "@")
	if !ok {
		return rule{}, fmt.Errorf("fault: %q: want kind@trigger", fault)
	}
	kind, ok := KindByName(strings.TrimSpace(kindStr))
	if !ok {
		return rule{}, fmt.Errorf("fault: unknown kind %q (known: %s)", kindStr, strings.Join(kindNames[:], ", "))
	}
	sched, err := parseTrigger(strings.TrimSpace(trig))
	if err != nil {
		return rule{}, err
	}
	ru.arm = Arm{Kind: kind, Schedule: sched, Transient: kind == CellTransient}
	return ru, nil
}

func parseTrigger(trig string) (Schedule, error) {
	head, rest, _ := strings.Cut(trig, ":")
	switch head {
	case "p":
		p, err := strconv.ParseFloat(rest, 64)
		if err != nil || p < 0 || p > 1 {
			return Schedule{}, fmt.Errorf("fault: trigger %q: p wants a probability in [0,1]", trig)
		}
		return Schedule{Trigger: TriggerProb, P: p}, nil
	case "once":
		at, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || at < 0 {
			return Schedule{}, fmt.Errorf("fault: trigger %q: once wants a non-negative picosecond time", trig)
		}
		return Schedule{Trigger: TriggerOnce, At: at}, nil
	case "burst":
		atStr, countStr, ok := strings.Cut(rest, ":")
		if !ok {
			return Schedule{}, fmt.Errorf("fault: trigger %q: want burst:at:count", trig)
		}
		at, err1 := strconv.ParseInt(atStr, 10, 64)
		count, err2 := strconv.ParseInt(countStr, 10, 64)
		if err1 != nil || err2 != nil || at < 0 || count < 1 {
			return Schedule{}, fmt.Errorf("fault: trigger %q: want burst:at:count with count >= 1", trig)
		}
		return Schedule{Trigger: TriggerBurst, At: at, Count: count}, nil
	default:
		return Schedule{}, fmt.Errorf("fault: unknown trigger %q (want p:, once:, burst:)", trig)
	}
}

// String renders one rule in canonical grammar form.
func (ru rule) String() string {
	trh := "*"
	if ru.trh != 0 {
		trh = strconv.FormatInt(ru.trh, 10)
	}
	return fmt.Sprintf("%s/%s/%s=%s@%s", ru.workload, ru.scheme, trh, ru.arm.Kind, ru.arm.Schedule)
}

// String returns the canonical spec: parse-stable, used in checkpoint
// signatures so a resumed run provably carries the same fault rules. A
// nil *Rules renders as the empty string.
func (r *Rules) String() string {
	if r == nil {
		return ""
	}
	return r.spec
}

// KindPlan collects every arm of kind k across all rules, ignoring the
// cell patterns. Harness-level kinds (WorkerKill) are keyed on process
// opportunities — cell-start ordinals — not on grid cells, so the farm
// consumes them whole; the conventional spelling is `*/*/*=worker-kill@...`.
// A nil *Rules returns the empty plan.
func (r *Rules) KindPlan(k Kind) Plan {
	if r == nil {
		return Plan{}
	}
	var p Plan
	for _, ru := range r.rules {
		if ru.arm.Kind == k {
			p.Arms = append(p.Arms, ru.arm)
		}
	}
	return p
}

// WithoutKind returns a copy of the rules with every arm of kind k
// removed, or nil when nothing remains. The farm uses it to strip its
// harness-level kinds before handing the rules to the sim layer, so a
// worker-kill rule never forces matched cells onto the cache-bypassing
// fault path.
func (r *Rules) WithoutKind(k Kind) *Rules {
	if r == nil {
		return nil
	}
	out := &Rules{}
	var canon []string
	for _, ru := range r.rules {
		if ru.arm.Kind == k {
			continue
		}
		out.rules = append(out.rules, ru)
		canon = append(canon, ru.String())
	}
	if len(out.rules) == 0 {
		return nil
	}
	out.spec = strings.Join(canon, ";")
	return out
}

// PlanFor collects the arms whose cell patterns match (workload, scheme,
// trh). A nil *Rules returns the empty plan.
func (r *Rules) PlanFor(workload, scheme string, trh int64) Plan {
	if r == nil {
		return Plan{}
	}
	var p Plan
	for _, ru := range r.rules {
		if ru.workload != "*" && ru.workload != workload {
			continue
		}
		if ru.scheme != "*" && ru.scheme != scheme {
			continue
		}
		if ru.trh != 0 && ru.trh != trh {
			continue
		}
		p.Arms = append(p.Arms, ru.arm)
	}
	return p
}
