package fault

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Fire(RQAOverflow, 0) {
		t.Fatal("nil injector fired")
	}
	if in.FireRow(ECCFlip, 42, 0) {
		t.Fatal("nil injector fired on row")
	}
	in.SetRowFilter(ECCFlip, func(int64) bool { return true })
	if in.Draw(TrackerCorrupt) != 0 {
		t.Fatal("nil injector drew a payload")
	}
	if in.Trace() != nil || in.Stats() != (Stats{}) {
		t.Fatal("nil injector has state")
	}
}

func TestEmptyPlanYieldsNilInjector(t *testing.T) {
	if in := NewInjector(1, Plan{}, 0); in != nil {
		t.Fatal("empty plan built an injector")
	}
}

func TestOnceFiresExactlyOnceAtOrAfterAt(t *testing.T) {
	in := NewInjector(7, Plan{Arms: []Arm{{Kind: CellPanic, Schedule: Schedule{Trigger: TriggerOnce, At: 100}}}}, 0)
	if in.Fire(CellPanic, 50) {
		t.Fatal("fired before At")
	}
	if !in.Fire(CellPanic, 100) {
		t.Fatal("did not fire at At")
	}
	for _, now := range []int64{100, 150, 1 << 40} {
		if in.Fire(CellPanic, now) {
			t.Fatalf("one-shot fired again at %d", now)
		}
	}
	if got := in.Stats(); got.Injected != 1 || got.ByKind[CellPanic] != 1 {
		t.Fatalf("stats %+v", got)
	}
}

func TestBurstFiresCountTimesFromAt(t *testing.T) {
	in := NewInjector(7, Plan{Arms: []Arm{{Kind: ECCFlip, Schedule: Schedule{Trigger: TriggerBurst, At: 10, Count: 3}}}}, 0)
	fires := 0
	for now := int64(0); now < 20; now++ {
		if in.Fire(ECCFlip, now) {
			fires++
			if now < 10 {
				t.Fatalf("burst fired at %d, before At", now)
			}
		}
	}
	if fires != 3 {
		t.Fatalf("burst fired %d times, want 3", fires)
	}
}

func TestProbabilisticRoughRateAndDeterminism(t *testing.T) {
	plan := Plan{Arms: []Arm{{Kind: RQAOverflow, Schedule: Schedule{Trigger: TriggerProb, P: 0.25}}}}
	run := func(seed uint64) (int, []Event) {
		in := NewInjector(seed, plan, 0)
		n := 0
		for i := int64(0); i < 4000; i++ {
			if in.Fire(RQAOverflow, i) {
				n++
			}
		}
		return n, in.Trace()
	}
	n1, tr1 := run(11)
	n2, tr2 := run(11)
	if n1 != n2 || !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("same seed diverged: %d vs %d fires", n1, n2)
	}
	if n1 < 800 || n1 > 1200 {
		t.Fatalf("p=0.25 over 4000 opportunities fired %d times", n1)
	}
	n3, _ := run(12)
	if n3 == n1 {
		t.Fatalf("different seeds produced identical fire count %d (suspicious)", n1)
	}
}

func TestTransientArmSkippedOnRetry(t *testing.T) {
	plan := Plan{Arms: []Arm{
		{Kind: CellTransient, Schedule: Schedule{Trigger: TriggerOnce, At: 0}, Transient: true},
		{Kind: CellPanic, Schedule: Schedule{Trigger: TriggerOnce, At: 0}},
	}}
	first := NewInjector(3, plan, 0)
	if !first.Fire(CellTransient, 0) || !first.Fire(CellPanic, 0) {
		t.Fatal("attempt 0 should fire both arms")
	}
	retry := NewInjector(3, plan, 1)
	if retry.Fire(CellTransient, 0) {
		t.Fatal("transient arm fired on retry")
	}
	if !retry.Fire(CellPanic, 0) {
		t.Fatal("persistent arm must still fire on retry")
	}
}

func TestRowFilterScopesFiring(t *testing.T) {
	in := NewInjector(5, Plan{Arms: []Arm{{Kind: ECCFlip, Schedule: Schedule{Trigger: TriggerProb, P: 1}}}}, 0)
	in.SetRowFilter(ECCFlip, func(row int64) bool { return row >= 1000 })
	if in.FireRow(ECCFlip, 5, 0) {
		t.Fatal("fired outside the row filter")
	}
	if !in.FireRow(ECCFlip, 1000, 0) {
		t.Fatal("did not fire inside the row filter")
	}
}

func TestDrawIsDeterministicPerSeed(t *testing.T) {
	plan := Plan{Arms: []Arm{{Kind: TrackerCorrupt, Schedule: Schedule{Trigger: TriggerProb, P: 0.5}}}}
	a := NewInjector(9, plan, 0)
	b := NewInjector(9, plan, 0)
	for i := 0; i < 16; i++ {
		if a.Draw(TrackerCorrupt) != b.Draw(TrackerCorrupt) {
			t.Fatal("same-seed payload streams diverged")
		}
	}
	c := NewInjector(10, plan, 0)
	same := true
	for i := 0; i < 16; i++ {
		if a.Draw(TrackerCorrupt) != c.Draw(TrackerCorrupt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical payload streams")
	}
}

func TestParseRulesRoundTrip(t *testing.T) {
	spec := " xz/rrs/1000=panic@once:0 ; wrf/aqua-sram/*=rqa-overflow@p:0.02;*/*/*=ecc-flip@burst:1000000:8 "
	r, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	canon := r.String()
	want := "xz/rrs/1000=panic@once:0;wrf/aqua-sram/*=rqa-overflow@p:0.02;*/*/*=ecc-flip@burst:1000000:8"
	if canon != want {
		t.Fatalf("canonical form:\n got %q\nwant %q", canon, want)
	}
	r2, err := ParseRules(canon)
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != canon {
		t.Fatalf("canonical form not a fixed point: %q -> %q", canon, r2.String())
	}
}

func TestParseRulesEmptyAndErrors(t *testing.T) {
	for _, empty := range []string{"", "  ", ";;"} {
		r, err := ParseRules(empty)
		if err != nil || r != nil {
			t.Fatalf("ParseRules(%q) = %v, %v; want nil, nil", empty, r, err)
		}
	}
	for _, bad := range []string{
		"xz/rrs/1000",                  // no fault
		"xz/rrs=panic@once:0",          // malformed cell
		"xz/rrs/zero=panic@once:0",     // bad trh
		"xz/rrs/1000=explode@once:0",   // unknown kind
		"xz/rrs/1000=panic@eventually", // unknown trigger
		"xz/rrs/1000=panic@p:1.5",      // probability out of range
		"xz/rrs/1000=panic@burst:10",   // burst missing count
		"xz/rrs/1000=panic@once:-5",    // negative time
		"xz//1000=panic@once:0",        // empty scheme
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted malformed spec", bad)
		}
	}
}

func TestPlanForMatching(t *testing.T) {
	r, err := ParseRules("xz/rrs/1000=panic@once:0;*/aqua-sram/*=rqa-overflow@p:0.5;wrf/*/*=transient@once:0")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		workload, scheme string
		trh              int64
		wantKinds        []Kind
	}{
		{"xz", "rrs", 1000, []Kind{CellPanic}},
		{"xz", "rrs", 500, nil},
		{"xz", "aqua-sram", 1000, []Kind{RQAOverflow}},
		{"wrf", "aqua-sram", 2000, []Kind{RQAOverflow, CellTransient}},
		{"wrf", "baseline", 1000, []Kind{CellTransient}},
		{"mcf", "blockhammer", 1000, nil},
	}
	for _, c := range cases {
		p := r.PlanFor(c.workload, c.scheme, c.trh)
		var got []Kind
		for _, a := range p.Arms {
			got = append(got, a.Kind)
		}
		if !reflect.DeepEqual(got, c.wantKinds) {
			t.Fatalf("PlanFor(%s,%s,%d) = %v, want %v", c.workload, c.scheme, c.trh, got, c.wantKinds)
		}
	}
	// The transient cell kind defaults to a transient arm.
	p := r.PlanFor("wrf", "baseline", 1000)
	if len(p.Arms) != 1 || !p.Arms[0].Transient {
		t.Fatalf("transient kind should parse as a Transient arm: %+v", p.Arms)
	}
	// Nil rules match nothing.
	var nilRules *Rules
	if !nilRules.PlanFor("xz", "rrs", 1000).Empty() || nilRules.String() != "" {
		t.Fatal("nil *Rules must be inert")
	}
}

func TestTransientErrorWrapping(t *testing.T) {
	base := errors.New("injected")
	err := Transient(fmt.Errorf("cell failed: %w", base))
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("Transient() lost the marker")
	}
	if !errors.Is(err, base) {
		t.Fatal("Transient() broke the error chain")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
}

func TestKindPlanAndWithoutKind(t *testing.T) {
	r, err := ParseRules("*/*/*=worker-kill@once:2;xz/rrs/1000=panic@once:0;*/*/*=worker-kill@once:5")
	if err != nil {
		t.Fatal(err)
	}
	// KindPlan collects every arm of the kind, ignoring cell patterns.
	kp := r.KindPlan(WorkerKill)
	if len(kp.Arms) != 2 || kp.Arms[0].Schedule.At != 2 || kp.Arms[1].Schedule.At != 5 {
		t.Fatalf("KindPlan(WorkerKill) = %+v, want the two once: arms in order", kp.Arms)
	}
	for _, a := range kp.Arms {
		if a.Kind != WorkerKill {
			t.Fatalf("KindPlan leaked a foreign kind: %+v", a)
		}
	}
	if p := r.KindPlan(ECCFlip); !p.Empty() {
		t.Fatalf("KindPlan(ECCFlip) = %+v, want empty", p.Arms)
	}

	// WithoutKind strips the harness-level arms and rebuilds the canonical
	// spec, so ckpt signatures only bind the rules the sim layer sees.
	stripped := r.WithoutKind(WorkerKill)
	if got, want := stripped.String(), "xz/rrs/1000=panic@once:0"; got != want {
		t.Fatalf("WithoutKind canonical spec = %q, want %q", got, want)
	}
	if !stripped.KindPlan(WorkerKill).Empty() {
		t.Fatal("WithoutKind left worker-kill arms behind")
	}
	if p := stripped.PlanFor("xz", "rrs", 1000); len(p.Arms) != 1 || p.Arms[0].Kind != CellPanic {
		t.Fatalf("WithoutKind dropped a surviving rule: %+v", p.Arms)
	}
	// The original is untouched.
	if got := r.String(); !strings.Contains(got, "worker-kill@once:2") {
		t.Fatalf("WithoutKind mutated the receiver: %q", got)
	}

	// Stripping the only kind present collapses to nil (no faults).
	only, err := ParseRules("*/*/*=worker-kill@once:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := only.WithoutKind(WorkerKill); got != nil {
		t.Fatalf("WithoutKind on a worker-kill-only spec = %v, want nil", got)
	}

	// Nil receivers are inert.
	var nilRules *Rules
	if !nilRules.KindPlan(WorkerKill).Empty() || nilRules.WithoutKind(WorkerKill) != nil {
		t.Fatal("nil *Rules must be inert for KindPlan/WithoutKind")
	}
}
