// Package fault is the deterministic fault-injection subsystem: a seeded
// decision engine that any simulator layer can consult ("does fault K fire
// at this opportunity?") without owning schedule state or randomness.
//
// Design rules, mirroring internal/invariant:
//
//   - A nil *Injector is the disabled mode: every method is nil-safe and
//     the hot path pays one pointer test. Release-mode simulation never
//     constructs an injector.
//   - All randomness flows from internal/rng via a caller-provided seed,
//     so the same (seed, plan, simulation) triple produces the identical
//     fault trace on every run — the property the determinism tests pin.
//   - Times are plain int64 picoseconds so the package imports nothing
//     from the simulator layers and can be attached to any of them.
//
// What a fired fault *does* is owned by the layer that asked: the DRAM
// rank redirects a stuck row, the AQUA engine degrades to victim-refresh
// on a forced RQA overflow, the experiment runner panics a cell. This
// package only decides when, records the event, and counts it.
package fault

import (
	"fmt"

	"repro/internal/rng"
)

// Kind enumerates the injectable fault types, grouped by the layer that
// consults them.
type Kind int

const (
	// StuckRow is a DRAM-level row-decoder fault: an activation selects a
	// neighbouring row instead of the addressed one.
	StuckRow Kind = iota
	// ECCFlip is a DRAM-level ECC-correctable bit flip in the quarantine
	// region; the correction pipeline stalls the access by one tCL.
	ECCFlip
	// MigrationAbort is a controller-level fault: a row copy is aborted
	// mid-stream (the read pass completed, the write was torn down) and
	// the migration retries from scratch.
	MigrationAbort
	// RefreshCollision is a controller-level fault: a refresh command
	// collides with an in-flight migration's channel reservation and is
	// re-issued after the reservation ends.
	RefreshCollision
	// RQAOverflow is a mitigation-level fault: the quarantine refuses the
	// aggressor and the engine degrades gracefully to a victim-refresh
	// fallback for that mitigation.
	RQAOverflow
	// FPTCachePoison is a mitigation-level fault: the aggressor's
	// FPT-Cache entry is invalidated, forcing the next lookup to walk the
	// in-DRAM table (which self-heals the cache).
	FPTCachePoison
	// TrackerCorrupt is a tracker-level fault: one Misra-Gries counter is
	// corrupted, after which the structure re-heapifies around the bad
	// value and the invariant layer re-validates consistency.
	TrackerCorrupt
	// CellPanic is an experiment-engine fault: the grid cell panics,
	// exercising the worker pool's panic isolation.
	CellPanic
	// CellTransient is an experiment-engine fault: the grid cell fails
	// with a transient (retryable) error that clears on the next attempt.
	CellTransient
	// WorkerKill is a harness-level fault consumed by the experiment farm
	// (internal/farm), never by the simulator: when it fires at a cell-start
	// opportunity the worker process is SIGKILLed mid-grid, exercising lease
	// expiry and checkpoint handoff. The farm strips WorkerKill arms out of
	// the rules before handing them to the sim layer (Rules.WithoutKind), so
	// a kill rule does not put matched cells onto the cache-bypassing fault
	// path.
	WorkerKill

	// NumKinds bounds the enum for per-kind arrays.
	NumKinds
)

// kindNames is the canonical spelling used by the rules grammar.
var kindNames = [NumKinds]string{
	StuckRow:         "stuck-row",
	ECCFlip:          "ecc-flip",
	MigrationAbort:   "migration-abort",
	RefreshCollision: "refresh-collision",
	RQAOverflow:      "rqa-overflow",
	FPTCachePoison:   "fpt-poison",
	TrackerCorrupt:   "tracker-corrupt",
	CellPanic:        "panic",
	CellTransient:    "transient",
	WorkerKill:       "worker-kill",
}

// String returns the rules-grammar name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindByName resolves a rules-grammar name to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Trigger selects how a schedule decides each opportunity.
type Trigger int

const (
	// TriggerProb fires independently with probability P per opportunity.
	TriggerProb Trigger = iota
	// TriggerOnce fires at the first opportunity at or after time At, then
	// never again.
	TriggerOnce
	// TriggerBurst fires at every opportunity from time At until Count
	// fires have occurred.
	TriggerBurst
)

// Schedule is one arm's firing rule.
type Schedule struct {
	Trigger Trigger
	// P is the per-opportunity probability (TriggerProb).
	P float64
	// At is the earliest firing time in picoseconds (TriggerOnce,
	// TriggerBurst).
	At int64
	// Count is the number of consecutive fires (TriggerBurst).
	Count int64
}

// String renders the schedule in the rules grammar.
func (s Schedule) String() string {
	switch s.Trigger {
	case TriggerOnce:
		return fmt.Sprintf("once:%d", s.At)
	case TriggerBurst:
		return fmt.Sprintf("burst:%d:%d", s.At, s.Count)
	default:
		return fmt.Sprintf("p:%g", s.P)
	}
}

// Arm is one (kind, schedule) pair in a plan.
type Arm struct {
	Kind     Kind
	Schedule Schedule
	// Transient arms are skipped on retry attempts (attempt > 0),
	// modelling faults that clear when the work is re-executed. The
	// "transient" cell fault defaults to true; hardware faults to false.
	Transient bool
}

// Plan is the set of arms active for one simulation run.
type Plan struct {
	Arms []Arm
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Arms) == 0 }

// Event is one injected fault in the trace.
type Event struct {
	Kind Kind
	At   int64
}

// Stats counts injected faults.
type Stats struct {
	// Injected is the total number of fires across all kinds.
	Injected int64
	// ByKind breaks the total down per fault kind.
	ByKind [NumKinds]int64
}

// traceLimit bounds the recorded event trace; Stats keeps exact totals
// beyond it (mirrors invariant.Checker's violation store cap).
const traceLimit = 4096

// armState is one arm's runtime schedule state.
type armState struct {
	arm   Arm
	rand  *rng.Rand // TriggerProb draw stream
	fired int64
	done  bool
}

// Injector evaluates a plan's schedules. A nil *Injector is the disabled
// mode: Fire and friends return their zero answers at the cost of one
// pointer test. Not safe for concurrent use — each simulated system owns
// its injector, like every other per-system structure.
type Injector struct {
	seed    uint64
	byKind  [NumKinds][]*armState
	payload [NumKinds]*rng.Rand
	filter  [NumKinds]func(row int64) bool
	trace   []Event
	stats   Stats
}

// NewInjector builds an injector for a plan. Arms marked Transient are
// dropped when attempt > 0, so a retried run sees the same schedule minus
// the faults that model transient failures. Returns nil for an empty
// (or fully transient-skipped) plan, keeping the disabled fast path.
func NewInjector(seed uint64, plan Plan, attempt int) *Injector {
	var arms []Arm
	for _, a := range plan.Arms {
		if a.Transient && attempt > 0 {
			continue
		}
		arms = append(arms, a)
	}
	if len(arms) == 0 {
		return nil
	}
	in := &Injector{seed: seed}
	for i, a := range arms {
		st := &armState{arm: a}
		if a.Schedule.Trigger == TriggerProb {
			// Each arm draws from its own stream keyed by (kind, position)
			// so adding an arm never perturbs another arm's decisions.
			st.rand = rng.New(rng.Derive(seed, 0xFA01, uint64(a.Kind), uint64(i)))
		}
		in.byKind[a.Kind] = append(in.byKind[a.Kind], st)
	}
	return in
}

// Fire reports whether fault k fires at this opportunity (time now) and
// records it. Multiple arms of the same kind are OR-ed; each firing arm
// is counted.
func (in *Injector) Fire(k Kind, now int64) bool {
	if in == nil || len(in.byKind[k]) == 0 {
		return false
	}
	fired := false
	for _, st := range in.byKind[k] {
		if st.decide(now) {
			fired = true
			in.record(k, now)
		}
	}
	return fired
}

// FireRow is Fire for row-scoped faults: when a row filter is installed
// for k (SetRowFilter), opportunities on rows outside the filter never
// fire and consume no randomness.
func (in *Injector) FireRow(k Kind, row int64, now int64) bool {
	if in == nil || len(in.byKind[k]) == 0 {
		return false
	}
	if f := in.filter[k]; f != nil && !f(row) {
		return false
	}
	return in.Fire(k, now)
}

// SetRowFilter scopes fault k to rows the predicate accepts (e.g. the
// AQUA engine limits ECCFlip to the quarantine region). A nil receiver
// is a no-op.
func (in *Injector) SetRowFilter(k Kind, f func(row int64) bool) {
	if in == nil {
		return
	}
	in.filter[k] = f
}

// Draw returns the next value of kind k's deterministic payload stream,
// used by layers that need extra fault parameters (which counter to
// corrupt, by how much). The stream is derived lazily from the arm
// decision streams' seed space and is stable across runs.
func (in *Injector) Draw(k Kind) uint64 {
	if in == nil {
		return 0
	}
	if in.payload[k] == nil {
		// Derive from a separate key space so payload draws never
		// interleave with the arms' decision streams.
		in.payload[k] = rng.New(rng.Derive(in.seed, 0xFA02, uint64(k)))
	}
	return in.payload[k].Uint64()
}

// decide evaluates one arm's schedule at time now.
func (st *armState) decide(now int64) bool {
	if st.done {
		return false
	}
	s := st.arm.Schedule
	switch s.Trigger {
	case TriggerOnce:
		if now >= s.At {
			st.done = true
			return true
		}
		return false
	case TriggerBurst:
		if now < s.At {
			return false
		}
		st.fired++
		if st.fired >= s.Count {
			st.done = true
		}
		return true
	default: // TriggerProb
		return st.rand.Float64() < s.P
	}
}

// record appends to the bounded trace and counts.
func (in *Injector) record(k Kind, now int64) {
	in.stats.Injected++
	in.stats.ByKind[k]++
	if len(in.trace) < traceLimit {
		in.trace = append(in.trace, Event{Kind: k, At: now})
	}
}

// Trace returns the recorded events (capped at traceLimit; Stats carries
// the exact totals). The slice is the injector's own — callers must not
// mutate it.
func (in *Injector) Trace() []Event {
	if in == nil {
		return nil
	}
	return in.trace
}

// Stats returns the fire counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// transientError marks an error as transient for flight.IsTransient-style
// classification (interface{ Transient() bool }).
type transientError struct{ err error }

func (e transientError) Error() string   { return e.err.Error() }
func (e transientError) Unwrap() error   { return e.err }
func (e transientError) Transient() bool { return true }

// Transient wraps err as a transient (retryable) failure.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err: err}
}
