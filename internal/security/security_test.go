package security

import (
	"testing"

	"repro/internal/dram"
)

const ms = dram.Millisecond

func TestViolationAtThreshold(t *testing.T) {
	m := NewMonitor(100, 64*ms)
	row := dram.Row(7)
	// The monitor promotes a row to exact tracking only at the T_RH/4
	// coarse floor, so its exact count lags the true count by at most 25
	// here: 130 true ACTs guarantee a detected violation.
	var flaggedAt int
	for i := 0; i < 130; i++ {
		m.RecordACT(row, dram.PS(i)*1000)
		if m.Violated() && flaggedAt == 0 {
			flaggedAt = i + 1
		}
	}
	if !m.Violated() {
		t.Fatal("130 ACTs within window not flagged at T_RH=100")
	}
	if flaggedAt < 100 {
		t.Fatalf("flagged at true count %d, before the threshold", flaggedAt)
	}
	v := m.Violations()[0]
	if v.Row != row || v.Count < 100 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestNoViolationBelowThreshold(t *testing.T) {
	m := NewMonitor(100, 64*ms)
	for i := 0; i < 99; i++ {
		m.RecordACT(dram.Row(7), dram.PS(i)*1000)
	}
	if m.Violated() {
		t.Fatal("99 ACTs flagged at T_RH=100")
	}
	// The reported max is a lower bound: above the promotion point but
	// never above the true count.
	if row, n := m.MaxWindowCount(); row != 7 || n > 99 || n < 99-25 {
		t.Fatalf("max window = %d@%d", n, row)
	}
}

func TestSlidingWindowExpiry(t *testing.T) {
	m := NewMonitor(100, 10*ms)
	row := dram.Row(3)
	// 60 ACTs early, 60 ACTs much later: never 100 within any 10ms window.
	for i := 0; i < 60; i++ {
		m.RecordACT(row, dram.PS(i)*1000)
	}
	for i := 0; i < 60; i++ {
		m.RecordACT(row, 20*ms+dram.PS(i)*1000)
	}
	if m.Violated() {
		t.Fatal("expired activations counted")
	}
}

func TestStraddlingWindowDetected(t *testing.T) {
	// 60 ACTs just before a window boundary plus 60 just after must be
	// caught: the attack the paper's half-threshold tracker provisioning
	// targets (property P1).
	m := NewMonitor(100, 10*ms)
	row := dram.Row(3)
	// 80 + 80 ACTs 2ms apart: 160 land inside one 10ms window. The
	// monitor promotes the row to exact tracking at the T_RH/4 = 25th
	// ACT, so its lower bound still comfortably crosses 100.
	for i := 0; i < 80; i++ {
		m.RecordACT(row, 9*ms+dram.PS(i)*1000)
	}
	for i := 0; i < 80; i++ {
		m.RecordACT(row, 11*ms+dram.PS(i)*1000)
	}
	if !m.Violated() {
		t.Fatal("boundary-straddling hammering missed")
	}
}

func TestColdRowsStayCheap(t *testing.T) {
	m := NewMonitor(1000, 64*ms)
	// Touch many rows a few times each: none should be promoted to exact
	// tracking (floor is T_RH/4 = 250).
	for r := 0; r < 10000; r++ {
		for i := 0; i < 3; i++ {
			m.RecordACT(dram.Row(r), dram.PS(r*10+i))
		}
	}
	if n := len(m.HotRows()); n != 0 {
		t.Fatalf("%d cold rows promoted", n)
	}
	if m.TotalACTs() != 30000 {
		t.Fatalf("acts = %d", m.TotalACTs())
	}
}

func TestPromotionFloor(t *testing.T) {
	m := NewMonitor(100, 64*ms) // floor = 25
	row := dram.Row(5)
	for i := 0; i < 30; i++ {
		m.RecordACT(row, dram.PS(i)*1000)
	}
	hot := m.HotRows()
	if len(hot) != 1 || hot[0] != row {
		t.Fatalf("hot rows = %v", hot)
	}
	if m.PeakWindowCount(row) == 0 {
		t.Fatal("no peak recorded for hot row")
	}
}

func TestAttachObservesRankACTs(t *testing.T) {
	geom := dram.Geometry{Banks: 2, RowsPerBank: 64, RowBytes: 512, LineBytes: 64}
	rank := dram.NewRank(geom, dram.DDR4())
	m := NewMonitor(10, 64*ms)
	m.Attach(rank)
	a, b := geom.RowOf(0, 1), geom.RowOf(0, 2)
	at := dram.PS(0)
	for i := 0; i < 12; i++ { // alternate: every access activates
		done, _ := rank.Access(a, false, at)
		done2, _ := rank.Access(b, false, done)
		at = done2
	}
	if !m.Violated() {
		t.Fatal("monitor attached to rank missed hammering")
	}
}

func TestReset(t *testing.T) {
	m := NewMonitor(10, 64*ms)
	for i := 0; i < 20; i++ {
		m.RecordACT(dram.Row(1), dram.PS(i))
	}
	m.Reset()
	if m.Violated() || m.TotalACTs() != 0 || len(m.HotRows()) != 0 {
		t.Fatal("reset incomplete")
	}
	if _, n := m.MaxWindowCount(); n != 0 {
		t.Fatal("max not reset")
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	m := NewMonitor(100, 10*ms)
	m.RecordACT(dram.Row(1), 40*ms)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time reversal")
		}
	}()
	m.RecordACT(dram.Row(1), 5*ms)
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMonitor(1, 64*ms) },
		func() { NewMonitor(100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestThresholdAccessor(t *testing.T) {
	if m := NewMonitor(123, 64*ms); m.Threshold() != 123 {
		t.Fatal("threshold accessor")
	}
}
