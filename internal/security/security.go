// Package security implements the Rowhammer security monitor: an oracle
// that watches every physical-row activation and reports whether any row
// ever receives T_RH or more activations within a sliding 64ms refresh
// window — the paper's sole security assumption (Section VI).
//
// The monitor is exact for hot rows: it keeps full activation timestamp
// queues for rows whose recent activity could plausibly approach the
// threshold, and cheap epoch counters for everything else. Adversarial
// tests attach it to a dram.Rank and assert Violations() == 0 for protected
// configurations, and > 0 when attacks run against undefended memory.
package security

import (
	"fmt"
	"sort"

	"repro/internal/dram"
)

// Violation records one detected Rowhammer condition.
type Violation struct {
	Row   dram.Row
	Count int     // activations within the window
	At    dram.PS // time of the activation that crossed the threshold
}

// Monitor is the sliding-window activation oracle. Not safe for concurrent
// use.
type Monitor struct {
	trh    int
	window dram.PS

	// hot holds exact timestamp queues for rows under scrutiny. A row is
	// promoted to hot once its coarse per-window count crosses trackFloor.
	hot        map[dram.Row][]dram.PS
	trackFloor int

	// coarse per-half-window counts used only to decide promotion; counts
	// are kept for the current and previous half windows, so any row that
	// could reach trackFloor activations in a full window is promoted no
	// later than activation number trackFloor.
	halfIdx  int64
	cur      map[dram.Row]int
	prev     map[dram.Row]int
	hotPeak  map[dram.Row]int
	maxCount int
	maxRow   dram.Row

	violations []Violation
	acts       int64
}

// NewMonitor builds a monitor for a Rowhammer threshold of trh activations
// per window (typically 64ms).
func NewMonitor(trh int, window dram.PS) *Monitor {
	if trh < 2 {
		panic("security: threshold must be >= 2")
	}
	if window <= 0 {
		panic("security: window must be positive")
	}
	floor := trh / 4
	if floor < 1 {
		floor = 1
	}
	return &Monitor{
		trh:        trh,
		window:     window,
		trackFloor: floor,
		hot:        make(map[dram.Row][]dram.PS),
		cur:        make(map[dram.Row]int),
		prev:       make(map[dram.Row]int),
		hotPeak:    make(map[dram.Row]int),
	}
}

// Attach registers the monitor on a rank so every committed ACT is observed.
func (m *Monitor) Attach(r *dram.Rank) {
	r.Listen(m.RecordACT)
}

// RecordACT observes one activation of a physical row at the given time.
func (m *Monitor) RecordACT(row dram.Row, at dram.PS) {
	m.acts++

	// Roll the coarse half-window counters forward.
	half := at / (m.window / 2)
	switch {
	case half == m.halfIdx:
	case half == m.halfIdx+1:
		m.prev, m.cur = m.cur, m.prev
		clear(m.cur)
		m.halfIdx = half
	case half > m.halfIdx+1:
		clear(m.prev)
		clear(m.cur)
		m.halfIdx = half
	default:
		panic(fmt.Sprintf("security: time went backwards: %d then %d", m.halfIdx, half))
	}

	if q, tracked := m.hot[row]; tracked {
		// Exact sliding window: drop timestamps older than `window`.
		cutoff := at - m.window
		i := 0
		for i < len(q) && q[i] <= cutoff {
			i++
		}
		q = append(q[i:], at)
		m.hot[row] = q
		n := len(q)
		if n > m.hotPeak[row] {
			m.hotPeak[row] = n
		}
		if n > m.maxCount {
			m.maxCount = n
			m.maxRow = row
		}
		if n >= m.trh {
			m.violations = append(m.violations, Violation{Row: row, Count: n, At: at})
		}
		return
	}

	m.cur[row]++
	if m.cur[row]+m.prev[row] >= m.trackFloor {
		// Promote: seed the exact queue with the activation we know about.
		// Earlier activations are not reconstructed; the promotion floor
		// (trh/4) means at most trh/2 activations across two half-windows
		// are unaccounted, so the monitor remains sound for detecting
		// violations (it can only undercount, never overcount) while the
		// MaxWindowCount lower bound stays within trh/2 of truth.
		m.hot[row] = append(m.hot[row], at)
	}
}

// Violations returns all recorded violations.
func (m *Monitor) Violations() []Violation { return m.violations }

// Violated reports whether any row crossed the threshold.
func (m *Monitor) Violated() bool { return len(m.violations) > 0 }

// MaxWindowCount returns the highest exact sliding-window activation count
// observed for any hot row, and that row. It is a lower bound on the true
// maximum (cold rows are counted coarsely), tight for any row that is
// actually being hammered.
func (m *Monitor) MaxWindowCount() (dram.Row, int) { return m.maxRow, m.maxCount }

// HotRows returns the rows currently under exact tracking, sorted.
func (m *Monitor) HotRows() []dram.Row {
	rows := make([]dram.Row, 0, len(m.hot))
	for r := range m.hot {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// PeakWindowCount returns the peak sliding-window count seen for a row (0
// if the row never became hot).
func (m *Monitor) PeakWindowCount(row dram.Row) int { return m.hotPeak[row] }

// TotalACTs returns the number of activations observed.
func (m *Monitor) TotalACTs() int64 { return m.acts }

// Threshold returns the configured T_RH.
func (m *Monitor) Threshold() int { return m.trh }

// Reset clears all state (between experiments).
func (m *Monitor) Reset() {
	clear(m.hot)
	clear(m.cur)
	clear(m.prev)
	clear(m.hotPeak)
	m.halfIdx = 0
	m.maxCount = 0
	m.maxRow = 0
	m.violations = nil
	m.acts = 0
}
