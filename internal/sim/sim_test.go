package sim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/workload"
)

// fastCfg uses a 2ms window so tests stay quick; geometry stays the
// baseline so the engines' layout math is exercised for real.
func fastCfg(scheme Scheme) Config {
	return Config{TRH: 1000, Scheme: scheme, Monitor: true}
}

func xzStreams(t *testing.T, reqs int64) []cpu.Stream {
	t.Helper()
	spec, ok := workload.ByName("xz")
	if !ok {
		t.Fatal("xz spec missing")
	}
	region := VisibleRegion(Config{})
	return WorkloadStreams(spec, region, 4, reqs, 1, workload.Params{})
}

func TestSchemeStrings(t *testing.T) {
	names := map[Scheme]string{
		SchemeBaseline:      "baseline",
		SchemeAquaSRAM:      "aqua-sram",
		SchemeAquaMemMapped: "aqua-memmapped",
		SchemeRRS:           "rrs",
		SchemeBlockhammer:   "blockhammer",
		SchemeVictimRefresh: "victim-refresh",
		Scheme(99):          "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func TestVisibleRegionReservesRows(t *testing.T) {
	region := VisibleRegion(Config{})
	if region.VisibleRowsPerBank <= 0 ||
		region.VisibleRowsPerBank >= dram.Baseline().RowsPerBank {
		t.Fatalf("visible rows/bank = %d", region.VisibleRowsPerBank)
	}
}

func TestRunCompletesAndReports(t *testing.T) {
	sys := NewSystem(fastCfg(SchemeBaseline), xzStreams(t, 2000))
	res := sys.Run(0)
	if res.Requests != 4*2000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %g", res.IPC)
	}
	if res.SimTime <= 0 {
		t.Fatal("no simulated time")
	}
	if res.Violated {
		t.Fatal("xz violated T_RH=1000 in a tiny run")
	}
}

func TestRunUntilBoundsTime(t *testing.T) {
	sys := NewSystem(fastCfg(SchemeBaseline), xzStreams(t, 1_000_000))
	res := sys.Run(1 * dram.Millisecond)
	if res.SimTime > 1*dram.Millisecond {
		t.Fatalf("sim time %d exceeded bound", res.SimTime)
	}
	if res.Requests == 0 {
		t.Fatal("nothing ran")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		sys := NewSystem(fastCfg(SchemeAquaMemMapped), xzStreams(t, 3000))
		return sys.Run(0)
	}
	a, b := run(), run()
	if a.SimTime != b.SimTime || a.IPC != b.IPC ||
		a.MitStats.Mitigations != b.MitStats.Mitigations {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestAllSchemesConstruct(t *testing.T) {
	for _, s := range []Scheme{
		SchemeBaseline, SchemeAquaSRAM, SchemeAquaMemMapped,
		SchemeRRS, SchemeBlockhammer, SchemeVictimRefresh,
	} {
		sys := NewSystem(fastCfg(s), xzStreams(t, 200))
		res := sys.Run(0)
		if res.Requests == 0 {
			t.Errorf("%s: no requests", s)
		}
		if s == SchemeAquaSRAM || s == SchemeAquaMemMapped {
			if sys.Aqua == nil {
				t.Errorf("%s: Aqua engine not exposed", s)
			}
		}
	}
}

func TestStreamCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSystem(fastCfg(SchemeBaseline), xzStreams(t, 10)[:2])
}

func TestCaseNames(t *testing.T) {
	all := AllCaseNames()
	if len(all) != 34 {
		t.Fatalf("%d cases, want 34", len(all))
	}
	if len(SPECCaseNames()) != 18 {
		t.Fatal("SPEC case count")
	}
	if all[0] != "lbm" || all[18] != "mix01" {
		t.Fatalf("ordering: %v", all[:20])
	}
}

func TestCaseSpecsResolvesMixes(t *testing.T) {
	specs, err := caseSpecs("mix03")
	if err != nil || len(specs) != 4 {
		t.Fatalf("mix03: %v, %v", specs, err)
	}
	if _, err := caseSpecs("nope"); err == nil {
		t.Fatal("ghost workload resolved")
	}
}

func TestRunnerGridSmallWindow(t *testing.T) {
	r := NewRunner(ExpConfig{Window: 500 * dram.Microsecond, Calibrate: false})
	grid, err := r.RunGrid([]string{"xz", "wrf"}, []GridCell{
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0].Cells) != 1 {
		t.Fatalf("grid shape: %+v", grid)
	}
	for _, g := range grid {
		c := g.Cells[0]
		if c.NormIPC <= 0 || c.NormIPC > 1.2 {
			t.Errorf("%s norm IPC = %g", g.Workload, c.NormIPC)
		}
	}
}

func TestRunnerSingleRun(t *testing.T) {
	r := NewRunner(ExpConfig{Window: 500 * dram.Microsecond, Calibrate: false})
	run, err := r.Run("xz", SchemeBaseline, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if run.NormIPC != 1 {
		t.Fatalf("baseline norm = %g", run.NormIPC)
	}
	if _, err := r.Run("ghost", SchemeRRS, 1000); err == nil {
		t.Fatal("ghost workload ran")
	}
}

func TestRowTierCounts(t *testing.T) {
	r := NewRunner(ExpConfig{Window: 2 * dram.Millisecond, Calibrate: false})
	counts, err := r.RowTierCounts("gcc", []int64{166, 500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if counts[166] < counts[500] || counts[500] < counts[1000] {
		t.Fatalf("tier counts not cumulative: %v", counts)
	}
	if counts[166] == 0 {
		t.Fatal("gcc produced no 166+ rows")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	sys := NewSystem(fastCfg(SchemeAquaMemMapped), xzStreams(t, 3000))
	res := sys.Run(0)
	bd := BreakdownOf(res)
	sum := bd.BloomFiltered + bd.CacheHit + bd.Singleton + bd.DRAM
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %g", sum)
	}
}

func TestReqsForInstructions(t *testing.T) {
	spec, _ := workload.ByName("lbm") // MPKI 20.9
	if got := ReqsForInstructions(spec, 1_000_000); got != 20900 {
		t.Fatalf("reqs = %d", got)
	}
	tiny, _ := workload.ByName("povray")
	if got := ReqsForInstructions(tiny, 10); got != 1 {
		t.Fatalf("floor = %d", got)
	}
}

func TestTrackerKindsRun(t *testing.T) {
	for _, kind := range []TrackerKind{TrackerMisraGries, TrackerHydra, TrackerExact} {
		cfg := fastCfg(SchemeAquaMemMapped)
		cfg.Tracker = kind
		sys := NewSystem(cfg, xzStreams(t, 500))
		res := sys.Run(0)
		if res.Requests == 0 {
			t.Errorf("tracker %d: no requests", kind)
		}
		if res.Violated {
			t.Errorf("tracker %d: violated", kind)
		}
	}
}

func TestStructureOverridesApply(t *testing.T) {
	cfg := fastCfg(SchemeAquaMemMapped)
	cfg.BloomGroupSize = 32
	cfg.FPTCacheEntries = 2048
	sys := NewSystem(cfg, xzStreams(t, 200))
	if sys.Aqua.BloomFilter().GroupSize() != 32 {
		t.Fatal("bloom group override ignored")
	}
	sys.Run(0)
}

func TestRunVariantNormalizes(t *testing.T) {
	r := NewRunner(ExpConfig{Window: 500 * dram.Microsecond, Calibrate: false})
	run, err := r.RunVariant("xz", SchemeAquaMemMapped, 1000, Config{BloomGroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if run.NormIPC <= 0 || run.NormIPC > 1.2 {
		t.Fatalf("norm IPC = %g", run.NormIPC)
	}
}

func TestDRAMPowerReported(t *testing.T) {
	sys := NewSystem(fastCfg(SchemeBaseline), xzStreams(t, 2000))
	res := sys.Run(0)
	if res.DRAMPowerMW <= 0 {
		t.Fatalf("DRAM power = %g", res.DRAMPowerMW)
	}
}

func TestCoRunReportsAllLegs(t *testing.T) {
	spec, _ := workload.ByName("xz")
	res, err := CoRun(SchemeAquaSRAM, 1000, spec, 300*dram.Microsecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloVictimIPC <= 0 || res.BaselineVictimIPC <= 0 || res.VictimIPC <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	if res.Scheme != SchemeAquaSRAM {
		t.Fatal("scheme not recorded")
	}
	if _, err := CoRun(SchemeAquaSRAM, 1000, spec, 0, 3); err == nil {
		t.Fatal("zero window accepted")
	}
}
