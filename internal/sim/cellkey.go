package sim

// Content-addressed cell caching (see DESIGN.md "Result cache &
// incremental recomputation"). Every grid cell is a pure function of the
// experiment configuration, so its result can be stored under a hash of
// that configuration and served on any later run — across processes,
// unlike the checkpoint, which binds one file to one run configuration.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cellcache"
)

// SchemaVersion names the generation of simulation semantics that cached
// cell results belong to. Bump it whenever a change alters any simulated
// number — timing model, scheme behaviour, workload synthesis, the
// request-budget formula — and every previously written entry hashes to
// a key no runner will ever ask for again: stale results cannot be
// served, only ignored.
const SchemaVersion = "aqua-cell-v1"

// CellKey returns the content-addressed cache key for one grid cell: a
// SHA-256 over the schema version, every ExpConfig field that determines
// simulated numbers (window, cores, seed, calibration, geometry,
// timing), the cell identity, and the per-core workload specs with their
// static request budgets.
//
// Two deliberate exclusions: Parallel and Retries change wall-clock and
// recovery only, never results; and fault rules are omitted because a
// cell matched by a rule bypasses the cache entirely (see RunCtx) while
// an unmatched cell is bit-identical to its fault-free run — so clean
// cells are shared between faulted and fault-free invocations.
//
// The request budget is recorded at nominal IPC 1.0. The calibrated
// budget scales with the measured baseline IPC, which is itself a
// deterministic function of everything already hashed, so the static
// budget pins it transitively.
func (r *Runner) CellKey(name string, scheme Scheme, trh int64) (string, error) {
	return r.cellKeyAt(SchemaVersion, name, scheme, trh)
}

// cellKeyAt is CellKey under an explicit schema version (tests derive
// old-generation keys with it to prove a bump invalidates).
//
// The aquakey:hash annotation is the keycoverage analyzer's contract:
// every field of ExpConfig and workload.Spec must be hashed below or
// carry an //aquakey:exclude on its declaration.
//
//aquakey:hash ExpConfig workload.Spec
func (r *Runner) cellKeyAt(version, name string, scheme Scheme, trh int64) (string, error) {
	specs, err := caseSpecs(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", version)
	fmt.Fprintf(&b, "window=%d cores=%d seed=%#x calibrate=%t\n",
		r.cfg.Window, r.cfg.Cores, r.cfg.Seed, r.cfg.Calibrate)
	fmt.Fprintf(&b, "geom=%+v\n", r.cfg.Geometry)
	fmt.Fprintf(&b, "timing=%+v\n", r.cfg.Timing)
	fmt.Fprintf(&b, "cell=%s/%s/%d\n", name, scheme, trh)
	windowInstr := float64(r.cfg.Window) / 1e12 * 3e9
	for i := 0; i < r.cfg.Cores && i < len(specs); i++ {
		sp := specs[i]
		fmt.Fprintf(&b, "core%d spec=%s mpki=%g rows=%d/%d/%d budget=%d\n",
			i, sp.Name, sp.MPKI, sp.Rows166, sp.Rows500, sp.Rows1K,
			int64(windowInstr*sp.MPKI/1000)+16)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// AttachCellCache attaches a content-addressed store: clean completed
// cells are served from it without constructing a System and written
// back to it as they complete. Fault-injected and cancelled cells never
// enter the store. Pass nil to detach.
func (r *Runner) AttachCellCache(s *cellcache.Store) { r.cells = s }

// CellLeaser lifts singleflight semantics to the cache layer: where the
// in-process flight.Group coalesces concurrent callers inside one
// Runner, a leaser coordinates Runners in different processes sharing a
// cache directory (cellcache leases are one implementation; the farm
// wraps them with its clock and backoff). The Runner stays clock-free —
// how long Wait blocks, and whether it does at all, is the leaser's
// business.
type CellLeaser interface {
	// Claim tries to acquire the compute lease for the content-addressed
	// cache key, reporting whether the caller should simulate the cell.
	// False means another owner holds a live lease.
	Claim(key string) bool
	// Wait blocks until the lease for key may have changed hands (the
	// holder finished, released, or expired), or ctx ends; it returns
	// ctx.Err() on cancellation and nil otherwise. Implementations
	// choose the polling or notification strategy.
	Wait(ctx context.Context, key string) error
	// Release drops a lease acquired by Claim once the result has been
	// stored (or the attempt failed). Releasing an expired/lost lease
	// must be a harmless no-op.
	Release(key string)
}

// AttachLeaser attaches the cross-process compute coordinator. It only
// takes effect alongside an attached cell cache — without a store to
// poll, waiting on another process's lease could never observe its
// result. Pass nil to detach. Attach before any cells run; the field is
// read concurrently afterwards.
func (r *Runner) AttachLeaser(l CellLeaser) { r.leaser = l }

// awaitLease is the lease protocol around one missed cell: claim, and
// while another owner holds the lease, wait and re-poll the store. It
// returns (run, true, nil) when the cell landed in the store while
// waiting, (zero, false, nil) when the lease was acquired — the caller
// must simulate and then Release — and an error only on cancellation.
func (r *Runner) awaitLease(ctx context.Context, key cellKey, hash string) (WorkloadRun, bool, error) {
	for {
		if r.leaser.Claim(hash) {
			return WorkloadRun{}, false, nil
		}
		r.mu.Lock()
		r.cellStats.LeaseWaits++
		r.mu.Unlock()
		if err := r.leaser.Wait(ctx, hash); err != nil {
			return WorkloadRun{}, false, err
		}
		if run, ok := r.cacheLookup(key); ok {
			r.mu.Lock()
			r.cellStats.CacheHits++
			r.cellStats.LeaseHits++
			r.cellMemo[key] = run
			r.mu.Unlock()
			return run, true, nil
		}
	}
}

// CellStats summarizes how RunCtx requests for cacheable (fault-free)
// cells were satisfied. Checkpoint-served cells are counted separately
// by CheckpointHits; fault-injected cells bypass this accounting.
type CellStats struct {
	// Requests is the number of cacheable cell requests.
	Requests int64
	// CacheHits were served from the attached content-addressed cache.
	CacheHits int64
	// CacheMisses consulted the attached cache and missed.
	CacheMisses int64
	// Simulated cells were actually run.
	Simulated int64
	// Errors is the number of requests that failed.
	Errors int64
	// LeaseWaits counts times a cell found another process's live compute
	// lease and waited instead of simulating.
	LeaseWaits int64
	// LeaseHits counts waits that ended with the other process's result
	// served from the store — cross-process dedup. Each is also counted
	// in CacheHits (it is one).
	LeaseHits int64
	// TraceCaptures counts workload core-streams generated once and
	// packed into the capture/replay tier (tracetier.go), including
	// captures that spilled to disk or ran over budget and were served
	// uncached.
	TraceCaptures int64
	// TraceReplays counts core-streams served by replaying a captured
	// trace instead of running the generator — every stream build after
	// a workload's first touch.
	TraceReplays int64
	// TraceDiskHits counts replays served from a memory-mapped v2 trace
	// file under the cell cache directory rather than the in-memory
	// packed tier. Each is also counted in TraceReplays.
	TraceDiskHits int64
}

// Deduped is the number of requests served from an identical cell
// already resolved in this run — the in-memory memo or a coalesced
// in-flight execution — rather than from the cache or a fresh
// simulation.
func (s CellStats) Deduped() int64 {
	d := s.Requests - s.CacheHits - s.Simulated - s.Errors
	if d < 0 {
		d = 0
	}
	return d
}

// CellStats returns a snapshot of the Runner's cell-request counters.
func (r *Runner) CellStats() CellStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cellStats
}

// cacheLookup decodes a stored cell. Any defect — undecodable payload,
// identity mismatch — reads as a miss, never an error or a wrong result.
func (r *Runner) cacheLookup(key cellKey) (WorkloadRun, bool) {
	hash, err := r.CellKey(key.workload, key.scheme, key.trh)
	if err != nil {
		return WorkloadRun{}, false
	}
	data, ok := r.cells.Get(hash)
	if !ok {
		return WorkloadRun{}, false
	}
	var run WorkloadRun
	if err := json.Unmarshal(data, &run); err != nil {
		return WorkloadRun{}, false
	}
	if run.Workload != key.workload || run.Scheme != key.scheme || run.TRH != key.trh {
		return WorkloadRun{}, false
	}
	return run, true
}

// cacheStore writes a clean completed cell. encoding/json round-trips
// float64 exactly, so a later run serving this entry renders the same
// bytes an uncached run would.
func (r *Runner) cacheStore(key cellKey, run WorkloadRun) {
	hash, err := r.CellKey(key.workload, key.scheme, key.trh)
	if err != nil {
		return
	}
	data, err := json.Marshal(run)
	if err != nil {
		return
	}
	r.cells.Put(hash, data)
}
