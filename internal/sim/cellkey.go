package sim

// Content-addressed cell caching (see DESIGN.md "Result cache &
// incremental recomputation"). Every grid cell is a pure function of the
// experiment configuration, so its result can be stored under a hash of
// that configuration and served on any later run — across processes,
// unlike the checkpoint, which binds one file to one run configuration.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cellcache"
)

// SchemaVersion names the generation of simulation semantics that cached
// cell results belong to. Bump it whenever a change alters any simulated
// number — timing model, scheme behaviour, workload synthesis, the
// request-budget formula — and every previously written entry hashes to
// a key no runner will ever ask for again: stale results cannot be
// served, only ignored.
const SchemaVersion = "aqua-cell-v1"

// CellKey returns the content-addressed cache key for one grid cell: a
// SHA-256 over the schema version, every ExpConfig field that determines
// simulated numbers (window, cores, seed, calibration, geometry,
// timing), the cell identity, and the per-core workload specs with their
// static request budgets.
//
// Two deliberate exclusions: Parallel and Retries change wall-clock and
// recovery only, never results; and fault rules are omitted because a
// cell matched by a rule bypasses the cache entirely (see RunCtx) while
// an unmatched cell is bit-identical to its fault-free run — so clean
// cells are shared between faulted and fault-free invocations.
//
// The request budget is recorded at nominal IPC 1.0. The calibrated
// budget scales with the measured baseline IPC, which is itself a
// deterministic function of everything already hashed, so the static
// budget pins it transitively.
func (r *Runner) CellKey(name string, scheme Scheme, trh int64) (string, error) {
	return r.cellKeyAt(SchemaVersion, name, scheme, trh)
}

// cellKeyAt is CellKey under an explicit schema version (tests derive
// old-generation keys with it to prove a bump invalidates).
//
// The aquakey:hash annotation is the keycoverage analyzer's contract:
// every field of ExpConfig and workload.Spec must be hashed below or
// carry an //aquakey:exclude on its declaration.
//
//aquakey:hash ExpConfig workload.Spec
func (r *Runner) cellKeyAt(version, name string, scheme Scheme, trh int64) (string, error) {
	specs, err := caseSpecs(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", version)
	fmt.Fprintf(&b, "window=%d cores=%d seed=%#x calibrate=%t\n",
		r.cfg.Window, r.cfg.Cores, r.cfg.Seed, r.cfg.Calibrate)
	fmt.Fprintf(&b, "geom=%+v\n", r.cfg.Geometry)
	fmt.Fprintf(&b, "timing=%+v\n", r.cfg.Timing)
	fmt.Fprintf(&b, "cell=%s/%s/%d\n", name, scheme, trh)
	windowInstr := float64(r.cfg.Window) / 1e12 * 3e9
	for i := 0; i < r.cfg.Cores && i < len(specs); i++ {
		sp := specs[i]
		fmt.Fprintf(&b, "core%d spec=%s mpki=%g rows=%d/%d/%d budget=%d\n",
			i, sp.Name, sp.MPKI, sp.Rows166, sp.Rows500, sp.Rows1K,
			int64(windowInstr*sp.MPKI/1000)+16)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// AttachCellCache attaches a content-addressed store: clean completed
// cells are served from it without constructing a System and written
// back to it as they complete. Fault-injected and cancelled cells never
// enter the store. Pass nil to detach.
func (r *Runner) AttachCellCache(s *cellcache.Store) { r.cells = s }

// CellStats summarizes how RunCtx requests for cacheable (fault-free)
// cells were satisfied. Checkpoint-served cells are counted separately
// by CheckpointHits; fault-injected cells bypass this accounting.
type CellStats struct {
	// Requests is the number of cacheable cell requests.
	Requests int64
	// CacheHits were served from the attached content-addressed cache.
	CacheHits int64
	// CacheMisses consulted the attached cache and missed.
	CacheMisses int64
	// Simulated cells were actually run.
	Simulated int64
	// Errors is the number of requests that failed.
	Errors int64
}

// Deduped is the number of requests served from an identical cell
// already resolved in this run — the in-memory memo or a coalesced
// in-flight execution — rather than from the cache or a fresh
// simulation.
func (s CellStats) Deduped() int64 {
	d := s.Requests - s.CacheHits - s.Simulated - s.Errors
	if d < 0 {
		d = 0
	}
	return d
}

// CellStats returns a snapshot of the Runner's cell-request counters.
func (r *Runner) CellStats() CellStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cellStats
}

// cacheLookup decodes a stored cell. Any defect — undecodable payload,
// identity mismatch — reads as a miss, never an error or a wrong result.
func (r *Runner) cacheLookup(key cellKey) (WorkloadRun, bool) {
	hash, err := r.CellKey(key.workload, key.scheme, key.trh)
	if err != nil {
		return WorkloadRun{}, false
	}
	data, ok := r.cells.Get(hash)
	if !ok {
		return WorkloadRun{}, false
	}
	var run WorkloadRun
	if err := json.Unmarshal(data, &run); err != nil {
		return WorkloadRun{}, false
	}
	if run.Workload != key.workload || run.Scheme != key.scheme || run.TRH != key.trh {
		return WorkloadRun{}, false
	}
	return run, true
}

// cacheStore writes a clean completed cell. encoding/json round-trips
// float64 exactly, so a later run serving this entry renders the same
// bytes an uncached run would.
func (r *Runner) cacheStore(key cellKey, run WorkloadRun) {
	hash, err := r.CellKey(key.workload, key.scheme, key.trh)
	if err != nil {
		return
	}
	data, err := json.Marshal(run)
	if err != nil {
		return
	}
	r.cells.Put(hash, data)
}
