package sim

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentSystemsIndependent drives two identically-configured
// systems through RunCtx concurrently. Each System owns its whole stack —
// event calendar, rank, tracker, cores — so parallel runs must neither
// trip the race detector (this test is part of `make race`) nor perturb
// each other's results; a serially-run third copy pins the expected
// Result both concurrent runs must reproduce exactly.
func TestConcurrentSystemsIndependent(t *testing.T) {
	build := func() *System {
		return NewSystem(fastCfg(SchemeAquaMemMapped), xzStreams(t, 3000))
	}
	want := build().Run(0)

	sysA, sysB := build(), build()
	var (
		wg         sync.WaitGroup
		resA, resB Result
		errA, errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		resA, errA = sysA.RunCtx(context.Background(), 0)
	}()
	go func() {
		defer wg.Done()
		resB, errB = sysB.RunCtx(context.Background(), 0)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("concurrent runs errored: %v, %v", errA, errB)
	}
	if resA != want {
		t.Errorf("concurrent run A diverged:\n got %+v\nwant %+v", resA, want)
	}
	if resB != want {
		t.Errorf("concurrent run B diverged:\n got %+v\nwant %+v", resB, want)
	}
}
