package sim

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cellcache"
)

// scriptLeaser is a CellLeaser with a scripted Claim sequence and an
// optional onWait hook that simulates "the other process finished while
// we waited".
type scriptLeaser struct {
	mu       sync.Mutex
	claims   []bool // answers for successive Claim calls; exhausted = true
	claimed  []string
	released []string
	waits    int
	onWait   func()
}

func (l *scriptLeaser) Claim(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.claimed = append(l.claimed, key)
	if len(l.claims) == 0 {
		return true
	}
	ok := l.claims[0]
	l.claims = l.claims[1:]
	return ok
}

func (l *scriptLeaser) Wait(ctx context.Context, key string) error {
	l.mu.Lock()
	l.waits++
	hook := l.onWait
	l.mu.Unlock()
	if hook != nil {
		hook()
	}
	return ctx.Err()
}

func (l *scriptLeaser) Release(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.released = append(l.released, key)
}

// TestLeaserAcquiredPathSimulatesAndReleases pins the happy path: a
// granted claim simulates the cell and releases the lease afterwards.
func TestLeaserAcquiredPathSimulatesAndReleases(t *testing.T) {
	store, _ := cellcache.New("")
	r := NewRunner(gridCfg(1))
	r.AttachCellCache(store)
	l := &scriptLeaser{}
	r.AttachLeaser(l)
	if _, err := r.Run("xz", SchemeAquaMemMapped, 1000); err != nil {
		t.Fatal(err)
	}
	key, err := r.CellKey("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The scheme cell claims and releases its content-addressed key (the
	// baseline pass is not a cacheable cell and never touches the leaser).
	if len(l.claimed) != 1 || len(l.released) != 1 {
		t.Fatalf("claims=%v releases=%v, want 1 each", l.claimed, l.released)
	}
	if l.claimed[0] != key || l.released[0] != key {
		t.Fatalf("claimed/released %v/%v, want cell key %q", l.claimed, l.released, key)
	}
	st := r.CellStats()
	if st.Simulated != 1 || st.LeaseWaits != 0 {
		t.Fatalf("stats %+v, want 1 simulated, 0 lease waits", st)
	}
}

// TestLeaserLostClaimServesOtherProcessResult pins the dedup path: a
// claim lost to another owner waits, and when the other process's result
// lands in the shared store, it is served without simulating here.
func TestLeaserLostClaimServesOtherProcessResult(t *testing.T) {
	// "Process A" computes the cell in its own store.
	storeA, _ := cellcache.New("")
	rA := NewRunner(gridCfg(1))
	rA.AttachCellCache(storeA)
	want, err := rA.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	key, err := rA.CellKey("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// "Process B" misses its store, loses the claim, and — while it
	// waits — A's result lands in B's store (the shared-directory flow,
	// modelled by the onWait copy). The wait must resolve via the store
	// without B simulating anything.
	storeB, _ := cellcache.New("")
	rB := NewRunner(gridCfg(1))
	rB.AttachCellCache(storeB)
	l := &scriptLeaser{claims: []bool{false}}
	l.onWait = func() {
		if data, ok := storeA.Get(key); ok {
			storeB.Put(key, data)
		}
	}
	rB.AttachLeaser(l)
	got, err := rB.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lease-served run diverged:\n got %+v\nwant %+v", got, want)
	}
	st := rB.CellStats()
	if st.Simulated != 0 {
		t.Fatalf("stats %+v: B simulated despite the lease-holder's result arriving", st)
	}
	if st.LeaseWaits != 1 || st.LeaseHits != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 lease wait resolving as 1 lease/cache hit", st)
	}
	if len(l.released) != 0 {
		t.Fatalf("B released leases it never acquired: %v", l.released)
	}
}

// TestLeaserWaitCancellation: a wait that outlives the job's context
// returns the context error instead of spinning.
func TestLeaserWaitCancellation(t *testing.T) {
	store, _ := cellcache.New("")
	r := NewRunner(gridCfg(1))
	r.AttachCellCache(store)
	ctx, cancel := context.WithCancel(context.Background())
	l := &scriptLeaser{claims: []bool{false, false, false, false}, onWait: cancel}
	r.AttachLeaser(l)
	if _, err := r.RunCtx(ctx, "xz", SchemeAquaMemMapped, 1000); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled from the lease wait", err)
	}
}

// TestOnCellStartFiresPerComputeAttempt: the hook fires once per compute
// attempt — baseline + scheme cell — and never for cells served from the
// memo.
func TestOnCellStartFiresPerComputeAttempt(t *testing.T) {
	cfg := gridCfg(1)
	var mu sync.Mutex
	var starts []string
	cfg.OnCellStart = func(w string, s Scheme, trh int64) {
		mu.Lock()
		starts = append(starts, w+"/"+s.String())
		mu.Unlock()
	}
	r := NewRunner(cfg)
	if _, err := r.Run("xz", SchemeAquaMemMapped, 1000); err != nil {
		t.Fatal(err)
	}
	// One compute attempt for the scheme cell (the baseline pass inside
	// it is shared infrastructure, not a cell).
	if len(starts) != 1 || starts[0] != "xz/aqua-memmapped" {
		t.Fatalf("OnCellStart fired %v, want exactly [xz/aqua-memmapped]", starts)
	}
	// A repeat of the same cell is served from the memo: no new fires.
	if _, err := r.Run("xz", SchemeAquaMemMapped, 1000); err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 {
		t.Fatalf("memo-served cell fired OnCellStart: %v", starts)
	}
	// A different cell fires again.
	if _, err := r.Run("xz", SchemeRRS, 1000); err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 || starts[1] != "xz/rrs" {
		t.Fatalf("second cell: OnCellStart fired %v", starts)
	}
}
