package sim

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/workload"
)

// CoRunResult reports the Section VI-C quality-of-service experiment: one
// core runs the worst-case DoS pattern while the remaining cores run a
// benign workload; the victim cores' IPC under the mitigation, relative to
// their IPC when co-running with the same attacker on an *unprotected*
// system, shows how much extra interference the mitigation's migrations
// add on top of the attack's own bandwidth use.
type CoRunResult struct {
	Scheme Scheme
	// VictimIPC is the benign cores' aggregate IPC with the attacker
	// present, under the scheme.
	VictimIPC float64
	// BaselineVictimIPC is the same with no mitigation.
	BaselineVictimIPC float64
	// SoloVictimIPC is the benign cores' IPC with no attacker and no
	// mitigation (the unloaded reference).
	SoloVictimIPC float64
	// AttackSlowdown is the mitigation-vs-baseline degradation of the
	// victims: BaselineVictimIPC / VictimIPC.
	AttackSlowdown float64
	// Mitigations performed during the co-run.
	Mitigations int64
	// Violated reports the security outcome for the protected run.
	Violated bool
}

// CoRun executes the experiment: `spec` on cores 1..N-1, the rotating DoS
// pattern on core 0, for the given window.
func CoRun(scheme Scheme, trh int64, spec workload.Spec, window dram.PS, seed uint64) (CoRunResult, error) {
	if window <= 0 {
		return CoRunResult{}, fmt.Errorf("sim: co-run window must be positive")
	}
	region := VisibleRegion(Config{})
	params := workload.Params{Cores: 4}

	victimIPC := func(s Scheme, withAttacker bool) (float64, int64, bool, error) {
		cfg := Config{TRH: trh, Scheme: s, Seed: seed, Monitor: true}
		streams := make([]cpu.Stream, 4)
		reqs := int64(float64(window)/1e12*3e9*spec.MPKI/1000) + 16
		if withAttacker {
			streams[0] = attack.NewRotatingDoS(region.Geom, region.VisibleRowsPerBank,
				max64(trh/2, 1), 1<<40)
		} else {
			// An idle-ish core: minimal traffic so the system shape stays
			// comparable.
			gen := workload.NewGenerator(spec, region, 0, seed^0x1d1e, params)
			streams[0] = gen.Stream(reqs, seed)
		}
		for i := 1; i < 4; i++ {
			gen := workload.NewGenerator(spec, region, i, seed, params)
			streams[i] = gen.Stream(reqs, seed+uint64(i)*7919)
		}
		sys := NewSystem(cfg, streams)
		res := sys.Run(window)
		var instr int64
		var end dram.PS
		for _, c := range sys.Cores[1:] {
			instr += c.InstrRetired()
			if c.FinishTime() > end {
				end = c.FinishTime()
			}
		}
		if end > window {
			end = window
		}
		if end <= 0 {
			return 0, 0, false, fmt.Errorf("sim: co-run made no progress")
		}
		cycles := float64(end) / 1e12 * 3e9
		return float64(instr) / cycles / 3, res.MitStats.Mitigations, res.Violated, nil
	}

	solo, _, _, err := victimIPC(SchemeBaseline, false)
	if err != nil {
		return CoRunResult{}, err
	}
	baseAttacked, _, _, err := victimIPC(SchemeBaseline, true)
	if err != nil {
		return CoRunResult{}, err
	}
	prot, mitigations, violated, err := victimIPC(scheme, true)
	if err != nil {
		return CoRunResult{}, err
	}

	r := CoRunResult{
		Scheme:            scheme,
		VictimIPC:         prot,
		BaselineVictimIPC: baseAttacked,
		SoloVictimIPC:     solo,
		Mitigations:       mitigations,
		Violated:          violated,
	}
	if prot > 0 {
		r.AttackSlowdown = baseAttacked / prot
	}
	return r, nil
}
