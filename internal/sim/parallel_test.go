package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dram"
)

// gridCfg is a reduced experiment: tiny window, no calibration, so the
// serial/parallel comparison fits in CI time. (The geometry stays the
// baseline — AQUA's quarantine reservation needs the full bank — so the
// system build dominates; keep the grid small.)
func gridCfg(parallel int) ExpConfig {
	return ExpConfig{
		Window:   150 * dram.PS(dram.Microsecond),
		Parallel: parallel,
	}
}

var (
	gridNames = []string{"xz", "wrf"}
	gridCells = []GridCell{
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
		{Scheme: SchemeRRS, TRH: 1000},
	}
)

func TestRunGridParallelMatchesSerial(t *testing.T) {
	serial, err := NewRunner(gridCfg(1)).RunGrid(gridNames, gridCells)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(gridCfg(4)).RunGrid(gridNames, gridCells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel grid diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for i, gr := range parallel {
		if gr.Workload != gridNames[i] {
			t.Fatalf("grid row %d is %q, want %q (canonical order lost)", i, gr.Workload, gridNames[i])
		}
		if gr.Baseline.IPC <= 0 {
			t.Fatalf("%s: baseline not resolved", gr.Workload)
		}
	}
}

func TestRunGridEmptyCellsStillResolvesBaselines(t *testing.T) {
	out, err := NewRunner(gridCfg(4)).RunGrid(gridNames[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range out {
		if gr.Baseline.IPC <= 0 {
			t.Fatalf("%s: baseline missing with empty cell list", gr.Workload)
		}
		if len(gr.Cells) != 0 {
			t.Fatalf("%s: unexpected cells", gr.Workload)
		}
	}
}

// TestConcurrentRunnerOverlappingCells drives one Runner from many
// goroutines that all want the same workload, so the calibration and
// baseline singleflight paths are exercised under the race detector, and
// checks every caller saw the identical result.
func TestConcurrentRunnerOverlappingCells(t *testing.T) {
	r := NewRunner(gridCfg(4))
	want, err := r.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewRunner(gridCfg(4))
	const callers = 8
	got := make([]WorkloadRun, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = fresh.Run("xz", SchemeAquaMemMapped, 1000)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("caller %d diverged from the serial result", i)
		}
	}
}
