package sim

// Record-once/replay-many workload streams (see DESIGN.md "Trace capture
// & replay"). A workload core-stream is a pure function of (spec, core,
// nominal IPC) under the Runner's fixed region/seed/window — it carries
// addresses and instruction gaps, never timestamps — so one capture
// serves every grid cell sharing the workload regardless of scheme or
// threshold. The first cell to touch a stream runs the generator once
// and packs the records; every cell (including that first one) then
// replays the packed trace, which is several times cheaper per record
// than generation and byte-identical to it (pinned by the golden tests
// and the make trace-smoke equivalence gate).
//
// Tiers: an in-memory packed tier under a byte budget; past the budget,
// captures spill as v2 trace files under the attached cell cache's
// directory and replay from the memory mapping with bounded residency.
// Spilled files are content-addressed over everything the generated
// stream depends on, so a later process replays them without paying for
// generation at all, and a stale file simply lives under a name no
// runner ever asks for.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// defaultTraceBudget bounds the in-memory packed tier when the config
// does not say otherwise: 1 GiB holds the full 64ms four-core window of
// every SPEC workload at ~8.1 bytes/record with room to spare.
const defaultTraceBudget = 1 << 30

// traceBudget returns the effective in-memory capture budget.
func (r *Runner) traceBudget() int64 {
	switch b := r.cfg.TraceBudgetBytes; {
	case b == 0:
		return defaultTraceBudget
	case b < 0:
		return math.MaxInt64
	default:
		return b
	}
}

// replayStream serves one core's stream from the trace tier, capturing
// it first if no tier holds it yet.
func (r *Runner) replayStream(spec workload.Spec, core int, nominal float64, reqs int64) cpu.Stream {
	key := genKey{spec: spec.Name, core: core, nominal: nominal}
	r.mu.Lock()
	if p, ok := r.traceMem[key]; ok {
		r.cellStats.TraceReplays++
		r.mu.Unlock()
		return p.Stream()
	}
	if m, ok := r.traceDisk[key]; ok {
		r.cellStats.TraceReplays++
		r.cellStats.TraceDiskHits++
		r.mu.Unlock()
		return m.Stream(0)
	}
	r.mu.Unlock()

	// Cross-process probe: a spilled capture from an earlier run replays
	// without paying for generation at all. Verify eagerly — a corrupt
	// block discovered lazily mid-simulation could only truncate the
	// stream silently.
	if path := r.tracePath(spec, core, nominal, reqs); path != "" {
		if m, err := trace.OpenFile(path); err == nil {
			if m.Header().Records == reqs && m.Verify() == nil {
				return r.adoptDisk(key, m, true)
			}
			m.Close()
		}
	}

	// Capture: run the generator once, packing its records.
	gen := r.generator(spec, core, nominal)
	p := trace.PackStream(gen.Stream(reqs, r.cfg.Seed+uint64(core)*7919), reqs)

	r.mu.Lock()
	if prior, ok := r.traceMem[key]; ok {
		// Lost the capture race; replay the winner (identical by
		// construction).
		r.cellStats.TraceReplays++
		r.mu.Unlock()
		return prior.Stream()
	}
	r.cellStats.TraceCaptures++
	if r.traceBytes+p.Bytes() <= r.traceBudget() {
		r.traceMem[key] = p
		r.traceBytes += p.Bytes()
		r.mu.Unlock()
		return p.Stream()
	}
	r.mu.Unlock()

	// Over budget: spill to the cell cache's disk tier and replay from
	// the mapping, keeping residency bounded. With no disk tier (or a
	// failed write) the capture is served uncached — later cells capture
	// again rather than blow the budget.
	if path := r.tracePath(spec, core, nominal, reqs); path != "" {
		set := &trace.Set{Cores: []*trace.Packed{p}}
		if err := trace.WriteSetFile(path, set, trace.DefaultBlockTarget); err == nil {
			if m, err := trace.OpenFile(path); err == nil {
				return r.adoptDisk(key, m, false)
			}
		}
	}
	return p.Stream()
}

// adoptDisk installs a verified mapped trace into the disk tier
// (keep-first on a concurrent race) and returns a replay cursor. hit
// marks a stream served from an existing spill — a capture that just
// spilled its own records is already counted as a capture, not a replay.
func (r *Runner) adoptDisk(key genKey, m *trace.MappedSet, hit bool) cpu.Stream {
	var stale *trace.MappedSet
	r.mu.Lock()
	if prior, ok := r.traceDisk[key]; ok {
		// Lost the install race; replay the winner's mapping.
		stale, m = m, prior
	} else {
		r.traceDisk[key] = m
	}
	if hit {
		r.cellStats.TraceReplays++
		r.cellStats.TraceDiskHits++
	}
	r.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	return m.Stream(0)
}

// tracePath returns the spill path for one captured core-stream, "" when
// no disk tier is attached. The name hashes everything the generated
// stream depends on — schema version, window, cores, seed, geometry,
// timing, the spec, the core index, the calibrated nominal IPC, and the
// request budget — mirroring CellKey's contract one level down.
func (r *Runner) tracePath(spec workload.Spec, core int, nominal float64, reqs int64) string {
	dir := r.cells.Dir()
	if dir == "" {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s trace-v2\n", SchemaVersion)
	fmt.Fprintf(&b, "window=%d cores=%d seed=%#x\n", r.cfg.Window, r.cfg.Cores, r.cfg.Seed)
	fmt.Fprintf(&b, "geom=%+v\n", r.cfg.Geometry)
	fmt.Fprintf(&b, "timing=%+v\n", r.cfg.Timing)
	fmt.Fprintf(&b, "spec=%s mpki=%g rows=%d/%d/%d\n",
		spec.Name, spec.MPKI, spec.Rows166, spec.Rows500, spec.Rows1K)
	fmt.Fprintf(&b, "core=%d nominal=%x reqs=%d\n", core, math.Float64bits(nominal), reqs)
	sum := sha256.Sum256([]byte(b.String()))
	sub := filepath.Join(dir, "traces")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return ""
	}
	return filepath.Join(sub, hex.EncodeToString(sum[:16])+".aqt2")
}
