package sim

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/event"
)

// hammerStream emits n requests alternating between two rows (forcing a
// row miss and a fresh activation on every access) with a fixed
// instruction gap. The gap is sized so the core's next issue lands past
// its bank's tRC window and past the parkSpan profitability gate — the
// exact shape tryPark accepts (1500 instr at 2 IPC / 3 GHz = 250 ns,
// versus tRC = 45 ns and parkSpan = 180 ns).
type hammerStream struct {
	left int
	rows [2]dram.Row
	i    int
}

func (s *hammerStream) Next() (cpu.Request, bool) {
	if s.left == 0 {
		return cpu.Request{}, false
	}
	s.left--
	r := s.rows[s.i&1]
	s.i++
	return cpu.Request{Row: r, GapInstr: 1500}, true
}

// sameBankConfig is two MLP-1 cores hammering disjoint row pairs in the
// same bank: every issue re-blocks the bank for the other core, so
// parking triggers constantly.
func sameBankConfig() (Config, func() []cpu.Stream) {
	cfg := Config{
		Scheme:  SchemeBaseline,
		Timing:  dram.DDR4(),
		Cores:   2,
		CoreCfg: cpu.Config{MLP: 1},
	}
	cfg.fillDefaults()
	streams := func() []cpu.Stream {
		return []cpu.Stream{
			&hammerStream{left: 400, rows: [2]dram.Row{cfg.Geometry.RowOf(0, 0), cfg.Geometry.RowOf(0, 1)}},
			&hammerStream{left: 400, rows: [2]dram.Row{cfg.Geometry.RowOf(0, 2), cfg.Geometry.RowOf(0, 3)}},
		}
	}
	return cfg, streams
}

// TestParkingPreservesObservableTiming runs the same two-core same-bank
// hammer twice — once with the blocked-bank scheduler live, once with
// parking disabled so every core stays on the issue heap — and requires
// the two runs to be observationally identical: same Result, same
// per-core completion times. Combined with the parks counter proving the
// first run actually parked, this is the regression that a parked core
// never issues before its bank frees: an early (or late, or reordered)
// issue would shift activation times, stall accounting, and completion
// times, all of which are compared here.
func TestParkingPreservesObservableTiming(t *testing.T) {
	cfg, streams := sameBankConfig()

	parked := NewSystem(cfg, streams())
	parkedRes := parked.Run(0)
	if parked.parks == 0 {
		t.Fatal("scenario never parked a core; the test is not exercising the scheduler")
	}

	ref := NewSystem(cfg, streams())
	ref.noPark = true
	refRes := ref.Run(0)
	if ref.parks != 0 {
		t.Fatal("noPark system parked anyway")
	}

	if !reflect.DeepEqual(parkedRes, refRes) {
		t.Errorf("parked run diverged from heap-only run:\nparked: %+v\nref:    %+v", parkedRes, refRes)
	}
	for i := range parked.Cores {
		if p, r := parked.Cores[i].FinishTime(), ref.Cores[i].FinishTime(); p != r {
			t.Errorf("core %d finish time: parked %d, ref %d", i, p, r)
		}
		if p, r := parked.Cores[i].StallTime(), ref.Cores[i].StallTime(); p != r {
			t.Errorf("core %d stall time: parked %d, ref %d", i, p, r)
		}
	}
}

// TestTryParkRespectsBankReady pins the park gate itself: a core is
// parked only when its bank is blocked now AND its next issue lands at or
// past the bank's ready time, and its recorded wake is never before
// BankReadyAt — so by construction a parked core cannot issue into a
// still-blocked bank.
func TestTryParkRespectsBankReady(t *testing.T) {
	cfg, streams := sameBankConfig()
	sys := NewSystem(cfg, streams())
	sys.parkSpan = 0  // the gate under test here is BankReadyAt, not profitability
	sys.resetEvents() // primes core queues and the bankParked lists
	sys.cal.Reset()

	// Make bank 0 busy: a cold access activates it and holds readyACT
	// for the row-cycle window.
	sys.Rank.Access(cfg.Geometry.RowOf(0, 7), false, 0)
	ready := sys.Rank.BankReadyAt(0)
	if ready <= 0 {
		t.Fatalf("bank 0 ready at %d after an activation, want > 0", ready)
	}

	if sys.tryPark(0, 1, ready-1) {
		t.Fatal("parked a core that issues before the bank frees; Submit must charge that stall instead")
	}
	if !sys.tryPark(0, 1, ready) {
		t.Fatal("refused to park a core issuing exactly at the bank's ready time")
	}
	if sys.parkedWake[0] < ready {
		t.Fatalf("parked core wake %d precedes BankReadyAt %d", sys.parkedWake[0], ready)
	}

	root, ok := sys.cal.MinIndexed()
	if !ok || root.Class != event.ClassBankExpiry || root.Time != ready {
		t.Fatalf("calendar root = %+v, %v; want ClassBankExpiry at %d covering the park", root, ok, ready)
	}
	sys.cal.DropIndexedMin()
	sys.wakeBank(root.Index)
	woken, ok := sys.cal.MinIndexed()
	if !ok || woken.Class != event.ClassCoreIssue || woken.Index != 0 || woken.Time != ready {
		t.Fatalf("woken event = %+v, %v; want core 0 issue at exactly its recorded wake %d", woken, ok, ready)
	}
}

// TestBankExpiryIssueCollision pins the equal-timestamp ordering the
// scheduler's soundness argument leans on: when a bank's expiry event and
// another core's issue event land on the same picosecond, the expiry is
// serviced first (ClassBankExpiry < ClassCoreIssue), so the parked core
// is back in the heap before any same-time issue runs — and the usual
// (time, class, index) order then decides who issues first. Here core 0
// is parked with wake T and core 1 holds an issue event at the same T on
// the same bank; the required service order is expiry, core 0, core 1.
func TestBankExpiryIssueCollision(t *testing.T) {
	cfg, streams := sameBankConfig()
	sys := NewSystem(cfg, streams())
	sys.parkSpan = 0
	sys.resetEvents()
	sys.cal.Reset()

	sys.Rank.Access(cfg.Geometry.RowOf(0, 7), false, 0)
	wake := sys.Rank.BankReadyAt(0)

	sys.cal.Push(event.Event{Time: wake, Class: event.ClassCoreIssue, Index: 1})
	if !sys.tryPark(0, 1, wake) {
		t.Fatal("setup: core 0 did not park")
	}

	var order []event.Class
	var cores []int32
	for {
		root, ok := sys.cal.MinIndexed()
		if !ok {
			break
		}
		if root.Time != wake {
			t.Fatalf("event %+v not at the collision timestamp %d", root, wake)
		}
		sys.cal.DropIndexedMin()
		order = append(order, root.Class)
		if root.Class == event.ClassBankExpiry {
			sys.wakeBank(root.Index)
			continue
		}
		cores = append(cores, root.Index)
	}
	wantOrder := []event.Class{event.ClassBankExpiry, event.ClassCoreIssue, event.ClassCoreIssue}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("service order = %v, want %v (park-then-wake)", order, wantOrder)
	}
	if want := []int32{0, 1}; !reflect.DeepEqual(cores, want) {
		t.Fatalf("issue order = %v, want %v (woken core is in the heap before the equal-time issue)", cores, want)
	}
}
