package sim

import (
	"testing"

	"repro/internal/invariant"
)

// TestFullSystemRunsInvariantClean wires the checker through every layer
// (rank timing shadow, controller, mitigation contract, AQUA structural
// checks) and runs a real workload under each scheme: any violation is a
// simulator bug.
func TestFullSystemRunsInvariantClean(t *testing.T) {
	for _, s := range []Scheme{
		SchemeBaseline, SchemeAquaSRAM, SchemeAquaMemMapped,
		SchemeRRS, SchemeBlockhammer, SchemeVictimRefresh,
	} {
		chk := invariant.New()
		cfg := fastCfg(s)
		cfg.Invariants = chk
		sys := NewSystem(cfg, xzStreams(t, 1500))
		res := sys.Run(0)
		if res.Requests == 0 {
			t.Errorf("%s: no requests ran", s)
		}
		if err := chk.Err(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

// TestProactiveDrainInvariantClean exercises the background drainer path
// (OnIdle through the Checked wrapper) with the checker on.
func TestProactiveDrainInvariantClean(t *testing.T) {
	chk := invariant.New()
	cfg := fastCfg(SchemeAquaMemMapped)
	cfg.ProactiveDrain = true
	cfg.Invariants = chk
	sys := NewSystem(cfg, xzStreams(t, 3000))
	if _, ok := sys.Mit.(interface{ OnIdle(int64) int64 }); !ok {
		t.Fatal("Checked wrapper lost the Drainer capability")
	}
	sys.Run(0)
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}
