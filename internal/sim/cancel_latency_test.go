package sim

import (
	"context"
	"testing"
)

// countingCtx counts Err() polls and starts reporting cancellation at
// the cancelAt-th call (0 = never) — a deterministic way to cancel at a
// known check boundary without wall-clock timing.
type countingCtx struct {
	context.Context
	calls    int
	cancelAt int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.cancelAt > 0 && c.calls >= c.cancelAt {
		return context.Canceled
	}
	return c.Context.Err()
}

// quietSystem builds a cell whose total request count (4 cores x 1000)
// sits below ctxCheckInterval while its simulated span (~413 us) covers
// several ctxCheckSimStride boundaries: the request stride alone would
// never observe cancellation in such a cell.
func quietSystem(t *testing.T) *System {
	t.Helper()
	return NewSystem(fastCfg(SchemeBaseline), xzStreams(t, 1000))
}

func TestRunCtxPreCancelledQuietCell(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := quietSystem(t).RunCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled quiet cell returned %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelAtStrideBoundary(t *testing.T) {
	// Call 1 lands at the first event (sim time ~0); call 2 at the first
	// event past one stride. Cancelling there must abandon the run even
	// though fewer than ctxCheckInterval requests ever issue.
	ctx := &countingCtx{Context: context.Background(), cancelAt: 2}
	if _, err := quietSystem(t).RunCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("quiet cell ignored mid-run cancellation: %v", err)
	}
	if ctx.calls != 2 {
		t.Fatalf("ctx polled %d times, want exactly 2 (cancel consumed at the first stride boundary)", ctx.calls)
	}
}

// TestRunCtxCancellationLatencyBound pins the latency guarantee in
// simulated time: over a full quiet-cell run the ctx is polled at least
// once per stride of simulated time (the first event at or after each
// boundary), so cancellation lands within ~ctxCheckSimStride plus one
// inter-event gap — ~13 refresh intervals wide, far smaller than the
// stride — rather than "never" as the request stride alone would give.
func TestRunCtxCancellationLatencyBound(t *testing.T) {
	ctx := &countingCtx{Context: context.Background()}
	res, err := quietSystem(t).RunCtx(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests >= ctxCheckInterval {
		t.Fatalf("cell not quiet: %d requests, want < %d", res.Requests, ctxCheckInterval)
	}
	minChecks := int(res.SimTime / ctxCheckSimStride)
	if minChecks < 2 {
		t.Fatalf("cell too short to exercise the stride: %d ps", res.SimTime)
	}
	if ctx.calls < minChecks {
		t.Fatalf("ctx polled %d times over %d ps; want >= %d (once per %d ps stride)",
			ctx.calls, res.SimTime, minChecks, int64(ctxCheckSimStride))
	}
	// And the stride is not over-polling either: at most one check per
	// boundary crossed plus the request-stride contribution.
	maxChecks := minChecks + 2 + int(res.Requests/ctxCheckInterval)
	if ctx.calls > maxChecks {
		t.Fatalf("ctx polled %d times, want <= %d — stride checks should fire once per boundary", ctx.calls, maxChecks)
	}
}
