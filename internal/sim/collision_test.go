package sim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// pairStream emits n back-to-back requests (GapInstr 0) to one row.
type pairStream struct {
	left int
	row  dram.Row
}

func (s *pairStream) Next() (cpu.Request, bool) {
	if s.left == 0 {
		return cpu.Request{}, false
	}
	s.left--
	return cpu.Request{Row: s.row, GapInstr: 0}, true
}

// TestRefreshEpochIssueCollision engineers a three-way equal-timestamp
// collision through the full run loop: the timing is bent so the first
// access completes exactly at tREFI, the epoch length equals tREFI, and
// the core (MLP=1, zero gap) issues its second request at that same
// picosecond. The documented class order — refresh(0) < epoch(1) <
// core-issue(4) — requires the refresh and the epoch to be serviced
// before the access runs, which is observable in the analytic completion
// time: the second activation must wait out tRFC behind the refresh.
func TestRefreshEpochIssueCollision(t *testing.T) {
	timing := dram.DDR4()
	// Cold-bank access latency: ACT -> column (tRCD) -> data (tCL) -> burst
	// end (tBL). All integer picoseconds, so the collision is exact.
	firstDone := timing.TRCD + timing.TCL + timing.TBL
	timing.TREFI = firstDone
	timing.TRFC = 20000 // keep tRFC < tREFI so the timing validates

	cfg := Config{
		Scheme:      SchemeBaseline,
		Timing:      timing,
		EpochLength: firstDone,
		Cores:       1,
		CoreCfg:     cpu.Config{MLP: 1},
	}
	cfg.fillDefaults()
	row := cfg.Geometry.RowOf(0, 3)
	sys := NewSystem(cfg, []cpu.Stream{&pairStream{left: 2, row: row}})
	res := sys.Run(0)

	if res.Requests != 2 {
		t.Fatalf("requests = %d, want 2", res.Requests)
	}
	// Exactly one refresh and one epoch fired — both due at firstDone, both
	// serviced by the second request's submission at that same timestamp.
	if res.CtrlStats.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", res.CtrlStats.Refreshes)
	}
	if res.CtrlStats.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", res.CtrlStats.Epochs)
	}
	// The refresh ran first: it closed the row and blocked activations for
	// tRFC, so the second access is another cold-bank access starting at
	// tREFI + tRFC. Had the issue been serviced first, FinishTime would be
	// 2*firstDone (a row hit or even a miss costs less than the refresh
	// detour) and the refresh count above would still be 1 — the completion
	// time is what pins the order.
	want := timing.TREFI + timing.TRFC + firstDone
	if got := sys.Cores[0].FinishTime(); got != want {
		t.Fatalf("second completion = %d, want %d (refresh must precede the equal-time issue)", got, want)
	}
}
