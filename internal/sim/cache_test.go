package sim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cellcache"
	"repro/internal/fault"
)

// dupCells is a grid with a repeated cell, the shape every threshold
// sweep produces (the same baseline cell at every sweep point).
var dupCells = []GridCell{
	{Scheme: SchemeAquaMemMapped, TRH: 1000},
	{Scheme: SchemeRRS, TRH: 1000},
	{Scheme: SchemeAquaMemMapped, TRH: 1000},
}

// TestRunGridDedupSimulatesOnce pins the no-cache dedup guarantee:
// identical cells inside one grid — whether requested sequentially
// (serial) or concurrently (parallel) — simulate exactly once, and the
// duplicate requests are answered from the same completed execution.
func TestRunGridDedupSimulatesOnce(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		r := NewRunner(gridCfg(parallel))
		out, err := r.RunGrid(gridNames, dupCells)
		if err != nil {
			t.Fatal(err)
		}
		// Per workload: 3 requested cells + 1 baseline row, of which the
		// repeated aqua cell is a duplicate -> 3 unique simulations.
		st := r.CellStats()
		wantRequests := int64(len(gridNames) * (len(dupCells) + 1))
		wantSimulated := int64(len(gridNames) * 3)
		if st.Requests != wantRequests {
			t.Fatalf("parallel=%d: %d requests, want %d (stats %+v)", parallel, st.Requests, wantRequests, st)
		}
		if st.Simulated != wantSimulated {
			t.Fatalf("parallel=%d: %d cells simulated, want %d (stats %+v)", parallel, st.Simulated, wantSimulated, st)
		}
		if want := wantRequests - wantSimulated; st.Deduped() != want {
			t.Fatalf("parallel=%d: Deduped() = %d, want %d (stats %+v)", parallel, st.Deduped(), want, st)
		}
		for _, gr := range out {
			if !reflect.DeepEqual(gr.Cells[0], gr.Cells[2]) {
				t.Fatalf("parallel=%d: %s duplicate cells diverged", parallel, gr.Workload)
			}
		}
	}
}

// TestCellCacheRoundTrip pins the cross-runner contract: a cell computed
// by one Runner is served — bit-identical — to a fresh Runner sharing
// the store, without simulating.
func TestCellCacheRoundTrip(t *testing.T) {
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(gridCfg(1))
	r1.AttachCellCache(store)
	want, err := r1.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.CellStats(); st.CacheMisses == 0 || st.Simulated == 0 {
		t.Fatalf("cold runner stats %+v; want a miss and a simulation", st)
	}

	r2 := NewRunner(gridCfg(1))
	r2.AttachCellCache(store)
	got, err := r2.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached result diverged:\nwant %+v\ngot  %+v", want, got)
	}
	st := r2.CellStats()
	if st.CacheHits == 0 || st.Simulated != 0 {
		t.Fatalf("warm runner stats %+v; want a hit and no simulation", st)
	}
}

// TestCellCacheSchemaBump pins the invalidation mechanism: an entry
// written under a previous SchemaVersion — even a perfectly valid one —
// is invisible to the current runner, which recomputes.
func TestCellCacheSchemaBump(t *testing.T) {
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	// Produce a genuine result and store it under the *previous*
	// generation's key, simulating a cache populated before a bump.
	r1 := NewRunner(gridCfg(1))
	run, err := r1.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	oldKey, err := r1.cellKeyAt("aqua-cell-v0", "xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(oldKey, data)

	r2 := NewRunner(gridCfg(1))
	r2.AttachCellCache(store)
	got, err := r2.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.CellStats()
	if st.CacheHits != 0 || st.Simulated != 1 {
		t.Fatalf("stats %+v; a stale-generation entry must be a miss, not a hit", st)
	}
	if !reflect.DeepEqual(got, run) {
		t.Fatal("recomputed result diverged from the original")
	}
}

// TestCellCacheCorruptEntry pins the corruption contract end to end: a
// cell whose on-disk entry is torn or tampered with is recomputed —
// silently, correctly — never served wrong and never surfaced as an
// error.
func TestCellCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s1, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(gridCfg(1))
	r1.AttachCellCache(s1)
	want, err := r1.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := r1.CellKey("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hash), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(gridCfg(1))
	r2.AttachCellCache(s2)
	got, err := r2.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recomputed result diverged after corruption")
	}
	if st := r2.CellStats(); st.CacheHits != 0 || st.Simulated != 1 {
		t.Fatalf("stats %+v; corrupt entry must read as a miss", st)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("store stats %+v; want the corruption counted", st)
	}
}

// TestCellCachePayloadMismatch pins the sim-layer identity check above
// the store's checksum: a checksum-valid entry whose decoded identity
// doesn't match the requested cell is discarded, not served.
func TestCellCachePayloadMismatch(t *testing.T) {
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(gridCfg(1))
	wrong, err := r1.Run("wrf", SchemeRRS, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// A different cell's (valid) payload planted under xz/aqua's key.
	hash, err := r1.CellKey("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(wrong)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(hash, data)

	r2 := NewRunner(gridCfg(1))
	r2.AttachCellCache(store)
	got, err := r2.Run("xz", SchemeAquaMemMapped, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "xz" || got.Scheme != SchemeAquaMemMapped {
		t.Fatalf("served a foreign cell: %s/%s", got.Workload, got.Scheme)
	}
	if st := r2.CellStats(); st.CacheHits != 0 || st.Simulated != 1 {
		t.Fatalf("stats %+v; mismatched payload must be a miss", st)
	}
}

// TestFaultedCellNeverCached pins the fault-injection exclusion: a cell
// matched by a fault rule bypasses the cache on every request — its
// results are never stored, and repeat requests re-simulate so injected
// behaviour is observed each time.
func TestFaultedCellNeverCached(t *testing.T) {
	rules, err := fault.ParseRules("lbm/aqua-memmapped/125=rqa-overflow@p:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gridCfg(1)
	cfg.Faults = rules
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(cfg)
	r.AttachCellCache(store)
	first, err := r.Run("lbm", SchemeAquaMemMapped, 125)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run("lbm", SchemeAquaMemMapped, 125)
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.FaultStats.Injected == 0 || second.Result.FaultStats.Injected == 0 {
		t.Fatalf("injected faults not observed (first %d, second %d)",
			first.Result.FaultStats.Injected, second.Result.FaultStats.Injected)
	}
	if st := store.Stats(); st.Puts != 0 {
		t.Fatalf("store stats %+v; a faulted cell was cached", st)
	}
	if st := r.CellStats(); st.Requests != 0 {
		t.Fatalf("cell stats %+v; faulted requests must bypass cache accounting", st)
	}
	// The unmatched cell of the same run still caches normally.
	if _, err := r.Run("wrf", SchemeRRS, 1000); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Puts == 0 {
		t.Fatalf("store stats %+v; the clean cell should have been stored", st)
	}
}

// TestCancelledCellNotCached pins the cancellation exclusion: a cell cut
// short by its context must not leave a partial result in the store.
func TestCancelledCellNotCached(t *testing.T) {
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(gridCfg(1))
	r.AttachCellCache(store)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, "xz", SchemeAquaMemMapped, 1000); err == nil {
		t.Fatal("cancelled cell reported success")
	}
	if st := store.Stats(); st.Puts != 0 {
		t.Fatalf("store stats %+v; a cancelled cell was cached", st)
	}
	if st := r.CellStats(); st.Errors == 0 {
		t.Fatalf("cell stats %+v; the cancelled request was not counted", st)
	}
}

// TestCellKeyDeterminism pins that the key is a pure function of the
// configuration: same config same key, any varied determinant a
// different key, and wall-clock-only knobs (Parallel) no change.
func TestCellKeyDeterminism(t *testing.T) {
	base := gridCfg(1)
	key := func(cfg ExpConfig, name string, scheme Scheme, trh int64) string {
		k, err := NewRunner(cfg).CellKey(name, scheme, trh)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k0 := key(base, "xz", SchemeAquaMemMapped, 1000)
	if k0 != key(base, "xz", SchemeAquaMemMapped, 1000) {
		t.Fatal("same configuration produced different keys")
	}
	if k0 != key(gridCfg(8), "xz", SchemeAquaMemMapped, 1000) {
		t.Fatal("Parallel changed the key; it must not (wall-clock only)")
	}
	variants := map[string]string{
		"scheme":   key(base, "xz", SchemeRRS, 1000),
		"trh":      key(base, "xz", SchemeAquaMemMapped, 2000),
		"workload": key(base, "wrf", SchemeAquaMemMapped, 1000),
	}
	seed := base
	seed.Seed = 7
	variants["seed"] = key(seed, "xz", SchemeAquaMemMapped, 1000)
	window := base
	window.Window = 2 * base.Window
	variants["window"] = key(window, "xz", SchemeAquaMemMapped, 1000)
	seen := map[string]string{k0: "base"}
	for what, k := range variants {
		if prior, dup := seen[k]; dup {
			t.Fatalf("varying %s collided with %s", what, prior)
		}
		seen[k] = what
	}
}
