package sim

// issueHeap is the index min-heap behind the issue loop: one entry per
// unfinished core, ordered by (next-issue time, core index). The
// tie-break matters: the linear scan this replaced kept the first core
// on equal times (strict < comparison), so the heap orders equal times
// by ascending core index to select the exact same core — the golden
// byte-for-byte contract depends on it.
//
// Correctness rests on a locality property of cpu.Core.NextIssueTime:
// it reads only core-local state (queued request, compute gap,
// outstanding-miss slots), so issuing on one core never changes another
// core's next-issue time. Only the issuing core's entry needs fixing per
// request — O(log cores) instead of the scan's O(cores) — and since that
// entry sits at the root, a single sift-down restores the heap whatever
// the new time is.
//
// The backing slice is allocated once per System and reused across runs,
// keeping the steady-state request path at zero allocations.

import (
	"repro/internal/cpu"
	"repro/internal/dram"
)

// issueEvent is one core's pending entry.
type issueEvent struct {
	t   dram.PS
	idx int
}

// issueHeap is a binary min-heap of issueEvents. The zero value is an
// empty heap.
type issueHeap struct {
	ev []issueEvent
}

// less orders by time, then core index — exactly the linear scan's
// "strictly earlier wins, first core wins ties" rule.
func (h *issueHeap) less(a, b issueEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.idx < b.idx
}

// reset rebuilds the heap over the given cores, querying each for its
// next issue time and skipping finished ones.
func (h *issueHeap) reset(cores []*cpu.Core) {
	h.ev = h.ev[:0]
	for i, c := range cores {
		if t, ok := c.NextIssueTime(); ok {
			h.push(issueEvent{t: t, idx: i})
		}
	}
}

func (h *issueHeap) push(e issueEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// len reports the number of unfinished cores.
func (h *issueHeap) len() int { return len(h.ev) }

// min returns the earliest event without removing it.
func (h *issueHeap) min() issueEvent { return h.ev[0] }

// fixMin replaces the root's time with t and restores heap order. The
// root is the minimum, so any replacement value only needs a sift-down.
func (h *issueHeap) fixMin(t dram.PS) {
	h.ev[0].t = t
	h.siftDown(0)
}

// popMin removes the root (a finished core).
func (h *issueHeap) popMin() {
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

func (h *issueHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.ev[right], h.ev[left]) {
			smallest = right
		}
		if !h.less(h.ev[smallest], h.ev[i]) {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}
