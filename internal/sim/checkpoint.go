package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The checkpoint file is JSON-lines: a header record binding the file to
// one experiment configuration, then one record per completed unit of
// work (calibrated IPC, baseline result, grid cell). Records are appended
// and synced as cells complete, so a killed run loses at most the cells
// in flight. On resume, cached records are served instead of recomputing
// — and because every recorded value is what the deterministic simulator
// would produce anyway (encoding/json round-trips float64 exactly), a
// resumed run's final output is byte-identical to an uninterrupted one.
//
// A truncated trailing line (the process died mid-append) is tolerated
// and discarded; every complete line is kept.

// ckptRecord is the on-disk union of all record kinds.
type ckptRecord struct {
	Kind string `json:"kind"`
	// Sig is set on "header" records.
	Sig string `json:"sig,omitempty"`
	// Workload keys "ipc" and "base" records.
	Workload string `json:"workload,omitempty"`
	// IPC is set on "ipc" records.
	IPC float64 `json:"ipc,omitempty"`
	// Base is set on "base" records.
	Base *Result `json:"base,omitempty"`
	// Cell is set on "cell" records and carries its own key fields.
	Cell *WorkloadRun `json:"cell,omitempty"`
}

type cellKey struct {
	workload string
	scheme   Scheme
	trh      int64
}

// checkpoint is the in-memory mirror of one checkpoint file. All methods
// are nil-safe: a nil *checkpoint misses every lookup and drops every
// store, so callers need no "is checkpointing on?" branches.
type checkpoint struct {
	mu    sync.Mutex
	f     *os.File                // guarded by mu
	ipc   map[string]float64      // guarded by mu
	base  map[string]Result       // guarded by mu
	cells map[cellKey]WorkloadRun // guarded by mu
	hits  int64                   // guarded by mu
	// err records the first append failure; the run continues (losing only
	// resumability) and the error is reported at the end.
	err error // guarded by mu
}

// ckptSignature derives the header string binding a checkpoint file to an
// experiment configuration. Any field that changes the numbers is in here;
// resuming under a different signature is refused.
func ckptSignature(cfg ExpConfig) string {
	return fmt.Sprintf("aqua-ckpt-v1 window=%d cores=%d seed=%#x calibrate=%t geom=%+v timing=%+v faults=%q",
		cfg.Window, cfg.Cores, cfg.Seed, cfg.Calibrate, cfg.Geometry, cfg.Timing, cfg.Faults.String())
}

// openCheckpoint opens (or creates) the file at path, validates its header
// against sig, loads every complete record, and leaves the file positioned
// for appends.
func openCheckpoint(path, sig string) (*checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	c := &checkpoint{
		f:     f,
		ipc:   make(map[string]float64),
		base:  make(map[string]Result),
		cells: make(map[cellKey]WorkloadRun),
	}
	valid, err := c.load(sig)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Reposition after the last complete record, discarding any torn tail
	// from a run that died mid-append.
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if valid == 0 {
		if err := c.append(ckptRecord{Kind: "header", Sig: sig}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// load replays the file, returning the byte offset just past the last
// complete, well-formed record. Runs only on an unshared checkpoint:
// caller holds mu (or owns the value outright, as openCheckpoint does).
func (c *checkpoint) load(sig string) (valid int64, err error) {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(c.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		var rec ckptRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn or corrupt line: stop replaying here. Everything before
			// it stands.
			break
		}
		if first {
			if rec.Kind != "header" {
				return 0, fmt.Errorf("sim: checkpoint %s has no header", c.f.Name())
			}
			if rec.Sig != sig {
				return 0, fmt.Errorf("sim: checkpoint %s was written by a different configuration\n  file: %s\n  want: %s",
					c.f.Name(), rec.Sig, sig)
			}
			first = false
		} else {
			switch rec.Kind {
			case "ipc":
				c.ipc[rec.Workload] = rec.IPC
			case "base":
				if rec.Base != nil {
					c.base[rec.Workload] = *rec.Base
				}
			case "cell":
				if rec.Cell != nil {
					run := *rec.Cell
					c.cells[cellKey{run.Workload, run.Scheme, run.TRH}] = run
				}
			}
		}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return valid, nil
}

// append marshals one record, writes it as a line, and syncs so a crash
// after this cell completes cannot lose it. Appends are serialized:
// caller holds mu (openCheckpoint runs before the value is shared).
func (c *checkpoint) append(rec ckptRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := c.f.Write(b); err != nil {
		return err
	}
	return c.f.Sync()
}

// record appends, remembering the first failure — caller holds mu.
// Losing a record only costs resumability, never correctness, so the run
// goes on.
func (c *checkpoint) record(rec ckptRecord) {
	if err := c.append(rec); err != nil && c.err == nil {
		c.err = err
	}
}

func (c *checkpoint) lookupIPC(name string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ipc, ok := c.ipc[name]
	if ok {
		c.hits++
	}
	return ipc, ok
}

func (c *checkpoint) storeIPC(name string, ipc float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.ipc[name]; dup {
		return
	}
	c.ipc[name] = ipc
	c.record(ckptRecord{Kind: "ipc", Workload: name, IPC: ipc})
}

func (c *checkpoint) lookupBase(name string) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.base[name]
	if ok {
		c.hits++
	}
	return res, ok
}

func (c *checkpoint) storeBase(name string, res Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.base[name]; dup {
		return
	}
	c.base[name] = res
	c.record(ckptRecord{Kind: "base", Workload: name, Base: &res})
}

func (c *checkpoint) lookupCell(name string, scheme Scheme, trh int64) (WorkloadRun, bool) {
	if c == nil {
		return WorkloadRun{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.cells[cellKey{name, scheme, trh}]
	if ok {
		c.hits++
	}
	return run, ok
}

func (c *checkpoint) storeCell(run WorkloadRun) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cellKey{run.Workload, run.Scheme, run.TRH}
	if _, dup := c.cells[k]; dup {
		return
	}
	c.cells[k] = run
	c.record(ckptRecord{Kind: "cell", Cell: &run})
}

func (c *checkpoint) close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.err
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (c *checkpoint) hitCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// AttachCheckpoint opens (or creates) a checkpoint file for this Runner
// and begins serving completed cells from it and appending new ones to
// it. The file is bound to the Runner's exact configuration — window,
// cores, seed, geometry, timing, fault rules — and attaching a file
// written under any other configuration is an error, because replaying
// its records would silently change results.
func (r *Runner) AttachCheckpoint(path string) error {
	if r.initErr != nil {
		return r.initErr
	}
	ckpt, err := openCheckpoint(path, ckptSignature(r.cfg))
	if err != nil {
		return err
	}
	r.ckpt = ckpt
	return nil
}

// CheckpointHits reports how many lookups were served from the attached
// checkpoint (0 when none is attached).
func (r *Runner) CheckpointHits() int64 { return r.ckpt.hitCount() }

// CloseCheckpoint flushes and closes the attached checkpoint, returning
// the first append error encountered during the run (the run itself is
// never failed by checkpoint I/O — a lost record only costs resumability).
func (r *Runner) CloseCheckpoint() error {
	err := r.ckpt.close()
	r.ckpt = nil
	return err
}
