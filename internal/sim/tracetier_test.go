package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cellcache"
	"repro/internal/dram"
)

// traceCfg is a reduced experiment for trace-tier tests: tiny window, no
// calibration, serial so counter expectations are exact.
func traceCfg() ExpConfig {
	return ExpConfig{
		Window:    150 * dram.PS(dram.Microsecond),
		Calibrate: false,
		Parallel:  1,
	}
}

var traceCells = []GridCell{
	{Scheme: SchemeAquaMemMapped, TRH: 1000},
	{Scheme: SchemeRRS, TRH: 1000},
}

// TestTraceReplayMatchesGeneration is the scheme-invariance equivalence
// gate in unit form: a grid run replaying captured traces must be
// byte-identical to one regenerating every stream.
func TestTraceReplayMatchesGeneration(t *testing.T) {
	names := []string{"xz", "wrf"}
	replay, err := NewRunner(traceCfg()).RunGrid(names, traceCells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := traceCfg()
	cfg.DisableTraceReplay = true
	regen, err := NewRunner(cfg).RunGrid(names, traceCells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay, regen) {
		t.Fatalf("replayed grid diverged from regenerated:\nreplay: %+v\nregen:  %+v", replay, regen)
	}
}

// TestTraceTierCounters checks the capture/replay accounting: each
// (workload, core) captures once, and every later stream build replays.
func TestTraceTierCounters(t *testing.T) {
	r := NewRunner(traceCfg())
	if _, err := r.RunGrid([]string{"xz"}, traceCells); err != nil {
		t.Fatal(err)
	}
	stats := r.CellStats()
	cores := int64(r.Config().Cores)
	if stats.TraceCaptures != cores {
		t.Fatalf("TraceCaptures = %d, want %d (one per core)", stats.TraceCaptures, cores)
	}
	// Three runs build streams (the baseline measurement plus two scheme
	// cells); the first captures, the other two replay.
	if want := 2 * cores; stats.TraceReplays != want {
		t.Fatalf("TraceReplays = %d, want %d", stats.TraceReplays, want)
	}
	if stats.TraceDiskHits != 0 {
		t.Fatalf("TraceDiskHits = %d, want 0 (in-memory tier only)", stats.TraceDiskHits)
	}

	off := traceCfg()
	off.DisableTraceReplay = true
	r2 := NewRunner(off)
	if _, err := r2.RunGrid([]string{"xz"}, traceCells); err != nil {
		t.Fatal(err)
	}
	if s := r2.CellStats(); s.TraceCaptures != 0 || s.TraceReplays != 0 {
		t.Fatalf("disabled tier still counted: %+v", s)
	}
}

// TestTraceBudgetFallback runs with a budget below any capture and no
// disk tier: every stream build captures and is served uncached, and the
// results still match the in-memory-tier run.
func TestTraceBudgetFallback(t *testing.T) {
	want, err := NewRunner(traceCfg()).RunGrid([]string{"xz"}, traceCells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := traceCfg()
	cfg.TraceBudgetBytes = 1
	r := NewRunner(cfg)
	got, err := r.RunGrid([]string{"xz"}, traceCells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("over-budget grid diverged from in-memory-tier grid")
	}
	stats := r.CellStats()
	cores := int64(r.Config().Cores)
	if stats.TraceCaptures != 3*cores {
		t.Fatalf("TraceCaptures = %d, want %d (every build recaptures)", stats.TraceCaptures, 3*cores)
	}
	if stats.TraceReplays != 0 || stats.TraceDiskHits != 0 {
		t.Fatalf("uncached fallback still counted replays: %+v", stats)
	}
}

// TestTraceSpillToDisk forces the in-memory budget to zero so every
// capture spills as a v2 file under the cell cache directory, then
// checks later Runners sharing the directory replay the spilled traces
// instead of generating (cross-process reuse), and that a corrupt spill
// reads as a miss — recaptured, never replayed wrong.
func TestTraceSpillToDisk(t *testing.T) {
	dir := t.TempDir()
	store, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := traceCfg()
	cfg.TraceBudgetBytes = 1 // below any capture's footprint
	r := NewRunner(cfg)
	r.AttachCellCache(store)
	if _, err := r.RunGrid([]string{"xz"}, traceCells); err != nil {
		t.Fatal(err)
	}
	stats := r.CellStats()
	cores := int64(r.Config().Cores)
	if stats.TraceCaptures != cores {
		t.Fatalf("TraceCaptures = %d, want %d", stats.TraceCaptures, cores)
	}
	if stats.TraceDiskHits != 2*cores {
		t.Fatalf("TraceDiskHits = %d, want %d (replays served from spill)", stats.TraceDiskHits, 2*cores)
	}
	files, err := filepath.Glob(filepath.Join(dir, "traces", "*.aqt2"))
	if err != nil || int64(len(files)) != cores {
		t.Fatalf("spilled %d trace files (%v), want %d", len(files), err, cores)
	}

	// A second Runner over the same directory with cells the result cache
	// has not seen (different threshold) must simulate — and replay the
	// spilled traces rather than capture. Reference results come from a
	// regenerating runner.
	freshCells := []GridCell{{Scheme: SchemeAquaMemMapped, TRH: 2000}}
	regenCfg := traceCfg()
	regenCfg.DisableTraceReplay = true
	want, err := NewRunner(regenCfg).RunGrid([]string{"xz"}, freshCells)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(cfg)
	store2, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2.AttachCellCache(store2)
	got, err := r2.RunGrid([]string{"xz"}, freshCells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("disk-replayed grid diverged from regenerated:\nreplay: %+v\nregen:  %+v", got, want)
	}
	s2 := r2.CellStats()
	if s2.TraceCaptures != 0 {
		t.Fatalf("second process re-captured %d streams; want replay from spill", s2.TraceCaptures)
	}
	if s2.TraceDiskHits == 0 {
		t.Fatalf("second process never hit the spilled traces: %+v", s2)
	}

	// Corrupt one spilled file: its core recaptures (and rewrites the
	// spill); the others still replay. Results stay correct.
	if err := corruptFile(files[0]); err != nil {
		t.Fatal(err)
	}
	moreCells := []GridCell{{Scheme: SchemeAquaMemMapped, TRH: 3000}}
	want3, err := NewRunner(regenCfg).RunGrid([]string{"xz"}, moreCells)
	if err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(cfg)
	store3, err := cellcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	r3.AttachCellCache(store3)
	got3, err := r3.RunGrid([]string{"xz"}, moreCells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want3, got3) {
		t.Fatalf("grid with corrupt spill diverged from regenerated")
	}
	s3 := r3.CellStats()
	if s3.TraceCaptures != 1 {
		t.Fatalf("TraceCaptures = %d, want 1 (only the corrupt core recaptures)", s3.TraceCaptures)
	}
	// First build: cores-1 healthy spills hit, one recaptures. Second
	// build: all cores hit the (rewritten) mappings.
	if want := 2*cores - 1; s3.TraceDiskHits != want {
		t.Fatalf("TraceDiskHits = %d, want %d", s3.TraceDiskHits, want)
	}
}

// corruptFile flips one byte in the middle of the file (a block payload;
// the index and footer live at the end).
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)/2] ^= 0x01
	return os.WriteFile(path, data, 0o644)
}
