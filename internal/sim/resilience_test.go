package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/flight"
)

func mustRules(t *testing.T, spec string) *fault.Rules {
	t.Helper()
	rules, err := fault.ParseRules(spec)
	if err != nil {
		t.Fatalf("ParseRules(%q): %v", spec, err)
	}
	return rules
}

func resCfg(faults *fault.Rules) ExpConfig {
	return ExpConfig{
		Window:   150 * dram.PS(dram.Microsecond),
		Parallel: 2,
		Faults:   faults,
	}
}

// TestNewRunnerInvalidConfig: a config no cell could run under must yield
// an inert Runner and an error, never a panic or process abort.
func TestNewRunnerInvalidConfig(t *testing.T) {
	cases := []ExpConfig{
		{Cores: 9},
		{Window: -1},
		{Geometry: dram.Geometry{RowsPerBank: 7, Banks: 3}},
	}
	for _, cfg := range cases {
		r, err := NewRunnerE(cfg)
		if err == nil {
			t.Fatalf("NewRunnerE(%+v): expected error", cfg)
		}
		if r.Err() == nil {
			t.Fatalf("Err() should report the construction error")
		}
		// The inert Runner converts every cell into a CellError.
		_, runErr := r.Run("xz", SchemeRRS, 1000)
		var ce *CellError
		if !errors.As(runErr, &ce) {
			t.Fatalf("inert Runner returned %v, want *CellError", runErr)
		}
		if ce.Workload != "xz" || !errors.Is(ce, err) {
			t.Fatalf("CellError %v does not carry the construction error %v", ce, err)
		}
	}
}

// TestGridPartialResults: a grid with one injected panicking cell and one
// injected RQA-overflow cell must run to completion, report the panic as
// a structured failure, and leave every healthy cell's numbers identical
// to a fault-free run.
func TestGridPartialResults(t *testing.T) {
	names := []string{"xz", "lbm"}
	cells := []GridCell{
		{Scheme: SchemeRRS, TRH: 1000},
		// TRH 125 is low enough that lbm's hot rows cross it within the
		// reduced window, so the scheme actually mitigates — a
		// prerequisite for the RQA-overflow fault to have a site to fire.
		{Scheme: SchemeAquaMemMapped, TRH: 125},
	}
	clean, err := NewRunner(resCfg(nil)).RunGrid(names, cells)
	if err != nil {
		t.Fatal(err)
	}

	rules := mustRules(t, "xz/rrs/1000=panic@once:0;lbm/aqua-memmapped/125=rqa-overflow@p:1")
	grid, err := NewRunner(resCfg(rules)).RunGrid(names, cells)
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("RunGrid returned %v, want *GridError", err)
	}
	if len(ge.Cells) != 1 {
		t.Fatalf("GridError has %d cells, want 1: %v", len(ge.Cells), ge)
	}
	ce := ge.Cells[0]
	if ce.Workload != "xz" || ce.Scheme != SchemeRRS || ce.TRH != 1000 {
		t.Fatalf("failed cell identity = %s/%s/%d", ce.Workload, ce.Scheme, ce.TRH)
	}
	if len(ce.Stack) == 0 {
		t.Fatalf("panicking cell carried no stack")
	}
	if !strings.Contains(ce.Error(), "injected panic") {
		t.Fatalf("CellError %q does not name the injected panic", ce.Error())
	}

	// The RQA-overflow cell must have survived, degraded to the
	// victim-refresh fallback, and counted its faults.
	over := grid[1].Cells[1]
	if over.Result.FaultStats.Injected == 0 {
		t.Fatalf("overflow cell reports no injected faults")
	}
	if over.Result.MitStats.OverflowFallbacks == 0 {
		t.Fatalf("overflow cell reports no fallback mitigations")
	}

	// Every cell the faults did not touch is byte-identical to the clean
	// run (same structs, so DeepEqual is exact).
	if !reflect.DeepEqual(grid[0].Cells[1], clean[0].Cells[1]) {
		t.Fatalf("healthy cell xz/aqua-memmapped diverged under unrelated faults")
	}
	if !reflect.DeepEqual(grid[1].Cells[0], clean[1].Cells[0]) {
		t.Fatalf("healthy cell lbm/rrs diverged under unrelated faults")
	}
	if !reflect.DeepEqual(grid[0].Baseline, clean[0].Baseline) ||
		!reflect.DeepEqual(grid[1].Baseline, clean[1].Baseline) {
		t.Fatalf("baselines diverged under faults")
	}
}

// TestFaultScheduleDeterminism: the same seed and rules must produce the
// same injected-fault counts and the same simulation numbers.
func TestFaultScheduleDeterminism(t *testing.T) {
	rules := mustRules(t, "xz/aqua-memmapped/1000=ecc-flip@p:0.01;xz/aqua-memmapped/1000=refresh-collision@p:0.5")
	run := func() WorkloadRun {
		r := NewRunner(resCfg(rules))
		wr, err := r.Run("xz", SchemeAquaMemMapped, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return wr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverged:\na: %+v\nb: %+v", a, b)
	}
	if a.Result.FaultStats.Injected == 0 {
		t.Fatalf("fault schedule never fired")
	}
}

// TestTransientRetry: an injected transient failure must be retried (with
// the transient arms dropped) and converge to the fault-free result.
func TestTransientRetry(t *testing.T) {
	clean, err := NewRunner(resCfg(nil)).Run("xz", SchemeRRS, 1000)
	if err != nil {
		t.Fatal(err)
	}

	rules := mustRules(t, "xz/rrs/1000=transient@once:0")
	r := NewRunner(resCfg(rules))
	var attempts []int
	r.retryBackoff = func(attempt int) { attempts = append(attempts, attempt) }
	got, err := r.Run("xz", SchemeRRS, 1000)
	if err != nil {
		t.Fatalf("transient cell did not recover: %v", err)
	}
	if len(attempts) != 1 || attempts[0] != 1 {
		t.Fatalf("backoff calls = %v, want [1]", attempts)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatalf("retried cell diverged from fault-free run:\ngot:   %+v\nclean: %+v", got, clean)
	}

	// With retries disabled the same cell must fail as a CellError.
	noRetry := resCfg(rules)
	noRetry.Retries = -1
	_, err = NewRunner(noRetry).Run("xz", SchemeRRS, 1000)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("unretried transient returned %v, want *CellError", err)
	}
	if !flight.IsTransient(ce) {
		t.Fatalf("CellError should still expose the transient marker")
	}
}

// TestGridCancellation: cancelling mid-grid must stop the run promptly,
// return the context's error, and leak no goroutines (the -race build of
// this test is the acceptance check for clean shutdown). The cancel is
// triggered from inside the grid — the retry-backoff hook of an injected
// transient failure — so the run is provably mid-flight, with cells both
// executing and still undispatched.
func TestGridCancellation(t *testing.T) {
	rules := mustRules(t, "xz/rrs/1000=transient@once:0")
	r := NewRunner(resCfg(rules))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.retryBackoff = func(int) { cancel() }
	names := []string{"xz", "wrf", "lbm", "mcf"}
	cells := []GridCell{
		{Scheme: SchemeRRS, TRH: 1000},
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
	}
	grid, err := r.RunGridCtx(ctx, names, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled grid returned %v, want context.Canceled", err)
	}
	// The partial grid is still handed back alongside the error.
	if len(grid) != len(names) {
		t.Fatalf("cancelled grid lost its shape: %d rows", len(grid))
	}
}

// TestCheckpointResume: a grid interrupted after partial completion and
// resumed from its checkpoint must produce a byte-identical final grid
// while serving the already-done cells from the file.
func TestCheckpointResume(t *testing.T) {
	names := []string{"xz", "wrf"}
	cells := []GridCell{
		{Scheme: SchemeRRS, TRH: 1000},
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
	}
	clean, err := NewRunner(resCfg(nil)).RunGrid(names, cells)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "grid.ckpt")

	// First run: only one workload — a stand-in for an interrupted grid
	// that checkpointed part of the work.
	r1 := NewRunner(resCfg(nil))
	if err := r1.AttachCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RunGrid(names[:1], cells); err != nil {
		t.Fatal(err)
	}
	if err := r1.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Resume: a fresh Runner on the same file completes the grid. The
	// first workload's cells must be served from the checkpoint and the
	// final grid must match an uninterrupted run exactly.
	r2 := NewRunner(resCfg(nil))
	if err := r2.AttachCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	grid, err := r2.RunGrid(names, cells)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CheckpointHits() == 0 {
		t.Fatalf("resumed run never hit the checkpoint")
	}
	if !reflect.DeepEqual(grid, clean) {
		t.Fatalf("resumed grid diverged from uninterrupted run:\ngot:  %+v\nwant: %+v", grid, clean)
	}
	if err := r2.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// A config change must refuse the file rather than replay wrong
	// numbers.
	other := resCfg(nil)
	other.Seed = 0xBADC0FFEE
	r3 := NewRunner(other)
	if err := r3.AttachCheckpoint(path); err == nil {
		t.Fatalf("checkpoint accepted a different configuration")
	}

	// A torn trailing record (killed mid-append) must be tolerated.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	r4 := NewRunner(resCfg(nil))
	if err := r4.AttachCheckpoint(path); err != nil {
		t.Fatalf("torn checkpoint refused: %v", err)
	}
	grid4, err := r4.RunGrid(names, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grid4, clean) {
		t.Fatalf("torn-checkpoint resume diverged from uninterrupted run")
	}
}
