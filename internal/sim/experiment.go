package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cpu"

	"repro/internal/dram"
	"repro/internal/flight"
	"repro/internal/mitigation"
	"repro/internal/workload"
)

// ExpConfig parameterizes the figure-regeneration experiments.
type ExpConfig struct {
	// Window is the simulated measurement window (default one refresh
	// window, 64ms, matching the paper's per-64ms metrics).
	Window dram.PS
	// Cores (default 4).
	Cores int
	// Seed for workload and scheme randomization.
	Seed uint64
	// Calibrate runs a baseline pass first and regenerates streams with
	// the measured IPC so hot rows hit their Table II activation targets
	// within real time (default true; see DESIGN.md).
	Calibrate bool
	// Parallel bounds how many grid cells simulate concurrently (0 =
	// GOMAXPROCS, 1 = serial). Each cell builds a fully isolated system,
	// and results are collected by cell index, so the value changes
	// wall-clock only — never the numbers (see DESIGN.md "Concurrency
	// model").
	Parallel int
	// Geometry/Timing override the baseline system.
	Geometry dram.Geometry
	Timing   dram.Timing
}

func (e *ExpConfig) fillDefaults() {
	if e.Window == 0 {
		e.Window = 64 * dram.Millisecond
	}
	if e.Cores == 0 {
		e.Cores = 4
	}
	if e.Geometry == (dram.Geometry{}) {
		e.Geometry = dram.Baseline()
	}
	if e.Timing == (dram.Timing{}) {
		e.Timing = dram.DDR4()
	}
	if e.Seed == 0 {
		e.Seed = 0x41515541 // "AQUA"
	}
	if e.Parallel <= 0 {
		e.Parallel = runtime.GOMAXPROCS(0)
	}
}

// Default ExpConfig calibration flag handling: zero value means enabled.
// (Use NoCalibration to disable in fast tests.)

// WorkloadRun is one (workload, scheme) measurement.
type WorkloadRun struct {
	Workload string
	Scheme   Scheme
	TRH      int64
	Result   Result
	// NormIPC is IPC relative to the unprotected baseline of the same
	// workload (1.0 = no slowdown).
	NormIPC float64
}

// Runner executes workload x scheme grids with shared calibration. A
// Runner is safe for concurrent use: the per-workload calibration and
// baseline measurement are cached under a mutex and deduplicated with
// singleflight semantics, so concurrent cells wanting the same workload
// block on one shared pass instead of repeating it, while each cell's
// own simulation runs on a fully isolated system build.
type Runner struct {
	cfg ExpConfig
	// region is the software-visible address region, fixed for the
	// Runner's geometry/timing and shared by every stream build.
	region workload.Region

	mu sync.Mutex // guards ipcCache, baseCache and genCache
	// calibrated per-workload IPC from the baseline pass.
	ipcCache map[string]float64
	// measured baseline results, keyed by workload (the baseline run
	// depends only on the workload and its calibrated IPC, not on the
	// scheme or threshold being compared against).
	baseCache map[string]Result
	// genCache shares workload generators across grid cells. A generator
	// is a pure function of (spec, core, nominal IPC) under the Runner's
	// fixed region/seed/params and is immutable once built, so every cell
	// of a workload can draw fresh streams from one shared instance
	// instead of re-deriving the hot-row placement and background set.
	genCache map[genKey]*workload.Generator

	ipcFlight  flight.Group[string, float64]
	baseFlight flight.Group[string, Result]
}

type genKey struct {
	spec    string
	core    int
	nominal float64
}

// NewRunner builds a Runner.
func NewRunner(cfg ExpConfig) *Runner {
	cfg.fillDefaults()
	return &Runner{
		cfg:       cfg,
		region:    VisibleRegion(Config{Geometry: cfg.Geometry, Timing: cfg.Timing}),
		ipcCache:  make(map[string]float64),
		baseCache: make(map[string]Result),
		genCache:  make(map[genKey]*workload.Generator),
	}
}

// measuredBaseline runs (or returns the cached) baseline measurement for a
// workload at the given nominal IPC.
func (r *Runner) measuredBaseline(name string, nominal float64) (Result, error) {
	r.mu.Lock()
	res, ok := r.baseCache[name]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	return r.baseFlight.Do(name, func() (Result, error) {
		// A flight that completed between the cache miss and Do may have
		// already stored the result.
		r.mu.Lock()
		res, ok := r.baseCache[name]
		r.mu.Unlock()
		if ok {
			return res, nil
		}
		res, err := r.runOnce(name, SchemeBaseline, 1000, nominal)
		if err != nil {
			return Result{}, err
		}
		r.mu.Lock()
		r.baseCache[name] = res
		r.mu.Unlock()
		return res, nil
	})
}

// Config returns the effective experiment configuration.
func (r *Runner) Config() ExpConfig { return r.cfg }

// caseSpecs returns per-core specs for a named case: a rate workload
// (same spec on every core) or a mix.
func caseSpecs(name string) ([]workload.Spec, error) {
	if spec, ok := workload.ByName(name); ok {
		return []workload.Spec{spec, spec, spec, spec}, nil
	}
	mixes := workload.Mixes()
	for i, m := range mixes {
		if workload.MixName(i, m) == name || fmt.Sprintf("mix%02d", i+1) == name {
			return m[:], nil
		}
	}
	return nil, fmt.Errorf("sim: unknown workload %q", name)
}

// AllCaseNames returns the 34 workload names: 18 SPEC + 16 mixes.
func AllCaseNames() []string {
	var names []string
	for _, s := range workload.SPEC17() {
		names = append(names, s.Name)
	}
	for i := range workload.Mixes() {
		names = append(names, fmt.Sprintf("mix%02d", i+1))
	}
	return names
}

// SPECCaseNames returns the 18 SPEC workload names.
func SPECCaseNames() []string {
	var names []string
	for _, s := range workload.SPEC17() {
		names = append(names, s.Name)
	}
	return names
}

// streamsFor builds per-core streams for the case with the given nominal
// IPC. Stream lengths encode a fixed instruction budget — the paper's
// methodology — so a slowed-down scheme executes the same work over a
// longer simulated time, and per-64ms metrics are rate-normalized.
func (r *Runner) streamsFor(name string, nominalIPC float64) ([]cpu.Stream, error) {
	specs, err := caseSpecs(name)
	if err != nil {
		return nil, err
	}
	if len(specs) < r.cfg.Cores {
		return nil, fmt.Errorf("sim: case %q has %d specs for %d cores", name, len(specs), r.cfg.Cores)
	}
	windowInstr := float64(r.cfg.Window) / 1e12 * 3e9 * nominalIPC
	out := make([]cpu.Stream, r.cfg.Cores)
	for i := 0; i < r.cfg.Cores; i++ {
		spec := specs[i]
		gen := r.generator(spec, i, nominalIPC)
		reqs := int64(windowInstr*spec.MPKI/1000) + 16
		out[i] = gen.Stream(reqs, r.cfg.Seed+uint64(i)*7919)
	}
	return out, nil
}

// generator returns the shared generator for (spec, core, nominal IPC),
// building it on first use. Generators are immutable after construction
// and streams carry their own RNG state, so sharing one across concurrent
// cells cannot couple their results.
func (r *Runner) generator(spec workload.Spec, coreIdx int, nominalIPC float64) *workload.Generator {
	key := genKey{spec: spec.Name, core: coreIdx, nominal: nominalIPC}
	r.mu.Lock()
	gen, ok := r.genCache[key]
	r.mu.Unlock()
	if ok {
		return gen
	}
	params := workload.Params{
		EpochLength: r.cfg.Timing.TREFW,
		NominalIPC:  nominalIPC,
		Cores:       r.cfg.Cores,
	}
	gen = workload.NewGenerator(spec, r.region, coreIdx, r.cfg.Seed, params)
	r.mu.Lock()
	// A concurrent builder may have won the race; keep the first instance
	// (both are identical by construction).
	if prior, ok := r.genCache[key]; ok {
		gen = prior
	} else {
		r.genCache[key] = gen
	}
	r.mu.Unlock()
	return gen
}

// baselineIPC returns (and caches) the calibrated baseline IPC for a case.
func (r *Runner) baselineIPC(name string) (float64, error) {
	r.mu.Lock()
	ipc, ok := r.ipcCache[name]
	r.mu.Unlock()
	if ok {
		return ipc, nil
	}
	return r.ipcFlight.Do(name, func() (float64, error) {
		r.mu.Lock()
		ipc, ok := r.ipcCache[name]
		r.mu.Unlock()
		if ok {
			return ipc, nil
		}
		res, err := r.runOnce(name, SchemeBaseline, 1000, 1.0)
		if err != nil {
			return 0, err
		}
		ipc = res.IPC
		if ipc <= 0.01 {
			ipc = 0.01
		}
		if ipc > 2 {
			ipc = 2
		}
		r.mu.Lock()
		r.ipcCache[name] = ipc
		r.mu.Unlock()
		return ipc, nil
	})
}

// baseline resolves the shared per-workload work — the calibration pass
// (when enabled) and the baseline measurement — and returns the baseline
// result plus the nominal IPC every cell of this workload simulates at.
// Concurrent callers for the same workload share one execution.
func (r *Runner) baseline(name string) (Result, float64, error) {
	nominal := 1.0
	if r.cfg.Calibrate {
		ipc, err := r.baselineIPC(name)
		if err != nil {
			return Result{}, 0, err
		}
		nominal = ipc
	}
	base, err := r.measuredBaseline(name, nominal)
	if err != nil {
		return Result{}, 0, err
	}
	return base, nominal, nil
}

// runOnce builds and runs one system.
func (r *Runner) runOnce(name string, scheme Scheme, trh int64, nominalIPC float64) (Result, error) {
	return r.runVariantOnce(name, scheme, trh, nominalIPC, Config{})
}

// runVariantOnce builds and runs one system with structural overrides
// (tracker kind, bloom/cache sizing, proactive drain) merged in.
func (r *Runner) runVariantOnce(name string, scheme Scheme, trh int64, nominalIPC float64, overrides Config) (Result, error) {
	streams, err := r.streamsFor(name, nominalIPC)
	if err != nil {
		return Result{}, err
	}
	cfg := Config{
		Geometry:        r.cfg.Geometry,
		Timing:          r.cfg.Timing,
		TRH:             trh,
		Scheme:          scheme,
		Cores:           r.cfg.Cores,
		Seed:            r.cfg.Seed,
		Tracker:         overrides.Tracker,
		BloomGroupSize:  overrides.BloomGroupSize,
		FPTCacheEntries: overrides.FPTCacheEntries,
		ProactiveDrain:  overrides.ProactiveDrain,
	}
	sys := NewSystem(cfg, streams)
	return sys.Run(0), nil
}

// RunVariant measures one workload under a scheme with structural
// overrides, normalized against the unmodified baseline.
func (r *Runner) RunVariant(name string, scheme Scheme, trh int64, overrides Config) (WorkloadRun, error) {
	base, nominal, err := r.baseline(name)
	if err != nil {
		return WorkloadRun{}, err
	}
	res, err := r.runVariantOnce(name, scheme, trh, nominal, overrides)
	if err != nil {
		return WorkloadRun{}, err
	}
	norm := 1.0
	if base.IPC > 0 {
		norm = res.IPC / base.IPC
	}
	return WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: res, NormIPC: norm}, nil
}

// Run measures one workload under one scheme at the given threshold,
// returning the scheme result and the normalized IPC vs the baseline.
func (r *Runner) Run(name string, scheme Scheme, trh int64) (WorkloadRun, error) {
	base, nominal, err := r.baseline(name)
	if err != nil {
		return WorkloadRun{}, err
	}
	if scheme == SchemeBaseline {
		return WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: base, NormIPC: 1}, nil
	}
	res, err := r.runOnce(name, scheme, trh, nominal)
	if err != nil {
		return WorkloadRun{}, err
	}
	norm := 1.0
	if base.IPC > 0 {
		norm = res.IPC / base.IPC
	}
	return WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: res, NormIPC: norm}, nil
}

// RunGrid measures each workload under each (scheme, trh) pair, reusing
// per-workload baselines. Results are grouped by workload in input order.
type GridCell struct {
	Scheme Scheme
	TRH    int64
}

// GridResult holds one workload's row of the grid.
type GridResult struct {
	Workload string
	Baseline Result
	Cells    []WorkloadRun
}

// RunGrid runs the full grid: every (workload, cell) pair fans out to
// the worker pool (cfg.Parallel wide), each on its own isolated system
// build, with the per-workload calibration and baseline deduplicated
// across concurrent cells. Results land in preallocated slots addressed
// by (workload index, cell index), so the returned grid — and anything
// rendered from it — is byte-identical to a serial run regardless of
// completion order.
func (r *Runner) RunGrid(names []string, cells []GridCell) ([]GridResult, error) {
	out := make([]GridResult, len(names))
	for i, name := range names {
		out[i] = GridResult{Workload: name, Cells: make([]WorkloadRun, len(cells))}
	}
	// One task per cell, plus one per workload so baselines are resolved
	// (and recorded in out[i].Baseline) even for an empty cell list.
	perName := len(cells) + 1
	err := flight.ForEach(len(names)*perName, r.cfg.Parallel, func(k int) error {
		i, j := k/perName, k%perName
		if j == len(cells) {
			base, _, err := r.baseline(names[i])
			if err != nil {
				return err
			}
			out[i].Baseline = base
			return nil
		}
		run, err := r.Run(names[i], cells[j].Scheme, cells[j].TRH)
		if err != nil {
			return err
		}
		out[i].Cells[j] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RowTierCounts measures the Table II characterization on a baseline run:
// the number of rows whose activation count within the window reaches each
// tier (scaled to the 64ms epoch when the window differs).
func (r *Runner) RowTierCounts(name string, tiers []int64) (map[int64]int, error) {
	nominal := 1.0
	if r.cfg.Calibrate {
		ipc, err := r.baselineIPC(name)
		if err != nil {
			return nil, err
		}
		nominal = ipc
	}
	streams, err := r.streamsFor(name, nominal)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Geometry: r.cfg.Geometry, Timing: r.cfg.Timing,
		TRH: 1000, Scheme: SchemeBaseline, Cores: r.cfg.Cores, Seed: r.cfg.Seed,
	}
	sys := NewSystem(cfg, streams)
	res := sys.Run(0)

	scale := float64(res.SimTime) / float64(64*dram.Millisecond)
	if scale == 0 {
		scale = 1
	}
	counts := make(map[int64]int, len(tiers))
	rows := cfg.Geometry.Rows()
	for row := 0; row < rows; row++ {
		acts := float64(sys.Rank.ActCount(dram.Row(row)))
		for _, tier := range tiers {
			if acts >= float64(tier)*scale {
				counts[tier]++
			}
		}
	}
	sortTiers(tiers)
	return counts, nil
}

func sortTiers(tiers []int64) {
	sort.Slice(tiers, func(i, j int) bool { return tiers[i] < tiers[j] })
}

// LookupBreakdown summarizes Translate resolutions as fractions (Figure
// 10's four categories).
type LookupBreakdown struct {
	BloomFiltered float64
	CacheHit      float64
	Singleton     float64
	DRAM          float64
}

// BreakdownOf extracts the Figure 10 fractions from a result.
func BreakdownOf(res Result) LookupBreakdown {
	s := res.MitStats
	total := float64(s.Lookups[mitigation.LookupBloomFiltered] +
		s.Lookups[mitigation.LookupCacheHit] +
		s.Lookups[mitigation.LookupSingleton] +
		s.Lookups[mitigation.LookupDRAM])
	if total == 0 {
		return LookupBreakdown{}
	}
	return LookupBreakdown{
		BloomFiltered: float64(s.Lookups[mitigation.LookupBloomFiltered]) / total,
		CacheHit:      float64(s.Lookups[mitigation.LookupCacheHit]) / total,
		Singleton:     float64(s.Lookups[mitigation.LookupSingleton]) / total,
		DRAM:          float64(s.Lookups[mitigation.LookupDRAM]) / total,
	}
}
