package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cellcache"
	"repro/internal/cpu"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/mitigation"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ExpConfig parameterizes the figure-regeneration experiments.
type ExpConfig struct {
	// Window is the simulated measurement window (default one refresh
	// window, 64ms, matching the paper's per-64ms metrics).
	Window dram.PS
	// Cores (default 4).
	Cores int
	// Seed for workload and scheme randomization.
	Seed uint64
	// Calibrate runs a baseline pass first and regenerates streams with
	// the measured IPC so hot rows hit their Table II activation targets
	// within real time (default true; see DESIGN.md).
	Calibrate bool
	// Parallel bounds how many grid cells simulate concurrently (0 =
	// GOMAXPROCS, 1 = serial). Each cell builds a fully isolated system,
	// and results are collected by cell index, so the value changes
	// wall-clock only — never the numbers (see DESIGN.md "Concurrency
	// model").
	//aquakey:exclude concurrency width changes wall-clock only; results are collected by index
	Parallel int
	// Geometry/Timing override the baseline system.
	Geometry dram.Geometry
	Timing   dram.Timing
	// Faults maps grid cells to injected fault plans (see fault.ParseRules
	// for the grammar). Nil means no faults anywhere. Cell-level kinds
	// ("panic", "transient") fire before the simulation is built; hardware
	// kinds are threaded through the system layers.
	//aquakey:exclude a cell matched by a fault rule bypasses the cache entirely (see RunCtx); unmatched cells are bit-identical to fault-free runs
	Faults *fault.Rules
	// Retries bounds re-attempts for transiently failing cells (default 2
	// re-attempts after the first try; negative disables retry). Transient
	// fault arms are dropped on retry attempts, so an injected transient
	// failure clears exactly the way a real one would.
	//aquakey:exclude retry count changes recovery behaviour only; a cell that succeeds yields the same bytes on any attempt
	Retries int
	// OnCellStart, when set, is called at the start of every cell compute
	// attempt (after cache/memo/checkpoint resolution — served cells never
	// fire it). The experiment farm hooks it to count compute opportunities
	// for harness-level fault injection (fault.WorkerKill); it must not
	// mutate anything the simulation reads.
	//aquakey:exclude observation hook; fires only on cells that actually simulate and cannot change their results
	OnCellStart func(workload string, scheme Scheme, trh int64)
	// DisableTraceReplay turns off the record-once/replay-many stream
	// tier (see tracetier.go): every cell regenerates its workload
	// streams from the generator instead of replaying a captured trace.
	// Replay is byte-identical to generation — captures carry addresses
	// and instruction gaps, never timestamps — so the flag changes
	// wall-clock only; it exists for the replay-vs-generate equivalence
	// gate (make trace-smoke).
	//aquakey:exclude replay is byte-identical to generation (equivalence gate: make trace-smoke); the tier changes wall-clock only
	DisableTraceReplay bool
	// TraceBudgetBytes bounds the in-memory captured-trace tier (0 =
	// default 1 GiB, negative = unlimited). Captures past the budget
	// spill as v2 trace files under the attached cell cache's directory
	// and replay from the memory mapping, or — with no disk tier — are
	// served once, uncached.
	//aquakey:exclude the budget moves streams between replay tiers, which all yield the same bytes
	TraceBudgetBytes int64
}

func (e *ExpConfig) fillDefaults() {
	if e.Window == 0 {
		e.Window = 64 * dram.Millisecond
	}
	if e.Cores == 0 {
		e.Cores = 4
	}
	if e.Geometry == (dram.Geometry{}) {
		e.Geometry = dram.Baseline()
	}
	if e.Timing == (dram.Timing{}) {
		e.Timing = dram.DDR4()
	}
	if e.Seed == 0 {
		e.Seed = 0x41515541 // "AQUA"
	}
	if e.Parallel <= 0 {
		e.Parallel = runtime.GOMAXPROCS(0)
	}
	if e.Retries == 0 {
		e.Retries = 2
	}
	if e.Retries < 0 {
		e.Retries = 0
	}
}

// validate rejects configurations no cell could run under. It operates on
// an already-defaulted config (NewRunner calls fillDefaults first).
func (e *ExpConfig) validate() error {
	if e.Window < 0 {
		return fmt.Errorf("sim: negative window %d", e.Window)
	}
	if e.Cores < 1 || e.Cores > 4 {
		return fmt.Errorf("sim: cores must be 1..4, got %d", e.Cores)
	}
	if err := e.Geometry.Validate(); err != nil {
		return err
	}
	return e.Timing.Validate()
}

// Default ExpConfig calibration flag handling: zero value means enabled.
// (Use NoCalibration to disable in fast tests.)

// WorkloadRun is one (workload, scheme) measurement.
type WorkloadRun struct {
	Workload string
	Scheme   Scheme
	TRH      int64
	Result   Result
	// NormIPC is IPC relative to the unprotected baseline of the same
	// workload (1.0 = no slowdown).
	NormIPC float64
}

// Runner executes workload x scheme grids with shared calibration. A
// Runner is safe for concurrent use: the per-workload calibration and
// baseline measurement are cached under a mutex and deduplicated with
// singleflight semantics, so concurrent cells wanting the same workload
// block on one shared pass instead of repeating it, while each cell's
// own simulation runs on a fully isolated system build.
type Runner struct {
	cfg ExpConfig
	// region is the software-visible address region, fixed for the
	// Runner's geometry/timing and shared by every stream build.
	region workload.Region
	// initErr records a construction failure (bad config, geometry the
	// AQUA layout cannot host). A Runner with initErr set is inert: every
	// cell it is asked to run fails with a CellError wrapping initErr
	// instead of crashing the process.
	initErr error
	// retryBackoff, when set, is called before re-attempt n (1-based) of a
	// transiently failing cell. Nil means retry immediately; tests hook it
	// to count attempts. Deliberately not time-based by default — the
	// simulator is deterministic and wall-clock sleeps are banned.
	retryBackoff func(attempt int)
	// ckpt, when attached, persists completed cells so an interrupted grid
	// run can resume without recomputing them. Nil-safe: all lookups on a
	// nil checkpoint miss.
	ckpt *checkpoint
	// cells, when attached, is the content-addressed result cache (see
	// cellkey.go): clean completed cells are served from it across
	// processes and written back to it. Nil means no cache.
	cells *cellcache.Store
	// leaser, when attached alongside cells, coordinates cell computation
	// across processes sharing the cache: a missed cell claims a compute
	// lease before simulating, and a claim lost to another owner polls the
	// store instead of duplicating the work (see CellLeaser). Nil means
	// every miss simulates.
	leaser CellLeaser

	mu sync.Mutex
	// calibrated per-workload IPC from the baseline pass.
	ipcCache map[string]float64 // guarded by mu
	// measured baseline results, keyed by workload (the baseline run
	// depends only on the workload and its calibrated IPC, not on the
	// scheme or threshold being compared against).
	baseCache map[string]Result // guarded by mu
	// genCache shares workload generators across grid cells. A generator
	// is a pure function of (spec, core, nominal IPC) under the Runner's
	// fixed region/seed/params and is immutable once built, so every cell
	// of a workload can draw fresh streams from one shared instance
	// instead of re-deriving the hot-row placement and background set.
	genCache map[genKey]*workload.Generator // guarded by mu
	// traceMem is the in-memory tier of the capture/replay layer
	// (tracetier.go): packed per-core request traces keyed like genCache,
	// replayed by every cell sharing the workload. traceBytes tracks its
	// footprint against the budget; traceDisk holds mapped spill files.
	traceMem   map[genKey]*trace.Packed    // guarded by mu
	traceDisk  map[genKey]*trace.MappedSet // guarded by mu
	traceBytes int64                       // guarded by mu
	// cellMemo memoizes clean completed cells for the life of the Runner,
	// so identical grid cells (the same baseline repeated at every sweep
	// point) simulate at most once even with no cache attached and even
	// when requested sequentially.
	cellMemo map[cellKey]WorkloadRun // guarded by mu
	// cellStats counts how cacheable cell requests were satisfied.
	cellStats CellStats // guarded by mu

	ipcFlight  flight.Group[string, float64]
	baseFlight flight.Group[string, Result]
	cellFlight flight.Group[cellKey, WorkloadRun]
}

type genKey struct {
	spec    string
	core    int
	nominal float64
}

// NewRunner builds a Runner. It never panics: an invalid configuration
// yields an inert Runner whose cells all fail with a CellError wrapping
// the construction error (use NewRunnerE or Err to see it directly).
func NewRunner(cfg ExpConfig) *Runner {
	cfg.fillDefaults()
	r := &Runner{
		cfg:       cfg,
		ipcCache:  make(map[string]float64),
		baseCache: make(map[string]Result),
		genCache:  make(map[genKey]*workload.Generator),
		traceMem:  make(map[genKey]*trace.Packed),
		traceDisk: make(map[genKey]*trace.MappedSet),
		cellMemo:  make(map[cellKey]WorkloadRun),
	}
	if err := cfg.validate(); err != nil {
		r.initErr = err
		return r
	}
	// VisibleRegion walks the AQUA table layout, which rejects geometries
	// it cannot host by panicking; convert that into a construction error.
	r.initErr = flight.Protect(func() error {
		r.region = VisibleRegion(Config{Geometry: cfg.Geometry, Timing: cfg.Timing})
		return nil
	})
	return r
}

// NewRunnerE is NewRunner with the construction error surfaced.
func NewRunnerE(cfg ExpConfig) (*Runner, error) {
	r := NewRunner(cfg)
	return r, r.initErr
}

// Err reports the construction error, if any.
func (r *Runner) Err() error { return r.initErr }

// CellError wraps one grid cell's failure with the cell's identity, so a
// broken cell reads as "cell xz/rrs/1000: ..." in the failure summary
// instead of aborting the whole run.
type CellError struct {
	Workload string
	Scheme   Scheme
	TRH      int64
	// Err is the underlying failure; a recovered panic arrives as a
	// *flight.PanicError.
	Err error
	// Stack is the goroutine stack captured at a recovered panic (nil for
	// ordinary errors).
	Stack []byte
}

// Error implements error.
func (c *CellError) Error() string {
	return fmt.Sprintf("cell %s/%s/%d: %v", c.Workload, c.Scheme, c.TRH, c.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (c *CellError) Unwrap() error { return c.Err }

// GridError aggregates every failed cell of a grid run, in grid order.
// RunGrid returns it alongside the partial grid, which still holds every
// healthy cell's result.
type GridError struct {
	Cells []*CellError
}

// Error implements error.
func (g *GridError) Error() string {
	if len(g.Cells) == 1 {
		return g.Cells[0].Error()
	}
	return fmt.Sprintf("%d cells failed (first: %v)", len(g.Cells), g.Cells[0])
}

// measuredBaseline runs (or returns the cached) baseline measurement for a
// workload at the given nominal IPC.
func (r *Runner) measuredBaseline(ctx context.Context, name string, nominal float64) (Result, error) {
	r.mu.Lock()
	res, ok := r.baseCache[name]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	return r.baseFlight.DoCtx(ctx, name, func() (Result, error) {
		// A flight that completed between the cache miss and Do may have
		// already stored the result.
		r.mu.Lock()
		res, ok := r.baseCache[name]
		r.mu.Unlock()
		if ok {
			return res, nil
		}
		if res, ok := r.ckpt.lookupBase(name); ok {
			r.mu.Lock()
			r.baseCache[name] = res
			r.mu.Unlock()
			return res, nil
		}
		res, err := r.runOnce(ctx, name, SchemeBaseline, 1000, nominal, 0)
		if err != nil {
			return Result{}, err
		}
		r.mu.Lock()
		r.baseCache[name] = res
		r.mu.Unlock()
		r.ckpt.storeBase(name, res)
		return res, nil
	})
}

// Config returns the effective experiment configuration.
func (r *Runner) Config() ExpConfig { return r.cfg }

// caseSpecs returns per-core specs for a named case: a rate workload
// (same spec on every core) or a mix.
func caseSpecs(name string) ([]workload.Spec, error) {
	if spec, ok := workload.ByName(name); ok {
		return []workload.Spec{spec, spec, spec, spec}, nil
	}
	mixes := workload.Mixes()
	for i, m := range mixes {
		if workload.MixName(i, m) == name || fmt.Sprintf("mix%02d", i+1) == name {
			return m[:], nil
		}
	}
	return nil, fmt.Errorf("sim: unknown workload %q", name)
}

// AllCaseNames returns the 34 workload names: 18 SPEC + 16 mixes.
func AllCaseNames() []string {
	var names []string
	for _, s := range workload.SPEC17() {
		names = append(names, s.Name)
	}
	for i := range workload.Mixes() {
		names = append(names, fmt.Sprintf("mix%02d", i+1))
	}
	return names
}

// SPECCaseNames returns the 18 SPEC workload names.
func SPECCaseNames() []string {
	var names []string
	for _, s := range workload.SPEC17() {
		names = append(names, s.Name)
	}
	return names
}

// streamsFor builds per-core streams for the case with the given nominal
// IPC. Stream lengths encode a fixed instruction budget — the paper's
// methodology — so a slowed-down scheme executes the same work over a
// longer simulated time, and per-64ms metrics are rate-normalized.
func (r *Runner) streamsFor(name string, nominalIPC float64) ([]cpu.Stream, error) {
	specs, err := caseSpecs(name)
	if err != nil {
		return nil, err
	}
	if len(specs) < r.cfg.Cores {
		return nil, fmt.Errorf("sim: case %q has %d specs for %d cores", name, len(specs), r.cfg.Cores)
	}
	windowInstr := float64(r.cfg.Window) / 1e12 * 3e9 * nominalIPC
	out := make([]cpu.Stream, r.cfg.Cores)
	for i := 0; i < r.cfg.Cores; i++ {
		spec := specs[i]
		reqs := int64(windowInstr*spec.MPKI/1000) + 16
		if r.cfg.DisableTraceReplay {
			gen := r.generator(spec, i, nominalIPC)
			out[i] = gen.Stream(reqs, r.cfg.Seed+uint64(i)*7919)
			continue
		}
		out[i] = r.replayStream(spec, i, nominalIPC, reqs)
	}
	return out, nil
}

// generator returns the shared generator for (spec, core, nominal IPC),
// building it on first use. Generators are immutable after construction
// and streams carry their own RNG state, so sharing one across concurrent
// cells cannot couple their results.
func (r *Runner) generator(spec workload.Spec, coreIdx int, nominalIPC float64) *workload.Generator {
	key := genKey{spec: spec.Name, core: coreIdx, nominal: nominalIPC}
	r.mu.Lock()
	gen, ok := r.genCache[key]
	r.mu.Unlock()
	if ok {
		return gen
	}
	params := workload.Params{
		EpochLength: r.cfg.Timing.TREFW,
		NominalIPC:  nominalIPC,
		Cores:       r.cfg.Cores,
	}
	gen = workload.NewGenerator(spec, r.region, coreIdx, r.cfg.Seed, params)
	r.mu.Lock()
	// A concurrent builder may have won the race; keep the first instance
	// (both are identical by construction).
	if prior, ok := r.genCache[key]; ok {
		gen = prior
	} else {
		r.genCache[key] = gen
	}
	r.mu.Unlock()
	return gen
}

// baselineIPC returns (and caches) the calibrated baseline IPC for a case.
func (r *Runner) baselineIPC(ctx context.Context, name string) (float64, error) {
	r.mu.Lock()
	ipc, ok := r.ipcCache[name]
	r.mu.Unlock()
	if ok {
		return ipc, nil
	}
	return r.ipcFlight.DoCtx(ctx, name, func() (float64, error) {
		r.mu.Lock()
		ipc, ok := r.ipcCache[name]
		r.mu.Unlock()
		if ok {
			return ipc, nil
		}
		if ipc, ok := r.ckpt.lookupIPC(name); ok {
			r.mu.Lock()
			r.ipcCache[name] = ipc
			r.mu.Unlock()
			return ipc, nil
		}
		res, err := r.runOnce(ctx, name, SchemeBaseline, 1000, 1.0, 0)
		if err != nil {
			return 0, err
		}
		ipc = res.IPC
		if ipc <= 0.01 {
			ipc = 0.01
		}
		if ipc > 2 {
			ipc = 2
		}
		r.mu.Lock()
		r.ipcCache[name] = ipc
		r.mu.Unlock()
		r.ckpt.storeIPC(name, ipc)
		return ipc, nil
	})
}

// baseline resolves the shared per-workload work — the calibration pass
// (when enabled) and the baseline measurement — and returns the baseline
// result plus the nominal IPC every cell of this workload simulates at.
// Concurrent callers for the same workload share one execution.
func (r *Runner) baseline(ctx context.Context, name string) (Result, float64, error) {
	nominal := 1.0
	if r.cfg.Calibrate {
		ipc, err := r.baselineIPC(ctx, name)
		if err != nil {
			return Result{}, 0, err
		}
		nominal = ipc
	}
	base, err := r.measuredBaseline(ctx, name, nominal)
	if err != nil {
		return Result{}, 0, err
	}
	return base, nominal, nil
}

// injectorFor arms the cell's injected faults. Cell-level kinds ("panic",
// "transient") fire here, before the system is built — they model harness
// failures rather than hardware ones. Hardware kinds ride the returned
// injector into the system layers. Attempt > 0 drops transient arms, so a
// retried cell recovers exactly the way a real transient failure would.
func (r *Runner) injectorFor(name string, scheme Scheme, trh int64, attempt int) (*fault.Injector, error) {
	plan := r.cfg.Faults.PlanFor(name, scheme.String(), trh)
	if plan.Empty() {
		return nil, nil
	}
	seed := rng.Derive(r.cfg.Seed, rng.HashString(name), rng.HashString(scheme.String()), uint64(trh), 0xFA17)
	inj := fault.NewInjector(seed, plan, attempt)
	if inj.Fire(fault.CellPanic, 0) {
		panic(fmt.Sprintf("injected panic in cell %s/%s/%d", name, scheme, trh))
	}
	if inj.Fire(fault.CellTransient, 0) {
		return nil, fault.Transient(fmt.Errorf("injected transient failure in cell %s/%s/%d", name, scheme, trh))
	}
	return inj, nil
}

// runOnce builds and runs one system.
func (r *Runner) runOnce(ctx context.Context, name string, scheme Scheme, trh int64, nominalIPC float64, attempt int) (Result, error) {
	return r.runVariantOnce(ctx, name, scheme, trh, nominalIPC, Config{}, attempt)
}

// runVariantOnce builds and runs one system with structural overrides
// (tracker kind, bloom/cache sizing, proactive drain) merged in.
func (r *Runner) runVariantOnce(ctx context.Context, name string, scheme Scheme, trh int64, nominalIPC float64, overrides Config, attempt int) (Result, error) {
	streams, err := r.streamsFor(name, nominalIPC)
	if err != nil {
		return Result{}, err
	}
	inj, err := r.injectorFor(name, scheme, trh, attempt)
	if err != nil {
		return Result{}, err
	}
	cfg := Config{
		Geometry:        r.cfg.Geometry,
		Timing:          r.cfg.Timing,
		TRH:             trh,
		Scheme:          scheme,
		Cores:           r.cfg.Cores,
		Seed:            r.cfg.Seed,
		Tracker:         overrides.Tracker,
		BloomGroupSize:  overrides.BloomGroupSize,
		FPTCacheEntries: overrides.FPTCacheEntries,
		ProactiveDrain:  overrides.ProactiveDrain,
		Faults:          inj,
	}
	sys, err := NewSystemE(cfg, streams)
	if err != nil {
		return Result{}, err
	}
	return sys.RunCtx(ctx, 0)
}

// protectCell runs fn with panic isolation and bounded retry, converting
// any failure into a *CellError carrying the cell's identity (and, for a
// recovered panic, the stack). Cancellation passes through untouched so
// callers can tell "the run was stopped" from "this cell is broken".
func (r *Runner) protectCell(name string, scheme Scheme, trh int64, fn func(attempt int) error) error {
	if r.initErr != nil {
		return &CellError{Workload: name, Scheme: scheme, TRH: trh, Err: r.initErr}
	}
	err := flight.Retry(r.cfg.Retries+1, r.retryBackoff, func(attempt int) error {
		if r.cfg.OnCellStart != nil {
			r.cfg.OnCellStart(name, scheme, trh)
		}
		return fn(attempt)
	})
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	ce := &CellError{Workload: name, Scheme: scheme, TRH: trh, Err: err}
	var pe *flight.PanicError
	if errors.As(err, &pe) {
		ce.Stack = pe.Stack
	}
	return ce
}

// runCell is one unprotected cell execution: baseline resolution plus the
// scheme measurement, normalized.
func (r *Runner) runCell(ctx context.Context, name string, scheme Scheme, trh int64, attempt int) (WorkloadRun, error) {
	base, nominal, err := r.baseline(ctx, name)
	if err != nil {
		return WorkloadRun{}, err
	}
	if scheme == SchemeBaseline {
		return WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: base, NormIPC: 1}, nil
	}
	res, err := r.runOnce(ctx, name, scheme, trh, nominal, attempt)
	if err != nil {
		return WorkloadRun{}, err
	}
	norm := 1.0
	if base.IPC > 0 {
		norm = res.IPC / base.IPC
	}
	return WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: res, NormIPC: norm}, nil
}

// RunVariant measures one workload under a scheme with structural
// overrides, normalized against the unmodified baseline.
func (r *Runner) RunVariant(name string, scheme Scheme, trh int64, overrides Config) (WorkloadRun, error) {
	return r.RunVariantCtx(context.Background(), name, scheme, trh, overrides)
}

// RunVariantCtx is RunVariant with cancellation, panic isolation and
// retry. Variant runs are never checkpointed: the structural overrides are
// not part of the checkpoint cell key.
func (r *Runner) RunVariantCtx(ctx context.Context, name string, scheme Scheme, trh int64, overrides Config) (WorkloadRun, error) {
	var run WorkloadRun
	err := r.protectCell(name, scheme, trh, func(attempt int) error {
		base, nominal, err := r.baseline(ctx, name)
		if err != nil {
			return err
		}
		res, err := r.runVariantOnce(ctx, name, scheme, trh, nominal, overrides, attempt)
		if err != nil {
			return err
		}
		norm := 1.0
		if base.IPC > 0 {
			norm = res.IPC / base.IPC
		}
		run = WorkloadRun{Workload: name, Scheme: scheme, TRH: trh, Result: res, NormIPC: norm}
		return nil
	})
	if err != nil {
		return WorkloadRun{}, err
	}
	return run, nil
}

// Run measures one workload under one scheme at the given threshold,
// returning the scheme result and the normalized IPC vs the baseline.
func (r *Runner) Run(name string, scheme Scheme, trh int64) (WorkloadRun, error) {
	return r.RunCtx(context.Background(), name, scheme, trh)
}

// RunCtx is Run with cancellation, panic isolation, bounded retry for
// transient failures, checkpoint lookup/store, and cell caching. A
// failure comes back as a *CellError (identity + cause + panic stack);
// cancellation comes back as the context's error, unwrapped.
//
// Resolution order: the attached checkpoint (bound to this exact run
// configuration) wins, then the in-memory memo, then a coalesced
// in-flight execution of the same cell, then the content-addressed
// cache, and only then a fresh simulation. Cells matched by a fault rule
// skip everything but the checkpoint: they re-simulate on every request
// so injected behaviour is observed, and their results never enter the
// memo or the store. Failed (including cancelled) cells are never stored
// anywhere — only clean, complete results persist.
//
//detertaint:root
func (r *Runner) RunCtx(ctx context.Context, name string, scheme Scheme, trh int64) (WorkloadRun, error) {
	if run, ok := r.ckpt.lookupCell(name, scheme, trh); ok {
		return run, nil
	}
	if !r.cfg.Faults.PlanFor(name, scheme.String(), trh).Empty() {
		run, err := r.runCellProtected(ctx, name, scheme, trh)
		if err != nil {
			return WorkloadRun{}, err
		}
		r.ckpt.storeCell(run)
		return run, nil
	}
	key := cellKey{name, scheme, trh}
	r.mu.Lock()
	r.cellStats.Requests++
	run, ok := r.cellMemo[key]
	r.mu.Unlock()
	if ok {
		return run, nil
	}
	run, err := r.cellFlight.DoCtx(ctx, key, func() (WorkloadRun, error) {
		return r.computeCell(ctx, key)
	})
	if err != nil {
		r.mu.Lock()
		r.cellStats.Errors++
		r.mu.Unlock()
		return WorkloadRun{}, err
	}
	r.ckpt.storeCell(run)
	return run, nil
}

// computeCell resolves one clean cell inside its singleflight execution:
// memo recheck (a flight that completed between the caller's miss and
// DoCtx may have stored it), then the content-addressed cache, then a
// real simulation. Only clean results are memoized and stored.
func (r *Runner) computeCell(ctx context.Context, key cellKey) (WorkloadRun, error) {
	r.mu.Lock()
	run, ok := r.cellMemo[key]
	r.mu.Unlock()
	if ok {
		return run, nil
	}
	if r.cells != nil {
		if run, ok := r.cacheLookup(key); ok {
			r.mu.Lock()
			r.cellStats.CacheHits++
			r.cellMemo[key] = run
			r.mu.Unlock()
			return run, nil
		}
		r.mu.Lock()
		r.cellStats.CacheMisses++
		r.mu.Unlock()
	}
	if r.cells != nil && r.leaser != nil {
		if hash, err := r.CellKey(key.workload, key.scheme, key.trh); err == nil {
			run, served, err := r.awaitLease(ctx, key, hash)
			if err != nil {
				return WorkloadRun{}, err
			}
			if served {
				return run, nil
			}
			defer r.leaser.Release(hash)
		}
	}
	run, err := r.runCellProtected(ctx, key.workload, key.scheme, key.trh)
	if err != nil {
		return WorkloadRun{}, err
	}
	r.mu.Lock()
	r.cellStats.Simulated++
	r.cellMemo[key] = run
	r.mu.Unlock()
	// Defensive: the fault-rule branch in RunCtx already keeps injected
	// cells out of this path, but no run that saw a fault may ever be
	// served as a clean result.
	if r.cells != nil && run.Result.FaultStats.Injected == 0 {
		r.cacheStore(key, run)
	}
	return run, nil
}

// runCellProtected is one protected cell execution (panic isolation,
// bounded retry), without any caching.
func (r *Runner) runCellProtected(ctx context.Context, name string, scheme Scheme, trh int64) (WorkloadRun, error) {
	var run WorkloadRun
	err := r.protectCell(name, scheme, trh, func(attempt int) error {
		var err error
		run, err = r.runCell(ctx, name, scheme, trh, attempt)
		return err
	})
	if err != nil {
		return WorkloadRun{}, err
	}
	return run, nil
}

// RunGrid measures each workload under each (scheme, trh) pair, reusing
// per-workload baselines. Results are grouped by workload in input order.
type GridCell struct {
	Scheme Scheme
	TRH    int64
}

// GridResult holds one workload's row of the grid.
type GridResult struct {
	Workload string
	Baseline Result
	Cells    []WorkloadRun
}

// RunGrid runs the full grid: every (workload, cell) pair fans out to
// the worker pool (cfg.Parallel wide), each on its own isolated system
// build, with the per-workload calibration and baseline deduplicated
// across concurrent cells. Results land in preallocated slots addressed
// by (workload index, cell index), so the returned grid — and anything
// rendered from it — is byte-identical to a serial run regardless of
// completion order.
func (r *Runner) RunGrid(names []string, cells []GridCell) ([]GridResult, error) {
	return r.RunGridCtx(context.Background(), names, cells)
}

// RunGridCtx is RunGrid with cancellation and per-cell fault isolation. A
// failing cell does not abort the fan-out: its failure is recorded and the
// remaining cells run to completion. The partial grid is always returned;
// when any cells failed, the error is a *GridError listing them in grid
// order. When the context is cancelled the grid stops promptly and the
// context's error is returned with whatever completed so far.
//
//detertaint:root
func (r *Runner) RunGridCtx(ctx context.Context, names []string, cells []GridCell) ([]GridResult, error) {
	out := make([]GridResult, len(names))
	for i, name := range names {
		out[i] = GridResult{Workload: name, Cells: make([]WorkloadRun, len(cells))}
	}
	// One task per cell, plus one per workload so baselines are resolved
	// (and recorded in out[i].Baseline) even for an empty cell list.
	perName := len(cells) + 1
	cellErrs := make([]*CellError, len(names)*perName)
	err := flight.ForEachCtx(ctx, len(names)*perName, r.cfg.Parallel, func(k int) error {
		i, j := k/perName, k%perName
		scheme, trh := SchemeBaseline, int64(1000)
		if j < len(cells) {
			scheme, trh = cells[j].Scheme, cells[j].TRH
		}
		run, err := r.RunCtx(ctx, names[i], scheme, trh)
		if err != nil {
			var ce *CellError
			if errors.As(err, &ce) {
				// Isolate the broken cell; the rest of the grid proceeds.
				cellErrs[k] = ce
				return nil
			}
			// Cancellation (or a non-cell failure): abort the fan-out.
			return err
		}
		if j == len(cells) {
			out[i].Baseline = run.Result
		} else {
			out[i].Cells[j] = run
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	var failed []*CellError
	for _, ce := range cellErrs {
		if ce != nil {
			failed = append(failed, ce)
		}
	}
	if len(failed) > 0 {
		return out, &GridError{Cells: failed}
	}
	return out, nil
}

// RowTierCounts measures the Table II characterization on a baseline run:
// the number of rows whose activation count within the window reaches each
// tier (scaled to the 64ms epoch when the window differs).
func (r *Runner) RowTierCounts(name string, tiers []int64) (map[int64]int, error) {
	if r.initErr != nil {
		return nil, r.initErr
	}
	nominal := 1.0
	if r.cfg.Calibrate {
		ipc, err := r.baselineIPC(context.Background(), name)
		if err != nil {
			return nil, err
		}
		nominal = ipc
	}
	streams, err := r.streamsFor(name, nominal)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Geometry: r.cfg.Geometry, Timing: r.cfg.Timing,
		TRH: 1000, Scheme: SchemeBaseline, Cores: r.cfg.Cores, Seed: r.cfg.Seed,
	}
	sys, err := NewSystemE(cfg, streams)
	if err != nil {
		return nil, err
	}
	res := sys.Run(0)

	scale := float64(res.SimTime) / float64(64*dram.Millisecond)
	if scale == 0 {
		scale = 1
	}
	counts := make(map[int64]int, len(tiers))
	rows := cfg.Geometry.Rows()
	for row := 0; row < rows; row++ {
		acts := float64(sys.Rank.ActCount(dram.Row(row)))
		for _, tier := range tiers {
			if acts >= float64(tier)*scale {
				counts[tier]++
			}
		}
	}
	sortTiers(tiers)
	return counts, nil
}

func sortTiers(tiers []int64) {
	sort.Slice(tiers, func(i, j int) bool { return tiers[i] < tiers[j] })
}

// LookupBreakdown summarizes Translate resolutions as fractions (Figure
// 10's four categories).
type LookupBreakdown struct {
	BloomFiltered float64
	CacheHit      float64
	Singleton     float64
	DRAM          float64
}

// BreakdownOf extracts the Figure 10 fractions from a result.
func BreakdownOf(res Result) LookupBreakdown {
	s := res.MitStats
	total := float64(s.Lookups[mitigation.LookupBloomFiltered] +
		s.Lookups[mitigation.LookupCacheHit] +
		s.Lookups[mitigation.LookupSingleton] +
		s.Lookups[mitigation.LookupDRAM])
	if total == 0 {
		return LookupBreakdown{}
	}
	return LookupBreakdown{
		BloomFiltered: float64(s.Lookups[mitigation.LookupBloomFiltered]) / total,
		CacheHit:      float64(s.Lookups[mitigation.LookupCacheHit]) / total,
		Singleton:     float64(s.Lookups[mitigation.LookupSingleton]) / total,
		DRAM:          float64(s.Lookups[mitigation.LookupDRAM]) / total,
	}
}
