// Package sim binds the pieces into a runnable system — rank, memory
// controller, mitigation engine, interval-model cores, security monitor —
// and provides the experiment harness used to regenerate the paper's
// figures: build a baseline and a mitigated system over identical request
// streams, run both, and report normalized IPC, migrations per 64ms, and
// the FPT-lookup breakdown.
package sim

import (
	"context"
	"fmt"

	"math"

	"repro/internal/blockhammer"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/invariant"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/power"
	"repro/internal/rrs"
	"repro/internal/security"
	"repro/internal/tracker"
	"repro/internal/vrefresh"
	"repro/internal/workload"
)

// Scheme names a mitigation configuration the harness can instantiate.
type Scheme int

const (
	// SchemeBaseline runs unprotected.
	SchemeBaseline Scheme = iota
	// SchemeAquaSRAM is AQUA with SRAM tables (Section IV).
	SchemeAquaSRAM
	// SchemeAquaMemMapped is AQUA with memory-mapped tables (Section V).
	SchemeAquaMemMapped
	// SchemeRRS is Randomized Row-Swap.
	SchemeRRS
	// SchemeBlockhammer is the rate-limiting baseline.
	SchemeBlockhammer
	// SchemeVictimRefresh refreshes distance-1 neighbours.
	SchemeVictimRefresh
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeAquaSRAM:
		return "aqua-sram"
	case SchemeAquaMemMapped:
		return "aqua-memmapped"
	case SchemeRRS:
		return "rrs"
	case SchemeBlockhammer:
		return "blockhammer"
	case SchemeVictimRefresh:
		return "victim-refresh"
	default:
		return "unknown"
	}
}

// Config parameterizes a system build.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	// TRH is the Rowhammer threshold handed to the mitigation.
	TRH int64
	// Scheme selects the mitigation.
	Scheme Scheme
	// Cores is the core count (default 4).
	Cores int
	// CoreCfg tunes the interval cores.
	CoreCfg cpu.Config
	// EpochLength overrides the tracker epoch (default tREFW).
	EpochLength dram.PS
	// Monitor attaches a security monitor at the given threshold when
	// true.
	Monitor bool
	// Seed drives scheme randomization.
	Seed uint64
	// Tracker selects the aggressor tracker for AQUA/RRS/victim-refresh
	// (default Misra-Gries, the paper's baseline).
	Tracker TrackerKind
	// BloomGroupSize and FPTCacheEntries override AQUA's memory-mapped
	// structures for the Section V-F sensitivity study (0 = paper
	// defaults: groups of 16 and 4K entries).
	BloomGroupSize  int
	FPTCacheEntries int
	// ProactiveDrain enables AQUA's background draining (Section IV-D),
	// serviced by the controller every IdleDrainInterval (default 10us
	// when enabled).
	ProactiveDrain bool
	// Invariants, when non-nil, threads the runtime invariant checker
	// through every layer: the rank's timing shadow, the controller's
	// reservation/starvation checks, the mitigation contract wrapper, and
	// AQUA's structural checks. Tests enable it; production runs leave it
	// nil at zero cost.
	Invariants *invariant.Checker
	// Faults, when non-nil, threads the deterministic fault injector
	// through every layer the same way: the rank (stuck rows, ECC flips),
	// the controller (refresh collisions), and the AQUA engine (RQA
	// overflow, migration aborts, FPT-cache poisoning, tracker
	// corruption). Nil costs one pointer test per opportunity.
	Faults *fault.Injector
}

// TrackerKind selects an aggressor-tracker implementation.
type TrackerKind int

const (
	// TrackerMisraGries is the Graphene-style per-bank tracker (default).
	TrackerMisraGries TrackerKind = iota
	// TrackerHydra is the storage-optimized hybrid tracker (Appendix B's
	// AQUA-Hydra configuration).
	TrackerHydra
	// TrackerExact is the idealized exact tracker.
	TrackerExact
)

// build constructs a tracker for the given effective threshold.
func (k TrackerKind) build(geom dram.Geometry, timing dram.Timing, threshold int64) tracker.Tracker {
	switch k {
	case TrackerMisraGries:
		return nil // let the engine provision its default
	case TrackerHydra:
		return tracker.NewHydra(geom, threshold, 128)
	case TrackerExact:
		return tracker.NewExact(geom, threshold)
	default:
		panic(fmt.Sprintf("sim: unknown tracker kind %d", k))
	}
}

func (c *Config) fillDefaults() {
	if c.Geometry == (dram.Geometry{}) {
		c.Geometry = dram.Baseline()
	}
	if c.Timing == (dram.Timing{}) {
		c.Timing = dram.DDR4()
	}
	if c.TRH == 0 {
		c.TRH = 1000
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
}

// System is one fully wired simulation instance.
type System struct {
	Cfg     Config
	Rank    *dram.Rank
	Ctrl    *memctrl.Controller
	Mit     mitigation.Mitigator
	Monitor *security.Monitor
	Cores   []*cpu.Core

	// Aqua is non-nil when the scheme is an AQUA variant (for breakdown
	// and layout queries).
	Aqua *core.Engine

	// cal is the system's event calendar: core next-issue events live in
	// its indexed heap, and the controller keeps its refresh/epoch/drain
	// lanes armed (see internal/event). Owned by the run loop; reused
	// across runs so the steady-state request path stays allocation-free.
	// Deliberately not `// guarded by` anything: a System is confined to
	// one grid worker (checkpointing and the result cache exchange Result
	// values, never live Systems), so the calendar is never shared.
	cal event.Calendar

	// Blocked-bank overlap scheduler state (DESIGN.md "Blocked-bank
	// overlap scheduler"): a core whose next request targets a blocked
	// bank and whose issue time lands at or past the bank's expiry is
	// parked — dropped from the issue heap onto the bank's intrusive
	// list — and re-enters when the bank's ClassBankExpiry event fires.
	// parkedNext[i] links core i to the next parked core on the same bank
	// (-1 ends the list); parkedWake[i] is core i's re-entry time, its
	// NextIssueTime unchanged, which is what keeps every Submit at its
	// original time and order. bankParked[b] heads bank b's list;
	// bankMinWake[b] is the earliest expiry event pushed for b while its
	// list is non-empty (stale once the list empties — the next park
	// pushes unconditionally). Invariant: every parked core is covered by
	// a pending ClassBankExpiry event for its bank at a time <= its wake,
	// so no core can be woken late; duplicate expiry events pop as
	// no-ops against an empty list.
	parkedNext  []int32
	parkedWake  []dram.PS
	bankParked  []int32
	bankMinWake []dram.PS
	// parkSpan is the profitability gate: a core is only parked when it
	// leaves the issue heap for at least this long (next - at). A park
	// replaces one ReplaceIndexedMin with an expiry push/pop plus an
	// issue push — roughly two extra calendar operations — so
	// sub-window-scale parks cost more heap traffic than the calmer
	// Horizon saves (measured: gating short parks out is worth ~10% of
	// the full lbm 4-core cell). 4x tRC keeps incidental streaming-bank
	// conflicts on the heap while genuinely contended cores still park.
	parkSpan dram.PS
	// parks counts successful tryPark calls across the system's lifetime;
	// noPark disables parking altogether. Both exist for the park tests:
	// the counter proves a scenario exercised the scheduler, the switch
	// produces the reference run the parked run must match bit-for-bit.
	parks  int64
	noPark bool
}

// VisibleRegion returns the software-visible address region for a
// configuration, consistent across all schemes *and thresholds* so that
// workloads touch identical rows everywhere: the region excludes the rows
// the most demanding layout would reserve — AQUA's memory-mapped mode at
// an effective threshold of 1, whose RQA is the Table III maximum (2.2% of
// memory).
func VisibleRegion(cfg Config) workload.Region {
	cfg.fillDefaults()
	visible := core.VisibleRowsPerBankFor(cfg.Geometry, cfg.Timing,
		core.Config{TRH: 2, Mode: core.ModeMemMapped})
	return workload.Region{Geom: cfg.Geometry, VisibleRowsPerBank: visible}
}

// NewSystem wires a system; streams[i] drives core i. len(streams) must
// equal cfg.Cores.
func NewSystem(cfg Config, streams []cpu.Stream) *System {
	cfg.fillDefaults()
	if len(streams) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d streams for %d cores", len(streams), cfg.Cores))
	}
	rank := dram.NewRank(cfg.Geometry, cfg.Timing)
	if cfg.Faults != nil {
		rank.EnableFaults(cfg.Faults)
	}

	s := &System{Cfg: cfg, Rank: rank}
	if cfg.Monitor {
		s.Monitor = security.NewMonitor(int(cfg.TRH), cfg.Timing.TREFW)
		s.Monitor.Attach(rank)
	}

	aquaCfg := func(mode core.Mode) core.Config {
		trh := cfg.TRH
		return core.Config{
			TRH:             trh,
			Mode:            mode,
			Seed:            cfg.Seed,
			Tracker:         cfg.Tracker.build(cfg.Geometry, cfg.Timing, max64(trh/2, 1)),
			BloomGroupSize:  cfg.BloomGroupSize,
			FPTCacheEntries: cfg.FPTCacheEntries,
			ProactiveDrain:  cfg.ProactiveDrain,
			Invariants:      cfg.Invariants,
			Faults:          cfg.Faults,
		}
	}
	switch cfg.Scheme {
	case SchemeBaseline:
		s.Mit = mitigation.None{}
	case SchemeAquaSRAM:
		s.Aqua = core.New(rank, aquaCfg(core.ModeSRAM))
		s.Mit = s.Aqua
	case SchemeAquaMemMapped:
		s.Aqua = core.New(rank, aquaCfg(core.ModeMemMapped))
		s.Mit = s.Aqua
	case SchemeRRS:
		s.Mit = rrs.New(rank, rrs.Config{
			TRH: cfg.TRH, Seed: cfg.Seed,
			Tracker: cfg.Tracker.build(cfg.Geometry, cfg.Timing, max64(cfg.TRH/rrs.SwapDivisor, 1)),
		})
	case SchemeBlockhammer:
		s.Mit = blockhammer.New(rank, blockhammer.Config{TRH: cfg.TRH})
	case SchemeVictimRefresh:
		s.Mit = vrefresh.New(rank, vrefresh.Config{
			TRH:     cfg.TRH,
			Tracker: cfg.Tracker.build(cfg.Geometry, cfg.Timing, max64(cfg.TRH/2, 1)),
		})
	default:
		panic(fmt.Sprintf("sim: unknown scheme %d", cfg.Scheme))
	}

	if cfg.Invariants != nil {
		// Wrap the scheme in the mitigation-contract checker; s.Aqua keeps
		// pointing at the concrete engine for layout/breakdown queries.
		s.Mit = mitigation.Checked(s.Mit, cfg.Geometry, cfg.Invariants)
	}

	ctrlCfg := memctrl.Config{EpochLength: cfg.EpochLength, Invariants: cfg.Invariants, Faults: cfg.Faults}
	if cfg.ProactiveDrain {
		ctrlCfg.IdleDrainInterval = 10 * dram.Microsecond
	}
	s.Ctrl = memctrl.New(rank, s.Mit, ctrlCfg)
	s.Ctrl.AttachCalendar(&s.cal)
	s.Cores = make([]*cpu.Core, cfg.Cores)
	for i := range s.Cores {
		s.Cores[i] = cpu.New(i, streams[i], cfg.CoreCfg)
	}
	s.parkSpan = 4 * cfg.Timing.TRC
	s.parkedNext = make([]int32, cfg.Cores)
	s.parkedWake = make([]dram.PS, cfg.Cores)
	s.bankParked = make([]int32, cfg.Geometry.Banks)
	s.bankMinWake = make([]dram.PS, cfg.Geometry.Banks)
	return s
}

// NewSystemE is NewSystem with validation and panic containment: malformed
// configurations (bad geometry/timing, a stream/core mismatch, a layout
// the RQA arithmetic rejects) come back as errors instead of process
// aborts, so a bad grid cell fails as a CellError. The library panics in
// analytic/layout code stay — NewSystemE converts them at this boundary.
func NewSystemE(cfg Config, streams []cpu.Stream) (*System, error) {
	probe := cfg
	probe.fillDefaults()
	if len(streams) != probe.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), probe.Cores)
	}
	if err := probe.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := probe.Timing.Validate(); err != nil {
		return nil, err
	}
	var sys *System
	err := flight.Protect(func() error {
		sys = NewSystem(cfg, streams)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// Result summarizes one run.
type Result struct {
	Scheme   Scheme
	SimTime  dram.PS
	Instr    int64
	Requests int64
	// IPC is the aggregate instructions per core-cycle (sum of instr over
	// elapsed cycles, divided by core count).
	IPC       float64
	MitStats  mitigation.Stats
	CtrlStats memctrl.Stats
	// MigrationsPer64ms scales the observed row migrations to the paper's
	// per-refresh-window metric.
	MigrationsPer64ms float64
	// Violated reports whether the security monitor observed any row
	// crossing T_RH (always false without a monitor).
	Violated bool
	// MaxWindowACTs is the peak sliding-window activation count the
	// monitor saw on any hot row.
	MaxWindowACTs int
	// DRAMPowerMW is the IDD-model DRAM power estimate for the run
	// (Section V-H methodology).
	DRAMPowerMW float64
	// FaultStats counts the faults injected into this run (all-zero when
	// no injector was attached).
	FaultStats fault.Stats
}

// Run drives the system until all cores finish or simulated time exceeds
// `until` (0 = no limit), and returns the result.
func (s *System) Run(until dram.PS) Result {
	res, _ := s.RunCtx(context.Background(), until)
	return res
}

// ctxCheckInterval is how many issued requests pass between context
// checks in RunCtx: frequent enough that cancellation lands within
// milliseconds of wall-clock, rare enough that the atomic load in
// ctx.Err() never shows up in profiles.
const ctxCheckInterval = 4096

// ctxCheckSimStride is the simulated-time companion to ctxCheckInterval:
// RunCtx also checks ctx at the first calendar event at or after each
// stride boundary. The request stride alone lets a quiet cell (fewer
// than ctxCheckInterval requests in its whole window) run to completion
// without ever observing cancellation; the stride bounds that latency in
// simulated time instead. 100 us is ~13 refresh intervals — foreign
// events are far denser than the stride, so the first event past a
// boundary is never far past it, and the check stays off the per-request
// path.
const ctxCheckSimStride = 100 * dram.Microsecond

// resetEvents rebuilds the calendar for a fresh run: the controller
// re-arms its background lanes and every unfinished core contributes its
// next-issue event. The heap's backing slice survives Reset, so repeat
// runs allocate nothing.
func (s *System) resetEvents() {
	s.cal.Reset()
	s.Ctrl.PublishEvents()
	for i, c := range s.Cores {
		if t, ok := c.NextIssueTime(); ok {
			s.cal.Push(event.Event{Time: t, Class: event.ClassCoreIssue, Index: int32(i)})
		}
	}
	for b := range s.bankParked {
		s.bankParked[b] = -1
	}
	// A reused system can start with banks still inside their activation
	// windows from the previous run; publish those expiries so the first
	// parks have events to ride.
	s.Rank.PublishExpiries(&s.cal, 0)
}

// tryPark parks the root core (which must have a queued request and
// next-issue time `next`) when its target bank is still blocked at `at`
// and will not free before the core issues anyway: next >= BankReadyAt.
// The park is order-preserving — the core re-enters the issue heap at
// exactly `next` when the bank's expiry event fires — so the stream of
// Submit calls is bit-identical to leaving the core in the heap; what
// changes is only who carries the wake-up (one expiry event per bank
// instead of one heap entry per blocked core), which is what lets the
// surviving root batch issues against a calmer Horizon. Reports whether
// the core was parked.
func (s *System) tryPark(ci int32, at, next dram.PS) bool {
	if next-at < s.parkSpan || s.noPark {
		// Too-short parks thrash the calendar (see parkSpan); this
		// compare is also what keeps tryPark nearly free on streaming
		// workloads whose issue cadence never reaches the gate.
		return false
	}
	row, ok := s.Cores[ci].QueuedRow()
	if !ok {
		return false
	}
	b := s.Cfg.Geometry.BankOf(row)
	ready := s.Rank.BankReadyAt(b)
	if ready <= at || next < ready {
		// Bank already free, or the core issues before the window ends
		// (the controller charges that stall inside Submit): the core
		// must stay on the issue heap.
		return false
	}
	if s.bankParked[b] < 0 {
		s.cal.Push(event.Event{Time: next, Class: event.ClassBankExpiry, Index: int32(b)})
		s.bankMinWake[b] = next
	} else if next < s.bankMinWake[b] {
		s.cal.Push(event.Event{Time: next, Class: event.ClassBankExpiry, Index: int32(b)})
		s.bankMinWake[b] = next
	}
	s.parkedNext[ci] = s.bankParked[b]
	s.parkedWake[ci] = next
	s.bankParked[b] = ci
	s.parks++
	return true
}

// wakeBank re-enters every core parked on bank b at its recorded wake
// time. The firing event's time is <= every parked wake (the park
// invariant), and ClassBankExpiry orders before ClassCoreIssue at equal
// timestamps, so a woken core is back in the heap before its issue slot
// comes up. Stale duplicate events find an empty list and do nothing.
func (s *System) wakeBank(b int32) {
	for i := s.bankParked[b]; i >= 0; {
		next := s.parkedNext[i]
		s.cal.Push(event.Event{Time: s.parkedWake[i], Class: event.ClassCoreIssue, Index: i})
		i = next
	}
	s.bankParked[b] = -1
}

// issueHorizon returns the batching bound for the current heap root: the
// time of the earliest foreign event. The root's core may issue freely
// at times strictly below it; an issue time at or past it goes back
// through the calendar, whose (time, class, index) order resolves the
// tie exactly as the per-request loop would have.
func (s *System) issueHorizon() dram.PS {
	if hz, ok := s.cal.Horizon(); ok {
		return hz.Time
	}
	return math.MaxInt64
}

// RunCtx is Run with cancellation: the issue loop polls ctx every
// ctxCheckInterval requests AND at the first calendar event at or after
// each ctxCheckSimStride boundary of simulated time, then abandons the
// simulation with ctx.Err() when it has been cancelled. The dual stride
// bounds cancellation latency for both request-dense cells (request
// stride) and quiet ones (simulated-time stride); a pre-cancelled ctx is
// observed before the first event is processed. The partial simulation
// state is discarded — a cancelled cell has no result.
//
// The loop is event-driven: the calendar's indexed heap orders per-core
// next-issue events by (time, core index) — bit-identical to the old
// linear scan's "earliest time, lowest index on ties" — and the fast path
// batches a run of same-core issues that provably stay ahead of the next
// foreign event (Horizon), so quiet spans between refreshes cost one
// bound computation instead of a heap fix-up per request. Background
// events are never popped here: they are serviced, in due order, inside
// Submit -> Advance at their due timestamps, exactly as before; the lanes
// only bound the batch. See DESIGN.md "Event-driven core & time-skip
// invariants".
//
//detertaint:root
func (s *System) RunCtx(ctx context.Context, until dram.PS) (Result, error) {
	s.resetEvents()
	issued := 0
	var nextCtxCheck dram.PS // 0: the very first event observes a pre-cancelled ctx
	for {
		root, ok := s.cal.MinIndexed()
		if !ok {
			break
		}
		if root.Time >= nextCtxCheck {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			nextCtxCheck = root.Time + ctxCheckSimStride
		}
		if until > 0 && root.Time > until {
			break
		}
		if root.Class == event.ClassBankExpiry {
			s.cal.DropIndexedMin()
			s.wakeBank(root.Index)
			continue
		}
		limit := s.issueHorizon()
		if until > 0 && until+1 < limit {
			// The run bound caps the batch too: issues AT until are still
			// in-window, the first one past it ends the run.
			limit = until + 1
		}
		n, next, more := s.Cores[root.Index].IssueRun(root.Time, limit,
			ctxCheckInterval-issued%ctxCheckInterval, s.Ctrl.Submit)
		issued += n
		switch {
		case !more:
			s.cal.DropIndexedMin()
		case s.tryPark(root.Index, root.Time, next):
			s.cal.DropIndexedMin()
		default:
			s.cal.ReplaceIndexedMin(next)
		}
		if issued%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
	}
	return s.result(until), nil
}

// IssueN drives the issue-selection loop for exactly n requests (or
// until all cores finish), returning how many were issued. It is the
// perf-harness hook for benchmarking the selection path at arbitrary
// core counts; figure runs use RunCtx.
func (s *System) IssueN(n int) int {
	s.resetEvents()
	issued := 0
	for issued < n {
		root, ok := s.cal.MinIndexed()
		if !ok {
			break
		}
		if root.Class == event.ClassBankExpiry {
			s.cal.DropIndexedMin()
			s.wakeBank(root.Index)
			continue
		}
		k, next, more := s.Cores[root.Index].IssueRun(root.Time, s.issueHorizon(),
			n-issued, s.Ctrl.Submit)
		issued += k
		switch {
		case !more:
			s.cal.DropIndexedMin()
		case s.tryPark(root.Index, root.Time, next):
			s.cal.DropIndexedMin()
		default:
			s.cal.ReplaceIndexedMin(next)
		}
	}
	return issued
}

func (s *System) result(until dram.PS) Result {
	var end dram.PS
	var instr int64
	for _, c := range s.Cores {
		if c.FinishTime() > end {
			end = c.FinishTime()
		}
		instr += c.InstrRetired()
	}
	if until > 0 && end > until {
		end = until
	}
	res := Result{
		Scheme:    s.Cfg.Scheme,
		SimTime:   end,
		Instr:     instr,
		Requests:  s.Ctrl.Stats().Requests,
		MitStats:  s.Mit.Stats(),
		CtrlStats: s.Ctrl.Stats(),
	}
	if end > 0 {
		freq := float64(s.Cfg.CoreCfg.FreqHz)
		if freq == 0 {
			freq = 3e9
		}
		cycles := float64(end) / 1e12 * freq
		res.IPC = float64(instr) / cycles / float64(len(s.Cores))
		res.MigrationsPer64ms = float64(res.MitStats.RowMigrations) *
			float64(64*dram.Millisecond) / float64(end)
	}
	if s.Monitor != nil {
		res.Violated = s.Monitor.Violated()
		_, res.MaxWindowACTs = s.Monitor.MaxWindowCount()
	}
	if end > 0 {
		res.DRAMPowerMW = power.FromStats(power.MicronDDR4(), s.Cfg.Timing, s.Rank.Stats(), end).Total()
	}
	res.FaultStats = s.Cfg.Faults.Stats()
	return res
}

// WorkloadStreams builds per-core streams for a SPEC rate workload: every
// core runs its own copy (its own hot rows), sized to reqsPerCore
// requests.
func WorkloadStreams(spec workload.Spec, region workload.Region, cores int, reqsPerCore int64, seed uint64, params workload.Params) []cpu.Stream {
	streams := make([]cpu.Stream, cores)
	for i := 0; i < cores; i++ {
		gen := workload.NewGenerator(spec, region, i, seed, params)
		streams[i] = gen.Stream(reqsPerCore, seed+uint64(i)*7919)
	}
	return streams
}

// MixStreams builds per-core streams for a mixed workload.
func MixStreams(mix [4]workload.Spec, region workload.Region, reqsPerCore int64, seed uint64, params workload.Params) []cpu.Stream {
	streams := make([]cpu.Stream, len(mix))
	for i, spec := range mix {
		gen := workload.NewGenerator(spec, region, i, seed, params)
		streams[i] = gen.Stream(reqsPerCore, seed+uint64(i)*7919)
	}
	return streams
}

// ReqsForInstructions converts a per-core instruction budget into the
// request count for a workload's MPKI.
func ReqsForInstructions(spec workload.Spec, instrPerCore int64) int64 {
	n := int64(float64(instrPerCore) * spec.MPKI / 1000)
	if n < 1 {
		n = 1
	}
	return n
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
