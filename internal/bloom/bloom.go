// Package bloom implements AQUA's resettable bloom filter (Section V-B):
// a single-bit-per-entry vector that identifies rows which are *possibly*
// quarantined, so the memory controller can skip the FPT lookup for the
// vast majority of accesses.
//
// The filter is direct-mapped by *group*: all rows whose FPT entries share
// the same half of a 64-byte memory-mapped-FPT cacheline (16 entries of 2
// bytes) map to one bit. The bit is set while any FPT entry in the group is
// valid and reset as soon as the last one is invalidated — which is what
// makes the filter resettable without counting bloom filters' 6x SRAM cost.
// A zero bit is a definitive "not quarantined"; a set bit means "possibly
// quarantined" (a false positive when the quarantined row is a different
// member of the group).
package bloom

import "fmt"

// Filter is the resettable group bloom filter. Not safe for concurrent use.
type Filter struct {
	groupShift uint
	bits       []uint64
	occupancy  []uint16 // valid FPT entries per group (model-side bookkeeping)
	nGroups    int

	// Lookup statistics for the Figure 10 breakdown.
	tests     int64
	positives int64
}

// New builds a filter covering totalRows rows with groupSize rows per bit.
// groupSize must be a power of two. The paper's default is 2M rows with
// groups of 16, i.e. 128K bits = 16KB SRAM.
func New(totalRows, groupSize int) *Filter {
	if totalRows < 1 {
		panic("bloom: need at least one row")
	}
	if groupSize < 1 || groupSize&(groupSize-1) != 0 {
		panic(fmt.Sprintf("bloom: group size must be a positive power of two, got %d", groupSize))
	}
	shift := uint(0)
	for 1<<shift != groupSize {
		shift++
	}
	nGroups := (totalRows + groupSize - 1) / groupSize
	return &Filter{
		groupShift: shift,
		bits:       make([]uint64, (nGroups+63)/64),
		occupancy:  make([]uint16, nGroups),
		nGroups:    nGroups,
	}
}

// Groups returns the number of groups (bits) in the filter.
func (f *Filter) Groups() int { return f.nGroups }

// GroupOf returns the group index of a row.
func (f *Filter) GroupOf(row uint32) uint32 { return row >> f.groupShift }

// GroupSize returns the number of rows per group.
func (f *Filter) GroupSize() int { return 1 << f.groupShift }

func (f *Filter) checkGroup(g uint32) {
	if int(g) >= f.nGroups {
		panic(fmt.Sprintf("bloom: group %d out of range (%d groups)", g, f.nGroups))
	}
}

// Add records that the row's FPT entry became valid: the group bit is set
// and the group occupancy incremented.
func (f *Filter) Add(row uint32) {
	g := f.GroupOf(row)
	f.checkGroup(g)
	f.occupancy[g]++
	f.bits[g/64] |= 1 << (g % 64)
}

// Remove records that the row's FPT entry was invalidated. The group bit is
// cleared only when no valid entries remain in the group.
func (f *Filter) Remove(row uint32) {
	g := f.GroupOf(row)
	f.checkGroup(g)
	if f.occupancy[g] == 0 {
		panic("bloom: Remove without matching Add")
	}
	f.occupancy[g]--
	if f.occupancy[g] == 0 {
		f.bits[g/64] &^= 1 << (g % 64)
	}
}

// MightContain reports whether the row is possibly quarantined. False means
// definitively not quarantined.
func (f *Filter) MightContain(row uint32) bool {
	g := f.GroupOf(row)
	f.checkGroup(g)
	set := f.bits[g/64]&(1<<(g%64)) != 0
	f.tests++
	if set {
		f.positives++
	}
	return set
}

// GroupOccupancy returns the number of valid FPT entries in the row's
// group. The AQUA engine uses occupancy == 1 to maintain singleton bits.
func (f *Filter) GroupOccupancy(row uint32) int {
	g := f.GroupOf(row)
	f.checkGroup(g)
	return int(f.occupancy[g])
}

// PositiveRate returns the fraction of MightContain calls that returned
// true since construction or the last StatsReset.
func (f *Filter) PositiveRate() float64 {
	if f.tests == 0 {
		return 0
	}
	return float64(f.positives) / float64(f.tests)
}

// Tests returns the number of MightContain calls recorded.
func (f *Filter) Tests() int64 { return f.tests }

// StatsReset clears the lookup statistics without touching filter state.
func (f *Filter) StatsReset() { f.tests, f.positives = 0, 0 }

// Reset clears all bits and occupancy (e.g. when reconfiguring; the normal
// epoch flow never bulk-resets, matching the paper's lazy draining).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	for i := range f.occupancy {
		f.occupancy[i] = 0
	}
}

// SetBits returns the number of groups whose bit is currently set.
func (f *Filter) SetBits() int {
	n := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// SRAMBytes returns the filter's SRAM footprint: one bit per group. (The
// occupancy counters model information hardware reads from the FPT
// cacheline itself, so they are not charged to SRAM.)
func (f *Filter) SRAMBytes() int { return (f.nGroups + 7) / 8 }
