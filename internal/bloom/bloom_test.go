package bloom

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	// Property: any row that has been Added (and not Removed) must test
	// positive — the filter's one hard guarantee.
	check := func(seed uint64) bool {
		f := New(4096, 16)
		r := rng.New(seed)
		live := make(map[uint32]int)
		for op := 0; op < 500; op++ {
			row := uint32(r.Intn(4096))
			if r.Float64() < 0.6 {
				f.Add(row)
				live[row]++
			} else if live[row] > 0 {
				f.Remove(row)
				live[row]--
			}
		}
		for row, n := range live {
			if n > 0 && !f.MightContain(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitClearsOnLastRemoval(t *testing.T) {
	f := New(1024, 16)
	// Rows 0 and 1 share group 0.
	f.Add(0)
	f.Add(1)
	f.Remove(0)
	if !f.MightContain(1) {
		t.Fatal("bit cleared while group still occupied")
	}
	if !f.MightContain(0) {
		t.Fatal("group sharing: row 0 should still test positive (false positive)")
	}
	f.Remove(1)
	if f.MightContain(0) || f.MightContain(1) {
		t.Fatal("bit not cleared after last removal")
	}
}

func TestGroupMapping(t *testing.T) {
	f := New(1024, 16)
	if f.GroupOf(15) != 0 || f.GroupOf(16) != 1 {
		t.Fatal("group boundaries wrong")
	}
	if f.GroupSize() != 16 {
		t.Fatalf("group size = %d", f.GroupSize())
	}
	if f.Groups() != 64 {
		t.Fatalf("groups = %d", f.Groups())
	}
}

func TestFalsePositiveWithinGroup(t *testing.T) {
	f := New(1024, 16)
	f.Add(32) // group 2
	if !f.MightContain(33) {
		t.Fatal("same-group row must test positive")
	}
	if f.MightContain(48) {
		t.Fatal("different group tested positive")
	}
}

func TestOccupancy(t *testing.T) {
	f := New(1024, 16)
	f.Add(5)
	f.Add(6)
	if occ := f.GroupOccupancy(7); occ != 2 {
		t.Fatalf("occupancy = %d", occ)
	}
	f.Remove(5)
	if occ := f.GroupOccupancy(5); occ != 1 {
		t.Fatalf("occupancy after removal = %d", occ)
	}
}

func TestRemoveWithoutAddPanics(t *testing.T) {
	f := New(1024, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Remove(3)
}

func TestPositiveRateStats(t *testing.T) {
	f := New(1024, 16)
	f.Add(0)
	f.MightContain(0)   // positive
	f.MightContain(512) // negative
	if f.Tests() != 2 {
		t.Fatalf("tests = %d", f.Tests())
	}
	if rate := f.PositiveRate(); rate != 0.5 {
		t.Fatalf("positive rate = %g", rate)
	}
	f.StatsReset()
	if f.Tests() != 0 || f.PositiveRate() != 0 {
		t.Fatal("stats reset failed")
	}
	if !f.MightContain(0) {
		t.Fatal("stats reset cleared filter state")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 16)
	f.Add(1)
	f.Add(100)
	f.Reset()
	if f.SetBits() != 0 {
		t.Fatal("reset left bits set")
	}
	if f.GroupOccupancy(1) != 0 {
		t.Fatal("reset left occupancy")
	}
}

func TestSetBits(t *testing.T) {
	f := New(1024, 16)
	f.Add(0)   // group 0
	f.Add(3)   // group 0
	f.Add(100) // group 6
	if n := f.SetBits(); n != 2 {
		t.Fatalf("set bits = %d", n)
	}
}

func TestSRAMBytesPaperConfig(t *testing.T) {
	// 2M rows, groups of 16 -> 128K bits = 16KB (Section V-A).
	f := New(2*1024*1024, 16)
	if got := f.SRAMBytes(); got != 16*1024 {
		t.Fatalf("SRAMBytes = %d, want 16KB", got)
	}
}

func TestExpectedPositiveRateAtPaperLoad(t *testing.T) {
	// Section V-D: with 23K quarantined rows over 128K groups, ~16% of
	// groups have at least one quarantined row, so a uniform random
	// access tests positive ~16% of the time.
	f := New(2*1024*1024, 16)
	r := rng.New(42)
	added := make(map[uint32]bool)
	for len(added) < 23053 {
		row := uint32(r.Intn(2 * 1024 * 1024))
		if !added[row] {
			f.Add(row)
			added[row] = true
		}
	}
	hits := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.MightContain(uint32(r.Intn(2 * 1024 * 1024))) {
			hits++
		}
	}
	rate := float64(hits) / probes
	if rate < 0.13 || rate > 0.19 {
		t.Fatalf("positive rate = %.3f, want ~0.16", rate)
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 16) },
		func() { New(100, 0) },
		func() { New(100, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
