package mitigation

import (
	"testing"

	"repro/internal/dram"
)

func TestNoneIsTransparent(t *testing.T) {
	var n None
	if n.Name() != "baseline" {
		t.Fatal("name")
	}
	tr := n.Translate(dram.Row(42), 100)
	if tr.PhysRow != 42 || tr.Latency != 0 || tr.Class != LookupNone {
		t.Fatalf("translate = %+v", tr)
	}
	if n.Delay(1, 77) != 77 {
		t.Fatal("delay")
	}
	if n.OnActivate(1, 0) != 0 {
		t.Fatal("activate busy")
	}
	n.OnEpoch(0)
	if s := n.Stats(); s.Mitigations != 0 {
		t.Fatal("stats")
	}
}

func TestLookupClassStrings(t *testing.T) {
	want := map[LookupClass]string{
		LookupNone:          "none",
		LookupBloomFiltered: "bloom-filtered",
		LookupCacheHit:      "fpt-cache-hit",
		LookupSingleton:     "singleton",
		LookupDRAM:          "dram",
		LookupSRAM:          "sram",
		LookupPinned:        "pinned",
		LookupClass(99):     "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestTotalLookups(t *testing.T) {
	var s Stats
	s.Lookups[LookupSRAM] = 3
	s.Lookups[LookupDRAM] = 4
	if s.TotalLookups() != 7 {
		t.Fatalf("total = %d", s.TotalLookups())
	}
}

func TestNumLookupClassesCoversAll(t *testing.T) {
	// Guard against adding a class without extending the stats array.
	for c := LookupClass(0); c < NumLookupClasses; c++ {
		if c.String() == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
	}
}
