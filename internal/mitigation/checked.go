package mitigation

import (
	"repro/internal/dram"
	"repro/internal/invariant"
)

// Drainer mirrors memctrl.Drainer (redeclared here to avoid an import
// cycle): the optional background-work hook of a scheme.
type drainer interface {
	OnIdle(now dram.PS) dram.PS
}

// Checked wraps a Mitigator with contract assertions against the given
// checker: translations must stay inside the rank's physical geometry
// with non-negative lookup latency and a valid lookup class, Delay may
// only postpone (never reorder into the past), OnActivate's reported
// channel-busy time must be non-negative, and the cumulative Stats
// counters must be monotone across calls. If the wrapped scheme
// implements the background-drain hook, the wrapper forwards it so
// memctrl's Drainer type assertion still succeeds.
func Checked(m Mitigator, geom dram.Geometry, chk *invariant.Checker) Mitigator {
	c := &checked{inner: m, geom: geom, chk: chk}
	if d, ok := m.(drainer); ok {
		return &checkedDrainer{checked: c, d: d}
	}
	return c
}

type checked struct {
	inner    Mitigator
	geom     dram.Geometry
	chk      *invariant.Checker
	lastStat Stats
	haveStat bool
}

func (c *checked) Name() string { return c.inner.Name() }

func (c *checked) Translate(row dram.Row, now dram.PS) Translation {
	tr := c.inner.Translate(row, now)
	c.chk.Checkf(c.geom.Contains(tr.PhysRow), "mitigation", "translate-range", now,
		"%s translated row %d to physical row %d outside the %d-row rank",
		c.inner.Name(), row, tr.PhysRow, c.geom.Rows())
	c.chk.Checkf(tr.Latency >= 0, "mitigation", "translate-latency", now,
		"%s charged negative lookup latency %dps for row %d", c.inner.Name(), tr.Latency, row)
	c.chk.Checkf(tr.Class >= 0 && tr.Class < NumLookupClasses, "mitigation", "translate-class", now,
		"%s returned out-of-range lookup class %d", c.inner.Name(), tr.Class)
	return tr
}

func (c *checked) Delay(row dram.Row, now dram.PS) dram.PS {
	issue := c.inner.Delay(row, now)
	c.chk.Checkf(issue >= now, "mitigation", "delay-backwards", now,
		"%s scheduled row %d activation at %dps, before request time %dps",
		c.inner.Name(), row, issue, now)
	return issue
}

func (c *checked) OnActivate(physRow dram.Row, at dram.PS) dram.PS {
	busy := c.inner.OnActivate(physRow, at)
	c.chk.Checkf(busy >= 0, "mitigation", "busy-negative", at,
		"%s reported negative channel-busy time %dps", c.inner.Name(), busy)
	c.checkStats(at)
	return busy
}

func (c *checked) OnEpoch(now dram.PS) {
	c.inner.OnEpoch(now)
	c.checkStats(now)
}

func (c *checked) Stats() Stats { return c.inner.Stats() }

// checkStats asserts the cumulative counters never decrease. StatsReset
// on the wrapped scheme (between warmup and measurement) happens outside
// any OnActivate/OnEpoch call, so the snapshot is refreshed lazily: a
// wholesale drop back to zero on every counter is a reset, a partial
// decrease is a bug.
func (c *checked) checkStats(at dram.PS) {
	s := c.inner.Stats()
	if c.haveStat {
		if s == (Stats{}) && c.lastStat != (Stats{}) {
			c.lastStat = s
			return
		}
		ok := s.Mitigations >= c.lastStat.Mitigations &&
			s.RowMigrations >= c.lastStat.RowMigrations &&
			s.Evictions >= c.lastStat.Evictions &&
			s.ProactiveDrains >= c.lastStat.ProactiveDrains &&
			s.VictimRefreshes >= c.lastStat.VictimRefreshes &&
			s.ChannelBusy >= c.lastStat.ChannelBusy &&
			s.ThrottleDelay >= c.lastStat.ThrottleDelay &&
			s.TableDRAMAccesses >= c.lastStat.TableDRAMAccesses &&
			s.ReuseViolations >= c.lastStat.ReuseViolations
		for i := range s.Lookups {
			ok = ok && s.Lookups[i] >= c.lastStat.Lookups[i]
		}
		c.chk.Checkf(ok, "mitigation", "stats-monotonic", at,
			"%s stats counter decreased: %+v then %+v", c.inner.Name(), c.lastStat, s)
	}
	c.lastStat = s
	c.haveStat = true
}

// checkedDrainer adds the OnIdle passthrough for schemes that drain in
// the background.
type checkedDrainer struct {
	*checked
	d drainer
}

func (c *checkedDrainer) OnIdle(now dram.PS) dram.PS {
	busy := c.d.OnIdle(now)
	c.chk.Checkf(busy >= 0, "mitigation", "idle-busy-negative", now,
		"%s reported negative idle-drain time %dps", c.inner.Name(), busy)
	return busy
}
