// Package mitigation defines the contract between the memory controller
// and a Rowhammer mitigation scheme. Every scheme in this repository —
// AQUA (internal/core), RRS (internal/rrs), Blockhammer
// (internal/blockhammer), victim refresh (internal/vrefresh), and the
// do-nothing baseline — implements Mitigator.
//
// The controller consults the mitigator at three points:
//
//  1. Translate, before issuing a memory access, to map the
//     software-visible (install) row to its current physical location and
//     charge any indirection-lookup latency;
//  2. Delay, before issuing an activation, so rate-limiting schemes can
//     postpone it;
//  3. OnActivate, after a row activation commits, so the scheme's tracker
//     can count it and trigger mitigative action (migrations reserve the
//     channel themselves and report the busy time for accounting).
package mitigation

import "repro/internal/dram"

// LookupClass classifies how a Translate call resolved, feeding the
// Figure 10 breakdown.
type LookupClass int

const (
	// LookupNone: the scheme has no indirection (baseline, victim refresh,
	// Blockhammer).
	LookupNone LookupClass = iota
	// LookupBloomFiltered: the resettable bloom filter's bit was clear, so
	// no FPT access was needed (memory-mapped AQUA).
	LookupBloomFiltered
	// LookupCacheHit: the FPT-Cache held the entry.
	LookupCacheHit
	// LookupSingleton: FPT-Cache miss, but a same-group resident entry with
	// the singleton bit set proved the row is not quarantined.
	LookupSingleton
	// LookupDRAM: the in-DRAM FPT had to be read.
	LookupDRAM
	// LookupSRAM: a full-SRAM indirection table answered (AQUA-SRAM mode,
	// RRS's RIT).
	LookupSRAM
	// LookupPinned: the row holds AQUA's own tables; its entry is pinned in
	// SRAM to avoid recursive lookups (Section VI-B).
	LookupPinned

	// NumLookupClasses is the number of classes, for array-indexed stats.
	NumLookupClasses
)

// String names the class for reports.
func (c LookupClass) String() string {
	switch c {
	case LookupNone:
		return "none"
	case LookupBloomFiltered:
		return "bloom-filtered"
	case LookupCacheHit:
		return "fpt-cache-hit"
	case LookupSingleton:
		return "singleton"
	case LookupDRAM:
		return "dram"
	case LookupSRAM:
		return "sram"
	case LookupPinned:
		return "pinned"
	default:
		return "unknown"
	}
}

// Translation is the result of mapping an install row to a physical row.
type Translation struct {
	// PhysRow is the physical row the access must be routed to.
	PhysRow dram.Row
	// Latency is the table-lookup latency to charge before the DRAM access
	// can issue (SRAM lookups are a few controller cycles; a miss that
	// walks to the in-DRAM FPT costs a real DRAM access).
	Latency dram.PS
	// Class records how the lookup resolved.
	Class LookupClass
}

// Stats aggregates a mitigation scheme's activity.
type Stats struct {
	// Mitigations counts mitigative actions (quarantine/swap/refresh
	// events).
	Mitigations int64
	// RowMigrations counts physical row transfers (one read+write pair
	// each). This is the Figure 6 metric: an AQUA quarantine is 1, an RRS
	// swap is 2, an RRS re-swap is 4.
	RowMigrations int64
	// Evictions counts quarantine evictions of stale entries (AQUA).
	Evictions int64
	// ProactiveDrains counts stale-entry evictions performed off the
	// critical path by the optional background drainer (Section IV-D).
	ProactiveDrains int64
	// VictimRefreshes counts neighbor-refresh operations (victim refresh).
	VictimRefreshes int64
	// ChannelBusy is the total channel time consumed by mitigative actions.
	ChannelBusy dram.PS
	// ThrottleDelay is the total delay injected by rate limiting
	// (Blockhammer).
	ThrottleDelay dram.PS
	// Lookups counts Translate resolutions per class.
	Lookups [NumLookupClasses]int64
	// TableDRAMAccesses counts DRAM accesses made to the scheme's own
	// in-memory tables.
	TableDRAMAccesses int64
	// ReuseViolations counts RQA slots that had to be reused within one
	// epoch — zero whenever the RQA is provisioned per Equation 3.
	ReuseViolations int64
	// MigrationAborts counts migrations torn down mid-copy and retried
	// from scratch (injected faults only; a fault-free run never aborts).
	MigrationAborts int64
	// OverflowFallbacks counts mitigations that degraded to the
	// victim-refresh fallback because the quarantine refused the aggressor
	// (injected RQA-overflow faults).
	OverflowFallbacks int64
}

// TotalLookups sums the per-class lookup counters.
func (s *Stats) TotalLookups() int64 {
	var n int64
	for _, v := range s.Lookups {
		n += v
	}
	return n
}

// Mitigator is the memory-controller-facing interface of a scheme.
type Mitigator interface {
	// Name identifies the scheme in reports.
	Name() string
	// Translate maps an install row to its current physical row at time
	// now, charging lookup latency and possibly performing DRAM accesses
	// to in-memory tables.
	Translate(row dram.Row, now dram.PS) Translation
	// Delay returns the earliest time an activation of the row may issue;
	// schemes without rate limiting return now.
	Delay(row dram.Row, now dram.PS) dram.PS
	// OnActivate informs the scheme that an activation of physRow
	// committed at time at. It returns the channel-busy time consumed by
	// any mitigative action triggered (0 if none). The scheme performs the
	// action against the rank itself, including reserving the channel.
	OnActivate(physRow dram.Row, at dram.PS) dram.PS
	// OnEpoch marks a tracker epoch boundary (every tREFW).
	OnEpoch(now dram.PS)
	// Stats returns a snapshot of the scheme's counters.
	Stats() Stats
}

// None is the unprotected baseline.
type None struct{}

// Name implements Mitigator.
func (None) Name() string { return "baseline" }

// Translate implements Mitigator with the identity mapping.
func (None) Translate(row dram.Row, _ dram.PS) Translation {
	return Translation{PhysRow: row, Class: LookupNone}
}

// Delay implements Mitigator with no throttling.
func (None) Delay(_ dram.Row, now dram.PS) dram.PS { return now }

// OnActivate implements Mitigator with no action.
func (None) OnActivate(_ dram.Row, _ dram.PS) dram.PS { return 0 }

// OnEpoch implements Mitigator.
func (None) OnEpoch(_ dram.PS) {}

// Stats implements Mitigator.
func (None) Stats() Stats { return Stats{} }
