// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Every experiment in this
// repository is seeded explicitly so that results are bit-for-bit
// reproducible across runs and machines.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that correlated integer seeds still produce well-mixed
// streams. The package deliberately avoids math/rand so that simulator
// results cannot drift with Go releases.
//
// # Concurrency
//
// A Rand is NOT safe for concurrent use: Uint64 mutates the four-word
// state without synchronization, and adding a lock would both slow the
// hot path and make draw order (hence results) depend on goroutine
// scheduling. The rule for concurrent code is therefore structural:
// every goroutine, simulation cell, core, or component owns its own
// Rand, constructed up front from the experiment seed via New, Split,
// or Derive. Distinct streams built that way are statistically
// independent (tested in rng_test.go), so per-cell results never depend
// on how many cells run concurrently or in what order they finish —
// the property the parallel experiment engine relies on.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New. A Rand must not be shared across
// goroutines; derive one stream per owner with New, Split, or Derive.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the 64-bit splitmix state and returns the next value.
// It is used only to expand a single seed into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given value. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start in the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from this one. It is used to
// give each core, bank, or workload its own stream without sharing state.
// Split advances the parent stream, so it must be called from the
// goroutine that owns the parent.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Derive mixes a base seed with derivation keys into a new seed. It is
// the canonical way to hand a sub-stream to a simulation cell, worker,
// or component identified by a tuple of small integers: streams built
// from New(Derive(seed, k...)) for distinct key tuples are independent
// of each other and of New(seed) itself. Derive is a pure function of
// its arguments — unlike Split it reads no stream state, so concurrent
// cells can derive their seeds without synchronization or ordering.
func Derive(seed uint64, keys ...uint64) uint64 {
	state := seed
	out := splitmix64(&state)
	for _, k := range keys {
		// Multiplying by the splitmix increment decorrelates small
		// adjacent keys (0,1,2,…) before they are absorbed.
		state ^= k * 0x9e3779b97f4a7c15
		out ^= splitmix64(&state)
	}
	return out
}

// HashString folds a string into a 64-bit derivation key (FNV-1a), for
// use with Derive when a sub-stream is identified by a name (a workload
// or scheme) rather than an index.
func HashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits from the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 bits from the stream.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := ^uint64(0) - (^uint64(0)%n+1)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Uniform is a precomputed drawer of uniform values in [0, n) for hot
// call sites that draw from the same bound repeatedly: Uint64n recomputes
// its rejection threshold — two 64-bit divides — on every call, while a
// Uniform pays them once. Draw consumes exactly the same stream values
// and returns exactly the same results as Uint64n(n), so swapping one in
// never changes a deterministic run.
type Uniform struct {
	n    uint64
	mask uint64 // n-1 when n is a power of two
	pow2 bool
	max  uint64 // rejection bound for the general case
}

// NewUniform precomputes a Uniform for bound n. It panics if n == 0.
func NewUniform(n uint64) Uniform {
	if n == 0 {
		panic("rng: NewUniform called with zero n")
	}
	if n&(n-1) == 0 {
		return Uniform{n: n, mask: n - 1, pow2: true}
	}
	return Uniform{n: n, max: ^uint64(0) - (^uint64(0)%n+1)%n}
}

// Draw returns the next uniform value in [0, n) from r's stream.
func (u Uniform) Draw(r *Rand) uint64 {
	if u.pow2 {
		return r.Uint64() & u.mask
	}
	for {
		if v := r.Uint64(); v <= u.max {
			return v % u.n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the given swap
// function, matching the contract of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf(s, v, imax) distribution over [0, imax] using
// rejection-inversion (Hörmann & Derflinger). It mirrors the semantics of
// math/rand.Zipf but runs on this deterministic generator.
type Zipf struct {
	r            *Rand
	imax         float64
	v            float64
	q            float64
	oneMinusQ    float64
	oneMinusQInv float64
	hxm          float64
	hx0MinusHxm  float64
	s            float64
}

// NewZipf returns a Zipf variate generator. Requires s > 1, v >= 1.
func NewZipf(r *Rand, s, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 {
		panic("rng: NewZipf requires s > 1 and v >= 1")
	}
	z := &Zipf{
		r:    r,
		imax: float64(imax),
		v:    v,
		q:    s,
	}
	z.oneMinusQ = 1 - z.q
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0MinusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

func (z *Zipf) h(x float64) float64 {
	return z.expInv(math.Log(x+z.v)*z.oneMinusQ) * z.oneMinusQInv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(math.Log(x*z.oneMinusQ)*z.oneMinusQInv) - z.v
}

func (z *Zipf) expInv(x float64) float64 { return math.Exp(x) }

// Uint64 draws the next Zipf variate.
func (z *Zipf) Uint64() uint64 {
	if z == nil {
		panic("rng: Uint64 on nil Zipf")
	}
	for {
		ur := z.hxm + z.r.Float64()*z.hx0MinusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k > z.imax {
			k = z.imax // guard against float rounding at the tail
		}
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
