package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(19)
	const imax = 999
	z := NewZipf(r, 1.3, 4, imax)
	for i := 0; i < 200000; i++ {
		if v := z.Uint64(); v > imax {
			t.Fatalf("Zipf drew %d > imax %d", v, imax)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 1.5, 1, 10000)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] <= counts[100] {
		t.Errorf("Zipf not skewed: P(0)=%d <= P(100)=%d", counts[0], counts[100])
	}
	if counts[0] == 0 {
		t.Error("Zipf never drew 0")
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s=1) did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 1, 10)
}

func TestDerivePureAndDeterministic(t *testing.T) {
	a := Derive(42, 1, 2, 3)
	b := Derive(42, 1, 2, 3)
	if a != b {
		t.Fatal("Derive is not a pure function of its arguments")
	}
	if Derive(42) == Derive(43) {
		t.Fatal("base seed ignored")
	}
}

func TestDeriveKeySensitivity(t *testing.T) {
	// Every distinct key tuple over a dense grid of small integers —
	// exactly the shape of (workload, scheme, threshold) cell keys —
	// must map to a distinct seed, including tuples that differ only in
	// arity or only by which position holds a value.
	seen := make(map[uint64][3]uint64)
	for i := uint64(0); i < 40; i++ {
		for j := uint64(0); j < 40; j++ {
			for k := uint64(0); k < 8; k++ {
				s := Derive(7, i, j, k)
				if prev, dup := seen[s]; dup {
					t.Fatalf("Derive(7,%d,%d,%d) collides with Derive(7,%v)", i, j, k, prev)
				}
				seen[s] = [3]uint64{i, j, k}
			}
		}
	}
	if Derive(7) == Derive(7, 0) || Derive(7, 0) == Derive(7, 0, 0) {
		t.Fatal("arity not absorbed")
	}
	if Derive(7, 1, 0) == Derive(7, 0, 1) {
		t.Fatal("key order not absorbed")
	}
}

// independent checks that two streams look unrelated: no identical draw
// at the same index, and the XOR of paired draws has balanced bits (a
// correlated pair would bias the XOR toward zero or toward the shared
// pattern).
func independent(t *testing.T, label string, a, b *Rand) {
	t.Helper()
	const draws = 1 << 14
	var ones int
	for i := 0; i < draws; i++ {
		x, y := a.Uint64(), b.Uint64()
		if x == y {
			t.Fatalf("%s: identical draw at index %d", label, i)
		}
		for v := x ^ y; v != 0; v &= v - 1 {
			ones++
		}
	}
	mean := float64(ones) / float64(draws)
	if math.Abs(mean-32) > 0.5 {
		t.Errorf("%s: XOR bit density %.3f bits/draw, want ~32 (correlated streams)", label, mean)
	}
}

func TestDerivedStreamsIndependent(t *testing.T) {
	const seed = 0x41515541
	independent(t, "base vs derived", New(seed), New(Derive(seed, 1)))
	independent(t, "sibling cells", New(Derive(seed, 1)), New(Derive(seed, 2)))
	independent(t, "adjacent seeds", New(seed), New(seed+1))
	independent(t, "named streams",
		New(Derive(seed, HashString("lbm"))), New(Derive(seed, HashString("mcf"))))
}

func TestHashStringDistinguishesNames(t *testing.T) {
	names := []string{"", "lbm", "mcf", "xz", "wrf", "mix01", "mix16", "aqua-sram", "aqua-memmapped"}
	seen := make(map[uint64]string)
	for _, n := range names {
		h := HashString(n)
		if prev, dup := seen[h]; dup {
			t.Fatalf("HashString(%q) == HashString(%q)", n, prev)
		}
		seen[h] = n
	}
}

func TestConcurrentDerivedStreamsMatchSerial(t *testing.T) {
	// The parallel engine's contract: a goroutine drawing from its own
	// derived stream produces the same sequence it would serially, no
	// matter how many sibling streams run beside it.
	const seed, workers, draws = 99, 8, 4096
	serial := make([][]uint64, workers)
	for w := range serial {
		r := New(Derive(seed, uint64(w)))
		for i := 0; i < draws; i++ {
			serial[w] = append(serial[w], r.Uint64())
		}
	}
	concurrent := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := New(Derive(seed, uint64(w)))
			for i := 0; i < draws; i++ {
				concurrent[w] = append(concurrent[w], r.Uint64())
			}
		}(w)
	}
	wg.Wait()
	for w := range serial {
		for i := range serial[w] {
			if serial[w][i] != concurrent[w][i] {
				t.Fatalf("stream %d diverged at draw %d under concurrency", w, i)
			}
		}
	}
}

func TestUint32(t *testing.T) {
	r := New(29)
	var or uint32
	for i := 0; i < 64; i++ {
		or |= r.Uint32()
	}
	if or == 0 {
		t.Fatal("Uint32 always returned 0")
	}
}
