package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(19)
	const imax = 999
	z := NewZipf(r, 1.3, 4, imax)
	for i := 0; i < 200000; i++ {
		if v := z.Uint64(); v > imax {
			t.Fatalf("Zipf drew %d > imax %d", v, imax)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 1.5, 1, 10000)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] <= counts[100] {
		t.Errorf("Zipf not skewed: P(0)=%d <= P(100)=%d", counts[0], counts[100])
	}
	if counts[0] == 0 {
		t.Error("Zipf never drew 0")
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s=1) did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 1, 10)
}

func TestUint32(t *testing.T) {
	r := New(29)
	var or uint32
	for i := 0; i < 64; i++ {
		or |= r.Uint32()
	}
	if or == 0 {
		t.Fatal("Uint32 always returned 0")
	}
}
