package flipmodel

import (
	"testing"

	"repro/internal/dram"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 256, RowBytes: 1024, LineBytes: 64}
}

const ms = dram.Millisecond

func TestNeighborDisturbance(t *testing.T) {
	m := New(testGeom(), 100, 64*ms)
	aggr := testGeom().RowOf(0, 10)
	m.RowOpened(aggr, 0)
	if d := m.Disturbance(testGeom().RowOf(0, 9)); d != 1 {
		t.Fatalf("left neighbor disturbance = %d", d)
	}
	if d := m.Disturbance(testGeom().RowOf(0, 11)); d != 1 {
		t.Fatalf("right neighbor disturbance = %d", d)
	}
	if d := m.Disturbance(testGeom().RowOf(0, 12)); d != 0 {
		t.Fatalf("distance-2 disturbed directly: %d", d)
	}
}

func TestOpeningRestoresOwnCharge(t *testing.T) {
	m := New(testGeom(), 100, 64*ms)
	victim := testGeom().RowOf(0, 10)
	aggr := testGeom().RowOf(0, 11)
	for i := 0; i < 50; i++ {
		m.RowOpened(aggr, dram.PS(i)*1000)
	}
	if m.Disturbance(victim) != 50 {
		t.Fatalf("disturbance = %d", m.Disturbance(victim))
	}
	m.RowOpened(victim, 51_000) // victim refresh / activation
	if m.Disturbance(victim) != 0 {
		t.Fatal("opening did not restore charge")
	}
}

func TestFlipAtThreshold(t *testing.T) {
	m := New(testGeom(), 100, 64*ms)
	aggr := testGeom().RowOf(0, 11)
	for i := 0; i < 100; i++ {
		m.RowOpened(aggr, dram.PS(i)*1000)
	}
	if !m.Flipped() {
		t.Fatal("no flip at threshold")
	}
	flips := m.Flips()
	if len(flips) != 2 { // both neighbours cross together
		t.Fatalf("flips = %v", flips)
	}
	if flips[0].Disturbance < 100 {
		t.Fatalf("flip below threshold: %+v", flips[0])
	}
}

func TestDoubleSidedFlipsTwiceAsFast(t *testing.T) {
	m := New(testGeom(), 100, 64*ms)
	g := testGeom()
	left, right := g.RowOf(0, 9), g.RowOf(0, 11)
	for i := 0; i < 50; i++ {
		m.RowOpened(left, dram.PS(2*i)*1000)
		m.RowOpened(right, dram.PS(2*i+1)*1000)
	}
	victim := g.RowOf(0, 10)
	found := false
	for _, f := range m.Flips() {
		if f.Victim == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("double-sided victim did not flip at T/2 per side")
	}
}

func TestHalfDoubleEmergence(t *testing.T) {
	// Victim refresh of A+/-1 (modelled as opening those rows) disturbs
	// A+/-2: the Half-Double mechanism. 100 mitigating refreshes of A+1
	// flip A+2 even though A+2 is never adjacent to the aggressor A.
	g := testGeom()
	m := New(g, 100, 64*ms)
	aPlus1 := g.RowOf(0, 11)
	for i := 0; i < 100; i++ {
		m.RowOpened(aPlus1, dram.PS(i)*1000) // mitigating refresh
	}
	flipped := false
	for _, f := range m.Flips() {
		if f.Victim == g.RowOf(0, 12) {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("distance-2 victim not flipped by refreshes")
	}
}

func TestWindowRefreshResets(t *testing.T) {
	m := New(testGeom(), 100, 10*ms)
	aggr := testGeom().RowOf(0, 11)
	for i := 0; i < 60; i++ {
		m.RowOpened(aggr, dram.PS(i)*1000)
	}
	// Next window: counts reset by the periodic refresh.
	m.RowOpened(aggr, 15*ms)
	if d := m.Disturbance(testGeom().RowOf(0, 10)); d != 1 {
		t.Fatalf("disturbance after window roll = %d", d)
	}
	if m.Flipped() {
		t.Fatal("flip across windows")
	}
}

func TestFlipRecordedOncePerRow(t *testing.T) {
	m := New(testGeom(), 10, 64*ms)
	aggr := testGeom().RowOf(0, 11)
	for i := 0; i < 50; i++ {
		m.RowOpened(aggr, dram.PS(i)*1000)
	}
	count := 0
	for _, f := range m.Flips() {
		if f.Victim == testGeom().RowOf(0, 10) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("victim flipped %d times in the report", count)
	}
}

func TestMaxDisturbance(t *testing.T) {
	m := New(testGeom(), 1000, 64*ms)
	aggr := testGeom().RowOf(0, 11)
	for i := 0; i < 7; i++ {
		m.RowOpened(aggr, dram.PS(i)*1000)
	}
	if _, d := m.MaxDisturbance(); d != 7 {
		t.Fatalf("max disturbance = %d", d)
	}
	if m.Opens() != 7 {
		t.Fatalf("opens = %d", m.Opens())
	}
}

func TestAttach(t *testing.T) {
	g := testGeom()
	rank := dram.NewRank(g, dram.DDR4())
	m := New(g, 5, 64*ms)
	m.Attach(rank)
	a, b := g.RowOf(0, 10), g.RowOf(0, 30)
	at := dram.PS(0)
	for i := 0; i < 6; i++ {
		done, _ := rank.Access(a, false, at)
		done2, _ := rank.Access(b, false, done)
		at = done2
	}
	if !m.Flipped() {
		t.Fatal("attached model missed rank activity")
	}
}

func TestReset(t *testing.T) {
	m := New(testGeom(), 10, 64*ms)
	for i := 0; i < 20; i++ {
		m.RowOpened(testGeom().RowOf(0, 11), dram.PS(i))
	}
	m.Reset()
	if m.Flipped() || m.Opens() != 0 {
		t.Fatal("reset incomplete")
	}
}
