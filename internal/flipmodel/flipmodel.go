// Package flipmodel implements a charge-disturbance model of DRAM rows,
// used to demonstrate *why* victim refresh fails against Half-Double while
// row migration survives it (Figure 1 of the paper).
//
// The model is deliberately simple and physical:
//
//   - opening a row (an activation OR a targeted refresh — electrically the
//     same operation) fully restores that row's own charge and disturbs
//     each distance-1 neighbour by one unit;
//   - a row whose accumulated disturbance exceeds the flip threshold
//     suffers a bit flip;
//   - the periodic auto-refresh restores every row once per refresh window
//     (modelled as a bulk reset at window boundaries).
//
// Under this model the Half-Double attack emerges naturally: heavily
// hammering row A forces the victim-refresh mitigation to repeatedly
// refresh rows A±1, and each of those refreshes disturbs rows A±2 — which
// classic victim refresh never restores. Migration-based mitigations never
// concentrate that many row openings in one neighbourhood, because the
// aggressor is relocated after T_RH/2 activations.
package flipmodel

import (
	"sort"

	"repro/internal/dram"
)

// Flip records one bit-flip event.
type Flip struct {
	Victim      dram.Row
	Disturbance int64
	At          dram.PS
}

// Model accumulates per-row disturbance. Not safe for concurrent use.
type Model struct {
	geom      dram.Geometry
	threshold int64
	window    dram.PS

	disturb map[dram.Row]int64
	flipped map[dram.Row]bool
	flips   []Flip

	lastWindow int64
	opens      int64
}

// New builds a model in which a row flips once it accumulates `threshold`
// disturbance units within one refresh window.
func New(geom dram.Geometry, threshold int64, window dram.PS) *Model {
	if threshold < 1 {
		panic("flipmodel: threshold must be >= 1")
	}
	if window <= 0 {
		panic("flipmodel: window must be positive")
	}
	return &Model{
		geom:      geom,
		threshold: threshold,
		window:    window,
		disturb:   make(map[dram.Row]int64),
		flipped:   make(map[dram.Row]bool),
	}
}

// Attach wires the model to a rank so every committed activation is
// observed. Victim-refresh engines must additionally route their
// mitigating refreshes to RowOpened via the vrefresh.Config.OnRefresh
// hook.
func (m *Model) Attach(r *dram.Rank) {
	r.Listen(func(row dram.Row, at dram.PS) { m.RowOpened(row, at) })
}

// RowOpened records that a row was opened (activated or refreshed) at the
// given time: its own charge is restored; each distance-1 neighbour is
// disturbed by one unit.
func (m *Model) RowOpened(row dram.Row, at dram.PS) {
	m.rollWindow(at)
	m.opens++
	delete(m.disturb, row) // opening restores the row's own charge
	pair, np := m.geom.NeighborPair(row, 1)
	for _, n := range pair[:np] {
		m.disturb[n]++
		if m.disturb[n] >= m.threshold && !m.flipped[n] {
			m.flipped[n] = true
			m.flips = append(m.flips, Flip{Victim: n, Disturbance: m.disturb[n], At: at})
		}
	}
}

// rollWindow applies the periodic auto-refresh: all rows restored at every
// window boundary.
func (m *Model) rollWindow(at dram.PS) {
	w := at / m.window
	if w != m.lastWindow {
		clear(m.disturb)
		m.lastWindow = w
	}
}

// Flips returns all recorded bit flips in order of occurrence.
func (m *Model) Flips() []Flip { return m.flips }

// Flipped reports whether any flip occurred.
func (m *Model) Flipped() bool { return len(m.flips) > 0 }

// Disturbance returns a row's current accumulated disturbance.
func (m *Model) Disturbance(row dram.Row) int64 { return m.disturb[row] }

// MaxDisturbance returns the highest current disturbance and its row.
func (m *Model) MaxDisturbance() (dram.Row, int64) {
	var bestRow dram.Row
	var best int64
	rows := make([]dram.Row, 0, len(m.disturb))
	for r := range m.disturb {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, r := range rows {
		if m.disturb[r] > best {
			best = m.disturb[r]
			bestRow = r
		}
	}
	return bestRow, best
}

// Opens returns the number of row openings observed.
func (m *Model) Opens() int64 { return m.opens }

// Reset clears all state.
func (m *Model) Reset() {
	clear(m.disturb)
	clear(m.flipped)
	m.flips = nil
	m.lastWindow = 0
	m.opens = 0
}
