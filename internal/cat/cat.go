// Package cat implements a Collision-Avoidance Table (CAT): an
// overprovisioned, skewed-associative lookup table adopted from MIRAGE and
// used by RRS for its Row Indirection Table and by AQUA for the SRAM
// variant of its Forward-Pointer Table (Section IV-C).
//
// A CAT stores (row -> pointer) mappings for entries that may come from
// arbitrary locations in memory. Two independent hash functions ("skews")
// each select a set; an incoming entry is installed in the set with more
// free ways (power-of-two-choices), with a bounded cuckoo-style relocation
// as a fallback. With the paper's overprovisioning (32K entries for at most
// 23K valid) the probability of an unplaceable entry is negligible; the
// implementation surfaces it as ErrFull so tests can verify the
// provisioning claim empirically.
package cat

import (
	"errors"
	"fmt"

	"repro/internal/dram"
)

// ErrFull is returned when an entry cannot be placed in either skew even
// after relocation. A correctly provisioned table never returns it.
var ErrFull = errors.New("cat: both candidate sets full and relocation failed")

// Config sizes a CAT.
type Config struct {
	// Sets per skew; must be a power of two.
	Sets int
	// Ways per set.
	Ways int
	// Seed differentiates hash functions across table instances.
	Seed uint64
	// MaxRelocations bounds the cuckoo relocation chain on insert.
	MaxRelocations int
}

// DefaultFPT returns the paper's FPT provisioning: 32K entries (2 skews x
// 2K sets x 8 ways) for up to 23K valid entries.
func DefaultFPT(seed uint64) Config {
	return Config{Sets: 2048, Ways: 8, Seed: seed, MaxRelocations: 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets < 1 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cat: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways < 1 {
		return fmt.Errorf("cat: ways must be >= 1, got %d", c.Ways)
	}
	if c.MaxRelocations < 0 {
		return fmt.Errorf("cat: negative MaxRelocations")
	}
	return nil
}

type slot struct {
	key   dram.Row
	value uint32
	valid bool
}

// Table is a two-skew CAT mapping dram.Row keys to 32-bit values. Not safe
// for concurrent use.
type Table struct {
	cfg   Config
	skews [2][]slot // each skew: Sets*Ways slots
	count int

	// stats
	relocations int64
	failures    int64
}

// New builds a CAT; it panics on invalid configuration.
func New(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Table{cfg: cfg}
	for i := range t.skews {
		t.skews[i] = make([]slot, cfg.Sets*cfg.Ways)
	}
	return t
}

// Capacity returns the total number of slots across both skews.
func (t *Table) Capacity() int { return 2 * t.cfg.Sets * t.cfg.Ways }

// Len returns the number of valid entries.
func (t *Table) Len() int { return t.count }

// Relocations returns the total number of cuckoo displacements performed.
func (t *Table) Relocations() int64 { return t.relocations }

// hash mixes the key with a per-skew seed (splitmix64 finalizer).
func (t *Table) hash(skew int, key dram.Row) int {
	z := uint64(key) + t.cfg.Seed + uint64(skew)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z & uint64(t.cfg.Sets-1))
}

// set returns the slots of the given skew/set.
func (t *Table) set(skew, setIdx int) []slot {
	base := setIdx * t.cfg.Ways
	return t.skews[skew][base : base+t.cfg.Ways]
}

// Lookup returns the value mapped to key.
func (t *Table) Lookup(key dram.Row) (uint32, bool) {
	for skew := 0; skew < 2; skew++ {
		for _, s := range t.set(skew, t.hash(skew, key)) {
			if s.valid && s.key == key {
				return s.value, true
			}
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Table) Contains(key dram.Row) bool {
	_, ok := t.Lookup(key)
	return ok
}

// freeWays counts invalid slots in a set.
func freeWays(set []slot) int {
	n := 0
	for _, s := range set {
		if !s.valid {
			n++
		}
	}
	return n
}

// Insert adds or updates a mapping. Returns ErrFull only if both candidate
// sets are full and bounded relocation cannot make room.
func (t *Table) Insert(key dram.Row, value uint32) error {
	// Update in place if present.
	for skew := 0; skew < 2; skew++ {
		set := t.set(skew, t.hash(skew, key))
		for i := range set {
			if set[i].valid && set[i].key == key {
				set[i].value = value
				return nil
			}
		}
	}
	return t.place(key, value, t.cfg.MaxRelocations)
}

// place installs a (key, value) that is known to be absent.
func (t *Table) place(key dram.Row, value uint32, budget int) error {
	set0 := t.set(0, t.hash(0, key))
	set1 := t.set(1, t.hash(1, key))
	f0, f1 := freeWays(set0), freeWays(set1)
	target := set0
	if f1 > f0 {
		target = set1
	}
	if f0 == 0 && f1 == 0 {
		if budget <= 0 {
			t.failures++
			return ErrFull
		}
		// Relocate: displace the first entry of skew 0's set to its
		// alternate skew, recursively.
		victim := set0[0]
		set0[0] = slot{key: key, value: value, valid: true}
		t.relocations++
		t.count-- // the displaced victim is re-inserted below
		if err := t.place(victim.key, victim.value, budget-1); err != nil {
			// Roll back: restore the victim and report failure.
			set0[0] = victim
			t.count++
			t.failures++
			return ErrFull
		}
		t.count++
		return nil
	}
	for i := range target {
		if !target[i].valid {
			target[i] = slot{key: key, value: value, valid: true}
			t.count++
			return nil
		}
	}
	panic("cat: unreachable: free way disappeared")
}

// Delete removes a mapping; it reports whether the key was present.
func (t *Table) Delete(key dram.Row) bool {
	for skew := 0; skew < 2; skew++ {
		set := t.set(skew, t.hash(skew, key))
		for i := range set {
			if set[i].valid && set[i].key == key {
				set[i] = slot{}
				t.count--
				return true
			}
		}
	}
	return false
}

// Clear removes all entries.
func (t *Table) Clear() {
	for skew := range t.skews {
		for i := range t.skews[skew] {
			t.skews[skew][i] = slot{}
		}
	}
	t.count = 0
}

// Range calls fn for every valid entry until fn returns false. Iteration
// order is unspecified but deterministic.
func (t *Table) Range(fn func(key dram.Row, value uint32) bool) {
	for skew := range t.skews {
		for _, s := range t.skews[skew] {
			if s.valid && !fn(s.key, s.value) {
				return
			}
		}
	}
}

// SRAMBytes returns the storage footprint given key and value widths in
// bits (plus one valid bit per slot), mirroring the paper's accounting
// (e.g. 32K entries x 27 bits ~= 108KB for the FPT).
func (t *Table) SRAMBytes(keyBits, valueBits int) int {
	bits := t.Capacity() * (1 + keyBits + valueBits)
	return (bits + 7) / 8
}
