package cat

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/rng"
)

func smallCfg() Config {
	return Config{Sets: 64, Ways: 4, Seed: 7, MaxRelocations: 8}
}

func TestInsertLookupDelete(t *testing.T) {
	tab := New(smallCfg())
	if err := tab.Insert(dram.Row(10), 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Lookup(dram.Row(10)); !ok || v != 42 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
	if !tab.Delete(dram.Row(10)) {
		t.Fatal("delete failed")
	}
	if tab.Contains(dram.Row(10)) {
		t.Fatal("still present after delete")
	}
	if tab.Delete(dram.Row(10)) {
		t.Fatal("double delete succeeded")
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	tab := New(smallCfg())
	tab.Insert(dram.Row(5), 1)
	tab.Insert(dram.Row(5), 2)
	if v, _ := tab.Lookup(dram.Row(5)); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d after update", tab.Len())
	}
}

func TestMapSemanticsProperty(t *testing.T) {
	// The CAT must behave exactly like a map for any operation sequence
	// that stays within a modest load factor.
	check := func(seed uint64) bool {
		tab := New(smallCfg())
		ref := make(map[dram.Row]uint32)
		r := rng.New(seed)
		for op := 0; op < 300; op++ {
			key := dram.Row(r.Intn(200))
			switch r.Intn(3) {
			case 0:
				if len(ref) < tab.Capacity()/3 {
					val := uint32(r.Intn(1000))
					if err := tab.Insert(key, val); err != nil {
						return false
					}
					ref[key] = val
				}
			case 1:
				delete(ref, key)
				tab.Delete(key)
			case 2:
				v, ok := tab.Lookup(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		return tab.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperProvisioningHolds23K(t *testing.T) {
	// Section IV-C: a 32K-entry CAT must hold 23K arbitrary entries
	// without placement failure.
	tab := New(DefaultFPT(3))
	if tab.Capacity() != 32*1024 {
		t.Fatalf("capacity = %d, want 32K", tab.Capacity())
	}
	r := rng.New(12345)
	inserted := make(map[dram.Row]bool)
	for len(inserted) < 23053 {
		key := dram.Row(r.Intn(2 * 1024 * 1024))
		if inserted[key] {
			continue
		}
		if err := tab.Insert(key, uint32(len(inserted))); err != nil {
			t.Fatalf("placement failed at entry %d: %v", len(inserted), err)
		}
		inserted[key] = true
	}
	if tab.Len() != len(inserted) {
		t.Fatalf("len = %d, want %d", tab.Len(), len(inserted))
	}
	// Everything must still be found.
	for key := range inserted {
		if !tab.Contains(key) {
			t.Fatalf("lost key %d", key)
		}
	}
}

func TestErrFullWhenOverloaded(t *testing.T) {
	tab := New(Config{Sets: 1, Ways: 1, Seed: 1, MaxRelocations: 2})
	// Capacity 2 (two skews x 1 set x 1 way); inserting more keys than
	// capacity must eventually fail.
	var sawFull bool
	for i := 0; i < 10; i++ {
		if err := tab.Insert(dram.Row(i), 0); err == ErrFull {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("overloaded table never reported ErrFull")
	}
}

func TestRelocationMakesRoom(t *testing.T) {
	// With relocation enabled the table approaches its capacity further
	// than the naive two-choice placement would.
	cfgNoReloc := Config{Sets: 16, Ways: 2, Seed: 5, MaxRelocations: 0}
	cfgReloc := cfgNoReloc
	cfgReloc.MaxRelocations = 8

	fill := func(cfg Config) int {
		tab := New(cfg)
		r := rng.New(777)
		n := 0
		for i := 0; i < tab.Capacity()*4; i++ {
			if err := tab.Insert(dram.Row(r.Intn(1<<20)), 0); err == nil {
				n++
			}
		}
		return n
	}
	if fill(cfgReloc) < fill(cfgNoReloc) {
		t.Fatal("relocation reduced achievable occupancy")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tab := New(smallCfg())
	want := map[dram.Row]uint32{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		tab.Insert(k, v)
	}
	got := make(map[dram.Row]uint32)
	tab.Range(func(k dram.Row, v uint32) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d entries", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("range saw %d=%d", k, got[k])
		}
	}
	// Early termination.
	n := 0
	tab.Range(func(dram.Row, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("range did not stop: %d", n)
	}
}

func TestClear(t *testing.T) {
	tab := New(smallCfg())
	for i := 0; i < 20; i++ {
		tab.Insert(dram.Row(i), uint32(i))
	}
	tab.Clear()
	if tab.Len() != 0 {
		t.Fatal("clear left entries")
	}
	if tab.Contains(dram.Row(3)) {
		t.Fatal("clear left key 3")
	}
}

func TestSRAMBytes(t *testing.T) {
	tab := New(DefaultFPT(1))
	// 32K entries x (1 + 21 + 15) bits = 148KB; with the paper's folded
	// tag accounting it reports 108KB — verify our first-principles value.
	got := tab.SRAMBytes(21, 15)
	want := 32 * 1024 * 37 / 8
	if got != want {
		t.Fatalf("SRAMBytes = %d, want %d", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1},
		{Sets: 3, Ways: 1},
		{Sets: 4, Ways: 0},
		{Sets: 4, Ways: 1, MaxRelocations: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDeterministicPlacement(t *testing.T) {
	a, b := New(smallCfg()), New(smallCfg())
	for i := 0; i < 100; i++ {
		a.Insert(dram.Row(i*17), uint32(i))
		b.Insert(dram.Row(i*17), uint32(i))
	}
	a.Range(func(k dram.Row, v uint32) bool {
		bv, ok := b.Lookup(k)
		if !ok || bv != v {
			t.Fatalf("tables diverged at %d", k)
		}
		return true
	})
}
