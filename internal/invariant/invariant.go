// Package invariant is the simulator's runtime correctness layer: a
// violation collector that components assert against while a simulation
// runs. The hooks live in the components themselves —
//
//   - internal/dram re-derives the per-bank timing windows (tRC, tRCD,
//     tRP, tRFC, tFAW) from a reference Timing and checks every committed
//     command against them, independently of the scheduling arithmetic;
//   - internal/memctrl checks that no access completes inside a reserved
//     migration window and that background work (refresh, epochs) is
//     never starved past its deadline;
//   - internal/core checks AQUA's structural state: RQA occupancy within
//     capacity, FPT and RPT remaining a bijection, no same-epoch slot
//     reuse, and a completed proactive-drain sweep leaving zero stale
//     quarantined rows.
//
// The package deliberately imports nothing from the simulator (times are
// plain int64 picoseconds, mirroring dram.PS) so every layer can hook
// into it without import cycles. Checking is enabled by handing a
// *Checker to a component's Config; a nil checker is the release mode
// and costs one pointer test per assertion site.
package invariant

import (
	"fmt"
	"strings"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Component names the layer that detected the breach ("dram",
	// "memctrl", "core", ...).
	Component string
	// Rule names the invariant ("tRP", "fpt-rpt-bijection", ...).
	Rule string
	// At is the simulated time of the violating event, in picoseconds.
	At int64
	// Detail is the human-readable specifics.
	Detail string
}

// String formats the violation for logs and test failures.
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s at %dps: %s", v.Component, v.Rule, v.At, v.Detail)
}

// storeLimit bounds retained violations so a hot broken invariant cannot
// exhaust memory; the count keeps increasing past it.
const storeLimit = 256

// Checker collects violations. The zero value is not valid; use New.
// It is not safe for concurrent use, matching the single-threaded
// simulator core.
type Checker struct {
	violations []Violation
	count      int
	failFast   bool
}

// New returns an enabled checker.
func New() *Checker { return &Checker{} }

// SetFailFast makes the checker panic on the first violation instead of
// collecting it — the right mode under `go test -fuzz`, where the panic
// point pins the offending operation.
func (c *Checker) SetFailFast(on bool) { c.failFast = on }

// Reportf records a violation.
func (c *Checker) Reportf(component, rule string, at int64, format string, args ...any) {
	v := Violation{Component: component, Rule: rule, At: at, Detail: fmt.Sprintf(format, args...)}
	if c.failFast {
		panic("invariant: " + v.String())
	}
	c.count++
	if len(c.violations) < storeLimit {
		c.violations = append(c.violations, v)
	}
}

// Checkf asserts cond, recording a violation when it is false. It
// returns cond so call sites can branch on the outcome.
func (c *Checker) Checkf(cond bool, component, rule string, at int64, format string, args ...any) bool {
	if !cond {
		c.Reportf(component, rule, at, format, args...)
	}
	return cond
}

// Count returns the total number of violations observed (including any
// dropped past the retention limit).
func (c *Checker) Count() int { return c.count }

// Violations returns the retained violations in observation order.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil if no violation was observed, otherwise an error
// summarizing the first few.
func (c *Checker) Err() error {
	if c.count == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", c.count)
	for i, v := range c.violations {
		if i == 5 {
			fmt.Fprintf(&b, "\n  ... %d more", c.count-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Reset clears the collected state (between measurement phases).
func (c *Checker) Reset() {
	c.violations = c.violations[:0]
	c.count = 0
}
