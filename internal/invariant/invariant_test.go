package invariant

import (
	"strings"
	"testing"
)

func TestCleanCheckerReportsNothing(t *testing.T) {
	c := New()
	if !c.Checkf(true, "x", "y", 0, "fine") {
		t.Fatal("Checkf(true) returned false")
	}
	if c.Count() != 0 || c.Err() != nil || len(c.Violations()) != 0 {
		t.Fatalf("clean checker: count=%d err=%v", c.Count(), c.Err())
	}
}

func TestCheckfRecordsFailures(t *testing.T) {
	c := New()
	if c.Checkf(false, "dram", "tRP", 42, "gap %dps", 7) {
		t.Fatal("Checkf(false) returned true")
	}
	c.Reportf("core", "structural", 99, "broken")
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	vs := c.Violations()
	if vs[0].Component != "dram" || vs[0].Rule != "tRP" || vs[0].At != 42 || vs[0].Detail != "gap 7ps" {
		t.Fatalf("violation 0 = %+v", vs[0])
	}
	if got := vs[0].String(); !strings.Contains(got, "dram/tRP") || !strings.Contains(got, "42ps") {
		t.Fatalf("String() = %q", got)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "2 invariant violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestErrTruncatesLongLists(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Reportf("x", "r", int64(i), "v%d", i)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "... 5 more") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestStoreLimitBoundsRetention(t *testing.T) {
	c := New()
	for i := 0; i < storeLimit+50; i++ {
		c.Reportf("x", "r", 0, "v")
	}
	if c.Count() != storeLimit+50 {
		t.Fatalf("count = %d", c.Count())
	}
	if len(c.Violations()) != storeLimit {
		t.Fatalf("retained = %d", len(c.Violations()))
	}
}

func TestResetClears(t *testing.T) {
	c := New()
	c.Reportf("x", "r", 0, "v")
	c.Reset()
	if c.Count() != 0 || c.Err() != nil {
		t.Fatalf("after reset: count=%d err=%v", c.Count(), c.Err())
	}
}

func TestFailFastPanics(t *testing.T) {
	c := New()
	c.SetFailFast(true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic in fail-fast mode")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "dram/tRP") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	c.Checkf(false, "dram", "tRP", 1, "boom")
}
