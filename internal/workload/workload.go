// Package workload synthesizes the memory behaviour of the paper's
// evaluation workloads: the 18 SPEC CPU2017 rate workloads of Table II and
// the 16 four-way mixes.
//
// SPEC binaries and gem5 checkpoints are not available in this
// environment, so each workload is modelled by the two properties that
// determine everything the paper measures (substitution documented in
// DESIGN.md):
//
//   - MPKI, which sets the request rate per core, and
//   - the per-epoch hot-row histogram — how many rows receive 166+, 500+
//     and 1000+ activations per 64ms (Table II) — which determines how
//     many mitigations each scheme triggers and therefore the slowdown.
//
// A generated stream interleaves accesses to a fixed population of
// per-core hot rows (weighted so per-epoch activation counts land in the
// Table II tiers) with a Zipf-distributed background over a large row
// working set. Streams are deterministic given the workload name and seed.
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/rng"
)

// Spec describes one workload's memory behaviour, taken from Table II.
type Spec struct {
	Name string
	// MPKI is misses per kilo-instruction (post-LLC).
	MPKI float64
	// Rows166, Rows500, Rows1K are the average number of rows with at
	// least 166/500/1000 activations per 64ms epoch (cumulative tiers,
	// whole 4-core system).
	Rows166, Rows500, Rows1K int
}

// SPEC17 returns the 18 rate workloads of Table II.
func SPEC17() []Spec {
	return []Spec{
		{"lbm", 20.9, 6794, 5437, 0},
		{"blender", 14.8, 6085, 3021, 572},
		{"gcc", 6.32, 4850, 1836, 111},
		{"mcf", 7.02, 4819, 835, 393},
		{"cactuBSSN", 2.57, 2515, 0, 0},
		{"roms", 4.37, 1150, 191, 11},
		{"xz", 0.41, 655, 0, 0},
		{"perlbench", 0.74, 0, 0, 0},
		{"bwaves", 0.21, 0, 0, 0},
		{"namd", 0.38, 0, 0, 0},
		{"povray", 0.01, 0, 0, 0},
		{"wrf", 0.02, 0, 0, 0},
		{"deepsjeng", 0.25, 0, 0, 0},
		{"imagick", 0.27, 0, 0, 0},
		{"leela", 0.03, 0, 0, 0},
		{"nab", 0.54, 0, 0, 0},
		{"exchange2", 0.01, 0, 0, 0},
		{"parest", 0.1, 0, 0, 0},
	}
}

// ByName returns the named SPEC workload spec.
func ByName(name string) (Spec, bool) {
	for _, s := range SPEC17() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Mixes returns the paper's 16 mixed workloads: each a deterministic draw
// of four SPEC workloads, one per core.
func Mixes() [][4]Spec {
	specs := SPEC17()
	r := rng.New(0x4d495853) // "MIXS"
	mixes := make([][4]Spec, 16)
	for i := range mixes {
		for c := 0; c < 4; c++ {
			mixes[i][c] = specs[r.Intn(len(specs))]
		}
	}
	return mixes
}

// MixName renders a short identifier for a mix.
func MixName(i int, mix [4]Spec) string {
	return fmt.Sprintf("mix%02d(%s,%s,%s,%s)", i+1,
		mix[0].Name, mix[1].Name, mix[2].Name, mix[3].Name)
}

// Region is the address space the generator may touch: the software-
// visible portion of a rank (mitigation engines reserve rows at the top of
// each bank).
type Region struct {
	Geom dram.Geometry
	// VisibleRowsPerBank caps the in-bank row index; 0 means the whole
	// bank.
	VisibleRowsPerBank int
}

// rows returns the usable rows per bank.
func (r Region) rows() int {
	if r.VisibleRowsPerBank > 0 {
		return r.VisibleRowsPerBank
	}
	return r.Geom.RowsPerBank
}

// RowAt maps a flat visible-row index to a physical install row.
func (r Region) RowAt(i int) dram.Row {
	n := r.rows()
	bank := i / n % r.Geom.Banks
	return r.Geom.RowOf(bank, i%n)
}

// VisibleRows returns the number of addressable rows.
func (r Region) VisibleRows() int { return r.rows() * r.Geom.Banks }

// Params tunes stream generation.
type Params struct {
	// EpochLength is the activation-accounting window (default 64ms).
	EpochLength dram.PS
	// NominalIPC is the assumed per-core IPC used to convert MPKI into
	// per-epoch request budgets (default 1.0).
	NominalIPC float64
	// FreqHz is the core clock (default 3GHz).
	FreqHz int64
	// Cores is the number of cores sharing the Table II row counts
	// (default 4).
	Cores int
	// WriteFraction of requests are writebacks (default 0.3).
	WriteFraction float64
	// BackgroundRows sizes the cold working set per core (default 64K).
	BackgroundRows int
	// BackgroundBurst is the mean number of consecutive accesses to the
	// same background row (row-buffer locality; default 4). Hot-row
	// accesses are not bursty: interleaving across the hot set makes
	// nearly every hot access an activation, which is what defines them
	// as aggressors.
	BackgroundBurst int
}

func (p *Params) fillDefaults() {
	if p.EpochLength == 0 {
		p.EpochLength = 64 * dram.Millisecond
	}
	if p.NominalIPC == 0 {
		p.NominalIPC = 1.0
	}
	if p.FreqHz == 0 {
		p.FreqHz = 3_000_000_000
	}
	if p.Cores == 0 {
		p.Cores = 4
	}
	if p.WriteFraction == 0 {
		p.WriteFraction = 0.3
	}
	if p.BackgroundRows == 0 {
		p.BackgroundRows = 64 * 1024
	}
	if p.BackgroundBurst == 0 {
		p.BackgroundBurst = 4
	}
}

// hotRow is one row with a per-epoch activation target.
type hotRow struct {
	row    dram.Row
	weight float64
}

// Generator produces per-core streams for one workload.
type Generator struct {
	spec   Spec
	params Params
	region Region

	gapInstr   int64       // instructions between requests
	gapDraw    rng.Uniform // precomputed [0, gapInstr+1) drawer (hot path)
	hot        []hotRow
	cum        []float64 // cumulative weights over hot rows
	pHot       float64   // probability a request hits the hot set
	background []dram.Row

	// pick/pickScale index the cumulative array for pickHot: bucket j of
	// the total weight range holds the only indices whose cum span
	// intersects it, so the inverse-CDF search degenerates to a one- or
	// two-element scan. Stored as interleaved (lo, hi) int32 pairs so a
	// draw touches one cache line, not two. Built once per generator; see
	// buildPickIndex.
	pick      []int32
	pickScale float64
}

// NewGenerator builds a deterministic generator for one core's share of
// the workload. coreIdx differentiates the hot-row placement of the four
// rate copies.
func NewGenerator(spec Spec, region Region, coreIdx int, seed uint64, params Params) *Generator {
	params.fillDefaults()
	if spec.MPKI <= 0 {
		panic(fmt.Sprintf("workload: %s has non-positive MPKI", spec.Name))
	}
	g := &Generator{spec: spec, params: params, region: region}
	g.gapInstr = int64(1000 / spec.MPKI)
	if g.gapInstr < 1 {
		g.gapInstr = 1
	}
	g.gapDraw = rng.NewUniform(uint64(g.gapInstr) + 1)

	r := rng.New(seed ^ hashName(spec.Name) ^ (uint64(coreIdx+1) * 0x9e3779b97f4a7c15))

	// Per-core share of the Table II tiers (counts are system-wide over
	// `Cores` copies). Tier targets are drawn uniformly inside the tier.
	share := func(n int) int { return n / params.Cores }
	n1k := share(spec.Rows1K)
	n500 := share(spec.Rows500) - n1k
	if n500 < 0 {
		n500 = 0
	}
	n166 := share(spec.Rows166) - n500 - n1k
	if n166 < 0 {
		n166 = 0
	}

	visible := region.VisibleRows()
	pick := func() dram.Row { return region.RowAt(r.Intn(visible)) }

	addTier := func(count int, lo, hi float64) {
		for i := 0; i < count; i++ {
			target := lo + r.Float64()*(hi-lo)
			g.hot = append(g.hot, hotRow{row: pick(), weight: target})
		}
	}
	addTier(n1k, 1000, 2200)
	addTier(n500, 500, 1000)
	addTier(n166, 166, 500)

	// Requests this core issues per epoch at the nominal IPC.
	reqsPerEpoch := spec.MPKI / 1000 * params.NominalIPC * float64(params.FreqHz) *
		(float64(params.EpochLength) / 1e12)
	var hotActs float64
	g.cum = make([]float64, len(g.hot))
	for i, h := range g.hot {
		hotActs += h.weight
		g.cum[i] = hotActs
	}
	g.buildPickIndex()
	if reqsPerEpoch > 0 {
		// h is the desired fraction of *requests* that hit the hot set.
		// Background selections expand into bursts of mean length b, so
		// the per-decision hot probability p must satisfy
		// h = p / (p + (1-p)*b)  =>  p = h*b / (1 + h*(b-1)).
		h := hotActs / reqsPerEpoch
		b := float64(params.BackgroundBurst)
		if b < 1 {
			b = 1
		}
		g.pHot = h * b / (1 + h*(b-1))
	}
	if g.pHot > 0.98 {
		g.pHot = 0.98
	}

	// Cold background working set.
	bg := params.BackgroundRows
	if bg > visible {
		bg = visible
	}
	g.background = make([]dram.Row, bg)
	for i := range g.background {
		g.background[i] = pick()
	}
	return g
}

// Spec returns the workload description.
func (g *Generator) Spec() Spec { return g.spec }

// HotRows returns the number of hot rows this core targets.
func (g *Generator) HotRows() int { return len(g.hot) }

// PHot returns the per-request probability of touching the hot set.
func (g *Generator) PHot() float64 { return g.pHot }

// Stream returns a fresh deterministic request stream of n requests.
func (g *Generator) Stream(n int64, seed uint64) cpu.Stream {
	s := &stream{
		g:      g,
		r:      rng.New(seed ^ hashName(g.spec.Name) ^ 0x53545245),
		remain: n,
	}
	if len(g.background) > 0 {
		// Constructing the Zipf sampler consumes no RNG draws, so building
		// it eagerly keeps the draw sequence identical to the old lazy path
		// while moving the allocation off the steady-state request path.
		s.zipf = rng.NewZipf(s.r, 1.2, 8, uint64(len(g.background)-1))
	}
	return s
}

type stream struct {
	g      *Generator
	r      *rng.Rand
	zipf   *rng.Zipf
	remain int64

	// burst state: remaining accesses to burstRow.
	burstRow  dram.Row
	burstLeft int
}

// Next implements cpu.Stream.
func (s *stream) Next() (cpu.Request, bool) {
	if s.remain <= 0 {
		return cpu.Request{}, false
	}
	s.remain--
	g := s.g
	var row dram.Row
	switch {
	case s.burstLeft > 0:
		// Continue a background burst: consecutive accesses to the same
		// row are row-buffer hits in DRAM.
		s.burstLeft--
		row = s.burstRow
	case len(g.hot) > 0 && s.r.Float64() < g.pHot:
		row = g.hot[g.pickHot(s.r)].row
	default:
		if len(g.background) > 0 {
			row = g.background[int(s.zipf.Uint64())]
		} else {
			row = g.region.RowAt(s.r.Intn(g.region.VisibleRows()))
		}
		// Start a burst with geometric length (mean BackgroundBurst).
		if b := g.params.BackgroundBurst; b > 1 {
			s.burstRow = row
			s.burstLeft = 0
			for s.burstLeft < 4*b && s.r.Float64() < 1-1/float64(b) {
				s.burstLeft++
			}
		}
	}
	// Jitter the gap +/-50% around the MPKI-derived mean.
	gap := g.gapInstr/2 + int64(g.gapDraw.Draw(s.r))
	return cpu.Request{
		Row:      row,
		Write:    s.r.Float64() < g.params.WriteFraction,
		GapInstr: gap,
	}, true
}

// pickHot draws a hot-row index proportional to the weight deltas encoded
// in the cumulative array. The draw consumes exactly one Float64 and
// resolves to the smallest i with cum[i] >= x — sort.SearchFloat64s's
// contract — so it is bit-identical to the binary search it replaces, but
// runs in O(1) expected time via the bucket index (the inverse-CDF search
// was the single hottest frame of a full-window cell, ~25% of wall-clock
// at lbm's hot-set sizes).
func (g *Generator) pickHot(r *rng.Rand) int {
	return g.pickIndex(r.Float64() * g.cum[len(g.cum)-1])
}

// pickIndex returns the smallest i with g.cum[i] >= x. The answer index a
// satisfies cum[a-1] < x <= cum[a] (with cum[-1] taken as 0), and bucketOf
// is monotone and identical on the build and lookup sides, so a was
// registered in bucket bucketOf(x) during buildPickIndex and the scan over
// its (lo, hi) pair — typically a single element — finds it.
func (g *Generator) pickIndex(x float64) int {
	j := 2 * int(x*g.pickScale)
	if j >= len(g.pick) {
		j = len(g.pick) - 2
	}
	cum := g.cum
	i := int(g.pick[j])
	hi := int(g.pick[j+1])
	for i < hi && cum[i] < x {
		i++
	}
	return i
}

// buildPickIndex precomputes the bucket index over g.cum: k (a power of
// two >= 2*len(cum)) equal-width buckets over [0, total], where bucket j
// records the min/max cumulative-array indices whose weight span
// intersects it. Weights are bounded below (>= 166 activations/epoch), so
// occupancy is O(1) and the expected lookup scan length is ~1. Built once
// per generator — off the steady-state request path, which stays
// allocation-free.
func (g *Generator) buildPickIndex() {
	n := len(g.cum)
	if n == 0 {
		return
	}
	total := g.cum[n-1]
	if !(total > 0) {
		return
	}
	k := 1
	for k < 2*n {
		k <<= 1
	}
	g.pickScale = float64(k) / total
	g.pick = make([]int32, 2*k)
	for j := 0; j < k; j++ {
		g.pick[2*j] = int32(n)
	}
	bucketOf := func(v float64) int {
		b := int(v * g.pickScale)
		if b >= k {
			b = k - 1
		}
		return b
	}
	prev := 0
	for i := 0; i < n; i++ {
		hi := bucketOf(g.cum[i])
		for j := prev; j <= hi; j++ {
			if g.pick[2*j] > int32(i) {
				g.pick[2*j] = int32(i)
			}
			g.pick[2*j+1] = int32(i)
		}
		prev = hi
	}
}

// hashName hashes a workload name into a seed component (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
