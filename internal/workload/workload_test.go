package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/rng"
)

func testRegion() Region {
	return Region{
		Geom:               dram.Geometry{Banks: 4, RowsPerBank: 1024, RowBytes: 1024, LineBytes: 64},
		VisibleRowsPerBank: 1000,
	}
}

func TestSpecTableIntegrity(t *testing.T) {
	specs := SPEC17()
	if len(specs) != 18 {
		t.Fatalf("%d SPEC workloads, want 18", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		seen[s.Name] = true
		if s.MPKI <= 0 {
			t.Errorf("%s: MPKI %g", s.Name, s.MPKI)
		}
		// Tiers are cumulative: 166+ includes 500+ includes 1K+.
		if s.Rows500 > s.Rows166 || s.Rows1K > s.Rows500 {
			t.Errorf("%s: non-cumulative tiers %d/%d/%d", s.Name, s.Rows166, s.Rows500, s.Rows1K)
		}
	}
	// Spot-check Table II anchor rows.
	if lbm, _ := ByName("lbm"); lbm.MPKI != 20.9 || lbm.Rows500 != 5437 {
		t.Errorf("lbm spec drifted: %+v", lbm)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a ghost")
	}
}

func TestMixesDeterministicAndComplete(t *testing.T) {
	a, b := Mixes(), Mixes()
	if len(a) != 16 {
		t.Fatalf("%d mixes, want 16", len(a))
	}
	for i := range a {
		if MixName(i, a[i]) != MixName(i, b[i]) {
			t.Fatal("mixes not deterministic")
		}
		for c := 0; c < 4; c++ {
			if a[i][c].MPKI <= 0 {
				t.Fatalf("mix %d core %d empty", i, c)
			}
		}
	}
}

func TestRegionMapping(t *testing.T) {
	r := testRegion()
	if r.VisibleRows() != 4000 {
		t.Fatalf("visible rows = %d", r.VisibleRows())
	}
	seen := make(map[dram.Row]bool)
	for i := 0; i < r.VisibleRows(); i++ {
		row := r.RowAt(i)
		if seen[row] {
			t.Fatalf("RowAt not injective at %d", i)
		}
		seen[row] = true
		if idx := r.Geom.IndexOf(row); idx >= r.VisibleRowsPerBank {
			t.Fatalf("row %d outside visible strip (idx %d)", row, idx)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, _ := ByName("gcc")
	gen1 := NewGenerator(spec, testRegion(), 0, 42, Params{})
	gen2 := NewGenerator(spec, testRegion(), 0, 42, Params{})
	s1, s2 := gen1.Stream(500, 7), gen2.Stream(500, 7)
	for i := 0; i < 500; i++ {
		r1, ok1 := s1.Next()
		r2, ok2 := s2.Next()
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestStreamEndsAfterN(t *testing.T) {
	spec, _ := ByName("xz")
	gen := NewGenerator(spec, testRegion(), 0, 1, Params{})
	s := gen.Stream(10, 1)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("stream yielded %d", n)
	}
}

func TestStreamStaysInRegion(t *testing.T) {
	check := func(seed uint64) bool {
		spec, _ := ByName("mcf")
		region := testRegion()
		gen := NewGenerator(spec, region, int(seed%4), seed, Params{})
		s := gen.Stream(300, seed)
		for {
			req, ok := s.Next()
			if !ok {
				return true
			}
			if !region.Geom.Contains(req.Row) {
				return false
			}
			if region.Geom.IndexOf(req.Row) >= region.VisibleRowsPerBank {
				return false
			}
			if req.GapInstr < 1 {
				return false
			}
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGapMatchesMPKI(t *testing.T) {
	spec, _ := ByName("gcc") // MPKI 6.32 -> mean gap ~158
	gen := NewGenerator(spec, testRegion(), 0, 3, Params{})
	s := gen.Stream(5000, 3)
	var total int64
	n := 0
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		total += req.GapInstr
		n++
	}
	mean := float64(total) / float64(n)
	want := 1000 / spec.MPKI
	if mean < want*0.8 || mean > want*1.2 {
		t.Fatalf("mean gap = %.1f, want ~%.1f", mean, want)
	}
}

func TestHotRowsShareOfTraffic(t *testing.T) {
	// A hot-heavy workload must send a substantial share of its requests
	// to the declared hot set, and zero-hot workloads none.
	spec, _ := ByName("lbm")
	region := testRegion()
	gen := NewGenerator(spec, region, 0, 5, Params{})
	if gen.HotRows() == 0 {
		t.Fatal("lbm has no hot rows")
	}
	if gen.PHot() <= 0 {
		t.Fatal("lbm pHot = 0")
	}
	cold, _ := ByName("wrf")
	genCold := NewGenerator(cold, region, 0, 5, Params{})
	if genCold.HotRows() != 0 || genCold.PHot() != 0 {
		t.Fatalf("wrf hot = %d pHot = %g", genCold.HotRows(), genCold.PHot())
	}
}

func TestBurstLocality(t *testing.T) {
	// Background accesses come in same-row runs (mean BackgroundBurst):
	// the stream must contain markedly fewer distinct-row transitions
	// than a burst-free one.
	spec, _ := ByName("xz")
	region := testRegion()
	transitions := func(burst int) int {
		gen := NewGenerator(spec, region, 0, 9, Params{BackgroundBurst: burst})
		s := gen.Stream(4000, 9)
		var prev dram.Row
		n := 0
		first := true
		for {
			req, ok := s.Next()
			if !ok {
				return n
			}
			if first || req.Row != prev {
				n++
			}
			prev, first = req.Row, false
		}
	}
	if b4, b1 := transitions(4), transitions(1); b4 >= b1*8/10 {
		t.Fatalf("bursting did not reduce row transitions: %d vs %d", b4, b1)
	}
}

func TestWriteFraction(t *testing.T) {
	spec, _ := ByName("mcf")
	gen := NewGenerator(spec, testRegion(), 0, 11, Params{WriteFraction: 0.5})
	s := gen.Stream(4000, 11)
	writes := 0
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		if req.Write {
			writes++
		}
	}
	if writes < 1600 || writes > 2400 {
		t.Fatalf("writes = %d of 4000, want ~2000", writes)
	}
}

func TestCoreCopiesGetDistinctHotRows(t *testing.T) {
	spec, _ := ByName("gcc")
	region := testRegion()
	g0 := NewGenerator(spec, region, 0, 42, Params{})
	g1 := NewGenerator(spec, region, 1, 42, Params{})
	same := 0
	for i := range g0.hot {
		if i < len(g1.hot) && g0.hot[i].row == g1.hot[i].row {
			same++
		}
	}
	if len(g0.hot) > 10 && same == len(g0.hot) {
		t.Fatal("rate copies share hot rows")
	}
}

func TestZeroMPKIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(Spec{Name: "bad"}, testRegion(), 0, 1, Params{})
}

// TestPickIndexMatchesSearchFloat64s pins the bucket-indexed inverse-CDF
// draw against its reference semantics: for any x, pickIndex must return
// exactly sort.SearchFloat64s(cum, x) — the smallest i with cum[i] >= x.
// The draw feeds hot-row selection, so a one-off here shifts golden
// figure bytes.
func TestPickIndexMatchesSearchFloat64s(t *testing.T) {
	for _, name := range []string{"gcc", "lbm", "xz"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("%s spec missing", name)
		}
		g := NewGenerator(spec, testRegion(), 0, 7, Params{})
		if len(g.cum) == 0 {
			t.Fatalf("%s: no hot rows", name)
		}
		total := g.cum[len(g.cum)-1]
		check := func(x float64) {
			got := g.pickIndex(x)
			want := sort.SearchFloat64s(g.cum, x)
			if got != want {
				t.Fatalf("%s: pickIndex(%v) = %d, want %d", name, x, got, want)
			}
		}
		// Boundary probes: exact cumulative values and their neighbours are
		// where an off-by-one in the bucket scan would land.
		for _, c := range g.cum {
			check(c)
			check(math.Nextafter(c, 0))
			check(math.Nextafter(c, total))
		}
		check(0)
		check(total)
		r := rng.New(0xA11CE)
		for i := 0; i < 100000; i++ {
			check(r.Float64() * total)
		}
	}
}
