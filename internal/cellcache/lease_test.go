package cellcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemLeaseClaimConflictExpiry(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	ok, holder := s.Claim("cell1", "jobA", 100, 50)
	if !ok || holder != "jobA" {
		t.Fatalf("first claim: ok=%v holder=%q", ok, holder)
	}
	// A live lease blocks a different owner and names the holder.
	ok, holder = s.Claim("cell1", "jobB", 120, 50)
	if ok || holder != "jobA" {
		t.Fatalf("conflicting claim: ok=%v holder=%q", ok, holder)
	}
	// The holder renews freely.
	if ok, _ := s.Claim("cell1", "jobA", 130, 50); !ok {
		t.Fatal("holder renewal denied")
	}
	// Past expiry (now renewed to 130+50=180) the lease is reclaimed.
	ok, holder = s.Claim("cell1", "jobB", 180, 50)
	if !ok || holder != "jobB" {
		t.Fatalf("expired lease not reclaimed: ok=%v holder=%q", ok, holder)
	}
	st := s.LeaseStats()
	if st.Claims != 3 || st.Conflicts != 1 || st.Reclaimed != 1 {
		t.Fatalf("stats = %+v, want 3 claims, 1 conflict, 1 reclaim", st)
	}
}

func TestMemLeaseRelease(t *testing.T) {
	s, _ := New("")
	s.Claim("cell1", "jobA", 0, 100)
	// A non-holder release is a no-op.
	s.Release("cell1", "jobB")
	if ok, _ := s.Claim("cell1", "jobB", 1, 100); ok {
		t.Fatal("foreign Release dropped a held lease")
	}
	s.Release("cell1", "jobA")
	if ok, _ := s.Claim("cell1", "jobB", 2, 100); !ok {
		t.Fatal("released lease not claimable")
	}
	if st := s.LeaseStats(); st.Released != 1 {
		t.Fatalf("stats = %+v, want 1 release", st)
	}
}

func TestDiskLeaseCrossStore(t *testing.T) {
	dir := t.TempDir()
	a, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(dir) // second store on the same dir = second process
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Claim("cell1", "serveA_job1", 1000, 500); !ok {
		t.Fatal("first disk claim denied")
	}
	ok, holder := b.Claim("cell1", "serveB_job2", 1100, 500)
	if ok || holder != "serveA_job1" {
		t.Fatalf("cross-store conflict: ok=%v holder=%q", ok, holder)
	}
	// The crashed holder never releases; past expiry B reclaims.
	ok, holder = b.Claim("cell1", "serveB_job2", 1600, 500)
	if !ok || holder != "serveB_job2" {
		t.Fatalf("expired disk lease not reclaimed: ok=%v holder=%q", ok, holder)
	}
	if st := b.LeaseStats(); st.Reclaimed != 1 || st.Conflicts != 1 {
		t.Fatalf("B stats = %+v, want 1 reclaim, 1 conflict", st)
	}
	// Release removes the file; a fresh claim by anyone succeeds.
	b.Release("cell1", "serveB_job2")
	if _, err := os.Stat(filepath.Join(dir, "cell1.lease")); !os.IsNotExist(err) {
		t.Fatal("Release left the lease file behind")
	}
	if ok, _ := a.Claim("cell1", "serveA_job3", 1700, 500); !ok {
		t.Fatal("claim after release denied")
	}
}

func TestDiskLeaseRenewalByHolder(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)
	if ok, _ := s.Claim("cell1", "jobA", 0, 100); !ok {
		t.Fatal("claim denied")
	}
	// Renewal pushes expiry out: at now=150 a 0+100 lease would be dead,
	// but the holder renewed at 90 for 100 more.
	if ok, _ := s.Claim("cell1", "jobA", 90, 100); !ok {
		t.Fatal("renewal denied")
	}
	if ok, holder := s.Claim("cell1", "jobB", 150, 100); ok || holder != "jobA" {
		t.Fatalf("renewed lease not honoured: ok=%v holder=%q", ok, holder)
	}
}

// TestCrashMidWrite is the crash-hardening scenario from the issue: a
// worker is killed mid-write leaving (a) an orphaned temp file, (b) a
// torn entry written without the atomic rename discipline, and (c) a
// stale lease. The store must read the torn entry as a miss, never serve
// the temp file, and let the next claimant reclaim the lease.
func TestCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	crashed, _ := New(dir)

	// (a) Orphaned temp file from a write that never reached rename.
	if err := os.WriteFile(filepath.Join(dir, "tmp-crash123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// (b) A torn entry: valid header promised, payload truncated as if
	// the process died between write and fsync on a non-atomic path.
	full := encodeEntry([]byte("the full payload bytes"))
	if err := os.WriteFile(filepath.Join(dir, "cellX"), full[:len(full)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// (c) A stale lease from the dead worker, plus a torn lease on a
	// second cell (killed mid-lease-write).
	if ok, _ := crashed.Claim("cellX", "deadworker_job1", 1000, 500); !ok {
		t.Fatal("setup claim denied")
	}
	if err := os.WriteFile(filepath.Join(dir, "cellY.lease"), []byte("aqua-lease-v1 deadwo"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (the surviving worker) sees misses, not corruption
	// escapes, and reclaims both leases.
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("cellX"); ok {
		t.Fatalf("torn entry served as a hit: %q", v)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want the torn entry counted corrupt", st)
	}
	// Stale lease: live until 1500, reclaimed after.
	if ok, holder := s.Claim("cellX", "survivor_job2", 1400, 500); ok || holder != "deadworker_job1" {
		t.Fatalf("stale-but-live lease: ok=%v holder=%q", ok, holder)
	}
	if ok, _ := s.Claim("cellX", "survivor_job2", 1501, 500); !ok {
		t.Fatal("expired stale lease not reclaimed")
	}
	// Torn lease: reclaimable immediately regardless of clock.
	if ok, _ := s.Claim("cellY", "survivor_job2", 0, 500); !ok {
		t.Fatal("torn lease not reclaimed")
	}
	if st := s.LeaseStats(); st.Reclaimed != 2 {
		t.Fatalf("lease stats = %+v, want 2 reclaims", st)
	}
	// The survivor recomputes and lands the entry atomically; the store
	// now serves it even though the torn file had the same name.
	s.Put("cellX", []byte("recomputed"))
	fresh, _ := New(dir)
	if v, ok := fresh.Get("cellX"); !ok || string(v) != "recomputed" {
		t.Fatalf("recomputed entry not served: %q, %v", v, ok)
	}
}

func TestLeaseNilStoreAndBadInputs(t *testing.T) {
	var s *Store
	if ok, _ := s.Claim("k", "o", 0, 10); !ok {
		t.Fatal("nil store must grant claims (no coordination available)")
	}
	s.Release("k", "o")
	if s.LeaseStats() != (LeaseStats{}) {
		t.Fatal("nil store stats non-zero")
	}
	real, _ := New("")
	// Invalid key or owner (would escape the dir / break framing) grants
	// without recording.
	for _, c := range []struct{ key, owner string }{
		{"../escape", "o"}, {"k", "bad owner"}, {"k", ""}, {"", "o"},
	} {
		if ok, _ := real.Claim(c.key, c.owner, 0, 10); !ok {
			t.Fatalf("Claim(%q,%q) denied, want uncoordinated grant", c.key, c.owner)
		}
	}
	if ok, _ := real.Claim("k", "o", 0, 0); !ok {
		t.Fatal("non-positive ttl must grant uncoordinated")
	}
	if st := real.LeaseStats(); st != (LeaseStats{}) {
		t.Fatalf("uncoordinated grants recorded stats: %+v", st)
	}
}

func TestLeaseDecodeRejectsTornAndForeign(t *testing.T) {
	good := encodeLease("jobA", 42)
	if l, ok := decodeLease([]byte(good)); !ok || l.owner != "jobA" || l.expiry != 42 {
		t.Fatalf("round trip failed: %+v %v", l, ok)
	}
	bad := []string{
		"",
		"aqua-lease-v1 jobA",              // no newline (torn)
		strings.TrimSuffix(good, "\n"),    // same, via the encoder
		"aqua-lease-v2 jobA 42\n",         // wrong version
		"aqua-lease-v1 jobA\n",            // missing expiry
		"aqua-lease-v1 jobA notanum\n",    // bad expiry
		"aqua-lease-v1 bad owner 42\n",    // owner with space splits wrong
		"aqua-cellcache-v1 sha256=x 42\n", // entry header, not a lease
	}
	for _, b := range bad {
		if _, ok := decodeLease([]byte(b)); ok {
			t.Fatalf("decodeLease(%q) accepted a torn/foreign lease", b)
		}
	}
}
