// Package cellcache is the content-addressed result store behind the
// experiment engine's incremental recomputation: grid-cell results are
// keyed by a hash of everything that determines them (see sim.CellKey),
// so a repeat run serves finished cells from the store instead of
// simulating them again.
//
// The store is two-tiered. The in-memory tier is a plain map and always
// present; the on-disk tier (one file per key under a cache directory)
// is optional and survives the process. Disk writes follow the same
// durability discipline as the PR 4 checkpoint: the entry is written to
// a temp file, fsynced, and renamed into place, so a reader never sees
// a torn entry. Each file carries a checksum header; an entry that fails
// the checksum — corruption, truncation, a foreign file — is treated as
// a miss, never as an error, mirroring the checkpoint's torn-tail
// tolerance. Stale entries cannot be served at all: any semantic change
// to the simulator bumps sim.SchemaVersion, which changes every key.
//
// Values are opaque bytes to this package; the sim layer encodes and
// decodes them and performs its own identity validation on top.
package cellcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// fileVersion heads every on-disk entry. It versions the file framing
// only (header + payload); the cached *content* is versioned by the keys
// themselves via sim.SchemaVersion.
const fileVersion = "aqua-cellcache-v1"

// Stats counts how the store's tiers answered.
type Stats struct {
	// MemHits were served from the in-memory tier.
	MemHits int64
	// DiskHits were read (and checksum-verified) from the cache directory.
	DiskHits int64
	// Misses had no entry in either tier.
	Misses int64
	// Corrupt entries were found on disk but failed validation (checksum
	// mismatch, bad framing) and were reported as misses.
	Corrupt int64
	// Puts is the number of entries written.
	Puts int64
	// WriteErrors counts failed disk writes. A failed write only costs
	// persistence — the entry still lands in the memory tier.
	WriteErrors int64
}

// Hits is the total across both tiers.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Store is a two-tier content-addressed byte store. The zero tier set —
// a nil *Store — is inert: every Get misses and every Put is dropped,
// so callers need no "is caching on?" branches.
type Store struct {
	dir string // "" = memory tier only

	mu     sync.Mutex
	mem    map[string][]byte // guarded by mu
	stats  Stats             // guarded by mu
	leases map[string]lease  // guarded by mu (memory-tier lease protocol)
	lstats LeaseStats        // guarded by mu
}

// New builds a store. dir "" keeps the store memory-only; otherwise the
// directory is created (with parents) and used as the disk tier.
func New(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cellcache: %w", err)
		}
	}
	return &Store{dir: dir, mem: make(map[string][]byte)}, nil
}

// Dir reports the disk-tier directory ("" when memory-only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// validKey rejects keys that could escape the cache directory or collide
// with temp files. sim.CellKey produces lowercase hex, which passes.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

// Get returns the value stored under key. A missing, corrupt, or
// invalid entry is (nil, false) — never an error.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		s.miss()
		return nil, false
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, key))
	if err != nil {
		s.miss()
		return nil, false
	}
	payload, ok := decodeEntry(raw)
	if !ok {
		s.mu.Lock()
		s.stats.Corrupt++
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.mem[key] = payload
	s.stats.DiskHits++
	s.mu.Unlock()
	return payload, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put stores value under key in the memory tier and, when a cache
// directory is configured, atomically on disk (temp file + fsync +
// rename). Disk failures are absorbed into Stats.WriteErrors — losing
// an entry only costs a future recomputation, never correctness.
//
//detertaint:root
func (s *Store) Put(key string, value []byte) {
	if s == nil || !validKey(key) {
		return
	}
	s.mu.Lock()
	s.mem[key] = append([]byte(nil), value...)
	s.stats.Puts++
	s.mu.Unlock()
	if s.dir == "" {
		return
	}
	if err := s.writeFile(key, value); err != nil {
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
	}
}

// writeFile lands one entry atomically: concurrent writers for the same
// key each write their own temp file and the last rename wins, which is
// harmless because identical keys hold identical content.
func (s *Store) writeFile(key string, value []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(encodeEntry(value)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// encodeEntry frames a payload as "<version> sha256=<hex>\n<payload>".
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s sha256=%s\n", fileVersion, hex.EncodeToString(sum[:]))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeEntry validates the framing and checksum, returning the payload.
func decodeEntry(raw []byte) ([]byte, bool) {
	idx := bytes.IndexByte(raw, '\n')
	if idx < 0 {
		return nil, false
	}
	header, payload := string(raw[:idx]), raw[idx+1:]
	fields := strings.Fields(header)
	if len(fields) != 2 || fields[0] != fileVersion || !strings.HasPrefix(fields[1], "sha256=") {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != strings.TrimPrefix(fields[1], "sha256=") {
		return nil, false
	}
	return payload, true
}
