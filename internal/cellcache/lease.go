// Lease/claim entries: cross-process work deduplication for the disk
// tier. A lease is a small sidecar file (`<key>.lease`) claiming "owner O
// is computing this cell until expiry E". Concurrent jobs — in one
// process or across processes sharing a cache directory — Claim before
// simulating a missed cell; the loser waits and re-polls the store
// instead of duplicating a multi-second simulation.
//
// Leases are an optimization, never a correctness gate: the algorithm
// has a benign cross-process race (remove-then-recreate on reclaim is
// not atomic), and the worst outcome of losing the race is one cell
// computed twice, each landing the identical content-addressed entry.
// What leases must guarantee — and do — is liveness: a lease held by a
// crashed worker expires at its deadline and is *reclaimed* by the next
// claimant, so a SIGKILL mid-grid never wedges a job. Torn lease files
// (a writer died mid-write) are treated exactly like expired ones.
//
// The package stays clock-free: callers pass `now` explicitly (the farm
// injects its clock; tests pass fake instants), in the same spirit as
// the simulator's picosecond timestamps. Times are int64 with a
// caller-chosen epoch and unit — both sides of a shared cache directory
// must agree (the farm uses Unix nanoseconds).
package cellcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// leaseVersion heads every lease file. `<key>.lease` cannot collide with
// an entry file because validKey rejects '.' in keys.
const leaseVersion = "aqua-lease-v1"

// LeaseStats counts lease-protocol outcomes.
type LeaseStats struct {
	// Claims is the number of successful acquisitions (including renewals
	// by the current holder).
	Claims int64
	// Conflicts counts Claim calls that lost to a live lease held by
	// another owner.
	Conflicts int64
	// Reclaimed counts expired or torn leases that a claimant removed —
	// the crash-recovery path.
	Reclaimed int64
	// Released counts explicit releases by the holder.
	Released int64
}

// lease is one decoded claim.
type lease struct {
	owner  string
	expiry int64
}

// Claim tries to acquire the compute lease for key on behalf of owner,
// valid until now+ttl. It returns (true, owner) when acquired or renewed
// and (false, holder) when another owner holds a live lease. A nil
// store, invalid key/owner, or non-positive ttl grants the claim without
// coordination — the caller may always fall back to computing.
//
// Owners must satisfy the same charset as keys (letters, digits, '-',
// '_'): the farm uses "<serverID>_<jobID>" so every job execution is a
// distinct owner and in-process duplicates also dedupe through leases.
//
//detertaint:root
func (s *Store) Claim(key, owner string, now, ttl int64) (bool, string) {
	if s == nil || !validKey(key) || !validKey(owner) || ttl <= 0 {
		return true, owner
	}
	if s.dir == "" {
		return s.claimMem(key, owner, now, ttl)
	}
	return s.claimDisk(key, owner, now, ttl)
}

// claimMem is the in-memory protocol for stores without a disk tier:
// same semantics, map instead of files.
func (s *Store) claimMem(key, owner string, now, ttl int64) (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leases == nil {
		s.leases = make(map[string]lease)
	}
	if l, ok := s.leases[key]; ok && l.owner != owner {
		if l.expiry > now {
			s.lstats.Conflicts++
			return false, l.owner
		}
		s.lstats.Reclaimed++
	}
	s.leases[key] = lease{owner: owner, expiry: now + ttl}
	s.lstats.Claims++
	return true, owner
}

// claimDisk is the cross-process protocol: O_EXCL creation wins the
// lease; losers inspect the holder and either renew (same owner), back
// off (live foreign lease), or reclaim (expired/torn) and retry once.
func (s *Store) claimDisk(key, owner string, now, ttl int64) (bool, string) {
	path := filepath.Join(s.dir, key+".lease")
	expiry := now + ttl
	for attempt := 0; attempt < 2; attempt++ {
		if createLeaseExcl(path, owner, expiry) {
			s.countLease(func(ls *LeaseStats) { ls.Claims++ })
			return true, owner
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			// The file vanished between the failed create and the read
			// (holder released, or a reclaimer got there first) — retry.
			continue
		}
		l, valid := decodeLease(raw)
		if valid && l.owner == owner {
			// Renewal: the atomic rewrite keeps readers from ever seeing
			// a torn lease we authored.
			if err := writeLeaseAtomic(s.dir, path, owner, expiry); err == nil {
				s.countLease(func(ls *LeaseStats) { ls.Claims++ })
				return true, owner
			}
			return false, owner
		}
		if valid && l.expiry > now {
			s.countLease(func(ls *LeaseStats) { ls.Conflicts++ })
			return false, l.owner
		}
		// Expired or torn: reclaim and loop back to the O_EXCL create.
		os.Remove(path)
		s.countLease(func(ls *LeaseStats) { ls.Reclaimed++ })
	}
	s.countLease(func(ls *LeaseStats) { ls.Conflicts++ })
	return false, ""
}

// Release drops the lease for key if owner still holds it. Releasing a
// lease you lost (expired and reclaimed by someone else) is a no-op, so
// the call is always safe in a defer.
//
//detertaint:root
func (s *Store) Release(key, owner string) {
	if s == nil || !validKey(key) || !validKey(owner) {
		return
	}
	if s.dir == "" {
		s.mu.Lock()
		if l, ok := s.leases[key]; ok && l.owner == owner {
			delete(s.leases, key)
			s.lstats.Released++
		}
		s.mu.Unlock()
		return
	}
	path := filepath.Join(s.dir, key+".lease")
	raw, err := os.ReadFile(path)
	if err != nil {
		return
	}
	if l, valid := decodeLease(raw); valid && l.owner == owner {
		if os.Remove(path) == nil {
			s.countLease(func(ls *LeaseStats) { ls.Released++ })
		}
	}
}

// LeaseStats returns a snapshot of the lease counters.
func (s *Store) LeaseStats() LeaseStats {
	if s == nil {
		return LeaseStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lstats
}

func (s *Store) countLease(f func(*LeaseStats)) {
	s.mu.Lock()
	f(&s.lstats)
	s.mu.Unlock()
}

// createLeaseExcl attempts the winning move: create the lease file
// exclusively and land its content. Any failure after creation removes
// the file so a half-written lease we authored never lingers (a crash
// between write and remove leaves a torn file, which later claimants
// treat as reclaimable).
func createLeaseExcl(path, owner string, expiry int64) bool {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false
	}
	if _, err := f.WriteString(encodeLease(owner, expiry)); err != nil {
		f.Close()
		os.Remove(path)
		return false
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return false
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return false
	}
	return true
}

// writeLeaseAtomic renews a held lease via the entry tier's temp + fsync
// + rename discipline.
func writeLeaseAtomic(dir, path, owner string, expiry int64) error {
	f, err := os.CreateTemp(dir, "tmp-lease-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.WriteString(encodeLease(owner, expiry)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// encodeLease frames one lease: "aqua-lease-v1 <owner> <expiry>\n".
func encodeLease(owner string, expiry int64) string {
	return fmt.Sprintf("%s %s %d\n", leaseVersion, owner, expiry)
}

// decodeLease validates the framing. A torn or foreign file decodes as
// invalid, which claimants treat as reclaimable.
func decodeLease(raw []byte) (lease, bool) {
	text := string(raw)
	if !strings.HasSuffix(text, "\n") {
		return lease{}, false
	}
	fields := strings.Fields(text)
	if len(fields) != 3 || fields[0] != leaseVersion || !validKey(fields[1]) {
		return lease{}, false
	}
	expiry, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return lease{}, false
	}
	return lease{owner: fields[1], expiry: expiry}, true
}
