package cellcache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMemoryTier exercises the dirless store: Put/Get round-trips, a
// missing key misses, and the counters record both.
func TestMemoryTier(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	s.Put("abc123", []byte("payload"))
	got, ok := s.Get("abc123")
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key reported a hit")
	}
	st := s.Stats()
	if st.Puts != 1 || st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v; want 1 put, 1 mem hit, 1 miss", st)
	}
}

// TestPutCopiesValue pins that the store keeps its own copy: mutating
// the caller's slice after Put must not corrupt the cached entry.
func TestPutCopiesValue(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	v := []byte("original")
	s.Put("k1", v)
	copy(v, "XXXXXXXX")
	got, ok := s.Get("k1")
	if !ok || string(got) != "original" {
		t.Fatalf("Get = %q, %v; caller mutation leaked into the store", got, ok)
	}
}

// TestDiskPersistence pins the point of the disk tier: an entry written
// by one Store is served by a fresh Store over the same directory, and
// the hit is counted against the disk tier.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("deadbeef", []byte("result bytes"))

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("deadbeef")
	if !ok || !bytes.Equal(got, []byte("result bytes")) {
		t.Fatalf("Get across stores = %q, %v; want result bytes, true", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats %+v; want the first read to hit disk", st)
	}
	// The disk read promotes into memory: a second Get stays off disk.
	if _, ok := s2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats %+v; want the second read served from memory", st)
	}
}

// TestCorruptEntryIsMiss pins the failure contract: a torn or tampered
// file is a silent miss counted in Corrupt — never an error, never a
// wrong payload.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("cafef00d", []byte("good"))

	cases := map[string][]byte{
		"flipped payload": []byte("aqua-cellcache-v1 sha256=0000000000000000000000000000000000000000000000000000000000000000\nevil"),
		"no header":       []byte("just bytes, no newline"),
		"wrong version":   append([]byte("aqua-cellcache-v0 sha256=deadbeef\n"), []byte("x")...),
		"truncated":       []byte("aqua-cellcache-v1 sha2"),
		"empty":           nil,
	}
	for name, raw := range cases {
		if err := os.WriteFile(filepath.Join(dir, "cafef00d"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := New(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := s2.Get("cafef00d"); ok {
			t.Fatalf("%s: Get = %q, true; want a miss", name, got)
		}
		st := s2.Stats()
		// An unreadable-as-entry file counts as corrupt except when the
		// read path never reaches decode (can't happen here: the file
		// exists), so every case lands in Corrupt+Misses.
		if st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("%s: stats %+v; want 1 corrupt, 1 miss", name, st)
		}
	}
}

// TestNilStore pins the inert zero value: callers hold a possibly-nil
// *Store and must be able to use it without branches.
func TestNilStore(t *testing.T) {
	var s *Store
	s.Put("abc", []byte("x")) // must not panic
	if _, ok := s.Get("abc"); ok {
		t.Fatal("nil store reported a hit")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats %+v; want zero", st)
	}
	if s.Dir() != "" {
		t.Fatal("nil store reported a directory")
	}
}

// TestInvalidKeys pins the path-safety gate: keys that could escape the
// directory or collide with temp files are dropped on Put and miss on
// Get, without touching the filesystem.
func TestInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"../escape",
		"a/b",
		"a.b",
		"tmp key",
		strings.Repeat("a", 129),
	}
	for _, key := range bad {
		s.Put(key, []byte("x"))
		if _, ok := s.Get(key); ok {
			t.Fatalf("invalid key %q served a value", key)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("invalid keys created %d files in the cache dir", len(entries))
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Fatalf("stats %+v; invalid puts were counted", st)
	}
}

// TestNoTempLeftovers pins the atomic-write discipline: after a batch of
// Puts the directory holds exactly the named entries, no tmp-* residue.
func TestNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3"}
	for _, k := range keys {
		s.Put(k, []byte("v-"+k))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Fatalf("dir holds %d files, want %d", len(entries), len(keys))
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestOverwriteSameKey pins last-write-wins for a key: re-Put replaces
// both tiers.
func TestOverwriteSameKey(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("one"))
	s.Put("k", []byte("two"))
	if got, _ := s.Get("k"); string(got) != "two" {
		t.Fatalf("memory tier = %q, want two", got)
	}
	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Get("k"); string(got) != "two" {
		t.Fatalf("disk tier = %q, want two", got)
	}
}

// TestEncodeDecodeRoundTrip pins the framing against itself, including
// the empty payload.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0, 255, '\n'}, 1000)} {
		got, ok := decodeEntry(encodeEntry(payload))
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("round trip of %d bytes failed (ok=%v)", len(payload), ok)
		}
	}
}
