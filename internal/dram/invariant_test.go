package dram

import (
	"testing"

	"repro/internal/invariant"
)

// hammerBank alternates two rows of bank 0 so every access pays the full
// PRE -> ACT -> column sequence.
func hammerBank(r *Rank, g Geometry, rounds int) {
	at := PS(0)
	r0, r1 := g.RowOf(0, 0), g.RowOf(0, 1)
	for i := 0; i < rounds; i++ {
		at, _ = r.Access(r0, i%2 == 0, at)
		at, _ = r.Access(r1, false, at)
	}
}

func TestShadowCheckerCleanOnCorrectTiming(t *testing.T) {
	g := testGeom()
	r := NewRank(g, DDR4())
	chk := invariant.New()
	r.EnableInvariants(chk, DDR4())
	if !r.InvariantsEnabled() {
		t.Fatal("InvariantsEnabled() = false after enable")
	}

	hammerBank(r, g, 50)
	r.StreamRow(g.RowOf(1, 3), false, 0)
	r.StreamRow(g.RowOf(1, 4), true, 0)
	r.RefreshAll(10 * Microsecond)
	hammerBank(r, g, 20)
	r.PrechargeAll(50 * Microsecond)
	hammerBank(r, g, 20)

	if err := chk.Err(); err != nil {
		t.Fatalf("correctly-timed rank reported violations: %v", err)
	}
}

// TestShadowCheckerCatchesShortTRP runs a rank deliberately mis-configured
// with a tRP (and tRC) far below DDR4 against the real DDR4 reference: the
// scheduler happily issues ACTs right after PRE, and the shadow checker
// must flag every one of them.
func TestShadowCheckerCatchesShortTRP(t *testing.T) {
	g := testGeom()
	broken := DDR4()
	broken.TRP = 1 * Nanosecond
	broken.TRC = broken.TRCD + broken.TRP // minimum Validate allows
	r := NewRank(g, broken)
	chk := invariant.New()
	r.EnableInvariants(chk, DDR4())

	hammerBank(r, g, 10)

	if chk.Count() == 0 {
		t.Fatal("broken tRP produced no violations")
	}
	var sawTRP bool
	for _, v := range chk.Violations() {
		if v.Component != "dram" {
			t.Fatalf("unexpected component in %v", v)
		}
		if v.Rule == "tRP" {
			sawTRP = true
		}
	}
	if !sawTRP {
		t.Fatalf("no tRP violation among %d: %v", chk.Count(), chk.Violations()[0])
	}
}

// TestShadowCheckerCatchesShortTFAW mis-configures only the four-activate
// window and verifies the rank-level ring buffer catches the burst.
func TestShadowCheckerCatchesShortTFAW(t *testing.T) {
	g := Geometry{Banks: 8, RowsPerBank: 16, RowBytes: 1024, LineBytes: 64}
	broken := DDR4()
	broken.TFAW = 1 * Nanosecond
	r := NewRank(g, broken)
	chk := invariant.New()
	r.EnableInvariants(chk, DDR4())

	// Six ACTs to six different banks all requested at t=0: the broken
	// window lets the scheduler commit them ~1ns apart, far inside the
	// real 21ns four-activate window.
	for i := 0; i < 6; i++ {
		r.Access(g.RowOf(i, 0), false, 0)
	}

	var sawFAW bool
	for _, v := range chk.Violations() {
		if v.Rule == "tFAW" {
			sawFAW = true
		}
	}
	if !sawFAW {
		t.Fatalf("no tFAW violation in %d violations", chk.Count())
	}
}
