// Package dram models a DDR4 rank at transaction level: bank state machines
// with open-page row buffers, the timing constraints that matter for
// Rowhammer arithmetic (tRC, tRCD, tCL, tRP, tCCD, tRFC, tREFI, tREFW), and
// per-row activation accounting.
//
// The model reproduces the latency arithmetic the AQUA paper relies on:
// streaming one 8KB row takes tRC + 127*tCCD_L ~= 680ns, so a quarantine
// migration (one row read + one row write) occupies the channel for ~1.37us,
// and the refresh budget bounds a bank to ACTmax ~= 1360K activations per
// 64ms refresh window.
package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/event"
	"repro/internal/fault"
	"repro/internal/invariant"
)

// PS is simulated time in picoseconds. Picosecond resolution represents
// the fractional-nanosecond DDR4 parameters (e.g. tRCD = 14.2ns) exactly
// while an int64 still spans ~106 days of simulated time.
type PS = int64

// Time unit helpers.
const (
	Nanosecond  PS = 1000
	Microsecond PS = 1000 * Nanosecond
	Millisecond PS = 1000 * Microsecond
)

// Timing holds the DDR4 timing parameters. All values are in picoseconds.
type Timing struct {
	TRC   PS // ACT-to-ACT delay within a bank (row cycle time)
	TRCD  PS // ACT to column command
	TCL   PS // column command to first data
	TRP   PS // precharge latency
	TCCDS PS // column-to-column, different bank group
	TCCDL PS // column-to-column, same bank group (streaming rate)
	TBL   PS // burst transfer time for one 64B line on the data bus
	TRFC  PS // refresh cycle time (channel blocked per refresh command)
	TREFI PS // refresh command interval
	TREFW PS // refresh window: every row refreshed once per TREFW
	TWR   PS // write recovery before precharge
	TFAW  PS // four-activate window: at most 4 ACTs per rank per tFAW
}

// DDR4 returns the DDR4-2400 timing used by the paper's baseline system
// (Table I: tRCD-tCL-tRP-tRC = 14.2-14.2-14.2-45 ns, tCCD_S/L = 3.3/5 ns).
func DDR4() Timing {
	return Timing{
		TRC:   45 * Nanosecond,
		TRCD:  14200, // 14.2 ns
		TCL:   14200,
		TRP:   14200,
		TCCDS: 3300, // 3.3 ns
		TCCDL: 5 * Nanosecond,
		TBL:   3300, // 8 beats at 2400 MT/s ~= 3.33 ns
		TRFC:  350 * Nanosecond,
		TREFI: 7800 * Nanosecond, // 7.8 us
		TREFW: 64 * Millisecond,
		TWR:   15 * Nanosecond,
		TFAW:  21 * Nanosecond,
	}
}

// Validate reports an error if any parameter is non-positive or internally
// inconsistent.
func (t Timing) Validate() error {
	type named struct {
		name string
		v    PS
	}
	for _, p := range []named{
		{"tRC", t.TRC}, {"tRCD", t.TRCD}, {"tCL", t.TCL}, {"tRP", t.TRP},
		{"tCCD_S", t.TCCDS}, {"tCCD_L", t.TCCDL}, {"tBL", t.TBL},
		{"tRFC", t.TRFC}, {"tREFI", t.TREFI}, {"tREFW", t.TREFW}, {"tWR", t.TWR},
		{"tFAW", t.TFAW},
	} {
		if p.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", p.name, p.v)
		}
	}
	if t.TRC < t.TRCD+t.TRP {
		return fmt.Errorf("dram: tRC (%d) < tRCD+tRP (%d)", t.TRC, t.TRCD+t.TRP)
	}
	if t.TREFI <= t.TRFC {
		return fmt.Errorf("dram: tREFI (%d) <= tRFC (%d)", t.TREFI, t.TRFC)
	}
	if t.TREFW <= t.TREFI {
		return fmt.Errorf("dram: tREFW (%d) <= tREFI (%d)", t.TREFW, t.TREFI)
	}
	return nil
}

// RowTransferTime returns the channel-busy time to stream an entire row of
// linesPerRow cache lines between DRAM and the controller's copy buffer:
// one activation (tRC) plus back-to-back column accesses at the tCCD_L
// rate. For the baseline 8KB row (128 lines) this is 45ns + 128*5ns =
// 685ns, exactly the paper's figure (Section IV-D), which makes the RQA
// sizing of Table III reproduce bit-for-bit.
func (t Timing) RowTransferTime(linesPerRow int) PS {
	if linesPerRow < 1 {
		panic("dram: RowTransferTime requires at least one line")
	}
	return t.TRC + PS(linesPerRow)*t.TCCDL
}

// MigrationTime returns the channel-busy time to migrate one row: one full
// row read into the copy buffer plus one full row write out (~1.37us for
// the baseline configuration).
func (t Timing) MigrationTime(linesPerRow int) PS {
	return 2 * t.RowTransferTime(linesPerRow)
}

// ACTMax returns the maximum number of activations an attacker can issue to
// a single bank within one refresh window, accounting for the bandwidth
// consumed by refresh commands: tREFW * (1 - tRFC/tREFI) / tRC. For the
// baseline timing this is ~1.36M activations (Section II-B).
func (t Timing) ACTMax() int64 {
	avail := float64(t.TREFW) * (1 - float64(t.TRFC)/float64(t.TREFI))
	return int64(avail / float64(t.TRC))
}

// Geometry describes one rank: the unit AQUA's structures are provisioned
// for.
type Geometry struct {
	Banks       int // banks per rank
	RowsPerBank int
	RowBytes    int // row (page) size in bytes
	LineBytes   int // cache-line transfer granularity
}

// Baseline returns the paper's baseline rank: 16 banks x 128K rows x 8KB
// rows = 16GB, 64B lines (Table I).
func Baseline() Geometry {
	return Geometry{Banks: 16, RowsPerBank: 128 * 1024, RowBytes: 8192, LineBytes: 64}
}

// Validate reports an error for degenerate geometries.
func (g Geometry) Validate() error {
	if g.Banks < 1 || g.RowsPerBank < 1 {
		return fmt.Errorf("dram: need at least one bank and row, got %dx%d", g.Banks, g.RowsPerBank)
	}
	if g.RowBytes < g.LineBytes || g.LineBytes < 1 {
		return fmt.Errorf("dram: invalid row/line bytes %d/%d", g.RowBytes, g.LineBytes)
	}
	if g.RowBytes%g.LineBytes != 0 {
		return fmt.Errorf("dram: row bytes %d not a multiple of line bytes %d", g.RowBytes, g.LineBytes)
	}
	return nil
}

// Rows returns the total number of rows in the rank.
func (g Geometry) Rows() int { return g.Banks * g.RowsPerBank }

// LinesPerRow returns the number of cache lines per row.
func (g Geometry) LinesPerRow() int { return g.RowBytes / g.LineBytes }

// CapacityBytes returns the rank capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Rows()) * int64(g.RowBytes)
}

// Row identifies a physical DRAM row within the rank as a flat index:
// bank * RowsPerBank + rowInBank. The flat form is what AQUA's FPT and RPT
// store (a 21-bit pointer for the 2M-row baseline).
type Row uint32

// InvalidRow is a sentinel for "no row".
const InvalidRow Row = ^Row(0)

// RowOf builds a Row from bank and in-bank index.
func (g Geometry) RowOf(bank, index int) Row {
	if bank < 0 || bank >= g.Banks || index < 0 || index >= g.RowsPerBank {
		panic(fmt.Sprintf("dram: row (%d,%d) outside geometry %dx%d", bank, index, g.Banks, g.RowsPerBank))
	}
	return Row(bank*g.RowsPerBank + index)
}

// BankOf returns the bank holding row r. Row decomposition runs on every
// access and tracker update, so the power-of-two geometry the paper uses
// (128K rows/bank) takes a shift instead of a 64-bit division.
func (g Geometry) BankOf(r Row) int {
	if n := g.RowsPerBank; n&(n-1) == 0 {
		return int(r) >> uint(bits.TrailingZeros(uint(n)))
	}
	return int(r) / g.RowsPerBank
}

// IndexOf returns r's index within its bank.
func (g Geometry) IndexOf(r Row) int {
	if n := g.RowsPerBank; n&(n-1) == 0 {
		return int(r) & (n - 1)
	}
	return int(r) % g.RowsPerBank
}

// Contains reports whether r is a valid row in this geometry.
func (g Geometry) Contains(r Row) bool { return int(r) < g.Rows() }

// Neighbors returns the rows at the given distance on either side of r in
// the same bank (used by victim refresh and Half-Double). Rows at bank
// edges may have fewer neighbors. It allocates; hot callers use
// NeighborPair.
func (g Geometry) Neighbors(r Row, distance int) []Row {
	pair, n := g.NeighborPair(r, distance)
	out := make([]Row, n)
	copy(out, pair[:n])
	return out
}

// NeighborPair is the allocation-free form of Neighbors: it returns the
// (up to two) neighbor rows in a fixed array plus the valid count. The
// below-neighbor, when present, is always pair[0].
func (g Geometry) NeighborPair(r Row, distance int) (pair [2]Row, n int) {
	if distance < 1 {
		panic("dram: neighbor distance must be >= 1")
	}
	bank := g.BankOf(r)
	idx := g.IndexOf(r)
	if idx-distance >= 0 {
		pair[n] = g.RowOf(bank, idx-distance)
		n++
	}
	if idx+distance < g.RowsPerBank {
		pair[n] = g.RowOf(bank, idx+distance)
		n++
	}
	return pair, n
}

// ActListener observes every row activation as it is committed to a bank.
// Trackers and the security monitor register here. The row reported is the
// physical row that was opened.
type ActListener func(row Row, at PS)

// bank holds the open-page state machine for one bank.
//
// Refresh state is lazy: RefreshAll bumps the rank's refresh generation
// and ACT floor instead of touching every bank, so a bank's effective
// state is read through bankOpen/bankReadyACT — an open row is only open
// if its generation matches the rank's, and the ACT window is the stored
// value raised to the floor. Idle banks therefore cost nothing at
// refresh time (and nothing later: their state is never materialized).
type bank struct {
	openRow  Row
	hasOpen  bool
	gen      uint64 // refresh generation openRow/hasOpen belong to
	readyACT PS     // earliest next activation (tRC from previous ACT)
	readyCol PS     // earliest next column command in this bank
	readyPRE PS     // earliest precharge (covers tRAS/tWR approximations)
}

// Rank models all banks of one rank plus the shared data bus. It is not
// safe for concurrent use; the simulator is single-threaded by design.
type Rank struct {
	geom   Geometry
	timing Timing

	banks   []bank
	busFree PS // data bus availability
	// refGen and actFloor carry refresh effects lazily (see bank): refGen
	// invalidates every open row, actFloor raises every bank's ACT window
	// to the refresh end. Reserve still writes banks eagerly — migrations
	// are thousands of times rarer than refresh commands.
	refGen   uint64
	actFloor PS
	// actHist holds the last four rank-level ACT times (tFAW enforcement).
	actHist [4]PS
	actIdx  int

	// actCounts is the lifetime ACT count per row. uint32 halves the array
	// (8MB at 2M rows) to ease hot-loop cache pressure; ms-scale windows
	// top out at ~tREFW/tRC ~ 1.4M ACTs per row per epoch, far below 2^32.
	actCounts []uint32
	listeners []ActListener
	// single caches the sole listener when exactly one is registered — the
	// common case (one tracker) — so activate makes a direct call instead
	// of ranging over the slice.
	single ActListener

	// reservedUntil is the end of the latest channel reservation
	// (monotonic); the memory controller's invariant hook checks accesses
	// against it.
	reservedUntil PS

	// chk, when non-nil, enables the timing-invariant shadow checker: a
	// second, independent derivation of the per-bank timing windows from
	// the reference timing `ref`, verified against every committed
	// command. Release-mode simulation leaves chk nil and pays one
	// pointer test per command.
	chk    *invariant.Checker
	ref    Timing
	shadow *timingShadow

	// faults, when non-nil, consults the injector for DRAM-level faults
	// (StuckRow decoder errors, ECC-correctable flips). Nil means no
	// faults, at the cost of one pointer test per access.
	faults *fault.Injector

	stats RankStats
}

// timingShadow holds the invariant checker's independent view of bank
// state, deliberately separate from the scheduling fields so a bug in
// one cannot hide in the other.
type timingShadow struct {
	banks      []bankShadow
	ring       [4]PS // last four rank-level ACT commits (tFAW)
	ringIdx    int
	ringN      int
	refreshEnd PS
}

type bankShadow struct {
	lastACT PS
	hasACT  bool
	lastPRE PS // PRE issue time; the next ACT must wait tRP after it
	hasPRE  bool
}

// RankStats aggregates activity counters for reporting.
type RankStats struct {
	Reads      int64
	Writes     int64
	Activates  int64
	RowHits    int64
	RowMisses  int64
	Refreshes  int64
	RowStreams int64 // full-row transfers (migrations)
}

// NewRank builds a rank; it panics on invalid configuration since every
// caller constructs configurations statically.
func NewRank(g Geometry, t Timing) *Rank {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	r := &Rank{
		geom:      g,
		timing:    t,
		banks:     make([]bank, g.Banks),
		actCounts: make([]uint32, g.Rows()),
	}
	for i := range r.banks {
		r.banks[i].openRow = InvalidRow
	}
	for i := range r.actHist {
		// Pre-age the window so the first four activations are unhindered.
		r.actHist[i] = -t.TFAW
	}
	return r
}

// Geometry returns the rank geometry.
func (r *Rank) Geometry() Geometry { return r.geom }

// Timing returns the rank timing.
func (r *Rank) Timing() Timing { return r.timing }

// Stats returns a copy of the activity counters.
func (r *Rank) Stats() RankStats { return r.stats }

// Listen registers an activation listener. Listeners run synchronously in
// registration order on every committed ACT.
func (r *Rank) Listen(l ActListener) {
	r.listeners = append(r.listeners, l)
	if len(r.listeners) == 1 {
		r.single = l
	} else {
		r.single = nil
	}
}

// EnableInvariants installs the timing-invariant shadow checker. Every
// committed command is verified against the windows derived from `ref` —
// normally the rank's own timing, but tests may pass a stricter
// reference to prove the checker fires (e.g. a rank mis-configured with
// a too-short tRP checked against real DDR4).
func (r *Rank) EnableInvariants(c *invariant.Checker, ref Timing) {
	r.chk = c
	r.ref = ref
	r.shadow = &timingShadow{banks: make([]bankShadow, r.geom.Banks)}
}

// InvariantsEnabled reports whether a shadow checker is installed.
func (r *Rank) InvariantsEnabled() bool { return r.chk != nil }

// EnableFaults attaches a fault injector for DRAM-level faults. The rank
// consults it on every Access/StreamRow for StuckRow (the row decoder
// selects a neighbouring row) and ECCFlip (an ECC-correctable flip stalls
// the access by one tCL while the correction pipeline runs).
func (r *Rank) EnableFaults(inj *fault.Injector) { r.faults = inj }

// redirectStuckRow models a row-decoder fault: the activation lands on the
// distance-1 neighbour instead of the addressed row. The redirected row is
// re-checked against the geometry (same bank, in range) after the fault —
// the recovery invariant that a decoder fault can corrupt data but never
// escape the bank.
func (r *Rank) redirectStuckRow(row Row) Row {
	pair, n := r.geom.NeighborPair(row, 1)
	if n == 0 {
		return row // single-row bank: nowhere to be stuck toward
	}
	red := pair[0]
	if r.chk != nil {
		r.chk.Checkf(r.geom.Contains(red) && r.geom.BankOf(red) == r.geom.BankOf(row),
			"dram", "stuck-row-escape", 0,
			"stuck-row redirect %d -> %d left bank %d", row, red, r.geom.BankOf(row))
	}
	return red
}

// checkACT verifies one committed ACT against the reference timing
// windows and updates the shadow state.
func (r *Rank) checkACT(bank int, at PS) {
	s := r.shadow
	bs := &s.banks[bank]
	if bs.hasACT {
		r.chk.Checkf(at >= bs.lastACT+r.ref.TRC, "dram", "tRC", at,
			"bank %d: ACT only %dps after previous ACT (tRC=%dps)", bank, at-bs.lastACT, r.ref.TRC)
	}
	if bs.hasPRE {
		r.chk.Checkf(at >= bs.lastPRE+r.ref.TRP, "dram", "tRP", at,
			"bank %d: ACT only %dps after PRE (tRP=%dps)", bank, at-bs.lastPRE, r.ref.TRP)
	}
	r.chk.Checkf(at >= s.refreshEnd, "dram", "tRFC", at,
		"bank %d: ACT during refresh window ending %dps", bank, s.refreshEnd)
	if s.ringN >= len(s.ring) {
		oldest := s.ring[s.ringIdx]
		r.chk.Checkf(at >= oldest+r.ref.TFAW, "dram", "tFAW", at,
			"fifth ACT only %dps after the fourth-previous (tFAW=%dps)", at-oldest, r.ref.TFAW)
	}
	s.ring[s.ringIdx] = at
	s.ringIdx = (s.ringIdx + 1) % len(s.ring)
	if s.ringN < len(s.ring) {
		s.ringN++
	}
	bs.lastACT = at
	bs.hasACT = true
}

// notePRE records a precharge issue for the tRP shadow check.
func (r *Rank) notePRE(bank int, at PS) {
	if r.chk == nil {
		return
	}
	bs := &r.shadow.banks[bank]
	bs.lastPRE = at
	bs.hasPRE = true
}

// checkCol verifies a column command against tRCD from the bank's last
// activation.
func (r *Rank) checkCol(bank int, at PS) {
	bs := &r.shadow.banks[bank]
	if bs.hasACT {
		r.chk.Checkf(at >= bs.lastACT+r.ref.TRCD, "dram", "tRCD", at,
			"bank %d: column command only %dps after ACT (tRCD=%dps)", bank, at-bs.lastACT, r.ref.TRCD)
	}
}

// ActCount returns the lifetime number of activations of a row.
func (r *Rank) ActCount(row Row) uint64 {
	return uint64(r.actCounts[row])
}

// bankOpen reports whether b's row buffer is effectively open: the stored
// flag is only meaningful if no refresh has closed it since (lazy close).
func (r *Rank) bankOpen(b *bank) bool { return b.hasOpen && b.gen == r.refGen }

// bankReadyACT returns b's effective ACT window end: the stored per-bank
// value raised to the rank-wide refresh floor.
func (r *Rank) bankReadyACT(b *bank) PS { return maxPS(b.readyACT, r.actFloor) }

// fawReady returns the earliest time a new ACT may issue under the
// four-activate-window constraint given a candidate time.
func (r *Rank) fawReady(at PS) PS {
	if earliest := r.actHist[r.actIdx] + r.timing.TFAW; earliest > at {
		return earliest
	}
	return at
}

// activate commits an ACT to row at time 'at' and notifies listeners.
// Callers must have applied fawReady to 'at'.
func (r *Rank) activate(b *bank, row Row, at PS) {
	if r.chk != nil {
		r.checkACT(r.geom.BankOf(row), at)
	}
	r.actHist[r.actIdx] = at
	r.actIdx = (r.actIdx + 1) % len(r.actHist)
	b.openRow = row
	b.hasOpen = true
	b.gen = r.refGen
	b.readyACT = at + r.timing.TRC
	b.readyCol = at + r.timing.TRCD
	b.readyPRE = at + r.timing.TRCD // simplified tRAS floor
	r.actCounts[row]++
	r.stats.Activates++
	if r.single != nil {
		r.single(row, at)
	} else {
		for _, l := range r.listeners {
			l(row, at)
		}
	}
}

// Access performs one cache-line read or write to the given physical row.
// 'earliest' is the first time the command may be considered (request
// arrival or channel-reservation end). It returns the time at which the
// data transfer completes and whether the access caused a row activation.
func (r *Rank) Access(row Row, write bool, earliest PS) (done PS, activated bool) {
	if !r.geom.Contains(row) {
		panic(fmt.Sprintf("dram: access to row %d outside geometry", row))
	}
	if r.faults != nil && r.faults.FireRow(fault.StuckRow, int64(row), earliest) {
		row = r.redirectStuckRow(row)
	}
	bankIdx := r.geom.BankOf(row)
	b := &r.banks[bankIdx]
	t := &r.timing

	at := earliest
	if r.bankOpen(b) && b.openRow == row {
		// Row-buffer hit: column access only.
		r.stats.RowHits++
		col := maxPS(at, b.readyCol)
		if r.chk != nil {
			r.checkCol(bankIdx, col)
		}
		data := maxPS(col+t.TCL, r.busFree)
		r.busFree = data + t.TBL
		b.readyCol = col + t.TCCDL
		b.readyPRE = maxPS(b.readyPRE, data+t.TBL)
		done = data + t.TBL
	} else {
		// Row-buffer miss (or closed row): PRE if needed, then ACT, then column.
		r.stats.RowMisses++
		start := at
		if r.bankOpen(b) {
			pre := maxPS(start, b.readyPRE)
			if r.chk != nil {
				r.notePRE(bankIdx, pre)
			}
			start = pre + t.TRP
		}
		act := r.fawReady(maxPS(start, r.bankReadyACT(b)))
		r.activate(b, row, act)
		activated = true
		data := maxPS(act+t.TRCD+t.TCL, r.busFree)
		r.busFree = data + t.TBL
		b.readyCol = act + t.TRCD + t.TCCDL
		done = data + t.TBL
	}
	if r.faults != nil && r.faults.FireRow(fault.ECCFlip, int64(row), earliest) {
		// ECC-correctable flip: the correction pipeline stalls the access
		// by one tCL and holds the bus for the re-delivered data.
		done += t.TCL
		if r.busFree < done {
			r.busFree = done
		}
	}
	if write {
		r.stats.Writes++
		b.readyPRE = maxPS(b.readyPRE, done+t.TWR)
	} else {
		r.stats.Reads++
	}
	return done, activated
}

// StreamRow models a full-row transfer between DRAM and the controller's
// copy buffer (the unit step of a migration): one activation followed by
// back-to-back column accesses. It occupies the bank and data bus until
// completion and returns the completion time.
func (r *Rank) StreamRow(row Row, write bool, earliest PS) (done PS) {
	if !r.geom.Contains(row) {
		panic(fmt.Sprintf("dram: stream of row %d outside geometry", row))
	}
	bankIdx := r.geom.BankOf(row)
	b := &r.banks[bankIdx]
	t := &r.timing
	start := earliest
	if r.bankOpen(b) {
		pre := maxPS(start, b.readyPRE)
		if r.chk != nil {
			r.notePRE(bankIdx, pre)
		}
		start = pre + t.TRP
	}
	act := maxPS(start, r.bankReadyACT(b))
	act = maxPS(act, r.busFree) // streaming saturates the bus; serialize
	act = r.fawReady(act)
	r.activate(b, row, act)
	// RowTransferTime includes the activation (tRC) plus the column
	// stream; completion is act + stream duration.
	done = act + t.RowTransferTime(r.geom.LinesPerRow())
	if r.faults != nil && r.faults.FireRow(fault.ECCFlip, int64(row), earliest) {
		// A correctable flip somewhere in the streamed row: one tCL stall.
		done += t.TCL
	}
	r.busFree = done
	b.readyCol = done
	b.readyPRE = done
	if write {
		b.readyPRE += t.TWR
	}
	r.stats.RowStreams++
	if write {
		r.stats.Writes += int64(r.geom.LinesPerRow())
	} else {
		r.stats.Reads += int64(r.geom.LinesPerRow())
	}
	return done
}

// RefreshAll models one auto-refresh command issued at 'at': the rank is
// unavailable until at+tRFC. Refresh restores charge; it does not reset the
// Rowhammer activation counters (refresh of a *victim* row does, which is
// the victim-refresh mitigation's job, not the periodic refresh's).
func (r *Rank) RefreshAll(at PS) (done PS) {
	done = at + r.timing.TRFC
	// Lazy per-bank effects: bumping the generation closes every open row
	// and raising the floor blocks every ACT window, in O(1) instead of
	// O(banks). Banks observe both through bankOpen/bankReadyACT on their
	// next use; idle banks never pay for the refresh at all.
	r.refGen++
	if r.actFloor < done {
		r.actFloor = done
	}
	if r.busFree < done {
		r.busFree = done
	}
	if r.chk != nil {
		r.shadow.refreshEnd = done
	}
	r.stats.Refreshes++
	return done
}

// Reserve blocks the whole rank (all banks and the bus) until the given
// time; the memory controller uses this to model channel reservation during
// multi-row migration sequences.
func (r *Rank) Reserve(until PS) {
	if until > r.reservedUntil {
		r.reservedUntil = until
	}
	for i := range r.banks {
		if r.banks[i].readyACT < until {
			r.banks[i].readyACT = until
		}
		if r.banks[i].readyCol < until {
			r.banks[i].readyCol = until
		}
	}
	if r.busFree < until {
		r.busFree = until
	}
}

// BusFreeAt returns the earliest time the shared data bus is free.
func (r *Rank) BusFreeAt() PS { return r.busFree }

// ReservedUntil returns the end of the latest channel reservation (0 if
// the channel was never reserved).
func (r *Rank) ReservedUntil() PS { return r.reservedUntil }

// OpenRow returns the currently open row in a bank, if any.
func (r *Rank) OpenRow(bankIdx int) (Row, bool) {
	b := &r.banks[bankIdx]
	if !r.bankOpen(b) {
		return InvalidRow, false
	}
	return b.openRow, true
}

// PrechargeAll closes all open rows (e.g. at epoch boundaries in tests).
func (r *Rank) PrechargeAll(at PS) {
	for i := range r.banks {
		b := &r.banks[i]
		if r.bankOpen(b) {
			pre := maxPS(at, b.readyPRE)
			r.notePRE(i, pre)
			b.openRow = InvalidRow
			b.hasOpen = false
			b.readyACT = maxPS(r.bankReadyACT(b), pre+r.timing.TRP)
		}
	}
}

// BankReadyAt returns the earliest time the given bank may issue its next
// activation: the end of its tRC window, raised by any refresh (tRFC) or
// reservation still blocking it.
func (r *Rank) BankReadyAt(bankIdx int) PS {
	return r.bankReadyACT(&r.banks[bankIdx])
}

// NextExpiry returns the earliest strictly-future time (> now) at which a
// bank's activation window expires, or ok=false when every bank can
// already activate at `now`. It is a pull API: the run loop stays
// issue-driven (a blocked bank delays the access that touches it, so
// nothing needs to wake up when the window ends), but schedulers that do
// want wake-ups — FR-FCFS-style reordering experiments, diagnostics —
// read the horizon here or subscribe via PublishExpiries.
func (r *Rank) NextExpiry(now PS) (PS, bool) {
	var best PS
	ok := false
	for i := range r.banks {
		ready := r.bankReadyACT(&r.banks[i])
		if ready > now && (!ok || ready < best) {
			best, ok = ready, true
		}
	}
	return best, ok
}

// PublishExpiries pushes one ClassBankExpiry event per still-blocked bank
// (activation window ending after `now`) into the calendar, indexed by
// bank, and returns how many were published. Idle banks — the steady
// state outside refresh windows — publish nothing.
func (r *Rank) PublishExpiries(cal *event.Calendar, now PS) int {
	n := 0
	for i := range r.banks {
		if ready := r.bankReadyACT(&r.banks[i]); ready > now {
			cal.Push(event.Event{Time: ready, Class: event.ClassBankExpiry, Index: int32(i)})
			n++
		}
	}
	return n
}

func maxPS(a, b PS) PS {
	if a > b {
		return a
	}
	return b
}
