package dram

import (
	"testing"
	"testing/quick"
)

func testGeom() Geometry {
	return Geometry{Banks: 4, RowsPerBank: 256, RowBytes: 1024, LineBytes: 64}
}

func TestDDR4TimingValues(t *testing.T) {
	tm := DDR4()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.TRC != 45*Nanosecond {
		t.Errorf("tRC = %d", tm.TRC)
	}
	if tm.TREFW != 64*Millisecond {
		t.Errorf("tREFW = %d", tm.TREFW)
	}
}

func TestRowTransferTimeMatchesPaper(t *testing.T) {
	tm := DDR4()
	// Paper Section IV-D: 8KB row = 128 lines, ~685ns per transfer,
	// 1.37us per migration.
	if got := tm.RowTransferTime(128); got != 685*Nanosecond {
		t.Fatalf("RowTransferTime(128) = %dns, want 685ns", got/Nanosecond)
	}
	if got := tm.MigrationTime(128); got != 1370*Nanosecond {
		t.Fatalf("MigrationTime(128) = %dns, want 1370ns", got/Nanosecond)
	}
}

func TestACTMaxMatchesPaper(t *testing.T) {
	// Section II-B: ACTmax = tREFW(1 - tRFC/tREFI)/tRC ~= 1360K.
	got := DDR4().ACTMax()
	if got < 1_350_000 || got > 1_365_000 {
		t.Fatalf("ACTMax = %d, want ~1.36M", got)
	}
}

func TestTimingValidation(t *testing.T) {
	tm := DDR4()
	tm.TRC = 0
	if err := tm.Validate(); err == nil {
		t.Error("zero tRC accepted")
	}
	tm = DDR4()
	tm.TRC = tm.TRCD // < tRCD+tRP
	if err := tm.Validate(); err == nil {
		t.Error("tRC < tRCD+tRP accepted")
	}
	tm = DDR4()
	tm.TREFI = tm.TRFC
	if err := tm.Validate(); err == nil {
		t.Error("tREFI <= tRFC accepted")
	}
}

func TestGeometryValidation(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Geometry{Banks: 0, RowsPerBank: 1, RowBytes: 64, LineBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	bad = Geometry{Banks: 1, RowsPerBank: 1, RowBytes: 100, LineBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Error("non-multiple row bytes accepted")
	}
}

func TestBaselineGeometryMatchesTable1(t *testing.T) {
	g := Baseline()
	if g.Rows() != 2*1024*1024 {
		t.Errorf("rows = %d, want 2M", g.Rows())
	}
	if g.CapacityBytes() != 16*(1<<30) {
		t.Errorf("capacity = %d, want 16GB", g.CapacityBytes())
	}
	if g.LinesPerRow() != 128 {
		t.Errorf("lines/row = %d", g.LinesPerRow())
	}
}

func TestRowMappingRoundTrip(t *testing.T) {
	g := testGeom()
	check := func(bank, idx uint8) bool {
		b := int(bank) % g.Banks
		i := int(idx) % g.RowsPerBank
		r := g.RowOf(b, i)
		return g.BankOf(r) == b && g.IndexOf(r) == i && g.Contains(r)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	testGeom().RowOf(0, 256)
}

func TestNeighbors(t *testing.T) {
	g := testGeom()
	mid := g.RowOf(1, 100)
	n := g.Neighbors(mid, 1)
	if len(n) != 2 || n[0] != g.RowOf(1, 99) || n[1] != g.RowOf(1, 101) {
		t.Fatalf("neighbors of (1,100): %v", n)
	}
	edge := g.RowOf(0, 0)
	if n := g.Neighbors(edge, 1); len(n) != 1 || n[0] != g.RowOf(0, 1) {
		t.Fatalf("neighbors of edge: %v", n)
	}
	if n := g.Neighbors(mid, 2); len(n) != 2 || n[0] != g.RowOf(1, 98) {
		t.Fatalf("distance-2 neighbors: %v", n)
	}
}

func TestNeighborPairMatchesNeighbors(t *testing.T) {
	// Exhaustively check the allocation-free form against the slice form,
	// on both a power-of-two and a non-power-of-two geometry (the latter
	// exercises the div/mod fallback in BankOf/IndexOf).
	geoms := []Geometry{
		testGeom(),
		{Banks: 3, RowsPerBank: 100, RowBytes: 1024, LineBytes: 64},
	}
	for _, g := range geoms {
		for _, d := range []int{1, 2, 3} {
			for r := Row(0); r < Row(g.Rows()); r++ {
				want := g.Neighbors(r, d)
				pair, n := g.NeighborPair(r, d)
				if n != len(want) {
					t.Fatalf("geom %+v row %d dist %d: count %d, want %d", g, r, d, n, len(want))
				}
				for i := 0; i < n; i++ {
					if pair[i] != want[i] {
						t.Fatalf("geom %+v row %d dist %d: pair %v, want %v", g, r, d, pair[:n], want)
					}
				}
			}
		}
	}
}

func TestNeighborPairZeroAlloc(t *testing.T) {
	g := testGeom()
	row := g.RowOf(1, 100)
	if avg := testing.AllocsPerRun(1000, func() {
		pair, n := g.NeighborPair(row, 1)
		if n != 2 || pair[0] != g.RowOf(1, 99) {
			t.Fatal("wrong neighbors")
		}
	}); avg != 0 {
		t.Fatalf("NeighborPair allocates %.2f allocs/op, want 0", avg)
	}
}

func TestAccessRowMissThenHit(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	row := r.Geometry().RowOf(0, 10)
	done1, act1 := r.Access(row, false, 0)
	if !act1 {
		t.Fatal("first access did not activate")
	}
	// Miss latency: tRCD + tCL + tBL.
	tm := r.Timing()
	if want := tm.TRCD + tm.TCL + tm.TBL; done1 != want {
		t.Fatalf("miss latency = %d, want %d", done1, want)
	}
	done2, act2 := r.Access(row, false, done1)
	if act2 {
		t.Fatal("row hit activated")
	}
	if done2 <= done1 {
		t.Fatal("hit completed before issue")
	}
}

func TestAccessConflictActivates(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	a, b := g.RowOf(0, 1), g.RowOf(0, 2)
	r.Access(a, false, 0)
	_, act := r.Access(b, false, 1000)
	if !act {
		t.Fatal("conflicting access did not activate")
	}
	if r.ActCount(a) != 1 || r.ActCount(b) != 1 {
		t.Fatalf("act counts: %d, %d", r.ActCount(a), r.ActCount(b))
	}
	st := r.Stats()
	if st.RowHits != 0 || st.RowMisses != 2 {
		t.Fatalf("hits=%d misses=%d", st.RowHits, st.RowMisses)
	}
}

func TestActToActSpacingEnforced(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	a, b := g.RowOf(0, 1), g.RowOf(0, 2)
	r.Access(a, false, 0)
	done, _ := r.Access(b, false, 0)
	// The second ACT cannot start before tRC after the first, so data
	// cannot complete before tRC + tRCD + tCL.
	tm := r.Timing()
	if done < tm.TRC {
		t.Fatalf("second conflicting access done at %d < tRC %d", done, tm.TRC)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	d1, _ := r.Access(g.RowOf(0, 1), false, 0)
	d2, _ := r.Access(g.RowOf(1, 1), false, 0)
	// Bank-parallel accesses serialize only on the data bus (tBL), not
	// the full row cycle.
	if d2-d1 > r.Timing().TBL {
		t.Fatalf("bank-parallel access serialized: %d then %d", d1, d2)
	}
}

func TestListenerSeesActivations(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	var got []Row
	r.Listen(func(row Row, _ PS) { got = append(got, row) })
	a := r.Geometry().RowOf(2, 5)
	r.Access(a, false, 0)
	r.Access(a, false, 100000) // hit: no ACT
	if len(got) != 1 || got[0] != a {
		t.Fatalf("listener saw %v", got)
	}
}

func TestStreamRowTiming(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	row := r.Geometry().RowOf(0, 3)
	done := r.StreamRow(row, false, 0)
	want := r.Timing().RowTransferTime(r.Geometry().LinesPerRow())
	if done != want {
		t.Fatalf("stream done at %d, want %d", done, want)
	}
	if r.ActCount(row) != 1 {
		t.Fatal("stream did not activate the row")
	}
	if r.Stats().RowStreams != 1 {
		t.Fatal("stream not counted")
	}
}

func TestStreamBlocksBus(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	end := r.StreamRow(g.RowOf(0, 3), false, 0)
	// An access to another bank issued during the stream must wait for
	// the bus.
	done, _ := r.Access(g.RowOf(1, 1), false, 0)
	if done < end {
		t.Fatalf("access completed during stream: %d < %d", done, end)
	}
}

func TestRefreshBlocksAndCloses(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	r.Access(g.RowOf(0, 1), false, 0)
	end := r.RefreshAll(100 * Nanosecond)
	if end != 100*Nanosecond+r.Timing().TRFC {
		t.Fatalf("refresh end = %d", end)
	}
	if _, open := r.OpenRow(0); open {
		t.Fatal("refresh left a row open")
	}
	// Next access re-activates.
	_, act := r.Access(g.RowOf(0, 1), false, end)
	if !act {
		t.Fatal("access after refresh did not activate")
	}
	if r.Stats().Refreshes != 1 {
		t.Fatal("refresh not counted")
	}
}

func TestReserveBlocksAllBanks(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	until := PS(5 * Microsecond)
	r.Reserve(until)
	for b := 0; b < g.Banks; b++ {
		done, _ := r.Access(g.RowOf(b, 1), false, 0)
		if done < until {
			t.Fatalf("bank %d access completed at %d during reservation", b, done)
		}
	}
}

func TestPrechargeAll(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	r.Access(g.RowOf(0, 1), false, 0)
	r.PrechargeAll(1 * Microsecond)
	if _, open := r.OpenRow(0); open {
		t.Fatal("row still open after PrechargeAll")
	}
}

func TestAccessPanicsOutsideGeometry(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Access(Row(testGeom().Rows()), false, 0)
}

func TestWriteDelaysPrecharge(t *testing.T) {
	r := NewRank(testGeom(), DDR4())
	g := r.Geometry()
	a, b := g.RowOf(0, 1), g.RowOf(0, 2)
	dw, _ := r.Access(a, true, 0)
	// Opening another row must wait for write recovery.
	done, _ := r.Access(b, false, dw)
	tm := r.Timing()
	if done < dw+tm.TWR {
		t.Fatalf("conflict after write ignored tWR: %d < %d", done, dw+tm.TWR)
	}
}

func TestInvalidRowSentinel(t *testing.T) {
	if testGeom().Contains(InvalidRow) {
		t.Fatal("InvalidRow must not be contained in any geometry")
	}
}

func TestFourActivateWindow(t *testing.T) {
	// Five back-to-back activations to five different banks: the fifth
	// must wait for tFAW after the first, even though each bank is ready.
	g := Geometry{Banks: 8, RowsPerBank: 64, RowBytes: 1024, LineBytes: 64}
	tm := DDR4()
	tm.TFAW = 200 * Nanosecond // exaggerate so the constraint dominates
	r := NewRank(g, tm)
	var actTimes []PS
	r.Listen(func(_ Row, at PS) { actTimes = append(actTimes, at) })
	for b := 0; b < 5; b++ {
		r.Access(g.RowOf(b, 1), false, 0)
	}
	if len(actTimes) != 5 {
		t.Fatalf("acts = %d", len(actTimes))
	}
	if actTimes[4]-actTimes[0] < tm.TFAW {
		t.Fatalf("fifth ACT at %d, first at %d: tFAW %d violated",
			actTimes[4], actTimes[0], tm.TFAW)
	}
	// The first four were not delayed by the window.
	if actTimes[3]-actTimes[0] >= tm.TFAW {
		t.Fatal("fourth ACT needlessly delayed")
	}
}
