// Package farm is the crash-tolerant sharded experiment service behind
// cmd/aquaserve: an HTTP/JSON job API that shards experiment-grid cells
// across a bounded worker pool and serves results out of the shared
// content-addressed cellcache, with lease/claim coordination so
// concurrent jobs — in one process or across processes sharing a cache
// directory — compute each cell once between them, and a crashed
// worker's leases expire instead of wedging anyone.
//
// Robustness model (see DESIGN.md "Service architecture & failure
// domains"):
//
//   - Admission control: a bounded queue; a full queue sheds the request
//     (HTTP 429 + Retry-After) instead of growing memory.
//   - Failure domains: each job runs on its own Lab with per-cell panic
//     isolation and bounded retry inherited from internal/sim; one
//     poisoned cell degrades its job to partial results, one poisoned
//     job never touches another.
//   - Deadlines: per-job context.WithTimeout, flowing through the sim
//     core's dual-stride cancellation checks.
//   - Crash handoff: completed cells land in the shared cellcache and a
//     per-job-key checkpoint; a worker SIGKILLed mid-grid leaves at most
//     one live lease, which expires and is reclaimed by the next job.
//   - Graceful drain: Shutdown stops admission, cancels queued jobs,
//     gives running jobs a grace window, then hard-cancels; completed
//     cells are already durable, so a resubmitted job resumes.
//
// The package is clock-free by construction (the noclock lint applies):
// all wall time flows through the injected Clock, so tests drive leases
// and backoff with fake instants.
package farm

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro"
	"repro/internal/cellcache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Clock injects wall time and waiting. The fields are funcs, not an
// interface, so determinism tracing treats call sites as opaque; the
// real implementation lives in cmd/aquaserve (where wall-clock reads are
// allowed), fakes live in tests.
type Clock struct {
	// Now returns the current wall time.
	Now func() time.Time
	// Sleep waits for d or until ctx ends, returning ctx.Err() in the
	// latter case and nil otherwise.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Options configures a Server.
type Options struct {
	// ServerID names this process in job IDs and lease owners (required;
	// distinct per process sharing a cache directory).
	ServerID string
	// Queue bounds admitted-but-unstarted jobs (default 8). At capacity,
	// Submit sheds.
	Queue int
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// CellParallel bounds per-job cell parallelism (default 0 =
	// GOMAXPROCS; chaos harnesses use 1 for deterministic kill points).
	CellParallel int
	// LeaseTTL is how long a cell compute lease lives without renewal
	// (default 30s). A crashed worker's leases free after at most this.
	LeaseTTL time.Duration
	// DefaultDeadline bounds jobs that don't set deadline_ms (default
	// 10m).
	DefaultDeadline time.Duration
	// RetryAfter is the client backoff hint sent with shed responses
	// (default 2s).
	RetryAfter time.Duration
	// CacheDir is the shared content-addressed store directory ("" =
	// in-memory only: in-process dedup still works, cross-process
	// handoff doesn't).
	CacheDir string
	// CkptDir, when set, holds per-job-key checkpoint files for crash
	// handoff of partially completed grids.
	CkptDir string
	// Faults arms harness-level fault injection. WorkerKill arms are
	// consumed here (at cell-start ordinals, via Kill); everything else
	// passes to the sim layer per cell.
	Faults *fault.Rules
	// Seed drives the deterministic backoff jitter and the fault
	// injector (default the golden seed).
	Seed uint64
	// Clock is the injected wall clock (required).
	Clock Clock
	// Kill is the WorkerKill action (cmd/aquaserve SIGKILLs its own
	// process). Required only when Faults contains worker-kill arms.
	Kill func()
}

func (o *Options) fillDefaults() error {
	if o.ServerID == "" {
		return errors.New("farm: Options.ServerID is required")
	}
	if o.Clock.Now == nil || o.Clock.Sleep == nil {
		return errors.New("farm: Options.Clock.Now and Clock.Sleep are required")
	}
	if o.Queue <= 0 {
		o.Queue = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 10 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 0x41515541
	}
	if !o.Faults.KindPlan(fault.WorkerKill).Empty() && o.Kill == nil {
		return errors.New("farm: Faults contain worker-kill arms but Options.Kill is nil")
	}
	return nil
}

// Sentinel errors mapped to HTTP statuses by http.go.
var (
	// ErrQueueFull is returned by Submit when admission control sheds.
	ErrQueueFull = errors.New("farm: queue full")
	// ErrDraining is returned by Submit once Shutdown has begun.
	ErrDraining = errors.New("farm: server draining")
)

// Server is the experiment farm. Build with New, start workers with
// Start, serve Handler over HTTP, stop with Shutdown.
type Server struct {
	opts  Options
	store *cellcache.Store
	// simRules is opts.Faults with the harness-level worker-kill arms
	// stripped: the sim layer must never see them, or matched cells
	// would ride the cache-bypassing fault path.
	simRules *fault.Rules
	// killPlan holds the worker-kill arms, evaluated at cell-start
	// ordinals by each job's injector.
	killPlan fault.Plan

	queue chan *Job
	// ctx cancels every job when the server hard-stops.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*Job // guarded by mu
	// order preserves submission order for /stats listings.
	order []string // guarded by mu
	// ckptBusy marks job keys whose checkpoint file is attached to a
	// running job; a concurrent duplicate runs without a checkpoint
	// rather than corrupting a shared append stream.
	ckptBusy map[string]bool // guarded by mu
	draining bool            // guarded by mu
	shed     int64           // guarded by mu
	seq      int64           // guarded by mu
	running  int             // guarded by mu
	// agg accumulates finished jobs' cell stats for /stats.
	agg sim.CellStats // guarded by mu
	// aggCkptHits accumulates finished jobs' checkpoint hits.
	aggCkptHits int64 // guarded by mu
	started     bool  // guarded by mu
}

// New builds a Server (validating options) without starting workers.
func New(opts Options) (*Server, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	store, err := cellcache.New(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:     opts,
		store:    store,
		simRules: opts.Faults.WithoutKind(fault.WorkerKill),
		killPlan: opts.Faults.KindPlan(fault.WorkerKill),
		queue:    make(chan *Job, opts.Queue),
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		ckptBusy: make(map[string]bool),
	}, nil
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.wg.Add(s.opts.Workers)
	for i := 0; i < s.opts.Workers; i++ {
		go func() {
			defer s.wg.Done()
			// Last-resort backstop (nakedgo): per-job panics are already
			// contained by runJobIsolated (and cell panics by the sim
			// layer below it), so this recover only fires on a bug in
			// the loop itself — it costs this one worker, not the
			// process.
			defer func() { recover() }()
			for job := range s.queue {
				s.runJobIsolated(job)
			}
		}()
	}
}

// Submit validates, admits, and enqueues a job. The returned Job is
// already registered; poll its Status or Done channel. Shed and
// draining submissions return ErrQueueFull / ErrDraining and register
// nothing — a shed job costs the server no memory.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec.fillDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("%s-%d", s.opts.ServerID, s.seq),
		Key:       spec.Key(),
		Spec:      spec,
		state:     JobQueued,
		submitted: s.opts.Clock.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- job:
	default:
		s.seq-- // shed jobs leave no trace, not even an ID gap
		s.shed++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	return job, nil
}

// Job returns a registered job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJobIsolated wraps runJob in its own recover so a harness-level
// panic fails one job, not the worker pool.
func (s *Server) runJobIsolated(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			job.mu.Lock()
			job.errMsg = fmt.Sprintf("panic: %v", r)
			job.mu.Unlock()
			job.finish(JobFailed, s.opts.Clock.Now())
		}
	}()
	s.runJob(job)
}

// runJob executes one job end to end.
func (s *Server) runJob(job *Job) {
	// The queued->running transition is atomic under job.mu so a drain
	// that cancelled this job while it sat in the queue can't be
	// overwritten back to running.
	job.mu.Lock()
	if job.state != JobQueued {
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.started = s.opts.Clock.Now()
	job.mu.Unlock()

	deadline := s.opts.DefaultDeadline
	if job.Spec.DeadlineMS > 0 {
		deadline = time.Duration(job.Spec.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.ctx, deadline)
	defer cancel()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	lab := s.buildLab(ctx, job)
	ckptAttached := s.attachCkpt(lab, job)

	var failures []string
	var output string
	for _, name := range job.Spec.Renderers {
		r, _ := repro.RendererByName(name) // validated at submit
		sec, err := repro.RenderSection(lab, r)
		if err != nil {
			if ctx.Err() != nil {
				break // cancellation dominates: stop rendering, report below
			}
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		output += sec
	}
	// Read the hit counter before CloseCheckpoint detaches the state.
	ckptHits := lab.CheckpointHits()
	if ckptAttached {
		if err := lab.CloseCheckpoint(); err != nil && ctx.Err() == nil {
			failures = append(failures, fmt.Sprintf("checkpoint: %v", err))
		}
		s.mu.Lock()
		delete(s.ckptBusy, job.Key)
		s.mu.Unlock()
	}

	cells := lab.CellStats()
	job.mu.Lock()
	job.output = output
	job.failures = failures
	job.cells = cells
	job.ckptHits = ckptHits
	if err := ctx.Err(); err != nil {
		job.errMsg = err.Error()
	} else if output == "" && len(failures) > 0 {
		job.errMsg = "all renderers failed"
	}
	job.mu.Unlock()

	now := s.opts.Clock.Now()
	switch {
	case ctx.Err() != nil:
		job.finish(JobCancelled, now)
	case output == "" && len(failures) > 0:
		job.finish(JobFailed, now)
	default:
		job.finish(JobDone, now)
	}

	s.mu.Lock()
	s.agg.Requests += cells.Requests
	s.agg.CacheHits += cells.CacheHits
	s.agg.CacheMisses += cells.CacheMisses
	s.agg.Simulated += cells.Simulated
	s.agg.Errors += cells.Errors
	s.agg.LeaseWaits += cells.LeaseWaits
	s.agg.LeaseHits += cells.LeaseHits
	s.aggCkptHits += ckptHits
	s.mu.Unlock()
}

// buildLab assembles the job's Lab: spec options, stripped fault rules,
// the shared store + a per-job leaser, and the worker-kill hook.
func (s *Server) buildLab(ctx context.Context, job *Job) *repro.Lab {
	opts := repro.LabOptions{
		Window:        dram.PS(job.Spec.WindowUS) * dram.Microsecond,
		Workloads:     job.Spec.Workloads,
		Seed:          job.Spec.Seed,
		NoCalibration: !job.Spec.Calibrate,
		Parallel:      s.opts.CellParallel,
		Faults:        s.simRules,
		Context:       ctx,
		OnCellStart:   s.cellStartHook(job),
	}
	lab := repro.NewLab(opts)
	lab.AttachCache(s.store)
	owner := s.opts.ServerID + "_" + job.ID
	lab.AttachLeaser(newStoreLeaser(s.store, owner, s.opts.LeaseTTL, s.opts.Clock, s.opts.Seed))
	return lab
}

// cellStartHook returns the per-job OnCellStart observer: it counts
// compute-attempt ordinals and fires the worker-kill injector at them.
// Opportunity "time" is the ordinal (0, 1, 2, ...), so a rule like
// `*/*/*=worker-kill@once:2` SIGKILLs the process at the third cell
// compute this job starts — deterministic under CellParallel=1.
func (s *Server) cellStartHook(job *Job) func(string, repro.Scheme, int64) {
	if s.killPlan.Empty() {
		return nil
	}
	seed := rng.Derive(s.opts.Seed, rng.HashString(job.Key), 0xFA17)
	inj := fault.NewInjector(seed, s.killPlan, 0)
	var mu sync.Mutex
	var ordinal int64
	return func(string, repro.Scheme, int64) {
		mu.Lock()
		ord := ordinal
		ordinal++
		fire := inj.Fire(fault.WorkerKill, ord)
		mu.Unlock()
		if fire {
			s.opts.Kill()
		}
	}
}

// attachCkpt attaches the per-job-key checkpoint when a directory is
// configured and no running job already owns that key's file. Reports
// whether it attached.
func (s *Server) attachCkpt(lab *repro.Lab, job *Job) bool {
	if s.opts.CkptDir == "" {
		return false
	}
	s.mu.Lock()
	if s.ckptBusy[job.Key] {
		// A duplicate job is appending to this key's file right now;
		// running without a checkpoint only costs handoff durability for
		// this execution — the cache still dedupes the work.
		s.mu.Unlock()
		return false
	}
	s.ckptBusy[job.Key] = true
	s.mu.Unlock()
	path := filepath.Join(s.opts.CkptDir, job.Key+".ckpt")
	if err := lab.AttachCheckpoint(path); err != nil {
		// A foreign or corrupt file refuses to attach; run without.
		s.mu.Lock()
		delete(s.ckptBusy, job.Key)
		s.mu.Unlock()
		return false
	}
	return true
}

// Shutdown drains the server: admission stops (readyz and Submit refuse),
// queued jobs are cancelled, and running jobs get until ctx ends to
// finish before being hard-cancelled. Completed cells are durable in the
// cache/checkpoints either way, so a resubmission after restart resumes
// instead of recomputing. Returns nil when everything finished inside
// the grace window, or ctx's error after a hard cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("farm: already shut down")
	}
	s.draining = true
	started := s.started
	s.mu.Unlock()

	// No submitter can reach the queue once draining is set; close it so
	// workers exit when it empties.
	close(s.queue)
	// Queued-but-unstarted jobs cancel immediately (workers skip them).
	now := s.opts.Clock.Now()
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State() == JobQueued {
			j.mu.Lock()
			j.errMsg = "cancelled by shutdown"
			j.mu.Unlock()
			j.finish(JobCancelled, now)
		}
	}
	s.mu.Unlock()
	if !started {
		s.cancel()
		return nil
	}

	workersDone := make(chan struct{})
	go func() {
		defer func() { recover() }() // never leak a panic from the waiter
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		s.cancel()
		return nil
	case <-ctx.Done():
		// Grace expired: hard-cancel running jobs (the sim core observes
		// it within a bounded stride) and wait for workers to unwind.
		s.cancel()
		<-workersDone
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StatsSnapshot is the JSON document served by GET /stats.
type StatsSnapshot struct {
	ServerID    string               `json:"server_id"`
	Draining    bool                 `json:"draining"`
	QueueDepth  int                  `json:"queue_depth"`
	QueueCap    int                  `json:"queue_cap"`
	Workers     int                  `json:"workers"`
	RunningJobs int                  `json:"running_jobs"`
	Shed        int64                `json:"shed"`
	JobsByState map[JobState]int     `json:"jobs_by_state"`
	Cells       sim.CellStats        `json:"cells"`
	CkptHits    int64                `json:"ckpt_hits"`
	Store       cellcache.Stats      `json:"store"`
	Leases      cellcache.LeaseStats `json:"leases"`
}

// Stats returns a point-in-time operational snapshot. Cell counters
// aggregate finished jobs; store/lease counters are live.
func (s *Server) Stats() StatsSnapshot {
	s.mu.Lock()
	byState := make(map[JobState]int)
	for _, id := range s.order {
		byState[s.jobs[id].State()]++
	}
	snap := StatsSnapshot{
		ServerID:    s.opts.ServerID,
		Draining:    s.draining,
		QueueDepth:  len(s.queue),
		QueueCap:    s.opts.Queue,
		Workers:     s.opts.Workers,
		RunningJobs: s.running,
		Shed:        s.shed,
		JobsByState: byState,
		Cells:       s.agg,
		CkptHits:    s.aggCkptHits,
	}
	s.mu.Unlock()
	snap.Store = s.store.Stats()
	snap.Leases = s.store.LeaseStats()
	return snap
}
