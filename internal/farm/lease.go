package farm

import (
	"context"
	"sync"
	"time"

	"repro/internal/cellcache"
)

// storeLeaser adapts cellcache's clock-free lease primitives to
// sim.CellLeaser for one job execution: it supplies the owner identity,
// the injected clock, and the wait strategy (seeded backoff polling).
// One leaser per job — the owner is "<serverID>_<jobID>", so duplicate
// jobs inside one server are distinct owners and dedupe through leases
// exactly like jobs in different processes.
type storeLeaser struct {
	store *cellcache.Store
	owner string
	ttl   time.Duration
	clock Clock
	seed  uint64

	mu      sync.Mutex
	waiters map[string]*Backoff // guarded by mu (per-key wait schedule)
}

func newStoreLeaser(store *cellcache.Store, owner string, ttl time.Duration, clock Clock, seed uint64) *storeLeaser {
	return &storeLeaser{
		store:   store,
		owner:   owner,
		ttl:     ttl,
		clock:   clock,
		seed:    seed,
		waiters: make(map[string]*Backoff),
	}
}

// Claim implements sim.CellLeaser via the store's lease files (or its
// in-memory lease map when the store has no directory).
func (l *storeLeaser) Claim(key string) bool {
	ok, _ := l.store.Claim(key, l.owner, l.clock.Now().UnixNano(), l.ttl.Nanoseconds())
	return ok
}

// Wait sleeps one backoff step for this key. The schedule is per-key and
// seeded by (seed, owner, key): deterministic for tests, decorrelated
// across jobs so lease-expiry wakeups don't stampede the store.
func (l *storeLeaser) Wait(ctx context.Context, key string) error {
	l.mu.Lock()
	b, ok := l.waiters[key]
	if !ok {
		b = NewBackoff(l.seed, l.owner+"/"+key, l.ttl/16, l.ttl/2)
		l.waiters[key] = b
	}
	d := b.Next()
	l.mu.Unlock()
	return l.clock.Sleep(ctx, d)
}

// Release implements sim.CellLeaser.
func (l *storeLeaser) Release(key string) { l.store.Release(key, l.owner) }
