package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/sim"
)

// JobSpec is the HTTP/JSON description of one experiment-grid job: a lab
// configuration plus the renderers to produce. The zero value renders
// the full registry on the reduced golden lab (500 us window, xz+wrf,
// no calibration) — the grid pinned byte-for-byte by
// testdata/lab_golden.txt.
type JobSpec struct {
	// WindowUS is the simulated measurement window in microseconds
	// (default 500 — the reduced golden window; the paper's full window
	// is 64000).
	WindowUS int64 `json:"window_us,omitempty"`
	// Workloads selects the evaluated cases (default xz, wrf).
	Workloads []string `json:"workloads,omitempty"`
	// Seed drives all randomization (default the golden seed).
	Seed uint64 `json:"seed,omitempty"`
	// Calibrate enables the two-pass baseline-IPC calibration (default
	// off, matching the golden lab; full paper runs turn it on).
	Calibrate bool `json:"calibrate,omitempty"`
	// Renderers names the figures/tables to render, in request order
	// (default: the whole registry in canonical order).
	Renderers []string `json:"renderers,omitempty"`
	// DeadlineMS bounds the job's wall-clock run time in milliseconds
	// (0 = the server's default deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (s *JobSpec) fillDefaults() {
	if s.WindowUS == 0 {
		s.WindowUS = 500
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"xz", "wrf"}
	}
	if s.Seed == 0 {
		s.Seed = 0x41515541
	}
	if len(s.Renderers) == 0 {
		s.Renderers = repro.RendererNames()
	}
}

// validate rejects specs no job could run. Call after fillDefaults.
func (s *JobSpec) validate() error {
	if s.WindowUS < 1 || s.WindowUS > 256_000 {
		return fmt.Errorf("farm: window_us %d out of range [1, 256000]", s.WindowUS)
	}
	known := make(map[string]bool)
	for _, w := range repro.AllWorkloads() {
		known[w] = true
	}
	for _, w := range s.Workloads {
		if !known[w] {
			return fmt.Errorf("farm: unknown workload %q", w)
		}
	}
	for _, r := range s.Renderers {
		if _, ok := repro.RendererByName(r); !ok {
			return fmt.Errorf("farm: unknown renderer %q (known: %s)",
				r, strings.Join(repro.RendererNames(), ", "))
		}
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("farm: negative deadline_ms %d", s.DeadlineMS)
	}
	return nil
}

// Key is the content hash of everything that determines the job's
// output: the lab configuration and the renderer list. The deadline is
// excluded — it bounds wall-clock, never bytes. Duplicate jobs share a
// key, which names their shared checkpoint file and lets operators spot
// dedup in /stats.
func (s JobSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aqua-job-v1\nwindow_us=%d seed=%#x calibrate=%t\n", s.WindowUS, s.Seed, s.Calibrate)
	ws := append([]string(nil), s.Workloads...)
	sort.Strings(ws)
	fmt.Fprintf(&b, "workloads=%s\n", strings.Join(ws, ","))
	fmt.Fprintf(&b, "renderers=%s\n", strings.Join(s.Renderers, ","))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued jobs are admitted and waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning jobs are executing on a worker.
	JobRunning JobState = "running"
	// JobDone jobs completed; Output holds the rendered sections (all of
	// them, or — when some renderers failed — the surviving subset, with
	// Failures naming the rest).
	JobDone JobState = "done"
	// JobFailed jobs produced no output at all.
	JobFailed JobState = "failed"
	// JobCancelled jobs were stopped by deadline, client cancellation, or
	// server drain before completing.
	JobCancelled JobState = "cancelled"
)

// Job is one admitted job's full lifecycle record.
type Job struct {
	// ID is the server-assigned identity ("<serverID>-<n>").
	ID string
	// Key is the content hash of the spec (shared by duplicates).
	Key string
	// Spec is the validated, defaulted spec.
	Spec JobSpec

	mu sync.Mutex
	// state transitions queued -> running -> done|failed|cancelled, or
	// queued -> cancelled when drained before starting.
	state JobState // guarded by mu
	// output is the concatenation of successfully rendered sections in
	// request order, each framed "=== name ===\n<out>\n".
	output string // guarded by mu
	// failures records per-renderer errors (partial degradation).
	failures []string // guarded by mu
	// errMsg is the job-level failure/cancellation cause.
	errMsg string // guarded by mu
	// submitted/started/finished are clock timestamps for operators.
	submitted time.Time // guarded by mu
	started   time.Time // guarded by mu
	finished  time.Time // guarded by mu
	// cells snapshots the job lab's cell accounting at completion.
	cells sim.CellStats // guarded by mu
	// ckptHits counts cells served from the job's checkpoint (crash
	// handoff from a previous execution of the same key).
	ckptHits int64 // guarded by mu

	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

// JobStatus is the JSON snapshot served by GET /jobs/{id}.
type JobStatus struct {
	ID        string        `json:"id"`
	Key       string        `json:"key"`
	State     JobState      `json:"state"`
	Failures  []string      `json:"failures,omitempty"`
	Error     string        `json:"error,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   time.Time     `json:"started,omitzero"`
	Finished  time.Time     `json:"finished,omitzero"`
	Cells     sim.CellStats `json:"cells"`
	CkptHits  int64         `json:"ckpt_hits"`
	HasOutput bool          `json:"has_output"`
}

// Status returns a consistent snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.ID,
		Key:       j.Key,
		State:     j.state,
		Failures:  append([]string(nil), j.failures...),
		Error:     j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Cells:     j.cells,
		CkptHits:  j.ckptHits,
		HasOutput: j.output != "",
	}
}

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Output returns the rendered sections ("" until something rendered).
func (j *Job) Output() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCancelled {
		return
	}
	j.state = state
	j.finished = now
	close(j.done)
}
