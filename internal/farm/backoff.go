// Deterministic seeded backoff: the farm's retry and lease-wait
// schedules are exponential with jitter, but the jitter comes from
// internal/rng streams derived from (seed, scope), never from a global
// RNG or the clock. The same seed therefore reproduces the same schedule
// — the property the backoff tests pin — while distinct scopes (one per
// job) draw decorrelated streams, so a crowd of jobs woken by one lease
// expiry fans back out instead of thundering in phase.
package farm

import (
	"time"

	"repro/internal/rng"
)

// backoffKey salts the seed derivation so backoff streams never collide
// with workload or fault streams sharing the same root seed.
const backoffKey = 0xB0FF

// Backoff produces an exponential wait schedule with equal jitter:
// attempt n (1-based) waits in [w/2, w) where w = min(base<<(n-1), max).
// Not safe for concurrent use — each waiter owns its Backoff, like every
// other per-stream rng consumer.
type Backoff struct {
	rand    *rng.Rand
	base    time.Duration
	max     time.Duration
	attempt int
}

// NewBackoff builds the schedule for one scope (a job key, a cell key, a
// client request id). Identical (seed, scope, base, max) quadruples
// yield identical schedules; different scopes decorrelate.
func NewBackoff(seed uint64, scope string, base, max time.Duration) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{
		rand: rng.New(rng.Derive(seed, backoffKey, rng.HashString(scope))),
		base: base,
		max:  max,
	}
}

// Next returns the wait before the upcoming re-attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	b.attempt++
	w := b.window(b.attempt)
	half := w / 2
	return half + time.Duration(b.rand.Uint64n(uint64(w-half)))
}

// Attempt reports how many Next calls have been consumed.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the attempt counter (the jitter stream keeps advancing,
// so a reset schedule is still decorrelated from the first).
func (b *Backoff) Reset() { b.attempt = 0 }

// window is the jitter-free envelope for attempt n.
func (b *Backoff) window(n int) time.Duration {
	w := b.base
	for i := 1; i < n; i++ {
		w <<= 1
		if w >= b.max || w <= 0 { // <= 0: shift overflow
			return b.max
		}
	}
	if w > b.max {
		return b.max
	}
	return w
}
