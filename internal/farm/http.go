package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /jobs             submit a JobSpec -> 202 {id,key,state}
//	                       429 + Retry-After when the queue sheds
//	                       503 + Retry-After while draining
//	GET  /jobs/{id}        JobStatus JSON
//	GET  /jobs/{id}/output rendered sections, text/plain
//	GET  /healthz          process liveness (always 200 while serving)
//	GET  /readyz           admission readiness (503 while draining)
//	GET  /stats            StatsSnapshot JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone; nothing useful to do
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Admission control: shed with a backoff hint instead of queueing
		// unboundedly. Clients (aquaload) honor Retry-After with their own
		// seeded jitter on top.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, Key: job.Key, State: job.State()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	st := job.State()
	if st == JobQueued || st == JobRunning {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job %s still %s", job.ID, st)})
		return
	}
	out := job.Output()
	if out == "" {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("job %s (%s) produced no output", job.ID, st)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if st != JobDone {
		// Partial or cancelled output is still served — graceful
		// degradation — but flagged so clients don't mistake it for the
		// full grid.
		w.Header().Set("X-Aqua-Partial", string(st))
	} else if len(job.Status().Failures) > 0 {
		w.Header().Set("X-Aqua-Partial", "degraded")
	}
	_, _ = w.Write([]byte(out))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
