package farm

// Service-level acceptance tests (test files are exempt from the noclock
// lint, so the real wall clock drives the server here; the fake-clock
// tests at the bottom pin the lease/backoff behaviour deterministically):
//
//   - a submitted golden-spec job reproduces testdata/lab_golden.txt
//     byte-for-byte through the HTTP API;
//   - duplicate concurrent jobs dedupe through the shared store + leases;
//   - admission control sheds with 429 + Retry-After at queue capacity
//     while in-flight jobs still complete;
//   - per-renderer faults degrade a job to partial results, untouched
//     sections staying byte-identical;
//   - worker-kill fault arms fire the harness Kill hook without ever
//     reaching the simulator;
//   - drain cancels queued jobs, hard-cancels overrunning jobs at the
//     grace deadline, and refuses new work.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cellcache"
	"repro/internal/fault"
)

// realClock is the wall clock for tests that don't need to control time.
func realClock() Clock {
	return Clock{
		Now: time.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// newTestServer builds and starts a server with fast test defaults;
// mutate applies per-test option overrides before New.
func newTestServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	opts := Options{
		ServerID: "test",
		Queue:    8,
		Workers:  2,
		LeaseTTL: 500 * time.Millisecond,
		Clock:    realClock(),
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// goldenBytes loads the repo-root golden file the farm must reproduce.
func goldenBytes(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "lab_golden.txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	return string(raw)
}

// goldenSection extracts one "=== name ===" section (with framing) from
// the golden stream.
func goldenSection(t *testing.T, name string) string {
	t.Helper()
	golden := goldenBytes(t)
	marker := "=== " + name + " ===\n"
	i := strings.Index(golden, marker)
	if i < 0 {
		t.Fatalf("golden file has no section %q", name)
	}
	rest := golden[i+len(marker):]
	if j := strings.Index(rest, "=== "); j >= 0 {
		rest = rest[:j]
	}
	return marker + rest
}

// waitTerminal blocks until the job leaves queued/running.
func waitTerminal(t *testing.T, job *Job) JobState {
	t.Helper()
	select {
	case <-job.Done():
		return job.State()
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s stuck in state %s", job.ID, job.State())
		return ""
	}
}

// TestServerGoldenJobHTTP drives the full HTTP surface: submit the
// default (golden) spec, poll status, fetch output, and require the
// bytes match the committed golden file exactly.
func TestServerGoldenJobHTTP(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", probe, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if sub.ID == "" || sub.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", sub)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var status JobStatus
	for {
		r, err := http.Get(ts.URL + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if status.State != JobQueued && status.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", status.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != JobDone {
		t.Fatalf("job finished %s (error %q, failures %v), want done", status.State, status.Error, status.Failures)
	}
	if len(status.Failures) != 0 {
		t.Fatalf("unexpected renderer failures: %v", status.Failures)
	}
	if status.Cells.Requests == 0 || status.Cells.Simulated == 0 {
		t.Fatalf("cell stats look empty: %+v", status.Cells)
	}

	out, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(out.Body)
	out.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.StatusCode != http.StatusOK {
		t.Fatalf("GET output = %d, want 200", out.StatusCode)
	}
	if h := out.Header.Get("X-Aqua-Partial"); h != "" {
		t.Fatalf("complete job flagged partial: %q", h)
	}
	if got, want := string(body), goldenBytes(t); got != want {
		t.Fatalf("farm output diverged from golden file (%d vs %d bytes)", len(got), len(want))
	}

	if r, err := http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET unknown job = %d, want 404", r.StatusCode)
		}
	}
}

// TestDuplicateJobsDedupe submits the same spec twice onto two workers
// sharing one store: both complete identically, and every cell of the
// loser is served by cache hit or lease wait — never a third compute.
func TestDuplicateJobsDedupe(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.CacheDir = t.TempDir()
	})
	spec := JobSpec{Workloads: []string{"xz", "wrf"}, Renderers: []string{"table2", "figure3"}}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Key != j2.Key {
		t.Fatalf("duplicate specs got different keys %s vs %s", j1.Key, j2.Key)
	}
	if st := waitTerminal(t, j1); st != JobDone {
		t.Fatalf("job1 %s: %q", st, j1.Status().Error)
	}
	if st := waitTerminal(t, j2); st != JobDone {
		t.Fatalf("job2 %s: %q", st, j2.Status().Error)
	}
	if j1.Output() != j2.Output() || j1.Output() == "" {
		t.Fatalf("duplicate jobs disagree (%d vs %d bytes)", len(j1.Output()), len(j2.Output()))
	}
	want := goldenSection(t, "table2") + goldenSection(t, "figure3")
	if j1.Output() != want {
		t.Fatalf("output diverged from golden sections (%d vs %d bytes)", len(j1.Output()), len(want))
	}
	stats := s.Stats()
	if stats.Cells.CacheHits+stats.Cells.LeaseWaits == 0 {
		t.Fatalf("no dedup between duplicate jobs: %+v", stats.Cells)
	}
	if stats.JobsByState[JobDone] != 2 {
		t.Fatalf("jobs by state = %v, want 2 done", stats.JobsByState)
	}
}

// TestOverloadSheds fills the queue and requires the overflow submission
// to shed with 429 + Retry-After while the admitted jobs still finish.
// The running job is pinned mid-cell by a blocking worker-kill hook so
// the queue state is deterministic, then released.
func TestOverloadSheds(t *testing.T) {
	rules, err := fault.ParseRules("*/*/*=worker-kill@once:0")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.Queue = 1
		o.RetryAfter = 3 * time.Second
		o.Faults = rules
		o.Kill = func() { <-gate }
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"workloads":["xz"],"renderers":["figure3"]}`
	post := func() *http.Response {
		r, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := post()
	var sub1 submitResponse
	if err := json.NewDecoder(r1.Body).Decode(&sub1); err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	j1, _ := s.Job(sub1.ID)
	// Wait for the worker to pull job1 (it then blocks on the gate at its
	// first cell start) so job2 occupies the queue slot.
	for j1.State() == JobQueued {
		time.Sleep(time.Millisecond)
	}

	r2 := post()
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", r2.StatusCode)
	}
	r3 := post()
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	// Release the pinned cell: shedding cost the server nothing and the
	// in-flight jobs complete well inside their (default) deadlines.
	close(gate)
	for _, id := range []string{"test-1", "test-2"} {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s not registered", id)
		}
		if st := waitTerminal(t, j); st != JobDone {
			t.Fatalf("job %s finished %s (%q), want done", id, st, j.Status().Error)
		}
	}
	stats := s.Stats()
	if stats.Shed != 1 {
		t.Fatalf("shed = %d, want 1", stats.Shed)
	}
	if _, ok := s.Job("test-3"); ok {
		t.Fatal("shed job was registered")
	}
}

// TestSubmitValidation rejects malformed specs at the door.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"workloads":["nope"]}`,
		`{"renderers":["figure99"]}`,
		`{"window_us":-5}`,
		`{"deadline_ms":-1}`,
		`{"unknown_field":1}`,
		`not json`,
	} {
		r, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q = %d, want 400", body, r.StatusCode)
		}
	}
	if st := s.Stats(); len(st.JobsByState) != 0 {
		t.Fatalf("invalid submissions registered jobs: %v", st.JobsByState)
	}
}

// TestJobDeadlineCancels: a 1ms deadline on the full golden grid cannot
// complete; the job must come back cancelled with the deadline named,
// not wedge a worker.
func TestJobDeadlineCancels(t *testing.T) {
	s := newTestServer(t, nil)
	j, err := s.Submit(JobSpec{DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobCancelled {
		t.Fatalf("job finished %s, want cancelled", st)
	}
	if msg := j.Status().Error; !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not name the deadline", msg)
	}
	// The worker survived: a fresh job on the same server still runs.
	j2, err := s.Submit(JobSpec{Workloads: []string{"xz"}, Renderers: []string{"table2"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2); st != JobDone {
		t.Fatalf("follow-up job %s, want done", st)
	}
}

// TestPartialDegradation injects a panicking cell: the renderer that
// needs it fails, every other requested section renders byte-identical
// to golden, and the job reports done-with-failures.
func TestPartialDegradation(t *testing.T) {
	rules, err := fault.ParseRules("xz/rrs/1000=panic@once:0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(o *Options) { o.Faults = rules })
	j, err := s.Submit(JobSpec{Workloads: []string{"xz", "wrf"}, Renderers: []string{"table2", "figure3"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("job finished %s (%q), want done with partial output", st, j.Status().Error)
	}
	status := j.Status()
	if len(status.Failures) != 1 || !strings.HasPrefix(status.Failures[0], "figure3:") {
		t.Fatalf("failures = %v, want exactly figure3", status.Failures)
	}
	if got, want := j.Output(), goldenSection(t, "table2"); got != want {
		t.Fatalf("surviving section diverged from golden (%d vs %d bytes)", len(got), len(want))
	}
}

// TestWorkerKillHookFires: worker-kill arms are consumed by the harness
// hook at cell-start ordinals and stripped from the rules the simulator
// sees — output stays golden even though the kill plan matched.
func TestWorkerKillHookFires(t *testing.T) {
	rules, err := fault.ParseRules("*/*/*=worker-kill@once:1")
	if err != nil {
		t.Fatal(err)
	}
	var kills atomic.Int32
	s := newTestServer(t, func(o *Options) {
		o.CellParallel = 1
		o.Faults = rules
		o.Kill = func() { kills.Add(1) }
	})
	// figure3 is simulation-backed (analytic renderers like table2 start
	// no cell computes, so the hook would never see an ordinal).
	j, err := s.Submit(JobSpec{Workloads: []string{"xz", "wrf"}, Renderers: []string{"figure3"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("job finished %s (%q), want done", st, j.Status().Error)
	}
	if kills.Load() != 1 {
		t.Fatalf("kill hook fired %d times, want 1", kills.Load())
	}
	if got, want := j.Output(), goldenSection(t, "figure3"); got != want {
		t.Fatal("worker-kill arm leaked into the simulator: output diverged from golden")
	}
}

// TestWorkerKillRequiresKillFunc: arming worker-kill without a Kill
// action is a configuration error, caught at New.
func TestWorkerKillRequiresKillFunc(t *testing.T) {
	rules, err := fault.ParseRules("*/*/*=worker-kill@once:0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Options{ServerID: "x", Clock: realClock(), Faults: rules})
	if err == nil || !strings.Contains(err.Error(), "Kill") {
		t.Fatalf("New = %v, want worker-kill/Kill config error", err)
	}
}

// TestDrain covers both shutdown modes: queued jobs cancel immediately;
// a running job that outlives the grace window is hard-cancelled and the
// server still unwinds cleanly; submissions after drain are refused.
func TestDrain(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.Queue = 4
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A deliberately huge job so it cannot finish inside the grace window.
	slow, err := s.Submit(JobSpec{WindowUS: 64_000})
	if err != nil {
		t.Fatal(err)
	}
	for slow.State() == JobQueued {
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(JobSpec{Workloads: []string{"xz"}, Renderers: []string{"table2"}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded (hard cancel)", err)
	}
	if st := slow.State(); st != JobCancelled {
		t.Fatalf("running job after hard cancel = %s, want cancelled", st)
	}
	if st := queued.State(); st != JobCancelled {
		t.Fatalf("queued job after drain = %s, want cancelled", st)
	}
	if msg := queued.Status().Error; !strings.Contains(msg, "shutdown") {
		t.Fatalf("queued job error %q does not name shutdown", msg)
	}
	if _, err := s.Submit(JobSpec{}); err != ErrDraining {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", r.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness != readiness)", r2.StatusCode)
	}
}

// --- fake-clock tests: the lease lifecycle without wall-time coupling ---

// fakeClock is a manual clock whose Sleep advances time instantly.
type fakeClock struct {
	now atomic.Int64 // unix nanos
}

func (c *fakeClock) clock() Clock {
	return Clock{
		Now: func() time.Time { return time.Unix(0, c.now.Load()) },
		Sleep: func(ctx context.Context, d time.Duration) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.now.Add(int64(d))
			return nil
		},
	}
}

// TestStoreLeaserReclaimsExpired is the crashed-worker story in
// miniature, on a fake clock: owner "dead" claims a cell and vanishes;
// owner "live" conflicts, backs off (advancing fake time), and reclaims
// the lease the moment it expires — bounded by the TTL, no wedging.
func TestStoreLeaserReclaimsExpired(t *testing.T) {
	store, err := cellcache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{}
	fc.now.Store(1)
	const ttl = time.Second

	dead := newStoreLeaser(store, "dead", ttl, fc.clock(), 7)
	if !dead.Claim("cell0") {
		t.Fatal("first claim refused")
	}
	// "dead" crashes here: never releases, never renews.

	live := newStoreLeaser(store, "live", ttl, fc.clock(), 7)
	if live.Claim("cell0") {
		t.Fatal("live claimed over a live lease")
	}
	ctx := context.Background()
	waits := 0
	for !live.Claim("cell0") {
		if err := live.Wait(ctx, "cell0"); err != nil {
			t.Fatal(err)
		}
		waits++
		if waits > 64 {
			t.Fatal("lease never reclaimed; wedged on a dead owner")
		}
	}
	// The backoff is capped at ttl/2, so reclaim needs at least 2 waits
	// and fake time has advanced past the expiry — but not unboundedly.
	if elapsed := time.Duration(fc.now.Load() - 1); elapsed < ttl || elapsed > 4*ttl {
		t.Fatalf("reclaim after %v of fake time, want within [ttl, 4*ttl]", elapsed)
	}
	ls := store.LeaseStats()
	if ls.Reclaimed != 1 || ls.Conflicts == 0 {
		t.Fatalf("lease stats %+v, want 1 reclaim and >0 conflicts", ls)
	}

	// Release by the new owner works; the dead owner's late release is a
	// harmless no-op.
	live.Release("cell0")
	dead.Release("cell0")
	if got := store.LeaseStats().Released; got != 1 {
		t.Fatalf("released = %d, want 1 (dead owner's release must no-op)", got)
	}
	if !dead.Claim("cell0") {
		t.Fatal("cell not claimable after release")
	}
}

// TestStoreLeaserWaitCancellation: a cancelled context aborts the wait
// with the context's error.
func TestStoreLeaserWaitCancellation(t *testing.T) {
	store, err := cellcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{}
	l := newStoreLeaser(store, "w", time.Second, fc.clock(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Wait(ctx, "k"); err != context.Canceled {
		t.Fatalf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
}
