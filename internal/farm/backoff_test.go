package farm

import (
	"testing"
	"time"
)

// TestBackoffDeterministic pins the service's retry-schedule contract:
// identical (seed, scope, base, max) quadruples replay the identical
// wait sequence. Every farm retry decision is reproducible from the
// job's seed — no global RNG, no clock-derived jitter.
func TestBackoffDeterministic(t *testing.T) {
	mk := func() *Backoff { return NewBackoff(7, "job-a/cell-1", 10*time.Millisecond, time.Second) }
	a, b := mk(), mk()
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed+scope diverged: %v vs %v", i+1, da, db)
		}
	}
	if a.Attempt() != 12 {
		t.Fatalf("Attempt() = %d, want 12", a.Attempt())
	}
}

// TestBackoffEnvelope checks every wait lands in the equal-jitter window
// [w/2, w) with w = min(base<<(n-1), max) — exponential growth, hard cap.
func TestBackoffEnvelope(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	b := NewBackoff(1, "scope", base, max)
	for n := 1; n <= 10; n++ {
		w := base << (n - 1)
		if w > max || w <= 0 {
			w = max
		}
		d := b.Next()
		if d < w/2 || d >= w {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", n, d, w/2, w)
		}
	}
}

// TestBackoffScopesDecorrelated is the anti-thundering-herd property:
// different scopes (different jobs waiting on the same lease) draw from
// decorrelated jitter streams, so their retry schedules fan out instead
// of marching in phase.
func TestBackoffScopesDecorrelated(t *testing.T) {
	const attempts = 16
	a := NewBackoff(7, "job-a/cell-1", 10*time.Millisecond, time.Second)
	b := NewBackoff(7, "job-b/cell-1", 10*time.Millisecond, time.Second)
	same := 0
	for i := 0; i < attempts; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == attempts {
		t.Fatalf("all %d waits identical across scopes; jitter streams are correlated", attempts)
	}
}

// TestBackoffSeedsDiffer: changing the root seed changes the schedule.
func TestBackoffSeedsDiffer(t *testing.T) {
	a := NewBackoff(1, "scope", 10*time.Millisecond, time.Second)
	b := NewBackoff(2, "scope", 10*time.Millisecond, time.Second)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestBackoffDefaultsAndClamps: non-positive base defaults to 10ms, a max
// below base clamps up to base, and overflow-prone shifts stick at max.
func TestBackoffDefaultsAndClamps(t *testing.T) {
	b := NewBackoff(1, "s", 0, 0)
	if d := b.Next(); d < 5*time.Millisecond || d >= 10*time.Millisecond {
		t.Fatalf("defaulted first wait %v outside [5ms, 10ms)", d)
	}

	// Giant base: once the envelope reaches max (attempt 3 here), every
	// further attempt stays inside [max/2, max) — the shift overflow
	// guard, not wraparound, decides.
	big := NewBackoff(1, "s", time.Duration(1)<<50, time.Duration(1)<<52)
	for i := 1; i <= 64; i++ {
		w := time.Duration(1) << (50 + min(i-1, 2))
		d := big.Next()
		if d < w/2 || d >= w {
			t.Fatalf("attempt %d: overflow-guarded wait %v escaped [%v, %v)", i, d, w/2, w)
		}
	}

	// Reset rewinds the envelope to attempt 1 but keeps drawing fresh
	// jitter.
	r := NewBackoff(3, "s", 10*time.Millisecond, time.Second)
	r.Next()
	r.Next()
	r.Reset()
	if d := r.Next(); d < 5*time.Millisecond || d >= 10*time.Millisecond {
		t.Fatalf("post-Reset wait %v outside first-attempt window [5ms, 10ms)", d)
	}
}
