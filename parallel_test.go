package repro

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
)

// labAt builds the reduced-grid lab of lab_test.go at an explicit
// parallelism, for serial-vs-parallel comparisons.
func labAt(parallel int) *Lab {
	return NewLab(LabOptions{
		Window:        500 * dram.PS(dram.Microsecond),
		Workloads:     []string{"xz", "wrf"},
		NoCalibration: true,
		Parallel:      parallel,
	})
}

// TestParallelMatchesSerial is the engine's core contract: the same
// reduced grid rendered serially and with Parallel: 4 emits byte-
// identical tables, for every simulation-backed renderer shape (norm-IPC
// tables, the migration table, the breakdown table, the sensitivity
// sweep).
func TestParallelMatchesSerial(t *testing.T) {
	serial, parallel := labAt(1), labAt(4)
	renderers := []struct {
		name string
		fn   func(*Lab) (string, error)
	}{
		{"figure3", (*Lab).Figure3},
		{"figure6", (*Lab).Figure6},
		{"figure7", (*Lab).Figure7},
		{"figure9", (*Lab).Figure9},
		{"figure10", (*Lab).Figure10},
		{"figure11", (*Lab).Figure11},
		{"table4", (*Lab).Table4},
		{"table6", (*Lab).Table6},
		{"section5f", (*Lab).SensitivityVF},
		{"section5h", (*Lab).PowerReport},
	}
	for _, r := range renderers {
		want, err := r.fn(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", r.name, err)
		}
		got, err := r.fn(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", r.name, err)
		}
		if got != want {
			t.Errorf("%s diverged under Parallel: 4\n--- serial ---\n%s\n--- parallel ---\n%s",
				r.name, want, got)
		}
	}
	// Both engines simulated the identical cell set.
	if s, p := serial.SortedCacheKeys(), parallel.SortedCacheKeys(); !reflect.DeepEqual(s, p) {
		t.Errorf("cell sets diverged:\nserial:   %v\nparallel: %v", s, p)
	}
}

// TestConcurrentLabRunOverlappingCells exercises the Lab cache and
// singleflight under -race: many goroutines ask for an overlapping cell
// set, and every answer must equal the serial reference.
func TestConcurrentLabRunOverlappingCells(t *testing.T) {
	type cell struct {
		scheme Scheme
		trh    int64
	}
	cells := []cell{
		{SchemeAquaMemMapped, 1000},
		{SchemeRRS, 1000},
		{SchemeAquaMemMapped, 1000}, // deliberate duplicates: callers overlap
		{SchemeRRS, 1000},
	}
	ref := labAt(1)
	want := make(map[cell]sim.WorkloadRun)
	for _, c := range cells {
		r, err := ref.Run("xz", c.scheme, c.trh)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = r
	}

	l := labAt(4)
	const rounds = 4
	var wg sync.WaitGroup
	got := make([]sim.WorkloadRun, rounds*len(cells))
	errs := make([]error, rounds*len(cells))
	for i := 0; i < rounds*len(cells); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cells[i%len(cells)]
			got[i], errs[i] = l.Run("xz", c.scheme, c.trh)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		c := cells[i%len(cells)]
		if !reflect.DeepEqual(got[i], want[c]) {
			t.Fatalf("caller %d (%v/%d) diverged from the serial reference", i, c.scheme, c.trh)
		}
	}
}

func TestPrecomputeFillsCache(t *testing.T) {
	l := labAt(4)
	if err := l.Precompute(
		GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000},
		GridCell{Scheme: SchemeRRS, TRH: 1000},
	); err != nil {
		t.Fatal(err)
	}
	keys := l.SortedCacheKeys()
	if len(keys) != 4 { // 2 workloads x 2 cells
		t.Fatalf("precompute cached %d cells, want 4: %v", len(keys), keys)
	}
}

func TestPaperGridCoversComparedSchemes(t *testing.T) {
	seen := make(map[Scheme]bool)
	for _, c := range PaperGrid() {
		seen[c.Scheme] = true
	}
	for _, s := range []Scheme{SchemeBaseline, SchemeAquaSRAM, SchemeAquaMemMapped,
		SchemeRRS, SchemeBlockhammer, SchemeVictimRefresh} {
		if !seen[s] {
			t.Errorf("PaperGrid missing scheme %v", s)
		}
	}
}
