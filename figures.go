package repro

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/analytic"
	"repro/internal/cellcache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LabOptions configures the figure-regeneration lab.
type LabOptions struct {
	// Window is the fixed instruction budget expressed as baseline
	// simulated time (default 64ms — one full refresh window, the paper's
	// metric window). Smaller windows run proportionally faster but
	// under-count threshold crossings of mid-rate rows.
	Window PS
	// Workloads selects the evaluated cases; nil means all 34 (18 SPEC +
	// 16 mixes). Use SPECWorkloads() for the fast 18-workload subset.
	Workloads []string
	// Seed drives all randomization.
	Seed uint64
	// Calibrate enables the two-pass baseline-IPC calibration (default
	// true; see DESIGN.md).
	NoCalibration bool
	// Parallel bounds how many simulations run concurrently when a
	// figure (or Precompute) sweeps its grid (0 = GOMAXPROCS, 1 =
	// serial). Every rendered table is byte-identical at any setting:
	// cells simulate on isolated systems and the renderers read results
	// back in canonical workload/cell order (see DESIGN.md).
	Parallel int
	// Faults injects deterministic faults into matching grid cells (see
	// fault.ParseRules). Cells the rules don't match are bit-for-bit
	// unaffected.
	Faults *fault.Rules
	// Context, when set, cancels in-flight and pending simulations when
	// it is done; figure calls then return its error. Nil means
	// context.Background().
	Context context.Context
	// OnCellStart, when set, observes the start of every cell compute
	// attempt (cells served from caches never fire it). The experiment
	// farm hooks it for harness-level fault injection; it must not mutate
	// anything the simulation reads.
	OnCellStart func(workload string, scheme Scheme, trh int64)
	// NoTraceReplay disables the workload capture/replay tier: every cell
	// regenerates its streams instead of replaying the first cell's
	// captured trace. Replay is byte-identical to generation; the flag
	// exists for the make trace-smoke equivalence gate.
	NoTraceReplay bool
	// TraceBudgetBytes bounds the in-memory captured-trace tier (0 =
	// default 1 GiB, negative = unlimited); see sim.ExpConfig.
	TraceBudgetBytes int64
}

// AllWorkloads returns all 34 case names (18 SPEC + 16 mixes).
func AllWorkloads() []string { return sim.AllCaseNames() }

// SPECWorkloads returns the 18 SPEC rate workload names.
func SPECWorkloads() []string { return sim.SPECCaseNames() }

// Lab runs the paper's experiments with a shared result cache, so figures
// that need the same (workload, scheme, threshold) cell don't re-simulate.
// A Lab is safe for concurrent use, and every simulation-backed figure
// first fans its grid out to a worker pool (LabOptions.Parallel wide)
// before rendering serially from the cache — so tables come out
// byte-identical to a serial run at any parallelism.
type Lab struct {
	opts   LabOptions
	ctx    context.Context
	runner *sim.Runner

	mu     sync.Mutex
	cache  map[labKey]sim.WorkloadRun // guarded by mu
	flight flight.Group[labKey, sim.WorkloadRun]
}

type labKey struct {
	workload string
	scheme   Scheme
	trh      int64
}

// NewLab builds a Lab.
func NewLab(opts LabOptions) *Lab {
	if opts.Window == 0 {
		opts.Window = 64 * dram.Millisecond
	}
	if len(opts.Workloads) == 0 {
		opts.Workloads = sim.AllCaseNames()
	}
	if opts.Seed == 0 {
		opts.Seed = 0x41515541
	}
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.GOMAXPROCS(0)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Lab{
		opts: opts,
		ctx:  ctx,
		runner: sim.NewRunner(sim.ExpConfig{
			Window:             opts.Window,
			Seed:               opts.Seed,
			Calibrate:          !opts.NoCalibration,
			Parallel:           opts.Parallel,
			Faults:             opts.Faults,
			OnCellStart:        opts.OnCellStart,
			DisableTraceReplay: opts.NoTraceReplay,
			TraceBudgetBytes:   opts.TraceBudgetBytes,
		}),
		cache: make(map[labKey]sim.WorkloadRun),
	}
}

// AttachCheckpoint persists completed cells to path and serves already-
// completed cells from it, so an interrupted lab run can resume with
// byte-identical output. The file is bound to the lab's configuration;
// attaching one written under different options is an error.
func (l *Lab) AttachCheckpoint(path string) error { return l.runner.AttachCheckpoint(path) }

// CheckpointHits reports how many results were served from the attached
// checkpoint instead of being recomputed.
func (l *Lab) CheckpointHits() int64 { return l.runner.CheckpointHits() }

// CloseCheckpoint flushes and closes the attached checkpoint, surfacing
// any append error encountered during the run.
func (l *Lab) CloseCheckpoint() error { return l.runner.CloseCheckpoint() }

// AttachCache attaches a content-addressed result store: clean completed
// cells are served from it without re-simulating and written back to it
// as they complete (see DESIGN.md "Result cache & incremental
// recomputation"). Unlike a checkpoint, the store is shared across any
// number of configurations — the key hashes the configuration, so a
// changed option simply misses. Fault-injected and cancelled cells never
// enter the store.
func (l *Lab) AttachCache(s *cellcache.Store) { l.runner.AttachCellCache(s) }

// AttachLeaser attaches a cross-process compute coordinator to the lab's
// runner (effective only alongside AttachCache; see sim.CellLeaser). The
// farm uses it so two servers sharing a cache directory compute each
// missed cell once between them.
func (l *Lab) AttachLeaser(cl sim.CellLeaser) { l.runner.AttachLeaser(cl) }

// CellStats reports how the lab's cell requests were satisfied: cache
// hits/misses, deduplicated requests, and real simulations.
func (l *Lab) CellStats() sim.CellStats { return l.runner.CellStats() }

// FaultedCell summarizes one completed cell that had faults injected.
type FaultedCell struct {
	Workload string
	Scheme   Scheme
	TRH      int64
	Injected int64
}

// FaultedCells lists every completed cell whose run had injected faults,
// in canonical workload/scheme/trh order. Cells that failed outright are
// not in the cache and are reported through CellError instead.
func (l *Lab) FaultedCells() []FaultedCell {
	l.mu.Lock()
	var out []FaultedCell
	for k, r := range l.cache {
		if n := r.Result.FaultStats.Injected; n > 0 {
			out = append(out, FaultedCell{Workload: k.workload, Scheme: k.scheme, TRH: k.trh, Injected: n})
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.TRH < b.TRH
	})
	return out
}

// Run measures one workload under one scheme at a threshold, caching the
// result. Concurrent callers asking for the same cell share one
// simulation.
//
//detertaint:root
func (l *Lab) Run(name string, scheme Scheme, trh int64) (sim.WorkloadRun, error) {
	key := labKey{name, scheme, trh}
	l.mu.Lock()
	r, ok := l.cache[key]
	l.mu.Unlock()
	if ok {
		return r, nil
	}
	return l.flight.DoCtx(l.ctx, key, func() (sim.WorkloadRun, error) {
		l.mu.Lock()
		r, ok := l.cache[key]
		l.mu.Unlock()
		if ok {
			return r, nil
		}
		r, err := l.runner.RunCtx(l.ctx, name, scheme, trh)
		if err != nil {
			return sim.WorkloadRun{}, err
		}
		l.mu.Lock()
		l.cache[key] = r
		l.mu.Unlock()
		return r, nil
	})
}

// Precompute simulates every (workload, cell) combination of the lab's
// workload set into the cache, fanning the grid out to at most
// LabOptions.Parallel concurrent workers. Figures call it before
// rendering; callers sweeping several figures can warm the union of
// their grids (e.g. PaperGrid) in one parallel pass up front.
//
//detertaint:root
func (l *Lab) Precompute(cells ...sim.GridCell) error {
	if len(cells) == 0 {
		return nil
	}
	names := l.opts.Workloads
	return flight.ForEachCtx(l.ctx, len(names)*len(cells), l.opts.Parallel, func(k int) error {
		name, cell := names[k/len(cells)], cells[k%len(cells)]
		_, err := l.Run(name, cell.Scheme, cell.TRH)
		return err
	})
}

// PaperGrid returns the (scheme, threshold) cells the full evaluation
// sweeps: the union of every simulation-backed figure and table's grid.
// Lab.Precompute(PaperGrid()...) warms the whole evaluation in one
// parallel pass.
func PaperGrid() []sim.GridCell {
	return []sim.GridCell{
		{Scheme: SchemeBaseline, TRH: 1000},
		{Scheme: SchemeAquaSRAM, TRH: 1000},
		{Scheme: SchemeAquaMemMapped, TRH: 2000},
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
		{Scheme: SchemeAquaMemMapped, TRH: 500},
		{Scheme: SchemeRRS, TRH: 4000},
		{Scheme: SchemeRRS, TRH: 2000},
		{Scheme: SchemeRRS, TRH: 1000},
		{Scheme: SchemeBlockhammer, TRH: 1000},
		{Scheme: SchemeVictimRefresh, TRH: 1000},
	}
}

// slowdownRow collects normalized IPC for each workload under the cells,
// appending a geometric-mean row.
//
//detertaint:root
func (l *Lab) normIPCTable(title string, cells []sim.GridCell, colNames []string) (string, error) {
	if err := l.Precompute(cells...); err != nil {
		return "", err
	}
	headers := append([]string{"Workload"}, colNames...)
	t := stats.NewTable(title, headers...)
	per := make([][]float64, len(cells))
	for _, name := range l.opts.Workloads {
		row := []string{name}
		for i, cell := range cells {
			r, err := l.Run(name, cell.Scheme, cell.TRH)
			if err != nil {
				return "", err
			}
			per[i] = append(per[i], r.NormIPC)
			row = append(row, fmt.Sprintf("%.3f", r.NormIPC))
		}
		t.AddRow(row...)
	}
	gm := []string{fmt.Sprintf("Gmean-%d", len(l.opts.Workloads))}
	for i := range cells {
		gm = append(gm, fmt.Sprintf("%.3f", stats.Geomean(per[i])))
	}
	t.AddRow(gm...)
	return t.String(), nil
}

// Figure2 renders the historical Rowhammer-threshold trend (Section II-C):
// published characterization points, a static dataset.
func Figure2() string {
	t := stats.NewTable("Figure 2: Rowhammer threshold over time",
		"Year", "DRAM", "T_RH (activations)")
	t.AddRow("2014", "DDR3", "139K")
	t.AddRow("2017", "DDR3 (new)", "22.4K")
	t.AddRow("2020", "DDR4", "10K")
	t.AddRow("2020", "LPDDR4", "4.8K")
	return t.String()
}

// Figure3 regenerates Figure 3: RRS slowdown as T_RH drops from 4K to 1K.
//
//detertaint:root
func (l *Lab) Figure3() (string, error) {
	cells := []sim.GridCell{
		{Scheme: SchemeRRS, TRH: 4000},
		{Scheme: SchemeRRS, TRH: 2000},
		{Scheme: SchemeRRS, TRH: 1000},
	}
	return l.normIPCTable(
		"Figure 3: Normalized IPC of RRS at T_RH = 4K / 2K / 1K (paper gmean: 0.973 / 0.924 / 0.835)",
		cells, []string{"RRS-4K", "RRS-2K", "RRS-1K"})
}

// Figure6 regenerates Figure 6: row migrations per 64ms for AQUA and RRS
// at T_RH=1K (paper averages: 1099 vs 9935).
//
//detertaint:root
func (l *Lab) Figure6() (string, error) {
	err := l.Precompute(
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000},
		sim.GridCell{Scheme: SchemeRRS, TRH: 1000})
	if err != nil {
		return "", err
	}
	t := stats.NewTable(
		"Figure 6: Row migrations per 64ms at T_RH=1K (paper avg: AQUA 1099, RRS 9935)",
		"Workload", "AQUA", "RRS", "RRS/AQUA")
	var aquaAll, rrsAll []float64
	for _, name := range l.opts.Workloads {
		a, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			return "", err
		}
		r, err := l.Run(name, SchemeRRS, 1000)
		if err != nil {
			return "", err
		}
		aquaAll = append(aquaAll, a.Result.MigrationsPer64ms)
		rrsAll = append(rrsAll, r.Result.MigrationsPer64ms)
		ratio := "-"
		if a.Result.MigrationsPer64ms > 0 {
			ratio = fmt.Sprintf("%.1fx", r.Result.MigrationsPer64ms/a.Result.MigrationsPer64ms)
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f", a.Result.MigrationsPer64ms),
			fmt.Sprintf("%.0f", r.Result.MigrationsPer64ms), ratio)
	}
	avgA, avgR := stats.Mean(aquaAll), stats.Mean(rrsAll)
	ratio := "-"
	if avgA > 0 {
		ratio = fmt.Sprintf("%.1fx", avgR/avgA)
	}
	t.AddRow("Average", fmt.Sprintf("%.0f", avgA), fmt.Sprintf("%.0f", avgR), ratio)
	return t.String(), nil
}

// Figure7 regenerates Figure 7: normalized IPC of AQUA (SRAM tables) and
// RRS at T_RH=1K (paper gmean: AQUA 0.982, RRS 0.835).
//
//detertaint:root
func (l *Lab) Figure7() (string, error) {
	cells := []sim.GridCell{
		{Scheme: SchemeAquaSRAM, TRH: 1000},
		{Scheme: SchemeRRS, TRH: 1000},
	}
	return l.normIPCTable(
		"Figure 7: Normalized IPC at T_RH=1K (paper gmean: AQUA 0.982, RRS 0.835)",
		cells, []string{"AQUA", "RRS"})
}

// Figure9 regenerates Figure 9: AQUA with SRAM vs memory-mapped tables
// (paper gmean: 0.982 vs 0.979).
//
//detertaint:root
func (l *Lab) Figure9() (string, error) {
	cells := []sim.GridCell{
		{Scheme: SchemeAquaSRAM, TRH: 1000},
		{Scheme: SchemeAquaMemMapped, TRH: 1000},
	}
	return l.normIPCTable(
		"Figure 9: AQUA normalized IPC, SRAM vs memory-mapped tables (paper gmean: 0.982 vs 0.979)",
		cells, []string{"AQUA-SRAM", "AQUA-MemMap"})
}

// Figure10 regenerates Figure 10: the FPT-lookup breakdown of memory-
// mapped AQUA (paper averages: 92.2% bloom-filtered, 7.3% cache hits, 0.4%
// singleton, 0.02% DRAM).
//
//detertaint:root
func (l *Lab) Figure10() (string, error) {
	if err := l.Precompute(sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000}); err != nil {
		return "", err
	}
	t := stats.NewTable(
		"Figure 10: FPT-lookup breakdown (paper avg: 92.2% bloom / 7.3% cache / 0.4% singleton / 0.02% DRAM)",
		"Workload", "Bloom-reset", "FPT-Cache hit", "Singleton", "DRAM")
	var b, c, s, d []float64
	for _, name := range l.opts.Workloads {
		r, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			return "", err
		}
		bd := sim.BreakdownOf(r.Result)
		b = append(b, bd.BloomFiltered)
		c = append(c, bd.CacheHit)
		s = append(s, bd.Singleton)
		d = append(d, bd.DRAM)
		t.AddRow(name, pct(bd.BloomFiltered), pct(bd.CacheHit), pct(bd.Singleton), pct(bd.DRAM))
	}
	t.AddRow("Average", pct(stats.Mean(b)), pct(stats.Mean(c)), pct(stats.Mean(s)), pct(stats.Mean(d)))
	return t.String(), nil
}

// Figure11 regenerates Figure 11: AQUA's sensitivity to the Rowhammer
// threshold (paper slowdowns: 0.2% at 2K, 2.1% at 1K, 6.8% at 500).
//
//detertaint:root
func (l *Lab) Figure11() (string, error) {
	err := l.Precompute(
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 2000},
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000},
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 500})
	if err != nil {
		return "", err
	}
	t := stats.NewTable(
		"Figure 11: AQUA (memory-mapped) sensitivity to T_RH (paper slowdown: 0.2% / 2.1% / 6.8%)",
		"T_RH", "Gmean norm. IPC", "Slowdown")
	for _, trh := range []int64{2000, 1000, 500} {
		var norms []float64
		for _, name := range l.opts.Workloads {
			r, err := l.Run(name, SchemeAquaMemMapped, trh)
			if err != nil {
				return "", err
			}
			norms = append(norms, r.NormIPC)
		}
		gm := stats.Geomean(norms)
		t.AddRow(fmt.Sprintf("%d", trh), fmt.Sprintf("%.3f", gm), pct(1-gm))
	}
	return t.String(), nil
}

// SensitivityVF regenerates the Section V-F structure-sensitivity study:
// AQUA's slowdown as the bloom filter is varied from 8KB to 32KB (paper:
// 2.3% / 2.1% / 2.0%) and the FPT-Cache from 8KB to 32KB (paper: flat at
// 2.1%). Bloom bytes map to group sizes (8KB = 32 rows/bit, 16KB = 16,
// 32KB = 8); cache bytes to entry counts (2K/4K/8K).
//
//detertaint:root
func (l *Lab) SensitivityVF() (string, error) {
	t := stats.NewTable(
		"Section V-F: sensitivity to bloom-filter and FPT-Cache size (paper: 2.3%/2.1%/2.0% and flat)",
		"Structure", "Size", "Gmean norm. IPC", "Slowdown")
	type variant struct {
		label string
		size  string
		cfg   sim.Config
	}
	variants := []variant{
		{"bloom-filter", "8 KB", sim.Config{BloomGroupSize: 32}},
		{"bloom-filter", "16 KB", sim.Config{BloomGroupSize: 16}},
		{"bloom-filter", "32 KB", sim.Config{BloomGroupSize: 8}},
		{"fpt-cache", "8 KB", sim.Config{FPTCacheEntries: 2048}},
		{"fpt-cache", "16 KB", sim.Config{FPTCacheEntries: 4096}},
		{"fpt-cache", "32 KB", sim.Config{FPTCacheEntries: 8192}},
	}
	// Variant runs bypass the cell cache (their structural overrides are
	// not part of the cell key), so fan the whole variant x workload
	// plane out to the worker pool and render from the indexed results.
	names := l.opts.Workloads
	norms := make([][]float64, len(variants))
	for i := range norms {
		norms[i] = make([]float64, len(names))
	}
	err := flight.ForEachCtx(l.ctx, len(variants)*len(names), l.opts.Parallel, func(k int) error {
		vi, wi := k/len(names), k%len(names)
		r, err := l.runner.RunVariantCtx(l.ctx, names[wi], SchemeAquaMemMapped, 1000, variants[vi].cfg)
		if err != nil {
			return err
		}
		norms[vi][wi] = r.NormIPC
		return nil
	})
	if err != nil {
		return "", err
	}
	for i, v := range variants {
		gm := stats.Geomean(norms[i])
		t.AddRow(v.label, v.size, fmt.Sprintf("%.3f", gm), pct(1-gm))
	}
	return t.String(), nil
}

// Figure12 regenerates Figure 12: the analytical relative-migration model
// r(f) of Appendix A.
func Figure12() string {
	t := stats.NewTable(
		"Figure 12: Analytical model — RRS/AQUA row-migration ratio r(f) = (2+4f)/f",
		"f", "r(f)")
	for _, f := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		t.AddRow(fmt.Sprintf("%.2f", f), fmt.Sprintf("%.1f", analytic.RelativeMigrations(f)))
	}
	return t.String()
}

// Table1 renders Table I: the baseline system configuration.
func Table1() string {
	geom := dram.Baseline()
	tm := dram.DDR4()
	t := stats.NewTable("Table I: Baseline system configuration", "Parameter", "Value")
	t.AddRow("Out-of-order cores", "4 cores at 3GHz (interval model)")
	t.AddRow("MLP per core", "4 outstanding misses")
	t.AddRow("Memory size", fmt.Sprintf("%d GB DDR4", geom.CapacityBytes()/(1<<30)))
	t.AddRow("tRCD-tCL-tRP-tRC", fmt.Sprintf("%.1f-%.1f-%.1f-%.0f ns",
		float64(tm.TRCD)/1e3, float64(tm.TCL)/1e3, float64(tm.TRP)/1e3, float64(tm.TRC)/1e3))
	t.AddRow("tCCD_S, tCCD_L", fmt.Sprintf("%.1f ns, %.0f ns",
		float64(tm.TCCDS)/1e3, float64(tm.TCCDL)/1e3))
	t.AddRow("Banks x Ranks x Channels", fmt.Sprintf("%d x 1 x 1", geom.Banks))
	t.AddRow("Rows per bank", fmt.Sprintf("%dK", geom.RowsPerBank/1024))
	t.AddRow("Size of row", fmt.Sprintf("%d KB", geom.RowBytes/1024))
	t.AddRow("Refresh (tREFI / tRFC / tREFW)", fmt.Sprintf("%.1f us / %.0f ns / %.0f ms",
		float64(tm.TREFI)/1e6, float64(tm.TRFC)/1e3, float64(tm.TREFW)/1e9))
	return t.String()
}

// CoRunReport regenerates the Section VI-C quality-of-service experiment:
// a DoS attacker on one core, a benign workload on the rest; the victims'
// slowdown attributable to AQUA's migrations must stay under the 2.95x
// analytical bound.
//
//detertaint:root
func (l *Lab) CoRunReport(workloadName string) (string, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return "", fmt.Errorf("repro: unknown workload %q", workloadName)
	}
	window := l.opts.Window
	if window > 8*dram.Millisecond {
		window = 8 * dram.Millisecond // co-run needs no full refresh window
	}
	res, err := sim.CoRun(SchemeAquaSRAM, 1000, spec, window, l.opts.Seed)
	if err != nil {
		return "", err
	}
	bound := analytic.WorstCaseSlowdown(analytic.BaselineRQAParams(500))
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-C co-run: DoS attacker on core 0, %s on cores 1-3\n", workloadName)
	fmt.Fprintf(&b, "  victim IPC solo:            %.3f\n", res.SoloVictimIPC)
	fmt.Fprintf(&b, "  victim IPC under attack:    %.3f (unprotected)\n", res.BaselineVictimIPC)
	fmt.Fprintf(&b, "  victim IPC under attack:    %.3f (AQUA)\n", res.VictimIPC)
	fmt.Fprintf(&b, "  AQUA-attributable slowdown: %.2fx (analytical bound %.2fx)\n",
		res.AttackSlowdown, bound)
	fmt.Fprintf(&b, "  mitigations during co-run:  %d; invariant violated: %v\n",
		res.Mitigations, res.Violated)
	return b.String(), nil
}

// Table2 regenerates Table II: measured MPKI-driven workload
// characterization vs the paper's reference values.
//
//detertaint:root
func (l *Lab) Table2() (string, error) {
	t := stats.NewTable(
		"Table II: Workload characteristics (measured on the synthetic streams; paper values in parentheses)",
		"Workload", "MPKI", "ACT-166+", "ACT-500+", "ACT-1K+")
	tiers := []int64{166, 500, 1000}
	var specNames []string
	var specs []workload.Spec
	for _, name := range l.opts.Workloads {
		if spec, ok := workload.ByName(name); ok {
			// Table II covers the 18 SPEC workloads only; mixes are skipped.
			specNames = append(specNames, name)
			specs = append(specs, spec)
		}
	}
	allCounts := make([]map[int64]int, len(specNames))
	err := flight.ForEachCtx(l.ctx, len(specNames), l.opts.Parallel, func(i int) error {
		counts, err := l.runner.RowTierCounts(specNames[i], tiers)
		if err != nil {
			return err
		}
		allCounts[i] = counts
		return nil
	})
	if err != nil {
		return "", err
	}
	var sums [3]float64
	n := 0
	for i, name := range specNames {
		spec, counts := specs[i], allCounts[i]
		t.AddRow(name,
			fmt.Sprintf("%.2f", spec.MPKI),
			fmt.Sprintf("%d (%d)", counts[166], spec.Rows166),
			fmt.Sprintf("%d (%d)", counts[500], spec.Rows500),
			fmt.Sprintf("%d (%d)", counts[1000], spec.Rows1K))
		sums[0] += float64(counts[166])
		sums[1] += float64(counts[500])
		sums[2] += float64(counts[1000])
		n++
	}
	if n > 0 {
		t.AddRow("Average", "",
			fmt.Sprintf("%.0f (1665)", sums[0]/float64(n)),
			fmt.Sprintf("%.0f (694)", sums[1]/float64(n)),
			fmt.Sprintf("%.0f (57)", sums[2]/float64(n)))
	}
	return t.String(), nil
}

// Table3 regenerates Table III: quarantine-area sizing vs effective
// threshold (closed-form; matches the paper exactly).
func Table3() string {
	t := stats.NewTable("Table III: Size of quarantine area vs effective threshold",
		"Threshold (A)", "Rmax (rows)", "Quarantine (MB)", "DRAM overhead")
	for _, row := range analytic.Table3() {
		t.AddRow(fmt.Sprintf("%d", row.EffectiveThreshold),
			fmt.Sprintf("%d", row.RMax),
			fmt.Sprintf("%.0f", row.QuarantineMB),
			pct(row.DRAMOverhead))
	}
	return t.String()
}

// Table4 regenerates Table IV: victim refresh vs AQUA.
//
//detertaint:root
func (l *Lab) Table4() (string, error) {
	err := l.Precompute(
		sim.GridCell{Scheme: SchemeVictimRefresh, TRH: 1000},
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000})
	if err != nil {
		return "", err
	}
	var vr, aq []float64
	for _, name := range l.opts.Workloads {
		v, err := l.Run(name, SchemeVictimRefresh, 1000)
		if err != nil {
			return "", err
		}
		a, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			return "", err
		}
		vr = append(vr, v.NormIPC)
		aq = append(aq, a.NormIPC)
	}
	t := stats.NewTable("Table IV: Comparison of AQUA with victim refresh",
		"Attribute", "Victim-Refresh", "AQUA")
	t.AddRow("Slowdown (measured)", pct(1-stats.Geomean(vr)), pct(1-stats.Geomean(aq)))
	t.AddRow("Mitigates classic Rowhammer", "yes", "yes")
	t.AddRow("Mitigates complex patterns (Half-Double)", "NO", "yes")
	t.AddRow("Works without knowing DRAM mapping", "NO", "yes")
	return t.String(), nil
}

// Table5 regenerates Table V: CROW copy-row provisioning (closed-form).
func Table5() string {
	t := stats.NewTable("Table V: Rowhammer threshold tolerated by CROW (512-row subarray)",
		"Copy-Rows", "DRAM overhead", "Aggressors", "T_RH tolerated")
	for _, row := range analytic.Table5() {
		t.AddRow(fmt.Sprintf("%d", row.CopyRows),
			pct(row.DRAMOverhead),
			fmt.Sprintf("%d", row.Aggressors),
			fmt.Sprintf("%d", row.TRHTolerated))
	}
	return t.String()
}

// Table6 regenerates Table VI: the scheme comparison at T_RH=1K, combining
// measured slowdowns with the paper's storage analysis.
//
//detertaint:root
func (l *Lab) Table6() (string, error) {
	err := l.Precompute(
		sim.GridCell{Scheme: SchemeBlockhammer, TRH: 1000},
		sim.GridCell{Scheme: SchemeRRS, TRH: 1000},
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000})
	if err != nil {
		return "", err
	}
	slow := func(scheme Scheme) (string, error) {
		var norms []float64
		for _, name := range l.opts.Workloads {
			r, err := l.Run(name, scheme, 1000)
			if err != nil {
				return "", err
			}
			norms = append(norms, r.NormIPC)
		}
		return pct(1 - stats.Geomean(norms)), nil
	}
	bh, err := slow(SchemeBlockhammer)
	if err != nil {
		return "", err
	}
	rr, err := slow(SchemeRRS)
	if err != nil {
		return "", err
	}
	aq, err := slow(SchemeAquaMemMapped)
	if err != nil {
		return "", err
	}

	storage := analytic.ComputeStorage(dram.Baseline(), analytic.BaselineRQAParams(500).RMax())
	wc := analytic.WorstCaseSlowdown(analytic.BaselineRQAParams(500))
	ritMB := float64(analytic.RRSRITBytes(dram.DDR4(), 16, 166)) / (1 << 20)

	t := stats.NewTable("Table VI: Comparison of mitigation schemes at T_RH=1K (paper slowdowns: BH 36%, RRS 19.8%, AQUA 2.1%)",
		"Metric", "Blockhammer", "CROW", "RRS", "AQUA")
	t.AddRow("SRAM for mapping tables", "n/a", "26 MB",
		fmt.Sprintf("%.1f MB", ritMB),
		fmt.Sprintf("%d KB", storage.SRAMTotalMemMapped()/1024))
	t.AddRow("DRAM storage overhead", "0%", "1060%", "0%",
		pct(float64(storage.DRAMTotal())/float64(dram.Baseline().CapacityBytes())))
	t.AddRow("Normalized perf. loss (measured)", bh, "<0.1%", rr, aq)
	t.AddRow("Worst-case slowdown", "1280x", "<1%", "11x", fmt.Sprintf("%.2fx", wc))
	t.AddRow("Commodity DRAM", "yes", "NO", "yes", "yes")
	return t.String(), nil
}

// Table7 regenerates Appendix B's Table VII: SRAM overheads including
// trackers.
func Table7() string {
	t := stats.NewTable("Table VII: SRAM overheads of RRS and AQUA including trackers",
		"Structure", "RRS-MG", "AQUA-MG", "RRS-Hydra", "AQUA-Hydra")
	for _, row := range analytic.Table7() {
		t.AddRow(row.Structure, kb(row.RRSMG), kb(row.AquaMG), kb(row.RRSHydra), kb(row.AquaHydra))
	}
	return t.String()
}

// PowerReport regenerates Section V-H as a measurement: the IDD-model
// DRAM power of baseline vs AQUA (memory-mapped) runs, averaged over the
// lab's workloads, plus the paper's CACTI SRAM constants. The paper
// reports +0.7% (8.5mW) DRAM and 13.6mW SRAM.
//
//detertaint:root
func (l *Lab) PowerReport() (string, error) {
	err := l.Precompute(
		sim.GridCell{Scheme: SchemeBaseline, TRH: 1000},
		sim.GridCell{Scheme: SchemeAquaMemMapped, TRH: 1000})
	if err != nil {
		return "", err
	}
	var basePW, aquaPW []float64
	for _, name := range l.opts.Workloads {
		base, err := l.Run(name, SchemeBaseline, 1000)
		if err != nil {
			return "", err
		}
		aqua, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			return "", err
		}
		if base.Result.DRAMPowerMW > 0 {
			basePW = append(basePW, base.Result.DRAMPowerMW)
			aquaPW = append(aquaPW, aqua.Result.DRAMPowerMW)
		}
	}
	pb, pa := stats.Mean(basePW), stats.Mean(aquaPW)
	var b strings.Builder
	fmt.Fprintf(&b, "Section V-H: power (paper: DRAM +0.7%% = 8.5 mW; SRAM 13.6 mW)\n")
	fmt.Fprintf(&b, "  DRAM (IDD model, avg over %d workloads): baseline %.2f mW, AQUA %.2f mW (+%.3f mW, +%.3f%%)\n",
		len(basePW), pb, pa, pa-pb, safePct(pa-pb, pb))
	sp := analytic.PaperPower()
	fmt.Fprintf(&b, "  SRAM (CACTI constants): bloom %.1f + FPT-Cache %.1f + copy buffer %.1f = %.1f mW\n",
		sp.BloomMilliwatts, sp.FPTCacheMilliwatts, sp.CopyBufferMilliwatts, sp.SRAMTotalMilliwatts())
	return b.String(), nil
}

func safePct(delta, base float64) float64 {
	if base == 0 {
		return 0
	}
	return delta / base * 100
}

// StorageReport renders the Section V-G storage accounting computed from
// first principles for the baseline configuration.
func StorageReport() string {
	rqa := analytic.BaselineRQAParams(500).RMax()
	s := analytic.ComputeStorage(dram.Baseline(), rqa)
	var b strings.Builder
	fmt.Fprintf(&b, "AQUA storage at T_RH=1K (RQA = %d rows)\n", rqa)
	fmt.Fprintf(&b, "  SRAM tables (Section IV-C): FPT %d KB + RPT %d KB = %d KB (paper: 172 KB)\n",
		s.FPTSRAMBytes/1024, s.RPTSRAMBytes/1024, s.SRAMTotalSRAMVariant()/1024)
	fmt.Fprintf(&b, "  Memory-mapped SRAM (Section V-G): bloom %d KB + FPT-Cache %d KB + copy buffer %d KB + pinned %.1f KB = %.1f KB (paper: 41 KB)\n",
		s.BloomBytes/1024, s.FPTCacheBytes/1024, s.CopyBufferBytes/1024,
		float64(s.PinnedFPTBytes)/1024, float64(s.SRAMTotalMemMapped())/1024)
	fmt.Fprintf(&b, "  DRAM: quarantine %.0f MB + FPT %.1f MB + RPT %.1f MB = %.0f MB (%.2f%% of 16 GB; paper: 185 MB = 1.13%%)\n",
		float64(s.QuarantineBytes)/(1<<20), float64(s.FPTDRAMBytes)/(1<<20),
		float64(s.RPTDRAMBytes)/(1<<20), float64(s.DRAMTotal())/(1<<20),
		100*float64(s.DRAMTotal())/float64(dram.Baseline().CapacityBytes()))
	p := analytic.PaperPower()
	fmt.Fprintf(&b, "  Power (Section V-H): DRAM +%.1f mW, SRAM %.1f mW (bloom %.1f + cache %.1f + buffer %.1f)\n",
		p.DRAMMilliwatts, p.SRAMTotalMilliwatts(), p.BloomMilliwatts, p.FPTCacheMilliwatts, p.CopyBufferMilliwatts)
	return b.String()
}

// SortedCacheKeys lists the lab's cached cells (for debugging/reports).
//
//detertaint:root
func (l *Lab) SortedCacheKeys() []string {
	l.mu.Lock()
	var keys []string
	for k := range l.cache {
		keys = append(keys, fmt.Sprintf("%s/%s/%d", k.workload, k.scheme, k.trh))
	}
	l.mu.Unlock()
	sort.Strings(keys)
	return keys
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func kb(bytes int) string { return fmt.Sprintf("%.1f KB", float64(bytes)/1024) }
