// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure through the
// shared Lab (results are cached across benchmarks, so the grid of
// (workload, scheme, threshold) simulations runs once per process) and
// prints the rows the paper reports. Headline numbers are also exported
// as benchmark metrics.
//
// Environment knobs:
//
//	REPRO_BENCH_WINDOW_MS  simulated window per run (default 64 = one full
//	                       refresh window, the paper's metric window)
//	REPRO_BENCH_WORKLOADS  "all" (default: 18 SPEC + 16 mixes) or "spec"
//
// The same tables are available interactively via cmd/figures.
package repro

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracker"
)

var (
	benchLab     *Lab
	benchLabOnce sync.Once
	printedOnce  sync.Map
)

func sharedLab() *Lab {
	benchLabOnce.Do(func() {
		windowMS := 64
		if v := os.Getenv("REPRO_BENCH_WINDOW_MS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				windowMS = n
			}
		}
		workloads := AllWorkloads()
		if os.Getenv("REPRO_BENCH_WORKLOADS") == "spec" {
			workloads = SPECWorkloads()
		}
		benchLab = NewLab(LabOptions{
			Window:    dram.PS(windowMS) * dram.Millisecond,
			Workloads: workloads,
		})
	})
	return benchLab
}

// emit prints a regenerated table once per process.
func emit(name, table string) {
	if _, dup := printedOnce.LoadOrStore(name, true); !dup {
		fmt.Printf("\n%s\n", table)
	}
}

// gmeanNormIPC extracts the geometric-mean normalized IPC for a scheme
// cell across the lab's workloads.
func gmeanNormIPC(b *testing.B, l *Lab, scheme Scheme, trh int64) float64 {
	b.Helper()
	var norms []float64
	for _, name := range l.opts.Workloads {
		r, err := l.Run(name, scheme, trh)
		if err != nil {
			b.Fatal(err)
		}
		norms = append(norms, r.NormIPC)
	}
	return stats.Geomean(norms)
}

// --- Figures --------------------------------------------------------------

func BenchmarkFigure3RRSScaling(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure3", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 1000))*100, "slowdown-rrs-1k-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 4000))*100, "slowdown-rrs-4k-%")
}

func BenchmarkFigure6Migrations(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure6", out)
	}
	var aqua, rrs float64
	for _, name := range l.opts.Workloads {
		a, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			b.Fatal(err)
		}
		r, err := l.Run(name, SchemeRRS, 1000)
		if err != nil {
			b.Fatal(err)
		}
		aqua += a.Result.MigrationsPer64ms
		rrs += r.Result.MigrationsPer64ms
	}
	n := float64(len(l.opts.Workloads))
	b.ReportMetric(aqua/n, "migr/64ms-aqua")
	b.ReportMetric(rrs/n, "migr/64ms-rrs")
}

func BenchmarkFigure7AquaPerformance(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure7", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaSRAM, 1000))*100, "slowdown-aqua-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeRRS, 1000))*100, "slowdown-rrs-%")
}

func BenchmarkFigure9MemoryMapped(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure9", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaSRAM, 1000))*100, "slowdown-sram-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 1000))*100, "slowdown-memmap-%")
}

func BenchmarkFigure10LookupBreakdown(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure10", out)
	}
	var bloom, dramFrac float64
	for _, name := range l.opts.Workloads {
		r, err := l.Run(name, SchemeAquaMemMapped, 1000)
		if err != nil {
			b.Fatal(err)
		}
		bd := sim.BreakdownOf(r.Result)
		bloom += bd.BloomFiltered
		dramFrac += bd.DRAM
	}
	n := float64(len(l.opts.Workloads))
	b.ReportMetric(bloom/n*100, "bloom-filtered-%")
	b.ReportMetric(dramFrac/n*100, "dram-lookups-%")
}

func BenchmarkFigure11Sensitivity(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		emit("figure11", out)
	}
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 2000))*100, "slowdown-2k-%")
	b.ReportMetric((1-gmeanNormIPC(b, l, SchemeAquaMemMapped, 500))*100, "slowdown-500-%")
}

func BenchmarkFigure12AnalyticalModel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Figure12()
	}
	emit("figure12", out)
}

func BenchmarkFigure2ThresholdTrend(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Figure2()
	}
	emit("figure2", out)
}

// --- Tables ----------------------------------------------------------------

func BenchmarkTable2Workloads(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		emit("table2", out)
	}
}

func BenchmarkTable3QuarantineSize(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table3()
	}
	emit("table3", out)
}

func BenchmarkTable4VictimRefresh(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table4()
		if err != nil {
			b.Fatal(err)
		}
		emit("table4", out)
	}
}

func BenchmarkTable5CROW(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table5()
	}
	emit("table5", out)
}

func BenchmarkTable6Comparison(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := l.Table6()
		if err != nil {
			b.Fatal(err)
		}
		emit("table6", out)
	}
}

func BenchmarkTable7Storage(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table7()
		out += "\n" + StorageReport()
	}
	emit("table7", out)
}

// --- Section VI-C: worst-case DoS bound -------------------------------------

func BenchmarkSection6CWorstCaseDoS(b *testing.B) {
	geom := BaselineGeometry()
	region := sim.VisibleRegion(sim.Config{})
	run := func(useAqua bool) dram.PS {
		rank := NewRank(geom, DDR4Timing())
		var mit mitigation.Mitigator = mitigation.None{}
		if useAqua {
			mit = core.New(rank, core.Config{TRH: 1000, Mode: core.ModeSRAM})
		}
		ctrl := memctrl.New(rank, mit, memctrl.Config{})
		s := attack.NewRotatingDoS(geom, region.VisibleRowsPerBank, 500, 200_000)
		c := cpu.New(0, s, cpu.Config{MLP: 4})
		for {
			at, ok := c.NextIssueTime()
			if !ok {
				break
			}
			c.Issue(at, ctrl.Submit)
		}
		return c.FinishTime()
	}
	var slowdown float64
	for i := 0; i < b.N; i++ {
		base := run(false)
		aqua := run(true)
		slowdown = float64(aqua) / float64(base)
	}
	b.ReportMetric(slowdown, "dos-slowdown-x")
	emit("section6c", fmt.Sprintf(
		"Section VI-C worst-case DoS: measured %.2fx (analytical bound 2.95x)", slowdown))
}

// --- Microbenchmarks on the core data structures ----------------------------

func BenchmarkAquaTranslateSRAM(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeSRAM})
	visible := eng.VisibleRowsPerBank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Translate(dram.Row(i%visible), 0)
	}
}

func BenchmarkAquaTranslateMemMapped(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeMemMapped})
	visible := eng.VisibleRowsPerBank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Translate(dram.Row(i%visible), 0)
	}
}

func BenchmarkControllerSubmit(b *testing.B) {
	rank := NewBaselineRank()
	eng := core.New(rank, core.Config{TRH: 1000, Mode: core.ModeMemMapped})
	ctrl := memctrl.New(rank, eng, memctrl.Config{})
	geom := rank.Geometry()
	at := dram.PS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = ctrl.Submit(geom.RowOf(i%16, i%100000), false, at)
	}
}

func BenchmarkSection5FSensitivity(b *testing.B) {
	l := sharedLab()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = l.SensitivityVF()
		if err != nil {
			b.Fatal(err)
		}
	}
	emit("section5f", out)
}

func BenchmarkSection5HPower(b *testing.B) {
	l := sharedLab()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = l.PowerReport()
		if err != nil {
			b.Fatal(err)
		}
	}
	emit("section5h", out)
}

// BenchmarkAblationProactiveDrain quantifies the Section IV-D note: with
// background draining, a quarantine whose destination slot holds a stale
// entry pays ~1.37us on the critical path instead of ~2.74us.
func BenchmarkAblationProactiveDrain(b *testing.B) {
	geom := dram.Geometry{Banks: 4, RowsPerBank: 512, RowBytes: 1024, LineBytes: 64}
	measure := func(drain bool) dram.PS {
		rank := dram.NewRank(geom, DDR4Timing())
		eng := core.New(rank, core.Config{
			TRH: 40, Mode: core.ModeSRAM, RQARows: 8,
			Tracker:        tracker.NewExact(geom, 20),
			ProactiveDrain: drain,
		})
		at := dram.PS(0)
		hammerOnce := func(row dram.Row) dram.PS {
			var busy dram.PS
			for i := 0; i < 20; i++ {
				tr := eng.Translate(row, at)
				busy += eng.OnActivate(tr.PhysRow, at)
				at += 50 * dram.Nanosecond
			}
			return busy
		}
		// Epoch 0: fill all 8 slots.
		for i := 0; i < 8; i++ {
			hammerOnce(geom.RowOf(i%4, 1+i/4))
		}
		eng.OnEpoch(64 * dram.Millisecond)
		at = 65 * dram.Millisecond
		if drain {
			for eng.OnIdle(at) > 0 {
				at += 10 * dram.Microsecond
			}
		}
		// Epoch 1: the next quarantines reuse stale slots; without the
		// drain each pays an eviction on the critical path.
		var busy dram.PS
		for i := 0; i < 4; i++ {
			busy += hammerOnce(geom.RowOf(i, 100+i))
		}
		return busy
	}
	var with, without dram.PS
	for i := 0; i < b.N; i++ {
		without = measure(false)
		with = measure(true)
	}
	b.ReportMetric(float64(without)/1e3, "critical-ns-no-drain")
	b.ReportMetric(float64(with)/1e3, "critical-ns-drained")
	emit("ablation-drain", fmt.Sprintf(
		"Ablation (Section IV-D): critical-path busy for 4 quarantines over stale slots:\n"+
			"  without proactive drain: %.2f us\n  with proactive drain:    %.2f us",
		float64(without)/1e6, float64(with)/1e6))
}
